// Reproduces Fig 14: multi-query scheduling of the 20 SYN queries on the
// Liebre flavor, comparing the OS, the Haren UL-SS (50 ms decisions, fresh
// in-engine metrics) and Lachesis (1 s decisions, scraped metrics), each
// under the QS, FCFS and HR policies. With 100 operators nice's 40 levels
// are insufficient, so Lachesis uses the cpu.shares translator with one
// cgroup per operator (paper §6.4).
//
// Paper shape: Lachesis lands between OS and Haren on most metrics -- QS
// and FCFS keep queues small (up to +12% throughput, 25x lower latency,
// 66x lower e2e vs OS); HR helps less (it optimizes its goal indirectly);
// Haren wins overall thanks to 20x more frequent decisions on fresher
// metrics (examined further in Fig 15).
#include "bench/bench_common.h"
#include "queries/synthetic.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double total_rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::LiebreFlavor();
    queries::SyntheticConfig config;
    auto workloads = queries::MakeSynthetic(config);
    for (auto& workload : workloads) {
      exp::WorkloadSpec w;
      w.workload = std::move(workload);
      w.rate_tps = total_rate / config.num_queries;
      spec.workloads.push_back(std::move(w));
    }
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  for (const auto& [label, policy] :
       {std::pair{"HAREN-QS", exp::PolicyKind::kQueueSize},
        std::pair{"HAREN-FCFS", exp::PolicyKind::kFcfs},
        std::pair{"HAREN-HR", exp::PolicyKind::kHighestRate}}) {
    exp::SchedulerSpec haren;
    haren.kind = exp::SchedulerKind::kHaren;
    haren.policy = policy;
    haren.period = Millis(50);
    variants.push_back({label, haren});
  }
  for (const auto& [label, policy] :
       {std::pair{"LACHESIS-QS", exp::PolicyKind::kQueueSize},
        std::pair{"LACHESIS-FCFS", exp::PolicyKind::kFcfs},
        std::pair{"LACHESIS-HR", exp::PolicyKind::kHighestRate}}) {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = policy;
    lachesis.translator = exp::TranslatorKind::kCpuShares;
    lachesis.period = Seconds(1);
    variants.push_back({label, lachesis});
  }

  const std::vector<double> rates =
      mode.full ? std::vector<double>{3000, 4500, 5500, 6000, 6500, 7000, 7500}
                : std::vector<double>{4500, 6000, 7000};

  const SweepResult sweep = RunAndPrintSweep(
      "Fig 14: 20 SYN queries @ Liebre (aggregate rate)", factory, rates,
      variants, mode);
  PrintMetricTable("Fig 14 | FCFS goal (max head-of-line age, ms)", rates,
                   variants, sweep,
                   [](const exp::RunResult& r) { return r.fcfs_goal_ms; });
  return 0;
}
