// Reproduces Fig 13: letter-value ("boxen") summaries of the full latency
// distributions for LR/VS on the Storm and Flink flavors, OS vs Lachesis-QS,
// at the high end of each query's rate range (paper §6.3.1).
//
// Paper shape: Lachesis improves not only the mean but the tails -- for LR
// and VS on Storm the 99th/99.9th percentiles drop by one to two orders of
// magnitude; on Flink improvements are small (LR ~2x; VS can be slightly
// worse in the extreme upper percentiles).
#include "bench/bench_common.h"
#include "queries/linear_road.h"
#include "queries/voip_stream.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();

  struct Setup {
    std::string name;
    spe::SpeFlavor flavor;
    queries::Workload (*make)(std::uint64_t);
    double rate;
  };
  const std::vector<Setup> setups = {
      {"LR @ Storm", spe::StormFlavor(), queries::MakeLinearRoad, 6500},
      {"VS @ Storm", spe::StormFlavor(), queries::MakeVoipStream, 2750},
      {"LR @ Flink", spe::FlinkFlavor(), queries::MakeLinearRoad, 5000},
      {"VS @ Flink", spe::FlinkFlavor(), queries::MakeVoipStream, 2500},
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  exp::SchedulerSpec lachesis;
  lachesis.kind = exp::SchedulerKind::kLachesis;
  lachesis.policy = exp::PolicyKind::kQueueSize;
  lachesis.translator = exp::TranslatorKind::kNice;
  variants.push_back({"LACHESIS-QS", lachesis});

  std::printf("Fig 13: latency distributions (letter values, ms)\n");
  for (const Setup& setup : setups) {
    for (const Variant& variant : variants) {
      exp::ScenarioSpec spec;
      spec.cores = 4;
      spec.flavor = setup.flavor;
      exp::WorkloadSpec w;
      w.workload = setup.make(101);
      w.rate_tps = setup.rate;
      spec.workloads.push_back(std::move(w));
      spec.scheduler = variant.scheduler;
      spec.warmup = mode.warmup;
      spec.measure = mode.measure;

      std::vector<double> pooled;
      HdrHistogram exact_tails;
      for (const exp::RunResult& run :
           exp::RunRepetitions(spec, mode.repetitions)) {
        pooled.insert(pooled.end(), run.latency_samples_ms.begin(),
                      run.latency_samples_ms.end());
        exact_tails.Merge(run.latency_histogram_ns);
      }
      exp::PrintLetterValues(setup.name + " / " + variant.name,
                             std::move(pooled));
      std::printf("  exact  p99 %10.3f ms   p99.9 %10.3f ms  (HDR, n=%llu)\n",
                  static_cast<double>(exact_tails.ValueAtQuantile(0.99)) / 1e6,
                  static_cast<double>(exact_tails.ValueAtQuantile(0.999)) / 1e6,
                  static_cast<unsigned long long>(exact_tails.total_count()));
    }
  }
  return 0;
}
