// Ablation: Lachesis' scheduling period. The paper fixes 1 s (Graphite's
// resolution bounds it from below); this sweep shows what faster or slower
// decision loops would buy, connecting Fig 15's granularity discussion to
// Lachesis itself. Metric staleness follows the scrape period (1 s), so
// sub-second periods recompute on stale data.
#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  for (const auto& [label, period] :
       {std::pair{"L-100ms", Millis(100)}, std::pair{"L-250ms", Millis(250)},
        std::pair{"L-1s", Seconds(1)}, std::pair{"L-2s", Seconds(2)},
        std::pair{"L-5s", Seconds(5)}}) {
    exp::SchedulerSpec s;
    s.kind = exp::SchedulerKind::kLachesis;
    s.policy = exp::PolicyKind::kQueueSize;
    s.translator = exp::TranslatorKind::kNice;
    s.period = period;
    variants.push_back({label, s});
  }

  const std::vector<double> rates = mode.full
                                        ? std::vector<double>{5000, 6000, 6500, 7000}
                                        : std::vector<double>{6000, 7000};

  RunAndPrintSweep("Ablation: Lachesis scheduling period (LR @ Storm)",
                   factory, rates, variants, mode);
  return 0;
}
