// Ablation: global coordination for distributed Lachesis instances (paper
// §8 future work (2)). The paper's scale-out experiment (Fig 17) runs one
// isolated Lachesis per node; here the same 4-node LR deployment is also
// scheduled by a single COORDINATED instance whose policy normalizes
// priorities across all nodes' operators at once.
//
// Because the nice translator's min-max normalization is per schedule,
// isolation changes which operator lands where in the nice range when load
// skews across nodes. With LR's balanced fission the difference is small --
// the paper's observation that "even isolated scheduler instances without
// global knowledge can bring significant performance benefits" -- but the
// coordinated variant removes the residual variance.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/os_adapter.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/sim_driver.h"
#include "exp/report.h"
#include "queries/linear_road.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

namespace {

using namespace lachesis;

struct Outcome {
  double throughput;
  double latency_ms;
};

Outcome Run(bool coordinated, double rate, SimTime duration,
            std::uint64_t seed) {
  sim::Simulator sim;
  std::vector<std::unique_ptr<sim::Machine>> nodes;
  std::vector<sim::Machine*> machines;
  for (int n = 0; n < 4; ++n) {
    nodes.push_back(std::make_unique<sim::Machine>(sim, 4, sim::CfsParams{},
                                                   "node" + std::to_string(n)));
    machines.push_back(nodes.back().get());
  }
  spe::SpeInstance storm(spe::StormFlavor(), machines, "storm");
  queries::Workload lr = queries::MakeLinearRoad();
  spe::DeployOptions options;
  options.parallelism = 4;
  options.seed = seed;
  spe::DeployedQuery& query = storm.Deploy(lr.query, options);
  spe::ExternalSource source(sim, query.source_channels(), lr.generator, seed);
  source.Start(rate, duration);

  tsdb::TimeSeriesStore store;
  tsdb::Scraper scraper(sim, store, Seconds(1));
  scraper.AddInstance(storm);
  scraper.Start(duration);

  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  core::LachesisRunner runner(executor, os, seed);
  core::SimSpeDriver driver(storm, store);
  if (coordinated) {
    // One binding over everything: priorities normalized globally.
    core::PolicyBinding binding;
    binding.policy = std::make_unique<core::QueueSizePolicy>();
    binding.translator = std::make_unique<core::NiceTranslator>();
    binding.period = Seconds(1);
    binding.drivers = {&driver};
    runner.AddBinding(std::move(binding));
  } else {
    // One isolated binding per node (the paper's §6.5 deployment).
    for (sim::Machine* node : machines) {
      core::PolicyBinding binding;
      binding.policy = std::make_unique<core::QueueSizePolicy>();
      binding.translator = std::make_unique<core::NiceTranslator>();
      binding.period = Seconds(1);
      binding.drivers = {&driver};
      binding.filter = [node](const core::EntityInfo& e) {
        return e.thread.machine == node;
      };
      runner.AddBinding(std::move(binding));
    }
  }
  runner.Start(duration);
  sim.RunUntil(duration);

  Outcome outcome;
  outcome.throughput =
      static_cast<double>(query.TotalIngested()) / ToSeconds(duration);
  RunningStat latency;
  for (auto* egress : query.Egresses()) latency.Merge(egress->latency);
  outcome.latency_ms = latency.mean() / 1e6;
  return outcome;
}

}  // namespace

int main() {
  const auto mode = lachesis::exp::BenchMode::FromEnv();
  const SimTime duration = mode.warmup + mode.measure;
  const std::vector<double> rates =
      mode.full ? std::vector<double>{16000, 20000, 24000, 26000, 28000}
                : std::vector<double>{20000, 26000};

  std::printf("Ablation: isolated vs coordinated Lachesis (LR, 4 nodes)\n");
  std::printf("%-10s  %-26s  %-26s\n", "rate", "ISOLATED tp / lat(ms)",
              "COORDINATED tp / lat(ms)");
  for (const double rate : rates) {
    std::vector<double> iso_tp, iso_lat, coord_tp, coord_lat;
    for (int r = 0; r < mode.repetitions; ++r) {
      const Outcome iso = Run(false, rate, duration, 100 + r);
      const Outcome coord = Run(true, rate, duration, 100 + r);
      iso_tp.push_back(iso.throughput);
      iso_lat.push_back(iso.latency_ms);
      coord_tp.push_back(coord.throughput);
      coord_lat.push_back(coord.latency_ms);
    }
    using lachesis::ConfidenceInterval95;
    using lachesis::exp::FormatCi;
    std::printf("%-10.0f  %10s / %-12s  %10s / %-12s\n", rate,
                FormatCi(ConfidenceInterval95(iso_tp)).c_str(),
                FormatCi(ConfidenceInterval95(iso_lat)).c_str(),
                FormatCi(ConfidenceInterval95(coord_tp)).c_str(),
                FormatCi(ConfidenceInterval95(coord_lat)).c_str());
  }
  return 0;
}
