// Reproduces Fig 17: scale-out study of LR on the Storm and Flink flavors.
// The fission degree of every operator grows 1 -> 2 -> 4 with the operators
// spread over an equal number of nodes; each node runs an INDEPENDENT
// Lachesis instance with no global coordination (paper §6.5).
//
// Paper shape: the single-node trends carry over -- per-node-isolated
// Lachesis-QS instances still deliver up to ~31% more throughput and
// order-of-magnitude lower latency than the OS near saturation.
#include <algorithm>

#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();

  for (const bool flink : {false, true}) {
    const spe::SpeFlavor flavor = flink ? spe::FlinkFlavor() : spe::StormFlavor();
    for (const int nodes : {1, 2, 4}) {
      const auto factory = [&](double rate) {
        exp::ScenarioSpec spec;
        spec.cores = 4;
        spec.nodes = nodes;
        spec.flavor = flavor;
        exp::WorkloadSpec w;
        w.workload = queries::MakeLinearRoad();
        w.rate_tps = rate;
        w.parallelism = nodes;  // fission degree = #nodes
        spec.workloads.push_back(std::move(w));
        return spec;
      };

      std::vector<Variant> variants;
      variants.push_back({"OS", {}});
      exp::SchedulerSpec lachesis;
      lachesis.kind = exp::SchedulerKind::kLachesis;
      lachesis.policy = exp::PolicyKind::kQueueSize;
      lachesis.translator = exp::TranslatorKind::kNice;
      variants.push_back({"LACHESIS-QS", lachesis});

      // Offered rates scale with the deployment size (cross-node hops add
      // serialization overhead, so per-node capacity is lower than
      // single-node, as in the paper).
      std::vector<double> rates;
      const std::vector<double> base =
          mode.full ? std::vector<double>{2000, 3500, 5000, 5500, 6000, 7000}
                    : std::vector<double>{3000, 5000, 6500};
      for (const double r : base) rates.push_back(r * nodes);

      char title[128];
      std::snprintf(title, sizeof(title), "Fig 17: LR @ %s, %d node(s), fission %d",
                    flavor.name.c_str(), nodes, nodes);
      const SweepResult sweep =
          RunAndPrintSweep(title, factory, rates, variants, mode);

      // Per-node view: the aggregate above hides a node that regresses
      // while its peers compensate (possible at higher fission degrees, and
      // exactly what per-node-isolated instances must not do). Report the
      // slowest and fastest node alongside the aggregate.
      if (nodes > 1) {
        const auto node_min = [](const RunResult& r) {
          double v = r.per_node_throughput_tps.empty()
                         ? 0.0
                         : r.per_node_throughput_tps.front();
          for (const double t : r.per_node_throughput_tps) v = std::min(v, t);
          return v;
        };
        const auto node_max = [](const RunResult& r) {
          double v = 0.0;
          for (const double t : r.per_node_throughput_tps) v = std::max(v, t);
          return v;
        };
        PrintMetricTable(std::string(title) + " | Min per-node throughput (t/s)",
                         rates, variants, sweep, node_min);
        PrintMetricTable(std::string(title) + " | Max per-node throughput (t/s)",
                         rates, variants, sweep, node_max);
      }
    }
  }
  return 0;
}
