// Fleet stress bench: the §6.5 scale-out regime as a genuine parallel
// workload -- tens of machines, hundreds of operators, each machine on its
// own event queue, stepped by a worker pool (sim/fleet.h).
//
// Sweeps the worker count over the SAME scenario and seed, asserting the
// per-machine scheduler-trace digests are identical at every worker count
// (the parallel stepper is an optimization, not a model change) and
// recording wall seconds per point in BENCH_fleet.json. On an N-core host
// wall time approaches 1/N of sequential; on a 1-core host the sweep
// degenerates to overhead measurement -- hw_cores in the json says which
// regime produced the numbers.
//
//   LACHESIS_BENCH_MODE=full     bigger fleet (24 machines x 8 cores)
//   LACHESIS_BENCH_WORKERS=<n>   adds <n> to the swept worker counts
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "exp/fleet.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const BenchMode mode = BenchMode::FromEnv();

  exp::FleetSpec spec;
  spec.label = "fleet";
  spec.machines = mode.full ? 24 : 12;
  spec.cores = mode.full ? 8 : 4;
  spec.queries_per_machine = mode.full ? 8 : 5;
  spec.rate_tps = 400;
  spec.warmup = mode.warmup;
  spec.measure = mode.measure;
  spec.scheduler.kind = exp::SchedulerKind::kLachesis;
  spec.scheduler.policy = exp::PolicyKind::kQueueSize;
  spec.scheduler.translator = exp::TranslatorKind::kNice;
  spec.seed = 12;

  std::vector<int> worker_counts{1, 2, 4};
  if (std::find(worker_counts.begin(), worker_counts.end(), mode.workers) ==
      worker_counts.end()) {
    worker_counts.push_back(mode.workers);
  }

  const unsigned hw_cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("fleet: %d machines x %d cores, %d queries/machine, host has %u core(s)\n",
              spec.machines, spec.cores, spec.queries_per_machine, hw_cores);

  std::vector<exp::FleetResult> results;
  for (const int workers : worker_counts) {
    exp::FleetSpec run = spec;
    run.workers = workers;
    results.push_back(exp::RunFleet(run));
    const exp::FleetResult& r = results.back();
    std::printf(
        "workers=%d  wall=%.2fs  throughput=%.0f t/s  node[min/max]=%.0f/%.0f"
        "  util=%.2f  epochs=%llu  digest=%016llx\n",
        r.worker_count, r.wall_seconds, r.throughput_tps,
        r.min_node_throughput_tps, r.max_node_throughput_tps,
        r.cpu_utilization, static_cast<unsigned long long>(r.epochs),
        static_cast<unsigned long long>(r.trace_digest));
    std::fflush(stdout);
  }

  // The parallel stepper must not change the simulation: every worker count
  // reproduces the sequential run bit for bit.
  bool digests_ok = true;
  for (const exp::FleetResult& r : results) {
    if (r.trace_digest != results.front().trace_digest ||
        r.throughput_tps != results.front().throughput_tps) {
      digests_ok = false;
    }
  }
  std::printf("determinism: %s\n", digests_ok ? "OK (all digests equal)"
                                              : "FAILED (digest mismatch)");

  // Fault-machinery overhead: the failure domain must be free when unused.
  // An ARMED director (full rule set, probability 0) evaluates every
  // per-epoch crash/partition/slow decision without ever firing one, so the
  // schedules -- and the digest -- must match the plain run bit for bit,
  // and the wall-clock delta is pure bookkeeping cost. Reps interleave
  // plain/armed so host drift hits both arms equally; min-of-reps is the
  // noise-resistant estimator.
  exp::FleetSpec plain = spec;
  plain.workers = std::min<int>(4, static_cast<int>(hw_cores));
  exp::FleetSpec armed = plain;
  for (const core::FleetFaultKind kind :
       {core::FleetFaultKind::kMachineCrash, core::FleetFaultKind::kSlowShard,
        core::FleetFaultKind::kPartition}) {
    core::FleetFaultRule rule;
    rule.kind = kind;
    rule.probability = 0.0;
    armed.fleet_faults.rules.push_back(rule);
  }
  double plain_wall = 0;
  double armed_wall = 0;
  std::uint64_t plain_digest = 0;
  std::uint64_t armed_digest = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const exp::FleetResult p = exp::RunFleet(plain);
    const exp::FleetResult a = exp::RunFleet(armed);
    plain_wall = rep == 0 ? p.wall_seconds : std::min(plain_wall, p.wall_seconds);
    armed_wall = rep == 0 ? a.wall_seconds : std::min(armed_wall, a.wall_seconds);
    plain_digest = p.trace_digest;
    armed_digest = a.trace_digest;
  }
  const bool fault_digest_ok = armed_digest == plain_digest;
  const double overhead =
      plain_wall > 0 ? (armed_wall - plain_wall) / plain_wall : 0.0;
  // <2% relative, with an absolute floor so sub-100ms jitter on fast hosts
  // cannot fail the gate.
  const bool fault_overhead_ok =
      overhead < 0.02 || (armed_wall - plain_wall) < 0.08;
  std::printf(
      "fault overhead: plain=%.3fs armed=%.3fs (%+.2f%%) digest %s -> %s\n",
      plain_wall, armed_wall, overhead * 100,
      fault_digest_ok ? "match" : "MISMATCH",
      fault_digest_ok && fault_overhead_ok ? "OK" : "FAILED");

  const double base_wall = results.front().wall_seconds;
  std::FILE* out = std::fopen("BENCH_fleet.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"fleet\",\n  \"mode\": \"%s\",\n"
                 "  \"machines\": %d,\n  \"cores_per_machine\": %d,\n"
                 "  \"queries_per_machine\": %d,\n  \"hw_cores\": %u,\n"
                 "  \"digests_identical\": %s,\n  \"series\": [\n",
                 mode.full ? "full" : "quick", spec.machines, spec.cores,
                 spec.queries_per_machine, hw_cores,
                 digests_ok ? "true" : "false");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const exp::FleetResult& r = results[i];
      std::fprintf(
          out,
          "    {\"worker_count\": %d, \"wall_seconds\": %.3f, "
          "\"speedup_vs_sequential\": %.3f, \"throughput_tps\": %.1f, "
          "\"min_node_throughput_tps\": %.1f, \"max_node_throughput_tps\": "
          "%.1f, \"epochs\": %llu, \"events_dispatched\": %llu, "
          "\"trace_digest\": \"%016llx\"}%s\n",
          r.worker_count, r.wall_seconds,
          r.wall_seconds > 0 ? base_wall / r.wall_seconds : 0.0,
          r.throughput_tps, r.min_node_throughput_tps,
          r.max_node_throughput_tps,
          static_cast<unsigned long long>(r.epochs),
          static_cast<unsigned long long>(r.events_dispatched),
          static_cast<unsigned long long>(r.trace_digest),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"fault_overhead\": {\"plain_wall_seconds\": %.3f, "
                 "\"armed_wall_seconds\": %.3f, \"overhead_pct\": %.2f, "
                 "\"digest_match\": %s, \"within_bar\": %s}\n}\n",
                 plain_wall, armed_wall, overhead * 100,
                 fault_digest_ok ? "true" : "false",
                 fault_overhead_ok ? "true" : "false");
    std::fclose(out);
    std::printf("[bench-json] wrote BENCH_fleet.json\n");
  }
  return digests_ok && fault_digest_ok && fault_overhead_ok ? 0 : 1;
}
