// Heterogeneity + SCHED_DEADLINE bench (ROADMAP item 5; BENCH_hetero.json).
//
// Three parts:
//  1. Placement: the same synthetic workload on a big.LITTLE node (2 big +
//     2 little @ 0.25) with capacity-aware kernel placement vs the
//     capacity-blind control arm. Aware placement keeps long-running work
//     on big cores (wakeup order + misfit migration), which shows up as
//     higher sustained throughput and lower latency near saturation.
//  2. Mixed criticality: one latency-critical query next to noisy-neighbor
//     queries at overload. Compares OS default, Lachesis QS+nice, and
//     Lachesis QS+deadline with the critical query's operators reserved via
//     SCHED_DEADLINE. The deadline variant must hold the critical chain's
//     latency SLO; the best-effort variants miss it under this load.
//  3. Admission overhead: host ns/op of Machine::SetDeadline for admit,
//     clear, and rejected (over-committed) reservations -- the control
//     plane pays this on every reconciliation tick.
#include <algorithm>
#include <chrono>
#include <functional>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "queries/synthetic.h"
#include "sim/machine.h"
#include "sim/simulator.h"

namespace {

using namespace lachesis;
using namespace lachesis::bench;

constexpr double kSloMs = 10.0;  // critical-chain avg processing latency SLO

void PrintJsonCi(std::FILE* out, const char* key, const MeanCi& ci,
                 const char* suffix = "") {
  std::fprintf(out, "    \"%s\": {\"mean\": %.4f, \"ci95\": %.4f, \"n\": %zu}%s\n",
               key, ci.mean, ci.half_width, ci.n, suffix);
}

// Pools one query's latency samples across repetitions.
std::vector<double> PooledQueryLatency(const std::vector<exp::RunResult>& runs,
                                       const std::string& query) {
  std::vector<double> pooled;
  for (const exp::RunResult& r : runs) {
    const auto it = r.per_query.find(query);
    if (it == r.per_query.end()) continue;
    pooled.insert(pooled.end(), it->second.latency_samples_ms.begin(),
                  it->second.latency_samples_ms.end());
  }
  return pooled;
}

double HostNsPerOp(const std::function<void()>& op, int iterations) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) op();
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         iterations;
}

}  // namespace

int main() {
  const BenchMode mode = BenchMode::FromEnv();

  // --- shared workload: small synthetic multi-query mix ----------------------
  // Short pipelines of fat operators. Two sizing constraints: a transform
  // must outgrow a little core at the bench rates (rate x cost > 0.25) while
  // the machine still has headroom, and a single burst must exceed
  // the effective sched_latency (18ms at 4 cores) of wall time on a little
  // core (work > 4.5ms) so the misfit rules engage -- the regime where
  // placement quality, not raw capacity, decides throughput.
  queries::SyntheticConfig syn;
  syn.num_queries = 4;
  syn.ops_per_query = 3;  // ingress + one fat transform + egress
  syn.min_cost = Micros(5000);
  syn.max_cost = Micros(7000);
  syn.min_selectivity = 0.9;
  syn.max_selectivity = 1.1;
  syn.seed = 407;
  const std::vector<queries::Workload> workloads = queries::MakeSynthetic(syn);

  const auto base_spec = [&](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    // Interleaved little/big, as on real ARM boards where CPU0 is a
    // little core: index-order (blind) placement prefers a little core.
    spec.core_capacities = {0.25, 1.0, 0.25, 1.0};
    spec.warmup = mode.warmup;
    spec.measure = mode.measure;
    for (const queries::Workload& w : workloads) {
      exp::WorkloadSpec ws;
      ws.workload = w;
      ws.rate_tps = rate;
      spec.workloads.push_back(std::move(ws));
    }
    return spec;
  };

  // --- part 1: capacity-aware vs capacity-blind placement --------------------
  // Near the blind configuration's saturation point so placement quality is
  // the binding constraint.
  const double kPlacementRate = 80;
  exp::ScenarioSpec aware_spec = base_spec(kPlacementRate);
  aware_spec.label = "hetero-aware";
  exp::ScenarioSpec blind_spec = aware_spec;
  blind_spec.label = "hetero-blind";
  blind_spec.capacity_aware = false;

  std::printf("hetero placement: interleaved 2 big + 2 little(0.25), %d syn queries @ %.0f tps each\n",
              syn.num_queries, kPlacementRate);
  const std::vector<exp::RunResult> aware_runs =
      exp::RunRepetitions(aware_spec, mode.repetitions);
  const std::vector<exp::RunResult> blind_runs =
      exp::RunRepetitions(blind_spec, mode.repetitions);

  const auto tput = [](const exp::RunResult& r) { return r.throughput_tps; };
  const auto latency = [](const exp::RunResult& r) { return r.avg_latency_ms; };
  const MeanCi aware_tps = exp::Aggregate(aware_runs, tput);
  const MeanCi blind_tps = exp::Aggregate(blind_runs, tput);
  const MeanCi aware_lat = exp::Aggregate(aware_runs, latency);
  const MeanCi blind_lat = exp::Aggregate(blind_runs, latency);
  // Ingress throughput tracks the offered rate as long as the (cheap)
  // ingress operators keep up, so the discriminating metric is latency: a
  // transform stranded on a little core queues without bound.
  const double speedup =
      blind_tps.mean > 0 ? aware_tps.mean / blind_tps.mean : 0.0;
  const double latency_ratio =
      aware_lat.mean > 0 ? blind_lat.mean / aware_lat.mean : 0.0;
  const MeanCi aware_util = exp::Aggregate(
      aware_runs, [](const exp::RunResult& r) { return r.cpu_utilization; });
  const MeanCi blind_util = exp::Aggregate(
      blind_runs, [](const exp::RunResult& r) { return r.cpu_utilization; });
  std::printf("  util: aware %.3f blind %.3f\n", aware_util.mean,
              blind_util.mean);
  std::printf("  aware: %8.1f tps  %8.2f ms   blind: %8.1f tps  %8.2f ms   blind/aware latency %.2fx\n",
              aware_tps.mean, aware_lat.mean, blind_tps.mean, blind_lat.mean,
              latency_ratio);

  // --- part 2: mixed-criticality noisy neighbor ------------------------------
  // The first query is latency-critical at a modest rate; the rest are
  // noisy neighbors pushed into overload.
  const std::string critical_query = workloads[0].query.name;
  const auto mixed_spec = [&](exp::SchedulerSpec scheduler) {
    exp::ScenarioSpec spec = base_spec(/*rate=*/150);  // noisy: past saturation
    spec.label = "hetero-mixed";
    spec.workloads[0].rate_tps = 100;  // more than a little core / fair share
    spec.scheduler = std::move(scheduler);
    return spec;
  };

  exp::SchedulerSpec os_default;
  exp::SchedulerSpec qs_nice;
  qs_nice.kind = exp::SchedulerKind::kLachesis;
  qs_nice.policy = exp::PolicyKind::kQueueSize;
  qs_nice.translator = exp::TranslatorKind::kNice;
  exp::SchedulerSpec qs_deadline = qs_nice;
  qs_deadline.translator = exp::TranslatorKind::kDeadline;
  qs_deadline.critical_queries = {critical_query};
  qs_deadline.dl_runtime = Millis(7);
  qs_deadline.dl_period = Millis(10);

  struct MixedVariant {
    std::string name;
    exp::SchedulerSpec scheduler;
    MeanCi critical_avg_ms;
    double critical_p99_ms = 0;
    MeanCi total_tps;
    bool meets_slo = false;
  };
  std::vector<MixedVariant> mixed;
  mixed.push_back({"OS", os_default, {}, 0, {}, false});
  mixed.push_back({"QS+nice", qs_nice, {}, 0, {}, false});
  mixed.push_back({"QS+deadline", qs_deadline, {}, 0, {}, false});

  std::printf("hetero mixed-criticality: %s critical @100 tps, %d noisy @150 tps, SLO %.1f ms\n",
              critical_query.c_str(), syn.num_queries - 1, kSloMs);
  for (MixedVariant& v : mixed) {
    const std::vector<exp::RunResult> runs =
        exp::RunRepetitions(mixed_spec(v.scheduler), mode.repetitions);
    v.critical_avg_ms = exp::Aggregate(runs, [&](const exp::RunResult& r) {
      const auto it = r.per_query.find(critical_query);
      return it == r.per_query.end() ? 0.0 : it->second.avg_latency_ms;
    });
    v.critical_p99_ms =
        exp::Percentile(PooledQueryLatency(runs, critical_query), 0.99);
    v.total_tps = exp::Aggregate(runs, tput);
    v.meets_slo = v.critical_avg_ms.mean > 0 && v.critical_avg_ms.mean < kSloMs;
    std::printf("  %-12s critical avg %8.2f ms  p99 %8.2f ms  total %8.1f tps  SLO %s\n",
                v.name.c_str(), v.critical_avg_ms.mean, v.critical_p99_ms,
                v.total_tps.mean, v.meets_slo ? "MET" : "missed");
  }

  // --- part 3: admission-control overhead ------------------------------------
  // Host cost of the simulator's SetDeadline admission check: the control
  // plane pays it per reservation per reconciliation, so it must stay cheap
  // even with many existing reservations.
  sim::Simulator sim;
  sim::CfsParams hetero_params;
  hetero_params.core_capacities = {1.0, 1.0, 0.25, 0.25};
  sim::Machine machine(sim, 4, hetero_params, "admission");
  struct IdleBody final : sim::ThreadBody {
    sim::Action Next(sim::Machine&) override {
      return sim::Action::Sleep(Seconds(1));
    }
  };
  std::vector<ThreadId> tids;
  for (int i = 0; i < 64; ++i) {
    tids.push_back(machine.CreateThread("t" + std::to_string(i),
                                        std::make_unique<IdleBody>(),
                                        machine.root_cgroup()));
  }
  // Park a background utilization so admission always scans existing
  // reservations: 32 threads x 0.05 = 1.6 of the 2.375 bound.
  for (int i = 0; i < 32; ++i) {
    (void)machine.SetDeadline(tids[static_cast<std::size_t>(i)],
                              {Micros(500), Millis(10), Millis(10)});
  }
  const int iters = mode.full ? 200000 : 50000;
  int flip = 0;
  const double admit_clear_ns = HostNsPerOp(
      [&] {
        const ThreadId tid = tids[32 + (flip++ % 32)];
        (void)machine.SetDeadline(tid, {Micros(100), Millis(10), Millis(10)});
        (void)machine.SetDeadline(tid, {});
      },
      iters) / 2.0;  // one admit + one clear per iteration
  // Over-commit attempts: ~0.77 of the bound remains, ask for 0.9.
  const double reject_ns = HostNsPerOp(
      [&] {
        (void)machine.SetDeadline(tids[63], {Millis(9), Millis(10), Millis(10)});
      },
      iters);
  std::printf("hetero admission: admit+clear %.0f ns/op, reject %.0f ns/op (32 live reservations)\n",
              admit_clear_ns, reject_ns);

  // --- BENCH json -------------------------------------------------------------
  std::FILE* out = std::fopen("BENCH_hetero.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"hetero\",\n  \"mode\": \"%s\",\n"
                      "  \"repetitions\": %d,\n",
                 mode.full ? "full" : "quick", mode.repetitions);
    std::fprintf(out, "  \"placement\": {\n");
    std::fprintf(out, "    \"rate_tps\": %.1f,\n", kPlacementRate);
    PrintJsonCi(out, "aware_tps", aware_tps, ",");
    PrintJsonCi(out, "blind_tps", blind_tps, ",");
    PrintJsonCi(out, "aware_latency_ms", aware_lat, ",");
    PrintJsonCi(out, "blind_latency_ms", blind_lat, ",");
    std::fprintf(out, "    \"aware_over_blind_speedup\": %.4f,\n", speedup);
    std::fprintf(out, "    \"blind_over_aware_latency\": %.4f\n  },\n",
                 latency_ratio);
    std::fprintf(out, "  \"mixed_criticality\": {\n");
    std::fprintf(out, "    \"critical_query\": \"%s\",\n    \"slo_ms\": %.1f,\n"
                      "    \"variants\": [\n",
                 critical_query.c_str(), kSloMs);
    for (std::size_t i = 0; i < mixed.size(); ++i) {
      const MixedVariant& v = mixed[i];
      std::fprintf(out,
                   "      {\"name\": \"%s\", \"critical_avg_ms\": %.4f, "
                   "\"critical_p99_ms\": %.4f, \"total_tps\": %.1f, "
                   "\"meets_slo\": %s}%s\n",
                   v.name.c_str(), v.critical_avg_ms.mean, v.critical_p99_ms,
                   v.total_tps.mean, v.meets_slo ? "true" : "false",
                   i + 1 < mixed.size() ? "," : "");
    }
    std::fprintf(out, "    ]\n  },\n");
    std::fprintf(out, "  \"admission\": {\n"
                      "    \"admit_clear_ns_per_op\": %.1f,\n"
                      "    \"reject_ns_per_op\": %.1f,\n"
                      "    \"live_reservations\": 32\n  }\n}\n",
                 admit_clear_ns, reject_ns);
    std::fclose(out);
    std::printf("[bench-json] wrote BENCH_hetero.json\n");
  }

  // The bench doubles as a regression gate for the two acceptance
  // properties: aware placement must beat blind, and only the deadline
  // variant may hold the SLO.
  int status = 0;
  if (speedup < 0.98 || latency_ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: capacity-aware must hold throughput (%.3fx) and beat "
                 "blind latency by 1.5x (got %.2fx)\n",
                 speedup, latency_ratio);
    status = 1;
  }
  const MixedVariant& dl = mixed.back();
  if (!dl.meets_slo) {
    std::fprintf(stderr, "FAIL: deadline variant missed the %.1f ms SLO (%.2f ms)\n",
                 kSloMs, dl.critical_avg_ms.mean);
    status = 1;
  }
  for (const MixedVariant& v : mixed) {
    if (v.name != "QS+deadline" && v.meets_slo) {
      std::fprintf(stderr,
                   "NOTE: best-effort variant %s also met the SLO (%.2f ms); "
                   "the noisy load may be too light to discriminate\n",
                   v.name.c_str(), v.critical_avg_ms.mean);
    }
  }
  return status;
}
