// Reproduces Fig 7 and Fig 8: the STATS query on the Storm flavor, OS vs
// EdgeWise vs Lachesis-QS (paper §6.2).
//
// Paper shape: STATS' high selectivity (~15 egress tuples per ingress
// tuple) makes small rate steps big load jumps; Lachesis gains are smaller
// than for ETL (+3% throughput, graceful degradation past saturation)
// because a SINGLE bottleneck operator dominates -- visible in Fig 8 as one
// queue-size outlier no scheduler can fix (it needs fission, not
// scheduling).
#include "bench/bench_common.h"
#include "queries/stats.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeStats();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec edgewise;
    edgewise.kind = exp::SchedulerKind::kEdgeWise;
    variants.push_back({"EDGEWISE", edgewise});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kQueueSize;
    lachesis.translator = exp::TranslatorKind::kNice;
    variants.push_back({"LACHESIS-QS", lachesis});
  }

  const std::vector<double> rates =
      mode.full ? std::vector<double>{200, 260, 300, 320, 340, 360, 380, 420}
                : std::vector<double>{250, 320, 360, 420};

  const SweepResult sweep = RunAndPrintSweep("Fig 7: STATS @ Storm", factory,
                                             rates, variants, mode);

  std::printf("\n== Fig 8: STATS input queue size distributions ==\n");
  std::printf("(the p99.9/max columns show the single bottleneck outlier)\n");
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      std::vector<double> pooled;
      for (const exp::RunResult& run : sweep.runs[v][r]) {
        pooled.insert(pooled.end(), run.queue_size_samples.begin(),
                      run.queue_size_samples.end());
      }
      std::printf(
          "%-12s rate=%-5.0f  p50=%8.1f  p90=%8.1f  p99.9=%9.1f  max=%9.1f\n",
          variants[v].name.c_str(), rates[r], exp::Percentile(pooled, 0.5),
          exp::Percentile(pooled, 0.9), exp::Percentile(pooled, 0.999),
          exp::Percentile(pooled, 1.0));
    }
  }
  return 0;
}
