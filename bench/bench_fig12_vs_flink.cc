// Reproduces Fig 12: VoipStream on the Flink flavor, OS vs RANDOM vs
// Lachesis-QS (paper §6.3).
//
// Paper shape: VS in Flink saturates earlier than in Storm (heavier
// per-hop exchange cost on small devices); Flink's backpressure keeps
// queue-size variance small, so QS has less room -- Lachesis still improves
// the scheduling goal and attains tens-of-percent lower latency.
#include "bench/bench_common.h"
#include "queries/voip_stream.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::FlinkFlavor();
    spec.chaining = false;
    exp::WorkloadSpec w;
    w.workload = queries::MakeVoipStream();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec random;
    random.kind = exp::SchedulerKind::kLachesis;
    random.policy = exp::PolicyKind::kRandom;
    variants.push_back({"RANDOM", random});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kQueueSize;
    lachesis.translator = exp::TranslatorKind::kNice;
    variants.push_back({"LACHESIS-QS", lachesis});
  }

  const std::vector<double> rates =
      mode.full ? std::vector<double>{800, 1200, 1600, 2000, 2400, 2800, 3000}
                : std::vector<double>{1000, 1750, 2500, 3000};

  RunAndPrintSweep("Fig 12: VS @ Flink (chaining off)", factory, rates,
                   variants, mode);
  return 0;
}
