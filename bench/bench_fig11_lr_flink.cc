// Reproduces Fig 11: Linear Road on the Flink flavor, OS vs RANDOM vs
// Lachesis-QS (paper §6.3).
//
// Paper shape: Flink's bounded exchanges backpressure producers, so queues
// never explode; Lachesis gains are smaller than in Storm -- slightly
// higher throughput, single-digit-x latency improvements. Chaining is
// disabled to match Storm's physical DAG (paper footnote 6).
#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::FlinkFlavor();
    spec.chaining = false;
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec random;
    random.kind = exp::SchedulerKind::kLachesis;
    random.policy = exp::PolicyKind::kRandom;
    variants.push_back({"RANDOM", random});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kQueueSize;
    lachesis.translator = exp::TranslatorKind::kNice;
    variants.push_back({"LACHESIS-QS", lachesis});
  }

  const std::vector<double> rates =
      mode.full
          ? std::vector<double>{2000, 3000, 4000, 4500, 5000, 5500, 6000}
          : std::vector<double>{2500, 4000, 5000, 6000};

  RunAndPrintSweep("Fig 11: LR @ Flink (chaining off)", factory, rates,
                   variants, mode);
  return 0;
}
