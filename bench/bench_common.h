// Shared harness for the per-figure benches: rate sweeps over scheduler
// variants, printed as the series each paper figure plots.
#ifndef LACHESIS_BENCH_BENCH_COMMON_H_
#define LACHESIS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/report.h"
#include "exp/scenario.h"

namespace lachesis::bench {

using exp::BenchMode;
using exp::RunResult;
using exp::ScenarioSpec;
using exp::SchedulerSpec;

struct Variant {
  std::string name;
  SchedulerSpec scheduler;
};

// Builds the scenario for (rate, variant); the callee sets workloads/flavor.
using ScenarioFactory = std::function<ScenarioSpec(double rate)>;

struct SweepResult {
  // results[variant][rate] = repetitions
  std::vector<std::vector<std::vector<RunResult>>> runs;
  double wall_seconds = 0;  // host time spent inside RunSweep
  double sim_seconds = 0;   // simulated time covered (warmup + measure, summed)
  // Host seconds per (variant, rate) point (all repetitions of that point);
  // same shape as runs minus the repetition axis. Speedup trajectories
  // (worker sweeps) read these from the BENCH json.
  std::vector<std::vector<double>> point_wall_seconds;
};

// Runs the sweep and prints the four standard series (throughput, latency,
// end-to-end latency, QS goal) as tables with one row per offered rate --
// the textual form of the paper's performance figures.
SweepResult RunAndPrintSweep(const std::string& title,
                             const ScenarioFactory& factory,
                             const std::vector<double>& rates,
                             const std::vector<Variant>& variants,
                             const BenchMode& mode);

// Only runs, no printing (for benches that post-process).
SweepResult RunSweep(const ScenarioFactory& factory,
                     const std::vector<double>& rates,
                     const std::vector<Variant>& variants,
                     const BenchMode& mode);

void PrintMetricTable(
    const std::string& title, const std::vector<double>& rates,
    const std::vector<Variant>& variants, const SweepResult& sweep,
    const std::function<double(const RunResult&)>& extract);

// Machine-readable perf trajectory: writes BENCH_<bench>.json in the
// working directory with per-(variant, rate) means + 95% CIs of the
// standard metrics, repetition count, and the sweep's sim/wall ratio.
// `bench` defaults to the binary name with its "bench_" prefix stripped.
// RunAndPrintSweep calls this automatically; benches that post-process
// (RunSweep only) should call it themselves.
void WriteBenchJson(const std::vector<double>& rates,
                    const std::vector<Variant>& variants,
                    const SweepResult& sweep, const BenchMode& mode,
                    const std::string& bench = {});

}  // namespace lachesis::bench

#endif  // LACHESIS_BENCH_BENCH_COMMON_H_
