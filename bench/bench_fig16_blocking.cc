// Reproduces Fig 16: the effect of blocking operations on SYN (FCFS
// policy). 10% of the operators block with probability 0.1% per tuple for
// up to 200 ms, simulating I/O such as commits to a remote system (paper
// §6.4).
//
// Paper shape: Lachesis relies on the OS scheduler, which transparently
// deschedules blocked threads, so it is unaffected; Haren's worker threads
// stall while an operator blocks, costing up to 43% throughput, 4.5x higher
// latency and orders-of-magnitude higher e2e latency.
#include "bench/bench_common.h"
#include "queries/synthetic.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double total_rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::LiebreFlavor();
    queries::SyntheticConfig config;
    config.blocking_op_fraction = 0.10;
    config.block_probability = 0.001;
    config.block_max = Millis(200);
    auto workloads = queries::MakeSynthetic(config);
    for (auto& workload : workloads) {
      exp::WorkloadSpec w;
      w.workload = std::move(workload);
      w.rate_tps = total_rate / config.num_queries;
      spec.workloads.push_back(std::move(w));
    }
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec haren;
    haren.kind = exp::SchedulerKind::kHaren;
    haren.policy = exp::PolicyKind::kFcfs;
    haren.period = Millis(50);
    variants.push_back({"HAREN", haren});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kFcfs;
    lachesis.translator = exp::TranslatorKind::kCpuShares;
    variants.push_back({"LACHESIS", lachesis});
  }

  const std::vector<double> rates =
      mode.full ? std::vector<double>{3000, 4000, 5000, 5500, 6000, 6500}
                : std::vector<double>{4000, 5500, 6500};

  const SweepResult sweep = RunAndPrintSweep(
      "Fig 16: SYN with 10% blocking operators (FCFS)", factory, rates,
      variants, mode);
  PrintMetricTable("Fig 16 | FCFS goal (max head-of-line age, ms)", rates,
                   variants, sweep,
                   [](const exp::RunResult& r) { return r.fcfs_goal_ms; });
  return 0;
}
