// Ablation: the §8 future-work OS mechanisms next to the paper's two. Runs
// LR on the Storm flavor under the same QS policy enforced through nice,
// cpu.shares, hard CFS quotas, and the RT-boost scheme, plus the PSI-driven
// policy over nice -- all against default OS scheduling.
//
// Expected shape: nice and cpu.shares perform similarly (both weight-based
// and work-conserving); quotas lose some work conservation (idle budget is
// wasted near the crossover); the RT boost helps the bottleneck but risks
// starving the fair class when misassigned; PSI tracks the bottleneck from
// fresh kernel data without any SPE metrics at all.
#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  const auto lachesis_variant = [](const char* label, exp::PolicyKind policy,
                                   exp::TranslatorKind translator) {
    exp::SchedulerSpec s;
    s.kind = exp::SchedulerKind::kLachesis;
    s.policy = policy;
    s.translator = translator;
    return Variant{label, s};
  };
  variants.push_back(lachesis_variant("QS+nice", exp::PolicyKind::kQueueSize,
                                      exp::TranslatorKind::kNice));
  variants.push_back(lachesis_variant("QS+shares", exp::PolicyKind::kQueueSize,
                                      exp::TranslatorKind::kCpuShares));
  variants.push_back(lachesis_variant("QS+quota", exp::PolicyKind::kQueueSize,
                                      exp::TranslatorKind::kQuota));
  variants.push_back(lachesis_variant("QS+rt", exp::PolicyKind::kQueueSize,
                                      exp::TranslatorKind::kRtNice));
  variants.push_back(lachesis_variant("PSI+nice",
                                      exp::PolicyKind::kPressureStall,
                                      exp::TranslatorKind::kNice));

  const std::vector<double> rates =
      mode.full ? std::vector<double>{4000, 5000, 5500, 6000, 6500, 7000}
                : std::vector<double>{5000, 6000, 7000};

  RunAndPrintSweep("Ablation: OS mechanisms (QS/PSI on LR @ Storm)", factory,
                   rates, variants, mode);
  return 0;
}
