// Native SPE executor micro-bench: what the lock-free ring and the
// thread-per-operator runtime cost on this host.
//
// Three measurements, written to BENCH_native.json:
//   queue/same-thread   push+pop pairs on one thread -- pure ring cost, no
//                       contention, no wakeups
//   queue/cross-thread  a producer thread streams through the ring to a
//                       consumer -- the real SPSC regime, including the
//                       futex sleep/wake protocol under full/empty races
//   executor/N-op       tuples/sec through 1-, 2- and 4-operator chains at
//                       zero emulated cost: the per-tuple framework
//                       overhead (ring hop + bookkeeping) per chain stage
//
// On a 1-core host the cross-thread and executor numbers include mandatory
// context switches; hw_cores in the json says which regime produced them.
//
//   LACHESIS_BENCH_MODE=full   ~5x more tuples per point
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "spe/native_queue.h"
#include "spe/native_runtime.h"

using namespace lachesis;

namespace {

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Push+pop pairs on a single thread: the ring never fills, never empties
// past one element, and no waiter ever parks.
double BenchSameThread(std::uint64_t pairs) {
  spe::NativeSpscQueue<std::uint64_t> queue(1024);
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    queue.TryPush(i);
    std::uint64_t out = 0;
    queue.TryPop(out);
    sink += out;
  }
  const double wall = WallSeconds(start);
  if (sink == 0 && pairs > 1) std::abort();  // keep the loop observable
  return static_cast<double>(2 * pairs) / wall;
}

// A producer thread streams `count` items through the ring to the bench
// thread: blocking Push/Pop, so the full/empty sleep-wake protocol is on
// the measured path whenever the two threads outpace each other.
double BenchCrossThread(std::uint64_t count) {
  spe::NativeSpscQueue<std::uint64_t> queue(1024);
  const auto start = std::chrono::steady_clock::now();
  std::thread producer([&queue, count] {
    for (std::uint64_t i = 0; i < count; ++i) queue.Push(i);
    queue.Close();
  });
  std::uint64_t out = 0;
  std::uint64_t received = 0;
  while (queue.Pop(out)) ++received;
  producer.join();
  const double wall = WallSeconds(start);
  if (received != count) std::abort();
  return static_cast<double>(count) / wall;
}

struct ExecutorPoint {
  int chain_length = 0;
  std::uint64_t tuples = 0;
  double wall_seconds = 0;
  double tuples_per_sec = 0;
  std::uint64_t sleeps = 0;  // producer+consumer parks across all rings
};

// Runs `tuples` through a linear chain of `length` zero-cost operators and
// measures end-to-end wall time from Start to full drain.
ExecutorPoint BenchExecutor(int length, std::uint64_t tuples) {
  spe::LogicalQuery query;
  query.name = "bench" + std::to_string(length);
  int prev = -1;
  for (int i = 0; i < length; ++i) {
    spe::LogicalOperator op;
    op.name = "op" + std::to_string(i);
    op.role = i == 0                ? spe::OperatorRole::kIngress
              : i + 1 == length     ? spe::OperatorRole::kEgress
                                    : spe::OperatorRole::kTransform;
    op.cost = 0;  // measure the framework, not the emulated work
    op.cost_jitter = 0;
    const int index = query.Add(std::move(op));
    if (prev >= 0) query.Connect(prev, index);
    prev = index;
  }

  spe::NativeRuntimeOptions rt_options;
  rt_options.name = "bench-native";
  spe::NativeRuntime runtime(rt_options);
  spe::NativeDeployOptions deploy;
  deploy.source_rate_tps = 1e9;  // never the bottleneck
  deploy.max_tuples = tuples;
  runtime.AddQuery(query, deploy);

  const auto start = std::chrono::steady_clock::now();
  runtime.Start();
  // Stop(drain) halts the source, so wait for the full batch to be
  // ingested first; drain then flushes whatever is still buffered.
  while (runtime.TotalIngested(0) < tuples) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runtime.Stop(/*drain=*/true);
  const double wall = WallSeconds(start);

  ExecutorPoint point;
  point.chain_length = length;
  point.tuples = runtime.TotalIngested(0);
  point.wall_seconds = wall;
  point.tuples_per_sec = static_cast<double>(point.tuples) / wall;
  for (const auto& op : runtime.ops()) {
    point.sleeps +=
        op->input().producer_sleeps() + op->input().consumer_sleeps();
  }
  if (point.tuples != tuples) std::abort();
  return point;
}

}  // namespace

int main() {
  const char* mode_env = std::getenv("LACHESIS_BENCH_MODE");
  const bool full = mode_env != nullptr && std::strcmp(mode_env, "full") == 0;
  const std::uint64_t queue_pairs = full ? 10000000 : 2000000;
  const std::uint64_t cross_count = full ? 5000000 : 1000000;
  const std::uint64_t exec_tuples = full ? 1000000 : 200000;
  const unsigned hw_cores =
      std::max(1u, std::thread::hardware_concurrency());

  std::printf("native-spe bench: mode=%s host has %u core(s)\n",
              full ? "full" : "quick", hw_cores);

  const double same_thread_ops = BenchSameThread(queue_pairs);
  std::printf("queue same-thread: %.1f Mops/s (%llu push+pop pairs)\n",
              same_thread_ops / 1e6,
              static_cast<unsigned long long>(queue_pairs));

  const double cross_thread_ops = BenchCrossThread(cross_count);
  std::printf("queue cross-thread: %.1f Mtuples/s (%llu transferred)\n",
              cross_thread_ops / 1e6,
              static_cast<unsigned long long>(cross_count));

  std::vector<ExecutorPoint> points;
  for (const int length : {1, 2, 4}) {
    points.push_back(BenchExecutor(length, exec_tuples));
    const ExecutorPoint& p = points.back();
    std::printf(
        "executor %d-op chain: %.1f Ktuples/s (%llu tuples, %.2fs, "
        "%llu parks)\n",
        p.chain_length, p.tuples_per_sec / 1e3,
        static_cast<unsigned long long>(p.tuples), p.wall_seconds,
        static_cast<unsigned long long>(p.sleeps));
    std::fflush(stdout);
  }

  std::FILE* out = std::fopen("BENCH_native.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"native_spe\",\n  \"mode\": \"%s\",\n"
                 "  \"hw_cores\": %u,\n"
                 "  \"queue\": {\n"
                 "    \"same_thread_ops_per_sec\": %.0f,\n"
                 "    \"cross_thread_tuples_per_sec\": %.0f\n  },\n"
                 "  \"executor\": [\n",
                 full ? "full" : "quick", hw_cores, same_thread_ops,
                 cross_thread_ops);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ExecutorPoint& p = points[i];
      std::fprintf(out,
                   "    {\"chain_length\": %d, \"tuples\": %llu, "
                   "\"wall_seconds\": %.3f, \"tuples_per_sec\": %.0f, "
                   "\"parks\": %llu}%s\n",
                   p.chain_length, static_cast<unsigned long long>(p.tuples),
                   p.wall_seconds, p.tuples_per_sec,
                   static_cast<unsigned long long>(p.sleeps),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("[bench-json] wrote BENCH_native.json\n");
  }
  return 0;
}
