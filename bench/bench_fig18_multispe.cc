// Reproduces Fig 18: multi-SPE, multi-query scheduling on a higher-end
// server (8 hardware threads): 23 queries total -- VS and LR on the Storm
// flavor, LR on the Flink flavor, and the 20 SYN queries on the Liebre
// flavor -- all scheduled by ONE Lachesis instance (goal G5, the paper's
// headline capability no UL-SS supports).
//
// Lachesis enforces a multi-dimensional schedule: each query is confined to
// its own cgroup with equal cpu.shares, while QS priorities are applied
// WITHIN each query via nice. Inputs arrive at a percentage of each query's
// empirically determined maximum sustainable rate in this setup.
//
// Paper shape: every query performs significantly better with Lachesis; the
// highlights are up to +40% throughput (Liebre-SYN) and two to three
// orders of magnitude lower latency (Storm-VS) at 100% load.
#include <map>

#include "bench/bench_common.h"
#include "queries/linear_road.h"
#include "queries/synthetic.h"
#include "queries/voip_stream.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();

  // Empirical per-query max rates in the shared 8-thread setup.
  constexpr double kVsStormMax = 1500;
  constexpr double kLrStormMax = 3200;
  constexpr double kLrFlinkMax = 2400;
  constexpr double kSynMaxPerQuery = 190;

  const auto factory = [&](double percent) {
    exp::ScenarioSpec spec;
    spec.cores = 8;
    spec.flavor = spe::StormFlavor();
    const double f = percent / 100.0;
    {
      exp::WorkloadSpec w;
      w.workload = queries::MakeVoipStream();
      w.workload.query.name = "storm-vs";
      w.rate_tps = kVsStormMax * f;
      spec.workloads.push_back(std::move(w));
    }
    {
      exp::WorkloadSpec w;
      w.workload = queries::MakeLinearRoad();
      w.workload.query.name = "storm-lr";
      w.rate_tps = kLrStormMax * f;
      spec.workloads.push_back(std::move(w));
    }
    {
      exp::WorkloadSpec w;
      w.workload = queries::MakeLinearRoad(203);
      w.workload.query.name = "flink-lr";
      w.rate_tps = kLrFlinkMax * f;
      w.flavor_override = spe::FlinkFlavor();
      spec.workloads.push_back(std::move(w));
    }
    queries::SyntheticConfig config;
    auto syn = queries::MakeSynthetic(config);
    for (auto& workload : syn) {
      exp::WorkloadSpec w;
      w.workload = std::move(workload);
      w.rate_tps = kSynMaxPerQuery * f;
      w.flavor_override = spe::LiebreFlavor();
      spec.workloads.push_back(std::move(w));
    }
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  exp::SchedulerSpec lachesis;
  lachesis.kind = exp::SchedulerKind::kLachesis;
  lachesis.policy = exp::PolicyKind::kQueueSize;
  lachesis.translator = exp::TranslatorKind::kQuerySharesNice;
  variants.push_back({"LACHESIS", lachesis});

  const std::vector<double> percents =
      mode.full ? std::vector<double>{40, 60, 80, 90, 100}
                : std::vector<double>{60, 80, 100};

  const SweepResult sweep = RunSweep(factory, percents, variants, mode);

  // Per-SPE/query-group report (the four panels of Fig 18).
  struct Group {
    std::string label;
    std::string prefix;
  };
  const std::vector<Group> groups = {{"Storm - VS", "storm-vs"},
                                     {"Storm - LR", "storm-lr"},
                                     {"Flink - LR", "flink-lr"},
                                     {"Liebre - SYN", "syn"}};
  for (const Group& group : groups) {
    const auto group_metric =
        [&group](const exp::RunResult& run,
                 const std::function<double(const exp::QueryResult&)>& f,
                 bool average) {
          double total = 0;
          int count = 0;
          for (const auto& [name, qr] : run.per_query) {
            if (name.rfind(group.prefix, 0) != 0) continue;
            total += f(qr);
            ++count;
          }
          return average && count > 0 ? total / count : total;
        };
    PrintMetricTable(
        "Fig 18 | " + group.label + " | Throughput (t/s)", percents, variants,
        sweep, [&](const exp::RunResult& run) {
          return group_metric(
              run, [](const exp::QueryResult& q) { return q.throughput_tps; },
              false);
        });
    PrintMetricTable(
        "Fig 18 | " + group.label + " | Avg latency (ms)", percents, variants,
        sweep, [&](const exp::RunResult& run) {
          return group_metric(
              run, [](const exp::QueryResult& q) { return q.avg_latency_ms; },
              true);
        });
    PrintMetricTable(
        "Fig 18 | " + group.label + " | Avg e2e latency (ms)", percents,
        variants, sweep, [&](const exp::RunResult& run) {
          return group_metric(
              run,
              [](const exp::QueryResult& q) { return q.avg_e2e_latency_ms; },
              true);
        });
  }
  return 0;
}
