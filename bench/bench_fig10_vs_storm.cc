// Reproduces Fig 10: VoipStream on the Storm flavor, OS vs RANDOM vs
// Lachesis-QS (paper §6.3).
//
// Paper shape: the largest single-query win -- Lachesis sustains up to +75%
// throughput over OS (3500 vs 2000 t/s on the authors' hardware) and up to
// 1130x lower latency once OS has saturated but Lachesis has not.
#include "bench/bench_common.h"
#include "queries/voip_stream.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeVoipStream();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec random;
    random.kind = exp::SchedulerKind::kLachesis;
    random.policy = exp::PolicyKind::kRandom;
    variants.push_back({"RANDOM", random});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kQueueSize;
    lachesis.translator = exp::TranslatorKind::kNice;
    variants.push_back({"LACHESIS-QS", lachesis});
  }

  const std::vector<double> rates =
      mode.full
          ? std::vector<double>{1000, 1500, 2000, 2250, 2500, 2750, 3000, 3500}
          : std::vector<double>{1500, 2250, 2750, 3250};

  RunAndPrintSweep("Fig 10: VS @ Storm", factory, rates, variants, mode);
  return 0;
}
