// Reproduces Fig 5 and Fig 6: the ETL query on the Storm flavor (Odroid
// class), comparing default OS scheduling, the EdgeWise UL-SS, and Lachesis
// with QS over nice (paper §6.2).
//
// Paper shape: Lachesis keeps up to the highest rate (+18% over OS, +8%
// over EdgeWise on the authors' hardware), with much lower latency just
// before saturation, and keeps queue sizes small and homogeneous (Fig 6)
// while OS lets some queues grow early.
#include "bench/bench_common.h"
#include "queries/etl.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeEtl();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec edgewise;
    edgewise.kind = exp::SchedulerKind::kEdgeWise;
    variants.push_back({"EDGEWISE", edgewise});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kQueueSize;
    lachesis.translator = exp::TranslatorKind::kNice;
    variants.push_back({"LACHESIS-QS", lachesis});
  }

  const std::vector<double> rates =
      mode.full
          ? std::vector<double>{800, 1000, 1200, 1300, 1400, 1500, 1625, 1750}
          : std::vector<double>{1000, 1300, 1500, 1700};

  const SweepResult sweep = RunAndPrintSweep("Fig 5: ETL @ Storm", factory,
                                             rates, variants, mode);

  // Fig 6: distribution of operator input queue sizes per rate/scheduler.
  std::printf("\n== Fig 6: ETL input queue size distributions ==\n");
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      std::vector<double> pooled;
      for (const exp::RunResult& run : sweep.runs[v][r]) {
        pooled.insert(pooled.end(), run.queue_size_samples.begin(),
                      run.queue_size_samples.end());
      }
      std::printf("%-12s rate=%-6.0f  p50=%8.1f  p90=%8.1f  p99=%8.1f  max=%8.1f\n",
                  variants[v].name.c_str(), rates[r],
                  exp::Percentile(pooled, 0.5), exp::Percentile(pooled, 0.9),
                  exp::Percentile(pooled, 0.99), exp::Percentile(pooled, 1.0));
    }
  }
  return 0;
}
