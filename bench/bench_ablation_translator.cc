// Ablation: translator choice for the same policy (paper §5.3 argues
// translators are orthogonal to policies). Runs QS on LR under the nice
// translator, the cpu.shares translator (one cgroup per operator), and the
// combined scheme, on one query where all three are applicable.
#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  for (const auto& [label, translator] :
       {std::pair{"QS+nice", exp::TranslatorKind::kNice},
        std::pair{"QS+cpu.shares", exp::TranslatorKind::kCpuShares},
        std::pair{"QS+both", exp::TranslatorKind::kQuerySharesNice}}) {
    exp::SchedulerSpec s;
    s.kind = exp::SchedulerKind::kLachesis;
    s.policy = exp::PolicyKind::kQueueSize;
    s.translator = translator;
    variants.push_back({label, s});
  }

  const std::vector<double> rates =
      mode.full ? std::vector<double>{5000, 5500, 6000, 6500, 7000}
                : std::vector<double>{5500, 6500};

  RunAndPrintSweep("Ablation: translator choice (QS on LR @ Storm)", factory,
                   rates, variants, mode);
  return 0;
}
