// Reproduces Fig 1 (the introduction teaser): throughput and average latency
// of the Linear Road query on an edge-class node, default OS scheduling vs
// custom scheduling (Lachesis-QS), as the input rate grows.
#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS (default)", {}});
  exp::SchedulerSpec lachesis;
  lachesis.kind = exp::SchedulerKind::kLachesis;
  lachesis.policy = exp::PolicyKind::kQueueSize;
  lachesis.translator = exp::TranslatorKind::kNice;
  variants.push_back({"Custom (Lachesis)", lachesis});

  const std::vector<double> rates =
      mode.full ? std::vector<double>{2000, 3500, 5000, 5500, 6000, 6500, 7000}
                : std::vector<double>{3000, 5000, 6000, 7000};

  RunAndPrintSweep("Fig 1: custom scheduling teaser (LR)", factory, rates,
                   variants, mode);
  return 0;
}
