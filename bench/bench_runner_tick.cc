// Microbenchmark of one full runner tick: metric update -> policy ->
// translator -> (delta layer) -> OS adapter, over N queries x M operators,
// with the delta layer on and off and with stable vs. churning schedules.
// Writes BENCH_runner.json (consumed by CI's perf trajectory listing).
//
// The interesting numbers: ns/tick as the entity count grows, and the
// fraction of OS operations the delta layer elides when consecutive
// schedules agree (the steady state of a real deployment).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/translators.h"
#include "sim/simulator.h"

using namespace lachesis;

namespace {

// In-memory driver over synthetic entities; queue sizes are scripted so the
// schedule is either constant across ticks or reshuffles every tick.
class SyntheticDriver final : public core::SpeDriver {
 public:
  SyntheticDriver(int queries, int operators_per_query, bool churn)
      : churn_(churn) {
    for (int q = 0; q < queries; ++q) {
      for (int o = 0; o < operators_per_query; ++o) {
        core::EntityInfo e;
        e.id = OperatorId(entities_.size());
        e.path = "spe.q" + std::to_string(q) + ".op" + std::to_string(o);
        e.query = QueryId(q);
        e.query_name = "q" + std::to_string(q);
        e.thread.sim_tid = ThreadId(entities_.size());
        entities_.push_back(e);
      }
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  void Poll(SimTime) override { ++polls_; }
  std::vector<core::EntityInfo> Entities() override { return entities_; }
  const core::LogicalTopology& Topology(QueryId) override {
    return topology_;
  }
  [[nodiscard]] bool Provides(core::MetricId metric) const override {
    return metric == core::MetricId::kQueueSize;
  }
  double Fetch(core::MetricId, const core::EntityInfo& entity) override {
    // Churn rotates which entity looks busiest, forcing a different
    // schedule (and different nice values) every tick.
    const std::uint64_t id = entity.id.value();
    return churn_ ? static_cast<double>((id + polls_) % entities_.size())
                  : static_cast<double>(id);
  }

 private:
  std::string name_ = "synthetic";
  bool churn_;
  std::uint64_t polls_ = 0;
  std::vector<core::EntityInfo> entities_;
  core::LogicalTopology topology_;
};

// Absorbs operations at near-zero cost so the bench measures the control
// plane, not a backend.
class NullOsAdapter final : public core::OsAdapter {
 public:
  void SetNice(const core::ThreadHandle&, int) override { ++ops; }
  void SetGroupShares(const std::string&, std::uint64_t) override { ++ops; }
  void MoveToGroup(const core::ThreadHandle&, const std::string&) override {
    ++ops;
  }
  std::uint64_t ops = 0;
};

struct Sample {
  int queries = 0;
  int operators = 0;
  bool churn = false;
  bool delta = false;
  int ticks = 0;
  double ns_per_tick = 0;
  double wall_seconds = 0;
  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;

  [[nodiscard]] int targets() const { return queries * operators; }
};

Sample RunOnce(int queries, int operators, bool churn, bool delta_enabled,
               int ticks, int warmup_ticks = 0) {
  sim::Simulator sim;
  core::SimControlExecutor executor(sim);
  NullOsAdapter os;
  SyntheticDriver driver(queries, operators, churn);

  core::LachesisRunner runner(executor, os);
  runner.SetDeltaEnabled(delta_enabled);
  core::PolicyBinding binding;
  binding.policy = std::make_unique<core::QueueSizePolicy>();
  binding.translator = std::make_unique<core::NiceTranslator>();
  binding.period = Seconds(1);
  binding.drivers = {&driver};
  runner.AddQuery(std::move(binding));
  runner.Start(Seconds(warmup_ticks + ticks));

  // Warmup ticks run outside the timed window: they pay the one-time table
  // growth (delta cache, interner, health maps), which at million-target
  // scale would otherwise dominate a short timed run.
  if (warmup_ticks > 0) sim.RunUntil(Seconds(warmup_ticks));

  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(Seconds(warmup_ticks + ticks));
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  Sample s;
  s.queries = queries;
  s.operators = operators;
  s.churn = churn;
  s.delta = delta_enabled;
  s.ticks = ticks;
  s.ns_per_tick = static_cast<double>(wall) / ticks;
  s.wall_seconds = static_cast<double>(wall) / 1e9;
  s.applied = runner.delta_totals().applied;
  s.skipped = runner.delta_totals().skipped;
  return s;
}

// Observability cost: the same stable/churning tick loop with the
// provenance recorder disabled, on (the default), and in verbose mode
// (per-elision + per-sample events). Written to BENCH_obs.json; the
// "on vs off" delta is the always-on observability budget (<3%).
struct ObsSample {
  int queries = 0;
  int operators = 0;
  bool churn = false;
  const char* mode = "";
  int ticks = 0;
  double ns_per_tick = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
};

ObsSample RunObsOnce(int queries, int operators, bool churn,
                     const char* mode, int ticks) {
  sim::Simulator sim;
  core::SimControlExecutor executor(sim);
  NullOsAdapter os;
  SyntheticDriver driver(queries, operators, churn);

  core::LachesisRunner runner(executor, os);
  if (std::strcmp(mode, "off") == 0) runner.recorder().set_enabled(false);
  if (std::strcmp(mode, "verbose") == 0) runner.recorder().set_verbose(true);
  core::PolicyBinding binding;
  binding.policy = std::make_unique<core::QueueSizePolicy>();
  binding.translator = std::make_unique<core::NiceTranslator>();
  binding.period = Seconds(1);
  binding.drivers = {&driver};
  runner.AddQuery(std::move(binding));
  runner.Start(Seconds(ticks));

  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(Seconds(ticks));
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  ObsSample s;
  s.queries = queries;
  s.operators = operators;
  s.churn = churn;
  s.mode = mode;
  s.ticks = ticks;
  s.ns_per_tick = static_cast<double>(wall) / ticks;
  s.events_recorded = runner.recorder().total_recorded();
  s.events_dropped = runner.recorder().dropped();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int ticks = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) ticks = 200;
  }

  std::vector<Sample> samples;
  const int shapes[][2] = {{1, 8}, {8, 8}, {8, 32}, {32, 32}};
  for (const auto& shape : shapes) {
    for (const bool churn : {false, true}) {
      for (const bool delta : {true, false}) {
        samples.push_back(RunOnce(shape[0], shape[1], churn, delta, ticks));
      }
    }
  }

  // Million-target scale sweep: 100k / 300k / 1M operators, delta on,
  // stable schedule (the steady state the storage layer optimizes for).
  // The pass criterion is per-target tick cost staying flat as the target
  // count grows 10x -- i.e. O(1) amortized work per target per tick.
  // Tick counts shrink with scale so the sweep stays inside a CI budget;
  // ns/tick at these sizes is dominated by the control loop itself, not
  // timer noise.
  const bool quick = ticks <= 200;
  const int sweep[][3] = {
      {1000, 100, quick ? 3 : 10},   // 100k targets
      {1000, 300, quick ? 2 : 6},    // 300k targets
      {1000, 1000, quick ? 2 : 4},   // 1M targets
  };
  for (const auto& point : sweep) {
    samples.push_back(RunOnce(point[0], point[1], /*churn=*/false,
                              /*delta_enabled=*/true, point[2],
                              /*warmup_ticks=*/1));
  }

  std::printf("%8s %6s %9s %6s %6s %8s %12s %12s %10s %10s\n", "queries",
              "ops/q", "targets", "churn", "delta", "ticks", "ns/tick",
              "ns/target", "applied", "skipped");
  for (const Sample& s : samples) {
    std::printf("%8d %6d %9d %6s %6s %8d %12.0f %12.1f %10llu %10llu\n",
                s.queries, s.operators, s.targets(), s.churn ? "yes" : "no",
                s.delta ? "on" : "off", s.ticks, s.ns_per_tick,
                s.ns_per_tick / s.targets(),
                static_cast<unsigned long long>(s.applied),
                static_cast<unsigned long long>(s.skipped));
  }

  std::FILE* out = std::fopen("BENCH_runner.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runner.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"runner\",\n  \"series\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"queries\": %d, \"operators_per_query\": %d, "
                 "\"targets\": %d, "
                 "\"churn\": %s, \"delta\": %s, \"ticks\": %d, "
                 "\"ns_per_tick\": %.0f, \"wall_seconds\": %.6f, "
                 "\"ops_applied\": %llu, "
                 "\"ops_skipped\": %llu}%s\n",
                 s.queries, s.operators, s.targets(),
                 s.churn ? "true" : "false",
                 s.delta ? "true" : "false", s.ticks, s.ns_per_tick,
                 s.wall_seconds,
                 static_cast<unsigned long long>(s.applied),
                 static_cast<unsigned long long>(s.skipped),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_runner.json\n");

  // --- observability budget: recorder off / on / verbose -------------------
  std::vector<ObsSample> obs;
  const int obs_shapes[][2] = {{8, 32}, {32, 32}};
  for (const auto& shape : obs_shapes) {
    for (const bool churn : {false, true}) {
      for (const char* mode : {"off", "on", "verbose"}) {
        // Best-of-3: wall-clock ns/tick is noisy at --quick tick counts.
        ObsSample best = RunObsOnce(shape[0], shape[1], churn, mode, ticks);
        for (int rep = 1; rep < 3; ++rep) {
          const ObsSample s =
              RunObsOnce(shape[0], shape[1], churn, mode, ticks);
          if (s.ns_per_tick < best.ns_per_tick) best = s;
        }
        obs.push_back(best);
      }
    }
  }

  std::printf("\n%8s %6s %6s %8s %8s %12s %10s %10s\n", "queries", "ops/q",
              "churn", "obs", "ticks", "ns/tick", "events", "dropped");
  for (const ObsSample& s : obs) {
    std::printf("%8d %6d %6s %8s %8d %12.0f %10llu %10llu\n", s.queries,
                s.operators, s.churn ? "yes" : "no", s.mode, s.ticks,
                s.ns_per_tick,
                static_cast<unsigned long long>(s.events_recorded),
                static_cast<unsigned long long>(s.events_dropped));
  }
  // Per-shape on-vs-off overhead: the always-on observability budget.
  for (std::size_t i = 0; i + 1 < obs.size(); i += 3) {
    const ObsSample& off = obs[i];
    const ObsSample& on = obs[i + 1];
    std::printf("obs overhead %dx%d %s: %+.2f%% (on %.0f ns vs off %.0f ns)\n",
                off.queries, off.operators, off.churn ? "churn" : "stable",
                (on.ns_per_tick / off.ns_per_tick - 1.0) * 100.0,
                on.ns_per_tick, off.ns_per_tick);
  }

  out = std::fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"obs\",\n  \"series\": [\n");
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const ObsSample& s = obs[i];
    std::fprintf(out,
                 "    {\"queries\": %d, \"operators_per_query\": %d, "
                 "\"churn\": %s, \"obs\": \"%s\", \"ticks\": %d, "
                 "\"ns_per_tick\": %.0f, \"events_recorded\": %llu, "
                 "\"events_dropped\": %llu}%s\n",
                 s.queries, s.operators, s.churn ? "true" : "false", s.mode,
                 s.ticks, s.ns_per_tick,
                 static_cast<unsigned long long>(s.events_recorded),
                 static_cast<unsigned long long>(s.events_dropped),
                 i + 1 < obs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_obs.json\n");
  return 0;
}
