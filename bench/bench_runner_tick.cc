// Microbenchmark of one full runner tick: metric update -> policy ->
// translator -> (delta layer) -> OS adapter, over N queries x M operators,
// with the delta layer on and off and with stable vs. churning schedules.
// Writes BENCH_runner.json (consumed by CI's perf trajectory listing).
//
// The interesting numbers: ns/tick as the entity count grows, and the
// fraction of OS operations the delta layer elides when consecutive
// schedules agree (the steady state of a real deployment).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/translators.h"
#include "sim/simulator.h"

using namespace lachesis;

namespace {

// In-memory driver over synthetic entities; queue sizes are scripted so the
// schedule is either constant across ticks or reshuffles every tick.
class SyntheticDriver final : public core::SpeDriver {
 public:
  SyntheticDriver(int queries, int operators_per_query, bool churn)
      : churn_(churn) {
    for (int q = 0; q < queries; ++q) {
      for (int o = 0; o < operators_per_query; ++o) {
        core::EntityInfo e;
        e.id = OperatorId(entities_.size());
        e.path = "spe.q" + std::to_string(q) + ".op" + std::to_string(o);
        e.query = QueryId(q);
        e.query_name = "q" + std::to_string(q);
        e.thread.sim_tid = ThreadId(entities_.size());
        entities_.push_back(e);
      }
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  void Poll(SimTime) override { ++polls_; }
  std::vector<core::EntityInfo> Entities() override { return entities_; }
  const core::LogicalTopology& Topology(QueryId) override {
    return topology_;
  }
  [[nodiscard]] bool Provides(core::MetricId metric) const override {
    return metric == core::MetricId::kQueueSize;
  }
  double Fetch(core::MetricId, const core::EntityInfo& entity) override {
    // Churn rotates which entity looks busiest, forcing a different
    // schedule (and different nice values) every tick.
    const std::uint64_t id = entity.id.value();
    return churn_ ? static_cast<double>((id + polls_) % entities_.size())
                  : static_cast<double>(id);
  }

 private:
  std::string name_ = "synthetic";
  bool churn_;
  std::uint64_t polls_ = 0;
  std::vector<core::EntityInfo> entities_;
  core::LogicalTopology topology_;
};

// Absorbs operations at near-zero cost so the bench measures the control
// plane, not a backend.
class NullOsAdapter final : public core::OsAdapter {
 public:
  void SetNice(const core::ThreadHandle&, int) override { ++ops; }
  void SetGroupShares(const std::string&, std::uint64_t) override { ++ops; }
  void MoveToGroup(const core::ThreadHandle&, const std::string&) override {
    ++ops;
  }
  std::uint64_t ops = 0;
};

struct Sample {
  int queries = 0;
  int operators = 0;
  bool churn = false;
  bool delta = false;
  int ticks = 0;
  double ns_per_tick = 0;
  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;
};

Sample RunOnce(int queries, int operators, bool churn, bool delta_enabled,
               int ticks) {
  sim::Simulator sim;
  core::SimControlExecutor executor(sim);
  NullOsAdapter os;
  SyntheticDriver driver(queries, operators, churn);

  core::LachesisRunner runner(executor, os);
  runner.SetDeltaEnabled(delta_enabled);
  core::PolicyBinding binding;
  binding.policy = std::make_unique<core::QueueSizePolicy>();
  binding.translator = std::make_unique<core::NiceTranslator>();
  binding.period = Seconds(1);
  binding.drivers = {&driver};
  runner.AddQuery(std::move(binding));
  runner.Start(Seconds(ticks));

  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(Seconds(ticks));
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  Sample s;
  s.queries = queries;
  s.operators = operators;
  s.churn = churn;
  s.delta = delta_enabled;
  s.ticks = ticks;
  s.ns_per_tick = static_cast<double>(wall) / ticks;
  s.applied = runner.delta_totals().applied;
  s.skipped = runner.delta_totals().skipped;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int ticks = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) ticks = 200;
  }

  std::vector<Sample> samples;
  const int shapes[][2] = {{1, 8}, {8, 8}, {8, 32}, {32, 32}};
  for (const auto& shape : shapes) {
    for (const bool churn : {false, true}) {
      for (const bool delta : {true, false}) {
        samples.push_back(RunOnce(shape[0], shape[1], churn, delta, ticks));
      }
    }
  }

  std::printf("%8s %6s %6s %6s %8s %12s %10s %10s\n", "queries", "ops/q",
              "churn", "delta", "ticks", "ns/tick", "applied", "skipped");
  for (const Sample& s : samples) {
    std::printf("%8d %6d %6s %6s %8d %12.0f %10llu %10llu\n", s.queries,
                s.operators, s.churn ? "yes" : "no", s.delta ? "on" : "off",
                s.ticks, s.ns_per_tick,
                static_cast<unsigned long long>(s.applied),
                static_cast<unsigned long long>(s.skipped));
  }

  std::FILE* out = std::fopen("BENCH_runner.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runner.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"runner\",\n  \"series\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"queries\": %d, \"operators_per_query\": %d, "
                 "\"churn\": %s, \"delta\": %s, \"ticks\": %d, "
                 "\"ns_per_tick\": %.0f, \"ops_applied\": %llu, "
                 "\"ops_skipped\": %llu}%s\n",
                 s.queries, s.operators, s.churn ? "true" : "false",
                 s.delta ? "true" : "false", s.ticks, s.ns_per_tick,
                 static_cast<unsigned long long>(s.applied),
                 static_cast<unsigned long long>(s.skipped),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_runner.json\n");
  return 0;
}
