// Reproduces Fig 9: Linear Road on the Storm flavor (Odroid-class node),
// comparing default OS scheduling, Lachesis with the RANDOM control policy,
// and Lachesis with QS over the nice translator (paper §6.3).
//
// Paper shape: Lachesis-QS sustains ~30% higher throughput than OS (6500 vs
// 5000 t/s on the authors' hardware) with orders-of-magnitude lower latency
// near OS' saturation point; RANDOM behaves like (or worse than) OS.
#include "bench/bench_common.h"
#include "queries/linear_road.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = rate;
    spec.workloads.push_back(std::move(w));
    return spec;
  };

  std::vector<Variant> variants;
  variants.push_back({"OS", {}});
  {
    exp::SchedulerSpec random;
    random.kind = exp::SchedulerKind::kLachesis;
    random.policy = exp::PolicyKind::kRandom;
    random.translator = exp::TranslatorKind::kNice;
    variants.push_back({"RANDOM", random});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kQueueSize;
    lachesis.translator = exp::TranslatorKind::kNice;
    variants.push_back({"LACHESIS-QS", lachesis});
  }

  const std::vector<double> rates = mode.full
      ? std::vector<double>{2000, 3000, 4000, 4500, 5000, 5500, 6000, 6500, 7000}
      : std::vector<double>{3000, 4500, 5500, 6500, 7500};

  RunAndPrintSweep("Fig 9: LR @ Storm", factory, rates, variants, mode);
  return 0;
}
