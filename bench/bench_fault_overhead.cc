// Microbenchmark of the fault-tolerance machinery's no-fault overhead: the
// same synthetic control-plane tick loop as bench_runner_tick, run with
// (a) health tracking disabled, (b) health tracking enabled (the default),
// and (c) health enabled plus the fault injectors wrapping the backend and
// driver with an EMPTY fault plan. Nothing ever fails, so the difference is
// pure bookkeeping: AllowAttempt/RecordSuccess per applied op and the
// injector's rule scan per call.
//
// Writes BENCH_fault.json (consumed by CI's perf trajectory listing). The
// robustness budget is <2% tick-loop overhead with health on and no faults;
// the steady (non-churning) workload is the deployment steady state, where
// the delta layer skips repeat values before health is ever consulted.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/translators.h"
#include "sim/simulator.h"

using namespace lachesis;

namespace {

// Same synthetic driver as bench_runner_tick: churn rotates which entity
// looks busiest, forcing different nice values (and thus real backend ops
// that consult the health tracker) every tick.
class SyntheticDriver final : public core::SpeDriver {
 public:
  SyntheticDriver(int queries, int operators_per_query, bool churn)
      : churn_(churn) {
    for (int q = 0; q < queries; ++q) {
      for (int o = 0; o < operators_per_query; ++o) {
        core::EntityInfo e;
        e.id = OperatorId(entities_.size());
        e.path = "spe.q" + std::to_string(q) + ".op" + std::to_string(o);
        e.query = QueryId(q);
        e.query_name = "q" + std::to_string(q);
        e.thread.sim_tid = ThreadId(entities_.size());
        entities_.push_back(e);
      }
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  void Poll(SimTime) override { ++polls_; }
  std::vector<core::EntityInfo> Entities() override { return entities_; }
  const core::LogicalTopology& Topology(QueryId) override {
    return topology_;
  }
  [[nodiscard]] bool Provides(core::MetricId metric) const override {
    return metric == core::MetricId::kQueueSize;
  }
  double Fetch(core::MetricId, const core::EntityInfo& entity) override {
    const std::uint64_t id = entity.id.value();
    return churn_ ? static_cast<double>((id + polls_) % entities_.size())
                  : static_cast<double>(id);
  }

 private:
  std::string name_ = "synthetic";
  bool churn_;
  std::uint64_t polls_ = 0;
  std::vector<core::EntityInfo> entities_;
  core::LogicalTopology topology_;
};

class NullOsAdapter final : public core::OsAdapter {
 public:
  void SetNice(const core::ThreadHandle&, int) override { ++ops; }
  void SetGroupShares(const std::string&, std::uint64_t) override { ++ops; }
  void MoveToGroup(const core::ThreadHandle&, const std::string&) override {
    ++ops;
  }
  std::uint64_t ops = 0;
};

enum class Mode { kHealthOff, kHealthOn, kHealthOnWrapped };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kHealthOff:
      return "health_off";
    case Mode::kHealthOn:
      return "health_on";
    case Mode::kHealthOnWrapped:
      return "health_on_wrapped";
  }
  return "?";
}

struct Timing {
  double ns_per_tick = 0;
  double wall_seconds = 0;
};

Timing RunOnce(Mode mode, bool churn, int ticks, int queries = 8,
               int operators = 32, int warmup_ticks = 0) {
  sim::Simulator sim;
  core::SimControlExecutor executor(sim);
  NullOsAdapter os;
  SyntheticDriver driver(queries, operators, churn);

  // Empty plan: the injectors match no rule, every call passes through.
  core::FaultPlan empty_plan;
  core::FaultInjectingOsAdapter wrapped_os(os, executor, empty_plan);
  core::FaultInjectingDriver wrapped_driver(driver, empty_plan);

  core::OsAdapter& backend =
      mode == Mode::kHealthOnWrapped
          ? static_cast<core::OsAdapter&>(wrapped_os)
          : static_cast<core::OsAdapter&>(os);
  core::SpeDriver& spe = mode == Mode::kHealthOnWrapped
                             ? static_cast<core::SpeDriver&>(wrapped_driver)
                             : static_cast<core::SpeDriver&>(driver);

  core::LachesisRunner runner(executor, backend);
  if (mode == Mode::kHealthOff) {
    core::HealthConfig off;
    off.enabled = false;
    runner.SetHealthConfig(off);
  }
  core::PolicyBinding binding;
  binding.policy = std::make_unique<core::QueueSizePolicy>();
  binding.translator = std::make_unique<core::NiceTranslator>();
  binding.period = Seconds(1);
  binding.drivers = {&spe};
  runner.AddQuery(std::move(binding));
  runner.Start(Seconds(warmup_ticks + ticks));

  // Warmup ticks pay the one-time table growth outside the timed window;
  // only the scale sweep uses them (short timed runs at million-target
  // sizes would otherwise be dominated by first-tick growth).
  if (warmup_ticks > 0) sim.RunUntil(Seconds(warmup_ticks));

  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(Seconds(warmup_ticks + ticks));
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  Timing t;
  t.ns_per_tick = static_cast<double>(wall) / ticks;
  t.wall_seconds = static_cast<double>(wall) / 1e9;
  return t;
}

double OverheadPct(double base_ns, double with_ns) {
  if (base_ns <= 0) return 0;
  return (with_ns - base_ns) / base_ns * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  int ticks = 2000;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      ticks = 400;
      reps = 5;
    }
  }

  struct Row {
    Mode mode;
    bool churn;
    int queries = 8;
    int operators = 32;
    int ticks = 0;
    double ns_per_tick = 0;
    double wall_seconds = 0;

    [[nodiscard]] int targets() const { return queries * operators; }
  };
  std::vector<Row> rows;
  for (const bool churn : {false, true}) {
    for (const Mode mode :
         {Mode::kHealthOff, Mode::kHealthOn, Mode::kHealthOnWrapped}) {
      Row row;
      row.mode = mode;
      row.churn = churn;
      row.ticks = ticks;
      rows.push_back(row);
    }
  }
  // Interleave the configurations rep by rep (round-robin) and keep the
  // min, so ambient load on a shared machine hits every configuration
  // evenly instead of biasing whichever ran during a busy window.
  for (int r = 0; r < reps; ++r) {
    for (Row& row : rows) {
      const Timing t = RunOnce(row.mode, row.churn, ticks);
      if (r == 0 || t.ns_per_tick < row.ns_per_tick) {
        row.ns_per_tick = t.ns_per_tick;
        row.wall_seconds = t.wall_seconds;
      }
    }
  }

  // Million-target scale sweep with health tracking on (the default): the
  // health layer's per-op cost must stay O(1) per target as the target
  // count grows, i.e. ns/target flat from 100k to 1M. Single rep, few
  // ticks: at these sizes the loop dwarfs timer noise.
  const bool quick = ticks <= 400;
  const int sweep[][3] = {
      {1000, 100, quick ? 3 : 10},   // 100k targets
      {1000, 300, quick ? 2 : 6},    // 300k targets
      {1000, 1000, quick ? 2 : 4},   // 1M targets
  };
  for (const auto& point : sweep) {
    Row row;
    row.mode = Mode::kHealthOn;
    row.churn = false;
    row.queries = point[0];
    row.operators = point[1];
    row.ticks = point[2];
    const Timing t = RunOnce(row.mode, row.churn, row.ticks, row.queries,
                             row.operators, /*warmup_ticks=*/1);
    row.ns_per_tick = t.ns_per_tick;
    row.wall_seconds = t.wall_seconds;
    rows.push_back(row);
  }

  auto find = [&rows](Mode mode, bool churn) {
    for (const Row& r : rows) {
      if (r.mode == mode && r.churn == churn) return r.ns_per_tick;
    }
    return 0.0;
  };

  const double steady_pct = OverheadPct(find(Mode::kHealthOff, false),
                                        find(Mode::kHealthOn, false));
  const double churn_pct =
      OverheadPct(find(Mode::kHealthOff, true), find(Mode::kHealthOn, true));

  std::printf("%20s %6s %9s %12s %12s\n", "mode", "churn", "targets",
              "ns/tick", "ns/target");
  for (const Row& r : rows) {
    std::printf("%20s %6s %9d %12.0f %12.1f\n", ModeName(r.mode),
                r.churn ? "yes" : "no", r.targets(), r.ns_per_tick,
                r.ns_per_tick / r.targets());
  }
  std::printf("health overhead: steady %+.2f%%, churn %+.2f%% (budget < 2%% "
              "steady)\n",
              steady_pct, churn_pct);

  std::FILE* out = std::fopen("BENCH_fault.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"fault_overhead\",\n  \"series\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"churn\": %s, \"targets\": %d, "
                 "\"ticks\": %d, \"ns_per_tick\": %.0f, "
                 "\"wall_seconds\": %.6f}%s\n",
                 ModeName(r.mode), r.churn ? "true" : "false", r.targets(),
                 r.ticks, r.ns_per_tick, r.wall_seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"overhead_pct_steady\": %.2f,\n"
               "  \"overhead_pct_churn\": %.2f,\n  \"budget_pct\": 2.0\n}\n",
               steady_pct, churn_pct);
  std::fclose(out);
  std::printf("wrote BENCH_fault.json\n");
  if (steady_pct >= 2.0) {
    std::fprintf(stderr,
                 "bench_fault_overhead: steady overhead %.2f%% exceeds the "
                 "2%% budget\n",
                 steady_pct);
  }
  return 0;
}
