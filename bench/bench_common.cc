#include "bench/bench_common.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <errno.h>  // program_invocation_short_name (glibc)

namespace lachesis::bench {

SweepResult RunSweep(const ScenarioFactory& factory,
                     const std::vector<double>& rates,
                     const std::vector<Variant>& variants,
                     const BenchMode& mode) {
  SweepResult sweep;
  const auto wall_start = std::chrono::steady_clock::now();
  sweep.runs.resize(variants.size());
  sweep.point_wall_seconds.resize(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    sweep.runs[v].resize(rates.size());
    sweep.point_wall_seconds[v].resize(rates.size(), 0.0);
    for (std::size_t r = 0; r < rates.size(); ++r) {
      ScenarioSpec spec = factory(rates[r]);
      spec.scheduler = variants[v].scheduler;
      spec.label = variants[v].name;
      spec.warmup = mode.warmup;
      spec.measure = mode.measure;
      const auto point_start = std::chrono::steady_clock::now();
      sweep.runs[v][r] = exp::RunRepetitions(spec, mode.repetitions);
      sweep.point_wall_seconds[v][r] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        point_start)
              .count();
      sweep.sim_seconds += static_cast<double>(sweep.runs[v][r].size()) *
                           static_cast<double>(spec.warmup + spec.measure) /
                           static_cast<double>(kSecond);
      std::fflush(stdout);
    }
  }
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return sweep;
}

void PrintMetricTable(
    const std::string& title, const std::vector<double>& rates,
    const std::vector<Variant>& variants, const SweepResult& sweep,
    const std::function<double(const RunResult&)>& extract) {
  std::vector<std::string> header{"rate(t/s)"};
  for (const Variant& v : variants) header.push_back(v.name);
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", rates[r]);
    row.emplace_back(buffer);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      row.push_back(exp::FormatCi(exp::Aggregate(sweep.runs[v][r], extract)));
    }
    rows.push_back(std::move(row));
  }
  exp::PrintTable(title, header, rows);
}

namespace {

// "bench_fig09_lr_storm" -> "fig09_lr_storm".
std::string DefaultBenchName() {
  std::string name = program_invocation_short_name;
  if (name.rfind("bench_", 0) == 0) name.erase(0, 6);
  return name;
}

void WriteCiField(std::FILE* out, const char* key, const MeanCi& ci) {
  std::fprintf(out, "\"%s\": {\"mean\": %.6g, \"ci95\": %.6g}", key, ci.mean,
               ci.half_width);
}

}  // namespace

void WriteBenchJson(const std::vector<double>& rates,
                    const std::vector<Variant>& variants,
                    const SweepResult& sweep, const BenchMode& mode,
                    const std::string& bench) {
  const std::string name = bench.empty() ? DefaultBenchName() : bench;
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "WriteBenchJson: cannot open %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  const double ratio =
      sweep.wall_seconds > 0 ? sweep.sim_seconds / sweep.wall_seconds : 0;
  std::fprintf(out,
               "{\n  \"bench\": \"%s\",\n  \"mode\": \"%s\",\n"
               "  \"repetitions\": %d,\n  \"worker_count\": %d,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"sim_seconds\": %.3f,\n  \"sim_wall_ratio\": %.2f,\n"
               "  \"series\": [\n",
               name.c_str(), mode.full ? "full" : "quick", mode.repetitions,
               mode.workers, sweep.wall_seconds, sweep.sim_seconds, ratio);
  bool first = true;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const auto& runs = sweep.runs[v][r];
      if (!first) std::fprintf(out, ",\n");
      first = false;
      std::fprintf(out, "    {\"variant\": \"%s\", \"rate_tps\": %.0f, ",
                   variants[v].name.c_str(), rates[r]);
      WriteCiField(out, "throughput_tps", exp::Aggregate(runs, [](const RunResult& x) {
                     return x.throughput_tps;
                   }));
      std::fprintf(out, ", ");
      WriteCiField(out, "avg_latency_ms", exp::Aggregate(runs, [](const RunResult& x) {
                     return x.avg_latency_ms;
                   }));
      std::fprintf(out, ", ");
      WriteCiField(out, "avg_e2e_latency_ms",
                   exp::Aggregate(runs, [](const RunResult& x) {
                     return x.avg_e2e_latency_ms;
                   }));
      std::fprintf(out, ", ");
      WriteCiField(out, "qs_goal", exp::Aggregate(runs, [](const RunResult& x) {
                     return x.qs_goal;
                   }));
      std::fprintf(out, ", ");
      WriteCiField(out, "cpu_utilization",
                   exp::Aggregate(runs, [](const RunResult& x) {
                     return x.cpu_utilization;
                   }));
      if (v < sweep.point_wall_seconds.size() &&
          r < sweep.point_wall_seconds[v].size()) {
        std::fprintf(out, ", \"wall_seconds\": %.3f",
                     sweep.point_wall_seconds[v][r]);
      }
      std::fprintf(out, "}");
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("[bench-json] wrote %s (sim/wall %.1fx)\n", path.c_str(), ratio);
}

SweepResult RunAndPrintSweep(const std::string& title,
                             const ScenarioFactory& factory,
                             const std::vector<double>& rates,
                             const std::vector<Variant>& variants,
                             const BenchMode& mode) {
  SweepResult sweep = RunSweep(factory, rates, variants, mode);
  PrintMetricTable(title + " | Throughput (t/s)", rates, variants, sweep,
                   [](const RunResult& r) { return r.throughput_tps; });
  PrintMetricTable(title + " | Avg processing latency (ms)", rates, variants,
                   sweep, [](const RunResult& r) { return r.avg_latency_ms; });
  PrintMetricTable(title + " | Avg end-to-end latency (ms)", rates, variants,
                   sweep,
                   [](const RunResult& r) { return r.avg_e2e_latency_ms; });
  PrintMetricTable(title + " | QS goal (queue-size variance)", rates, variants,
                   sweep, [](const RunResult& r) { return r.qs_goal; });
  WriteBenchJson(rates, variants, sweep, mode);
  return sweep;
}

}  // namespace lachesis::bench
