#include "bench/bench_common.h"

namespace lachesis::bench {

SweepResult RunSweep(const ScenarioFactory& factory,
                     const std::vector<double>& rates,
                     const std::vector<Variant>& variants,
                     const BenchMode& mode) {
  SweepResult sweep;
  sweep.runs.resize(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    sweep.runs[v].resize(rates.size());
    for (std::size_t r = 0; r < rates.size(); ++r) {
      ScenarioSpec spec = factory(rates[r]);
      spec.scheduler = variants[v].scheduler;
      spec.label = variants[v].name;
      spec.warmup = mode.warmup;
      spec.measure = mode.measure;
      sweep.runs[v][r] = exp::RunRepetitions(spec, mode.repetitions);
      std::fflush(stdout);
    }
  }
  return sweep;
}

void PrintMetricTable(
    const std::string& title, const std::vector<double>& rates,
    const std::vector<Variant>& variants, const SweepResult& sweep,
    const std::function<double(const RunResult&)>& extract) {
  std::vector<std::string> header{"rate(t/s)"};
  for (const Variant& v : variants) header.push_back(v.name);
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", rates[r]);
    row.emplace_back(buffer);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      row.push_back(exp::FormatCi(exp::Aggregate(sweep.runs[v][r], extract)));
    }
    rows.push_back(std::move(row));
  }
  exp::PrintTable(title, header, rows);
}

SweepResult RunAndPrintSweep(const std::string& title,
                             const ScenarioFactory& factory,
                             const std::vector<double>& rates,
                             const std::vector<Variant>& variants,
                             const BenchMode& mode) {
  SweepResult sweep = RunSweep(factory, rates, variants, mode);
  PrintMetricTable(title + " | Throughput (t/s)", rates, variants, sweep,
                   [](const RunResult& r) { return r.throughput_tps; });
  PrintMetricTable(title + " | Avg processing latency (ms)", rates, variants,
                   sweep, [](const RunResult& r) { return r.avg_latency_ms; });
  PrintMetricTable(title + " | Avg end-to-end latency (ms)", rates, variants,
                   sweep,
                   [](const RunResult& r) { return r.avg_e2e_latency_ms; });
  PrintMetricTable(title + " | QS goal (queue-size variance)", rates, variants,
                   sweep, [](const RunResult& r) { return r.qs_goal; });
  return sweep;
}

}  // namespace lachesis::bench
