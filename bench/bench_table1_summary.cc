// Reproduces Table 1: the summary of configurations and performance
// highlights. For each experiment row it runs the configuration at the
// rate where the baseline has saturated but Lachesis has not, and reports
// Lachesis' improvement over the row's baseline (throughput gain and
// latency reduction factor).
//
// Paper highlights (for shape comparison): +8%/-133x vs EdgeWise (ETL),
// +75%/-1130x vs OS (VS @ Storm), +43%/-331x vs Haren (SYN w/ blocking),
// +31%/-12x vs OS (LR scale-out), +60%/-498x vs OS (multi-SPE).
#include "bench/bench_common.h"
#include "queries/etl.h"
#include "queries/linear_road.h"
#include "queries/synthetic.h"
#include "queries/voip_stream.h"

namespace {

using namespace lachesis;
using namespace lachesis::bench;

struct RowResult {
  double throughput_gain_pct;
  double latency_factor;
  double e2e_factor;
};

RowResult Compare(const exp::ScenarioSpec& base_spec,
                  const exp::SchedulerSpec& baseline,
                  const exp::SchedulerSpec& lachesis, const BenchMode& mode) {
  exp::ScenarioSpec spec = base_spec;
  spec.warmup = mode.warmup;
  spec.measure = mode.measure;
  spec.scheduler = baseline;
  const auto base_runs = exp::RunRepetitions(spec, mode.repetitions);
  spec.scheduler = lachesis;
  const auto lach_runs = exp::RunRepetitions(spec, mode.repetitions);

  const auto mean = [](const std::vector<exp::RunResult>& runs,
                       const std::function<double(const exp::RunResult&)>& f) {
    return exp::Aggregate(runs, f).mean;
  };
  RowResult row;
  const double base_tp =
      mean(base_runs, [](const exp::RunResult& r) { return r.throughput_tps; });
  const double lach_tp =
      mean(lach_runs, [](const exp::RunResult& r) { return r.throughput_tps; });
  row.throughput_gain_pct = base_tp > 0 ? 100.0 * (lach_tp / base_tp - 1) : 0;
  const double base_lat =
      mean(base_runs, [](const exp::RunResult& r) { return r.avg_latency_ms; });
  const double lach_lat =
      mean(lach_runs, [](const exp::RunResult& r) { return r.avg_latency_ms; });
  row.latency_factor = lach_lat > 0 ? base_lat / lach_lat : 0;
  const double base_e2e = mean(
      base_runs, [](const exp::RunResult& r) { return r.avg_e2e_latency_ms; });
  const double lach_e2e = mean(
      lach_runs, [](const exp::RunResult& r) { return r.avg_e2e_latency_ms; });
  row.e2e_factor = lach_e2e > 0 ? base_e2e / lach_e2e : 0;
  return row;
}

exp::SchedulerSpec LachesisSpec(exp::PolicyKind policy,
                                exp::TranslatorKind translator) {
  exp::SchedulerSpec s;
  s.kind = exp::SchedulerKind::kLachesis;
  s.policy = policy;
  s.translator = translator;
  return s;
}

}  // namespace

int main() {
  const auto mode = BenchMode::FromEnv();
  std::vector<std::vector<std::string>> rows;
  const auto add_row = [&rows](const std::string& name,
                               const std::string& baseline, RowResult r) {
    char tp[32], lat[32], e2e[32];
    std::snprintf(tp, sizeof(tp), "%+.0f%%", r.throughput_gain_pct);
    std::snprintf(lat, sizeof(lat), "%.1fx", r.latency_factor);
    std::snprintf(e2e, sizeof(e2e), "%.1fx", r.e2e_factor);
    rows.push_back({name, baseline, tp, lat, e2e});
    std::fflush(stdout);
  };

  // Row 1: Single-query ETL vs EdgeWise (paper: +8% tp, 133x lower e2e).
  {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeEtl();
    w.rate_tps = 1625;
    spec.workloads.push_back(std::move(w));
    exp::SchedulerSpec edgewise;
    edgewise.kind = exp::SchedulerKind::kEdgeWise;
    add_row("Single-Query ETL (6.2)", "EdgeWise",
            Compare(spec, edgewise,
                    LachesisSpec(exp::PolicyKind::kQueueSize,
                                 exp::TranslatorKind::kNice),
                    mode));
  }

  // Row 2: Single-query VS @ Storm vs OS (paper: +75% tp, 1130x latency).
  {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeVoipStream();
    w.rate_tps = 3000;
    spec.workloads.push_back(std::move(w));
    add_row("Single-Query VS (6.3)", "OS",
            Compare(spec, exp::SchedulerSpec{},
                    LachesisSpec(exp::PolicyKind::kQueueSize,
                                 exp::TranslatorKind::kNice),
                    mode));
  }

  // Row 3: Multi-query SYN with blocking vs Haren (paper: +43% tp, 331x e2e).
  {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::LiebreFlavor();
    queries::SyntheticConfig config;
    config.blocking_op_fraction = 0.10;
    auto workloads = queries::MakeSynthetic(config);
    for (auto& workload : workloads) {
      exp::WorkloadSpec w;
      w.workload = std::move(workload);
      w.rate_tps = 6400.0 / config.num_queries;
      spec.workloads.push_back(std::move(w));
    }
    exp::SchedulerSpec haren;
    haren.kind = exp::SchedulerKind::kHaren;
    haren.policy = exp::PolicyKind::kFcfs;
    haren.period = Millis(50);
    add_row("Multi-Query SYN + blocking (6.4)", "Haren",
            Compare(spec, haren,
                    LachesisSpec(exp::PolicyKind::kFcfs,
                                 exp::TranslatorKind::kCpuShares),
                    mode));
  }

  // Row 4: Scale-out LR (4 nodes) vs OS (paper: +31% tp, 12x e2e).
  {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.nodes = 4;
    spec.flavor = spe::StormFlavor();
    exp::WorkloadSpec w;
    w.workload = queries::MakeLinearRoad();
    w.rate_tps = 27000;
    w.parallelism = 4;
    spec.workloads.push_back(std::move(w));
    add_row("Scale-Out LR, 4 nodes (6.5)", "OS",
            Compare(spec, exp::SchedulerSpec{},
                    LachesisSpec(exp::PolicyKind::kQueueSize,
                                 exp::TranslatorKind::kNice),
                    mode));
  }

  // Row 5: Multi-SPE server (paper: +60% tp, 498x latency).
  {
    exp::ScenarioSpec spec;
    spec.cores = 8;
    spec.flavor = spe::StormFlavor();
    {
      exp::WorkloadSpec w;
      w.workload = queries::MakeVoipStream();
      w.workload.query.name = "storm-vs";
      w.rate_tps = 1500;
      spec.workloads.push_back(std::move(w));
    }
    {
      exp::WorkloadSpec w;
      w.workload = queries::MakeLinearRoad();
      w.workload.query.name = "flink-lr";
      w.rate_tps = 2400;
      w.flavor_override = spe::FlinkFlavor();
      spec.workloads.push_back(std::move(w));
    }
    queries::SyntheticConfig config;
    auto syn = queries::MakeSynthetic(config);
    for (auto& workload : syn) {
      exp::WorkloadSpec w;
      w.workload = std::move(workload);
      w.rate_tps = 190;
      w.flavor_override = spe::LiebreFlavor();
      spec.workloads.push_back(std::move(w));
    }
    add_row("Multi-SPE server (6.6)", "OS",
            Compare(spec, exp::SchedulerSpec{},
                    LachesisSpec(exp::PolicyKind::kQueueSize,
                                 exp::TranslatorKind::kQuerySharesNice),
                    mode));
  }

  lachesis::exp::PrintTable(
      "Table 1: Lachesis highlights vs each experiment's baseline",
      {"Experiment", "Baseline", "Throughput", "Latency", "E2E latency"},
      rows);
  return 0;
}
