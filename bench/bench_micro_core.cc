// Microbenchmarks (google-benchmark) of Lachesis' own machinery: the
// middleware must stay lightweight (the paper reports ~1% CPU on an
// Odroid), so the per-period costs of metric resolution, policy evaluation,
// normalization and the CFS simulator's hot operations are tracked here.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/metric_provider.h"
#include "core/normalize.h"
#include "core/policies.h"
#include "core/sim_driver.h"
#include "core/translators.h"
#include "queries/synthetic.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "tsdb/scraper.h"
#include "tsdb/tsdb.h"

namespace {

using namespace lachesis;

// Shared fixture: 20 SYN queries (100 operators) on a Liebre-flavored
// instance with a populated metric store.
struct CoreFixture {
  sim::Simulator sim;
  sim::Machine machine{sim, 4};
  spe::SpeInstance instance{spe::LiebreFlavor(), {&machine}, "liebre"};
  tsdb::TimeSeriesStore store;
  std::unique_ptr<core::SimSpeDriver> driver;

  CoreFixture() {
    queries::SyntheticConfig config;
    for (auto& workload : queries::MakeSynthetic(config)) {
      spe::DeployOptions options;
      options.create_threads = false;  // metrics only
      instance.Deploy(workload.query, options);
    }
    tsdb::Scraper scraper(sim, store, Seconds(1));
    scraper.AddInstance(instance);
    scraper.ScrapeOnce();
    driver = std::make_unique<core::SimSpeDriver>(instance, store);
  }
};

CoreFixture& Fixture() {
  static CoreFixture fixture;
  return fixture;
}

void BM_MetricProviderUpdate(benchmark::State& state) {
  auto& fixture = Fixture();
  core::MetricProvider provider;
  provider.Register(core::MetricId::kQueueSize);
  provider.Register(core::MetricId::kHighestRate);
  provider.Register(core::MetricId::kHeadTupleAge);
  std::vector<core::SpeDriver*> drivers{fixture.driver.get()};
  for (auto _ : state) {
    provider.Update(drivers, Seconds(1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(provider.EntitiesOf(*fixture.driver).size()));
}
BENCHMARK(BM_MetricProviderUpdate);

void BM_PolicyQueueSize(benchmark::State& state) {
  auto& fixture = Fixture();
  core::MetricProvider provider;
  provider.Register(core::MetricId::kQueueSize);
  std::vector<core::SpeDriver*> drivers{fixture.driver.get()};
  provider.Update(drivers, Seconds(1));
  core::QueueSizePolicy policy;
  Rng rng(1);
  core::PolicyContext ctx;
  ctx.provider = &provider;
  ctx.drivers = drivers;
  ctx.rng = &rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.ComputeSchedule(ctx));
  }
}
BENCHMARK(BM_PolicyQueueSize);

void BM_PolicyHighestRate(benchmark::State& state) {
  auto& fixture = Fixture();
  core::MetricProvider provider;
  provider.Register(core::MetricId::kHighestRate);
  std::vector<core::SpeDriver*> drivers{fixture.driver.get()};
  provider.Update(drivers, Seconds(1));
  core::HighestRatePolicy policy;
  Rng rng(1);
  core::PolicyContext ctx;
  ctx.provider = &provider;
  ctx.drivers = drivers;
  ctx.rng = &rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.ComputeSchedule(ctx));
  }
}
BENCHMARK(BM_PolicyHighestRate);

void BM_NiceNormalization(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> priorities(static_cast<std::size_t>(state.range(0)));
  for (auto& p : priorities) p = rng.Uniform(0.1, 5000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrioritiesToNice(priorities));
  }
}
BENCHMARK(BM_NiceNormalization)->Arg(10)->Arg(100)->Arg(1000);

void BM_SharesNormalization(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> priorities(static_cast<std::size_t>(state.range(0)));
  for (auto& p : priorities) p = rng.Uniform(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrioritiesToShares(priorities));
  }
}
BENCHMARK(BM_SharesNormalization)->Arg(10)->Arg(100)->Arg(1000);

// Event-queue hot lane: push/pop throughput of POD sink events with the
// interleaved (partially sorted) arrival pattern the simulator produces.
struct NullSink final : sim::EventSink {
  std::uint64_t sum = 0;
  void HandleEvent(std::int32_t, std::uint64_t a, std::uint64_t) override {
    sum += a;
  }
};

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  std::vector<SimTime> times(n);
  SimTime base = 0;
  for (auto& t : times) {
    base += static_cast<SimTime>(rng.Uniform(0.0, 50.0));
    // Jitter makes pushes land out of order, as wakeups/timers do.
    t = base + static_cast<SimTime>(rng.Uniform(0.0, 1000.0));
  }
  sim::EventQueue q;  // reused across iterations: steady-state storage
  NullSink sink;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      q.Push(times[i], &sink, 1, i, 0);
    }
    while (!q.empty()) q.PopAndDispatch();
  }
  benchmark::DoNotOptimize(sink.sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

// Mixed lanes: mostly sink events with a periodic closure event, the ratio
// figure benches produce (per-tuple scheduler events + per-tuple source
// emissions + rare control-plane closures).
void BM_EventQueueMixedPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(43);
  std::vector<SimTime> times(n);
  SimTime base = 0;
  for (auto& t : times) {
    base += static_cast<SimTime>(rng.Uniform(0.0, 50.0));
    t = base + static_cast<SimTime>(rng.Uniform(0.0, 1000.0));
  }
  sim::EventQueue q;
  NullSink sink;
  std::uint64_t closure_sum = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 16 == 0) {
        q.Push(times[i], [&closure_sum, i] { closure_sum += i; });
      } else {
        q.Push(times[i], &sink, 1, i, 0);
      }
    }
    while (!q.empty()) q.PopAndDispatch();
  }
  benchmark::DoNotOptimize(sink.sum);
  benchmark::DoNotOptimize(closure_sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueMixedPushPop)->Arg(1024)->Arg(16384);

// Runqueue enqueue/dequeue: threads in a 3-deep cgroup tree alternating
// short bursts and sleeps under contention, so nearly every dispatched
// event is an enqueue or dequeue walking the full ancestor chain.
void BM_RunqueueEnqueueDequeue(benchmark::State& state) {
  struct Churn final : sim::ThreadBody {
    sim::Action Next(sim::Machine&) override {
      compute = !compute;
      return compute ? sim::Action::Compute(Micros(20))
                     : sim::Action::Sleep(Micros(50));
    }
    bool compute = false;
  };
  std::uint64_t dispatched = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::Machine machine(sim, 2);
    std::vector<CgroupId> leaves;
    for (int g = 0; g < 4; ++g) {
      const CgroupId mid = machine.CreateCgroup(
          "g" + std::to_string(g), machine.root_cgroup(), 512 + 512 * g);
      leaves.push_back(machine.CreateCgroup("leaf" + std::to_string(g), mid));
    }
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      machine.CreateThread("t" + std::to_string(i), std::make_unique<Churn>(),
                           leaves[static_cast<std::size_t>(i) % leaves.size()],
                           i % 10 - 5);
    }
    state.ResumeTiming();
    sim.RunUntil(Millis(200));
    dispatched += sim.dispatched();
    benchmark::DoNotOptimize(machine.total_busy_time());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatched));
}
BENCHMARK(BM_RunqueueEnqueueDequeue)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Wakeup path: producer/consumer pairs ping-ponging on wait channels; every
// notify runs the preemption-margin check against the running thread.
void BM_WakeupPreempt(benchmark::State& state) {
  struct Pair {
    std::unique_ptr<sim::WaitChannel> channel;
    int tokens = 0;
  };
  struct Producer final : sim::ThreadBody {
    explicit Producer(Pair* p) : p(p) {}
    sim::Action Next(sim::Machine&) override {
      if (produced) {
        ++p->tokens;
        p->channel->NotifyOne();
      }
      produced = true;
      return sim::Action::Compute(Micros(30));
    }
    Pair* p;
    bool produced = false;
  };
  struct Consumer final : sim::ThreadBody {
    explicit Consumer(Pair* p) : p(p) {}
    sim::Action Next(sim::Machine&) override {
      if (p->tokens == 0) return sim::Action::Wait(*p->channel);
      --p->tokens;
      return sim::Action::Compute(Micros(10));
    }
    Pair* p;
  };
  std::uint64_t wakeups = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::Machine machine(sim, 2);
    std::vector<std::unique_ptr<Pair>> pairs;
    std::vector<ThreadId> consumers;
    const CgroupId group = machine.CreateCgroup("pipe", machine.root_cgroup());
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      auto pair = std::make_unique<Pair>();
      pair->channel = std::make_unique<sim::WaitChannel>(machine);
      machine.CreateThread("prod" + std::to_string(i),
                           std::make_unique<Producer>(pair.get()),
                           machine.root_cgroup());
      consumers.push_back(machine.CreateThread(
          "cons" + std::to_string(i), std::make_unique<Consumer>(pair.get()),
          group));
      pairs.push_back(std::move(pair));
    }
    state.ResumeTiming();
    sim.RunUntil(Millis(200));
    for (const ThreadId tid : consumers) {
      wakeups += machine.GetStats(tid).nr_wakeups;
    }
    benchmark::DoNotOptimize(machine.total_busy_time());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(wakeups));
}
BENCHMARK(BM_WakeupPreempt)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// CFS simulator hot path: how fast the discrete-event machine executes a
// second of heavily contended scheduling.
void BM_SimMachineSecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::Machine machine(sim, 4);
    struct Busy final : sim::ThreadBody {
      sim::Action Next(sim::Machine&) override {
        return sim::Action::Compute(Micros(100));
      }
    };
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      machine.CreateThread("t" + std::to_string(i), std::make_unique<Busy>(),
                           machine.root_cgroup(), i % 10 - 5);
    }
    state.ResumeTiming();
    sim.RunUntil(Seconds(1));
    benchmark::DoNotOptimize(machine.total_busy_time());
  }
}
BENCHMARK(BM_SimMachineSecond)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_micro_core.json so every run leaves a machine-readable record (the
// google-benchmark JSON format); explicit --benchmark_out wins.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
