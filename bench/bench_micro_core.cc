// Microbenchmarks (google-benchmark) of Lachesis' own machinery: the
// middleware must stay lightweight (the paper reports ~1% CPU on an
// Odroid), so the per-period costs of metric resolution, policy evaluation,
// normalization and the CFS simulator's hot operations are tracked here.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/metric_provider.h"
#include "core/normalize.h"
#include "core/policies.h"
#include "core/sim_driver.h"
#include "core/translators.h"
#include "queries/synthetic.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "tsdb/scraper.h"
#include "tsdb/tsdb.h"

namespace {

using namespace lachesis;

// Shared fixture: 20 SYN queries (100 operators) on a Liebre-flavored
// instance with a populated metric store.
struct CoreFixture {
  sim::Simulator sim;
  sim::Machine machine{sim, 4};
  spe::SpeInstance instance{spe::LiebreFlavor(), {&machine}, "liebre"};
  tsdb::TimeSeriesStore store;
  std::unique_ptr<core::SimSpeDriver> driver;

  CoreFixture() {
    queries::SyntheticConfig config;
    for (auto& workload : queries::MakeSynthetic(config)) {
      spe::DeployOptions options;
      options.create_threads = false;  // metrics only
      instance.Deploy(workload.query, options);
    }
    tsdb::Scraper scraper(sim, store, Seconds(1));
    scraper.AddInstance(instance);
    scraper.ScrapeOnce();
    driver = std::make_unique<core::SimSpeDriver>(instance, store);
  }
};

CoreFixture& Fixture() {
  static CoreFixture fixture;
  return fixture;
}

void BM_MetricProviderUpdate(benchmark::State& state) {
  auto& fixture = Fixture();
  core::MetricProvider provider;
  provider.Register(core::MetricId::kQueueSize);
  provider.Register(core::MetricId::kHighestRate);
  provider.Register(core::MetricId::kHeadTupleAge);
  std::vector<core::SpeDriver*> drivers{fixture.driver.get()};
  for (auto _ : state) {
    provider.Update(drivers, Seconds(1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(provider.EntitiesOf(*fixture.driver).size()));
}
BENCHMARK(BM_MetricProviderUpdate);

void BM_PolicyQueueSize(benchmark::State& state) {
  auto& fixture = Fixture();
  core::MetricProvider provider;
  provider.Register(core::MetricId::kQueueSize);
  std::vector<core::SpeDriver*> drivers{fixture.driver.get()};
  provider.Update(drivers, Seconds(1));
  core::QueueSizePolicy policy;
  Rng rng(1);
  core::PolicyContext ctx;
  ctx.provider = &provider;
  ctx.drivers = drivers;
  ctx.rng = &rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.ComputeSchedule(ctx));
  }
}
BENCHMARK(BM_PolicyQueueSize);

void BM_PolicyHighestRate(benchmark::State& state) {
  auto& fixture = Fixture();
  core::MetricProvider provider;
  provider.Register(core::MetricId::kHighestRate);
  std::vector<core::SpeDriver*> drivers{fixture.driver.get()};
  provider.Update(drivers, Seconds(1));
  core::HighestRatePolicy policy;
  Rng rng(1);
  core::PolicyContext ctx;
  ctx.provider = &provider;
  ctx.drivers = drivers;
  ctx.rng = &rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.ComputeSchedule(ctx));
  }
}
BENCHMARK(BM_PolicyHighestRate);

void BM_NiceNormalization(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> priorities(static_cast<std::size_t>(state.range(0)));
  for (auto& p : priorities) p = rng.Uniform(0.1, 5000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrioritiesToNice(priorities));
  }
}
BENCHMARK(BM_NiceNormalization)->Arg(10)->Arg(100)->Arg(1000);

void BM_SharesNormalization(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> priorities(static_cast<std::size_t>(state.range(0)));
  for (auto& p : priorities) p = rng.Uniform(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrioritiesToShares(priorities));
  }
}
BENCHMARK(BM_SharesNormalization)->Arg(10)->Arg(100)->Arg(1000);

// CFS simulator hot path: how fast the discrete-event machine executes a
// second of heavily contended scheduling.
void BM_SimMachineSecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::Machine machine(sim, 4);
    struct Busy final : sim::ThreadBody {
      sim::Action Next(sim::Machine&) override {
        return sim::Action::Compute(Micros(100));
      }
    };
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      machine.CreateThread("t" + std::to_string(i), std::make_unique<Busy>(),
                           machine.root_cgroup(), i % 10 - 5);
    }
    state.ResumeTiming();
    sim.RunUntil(Seconds(1));
    benchmark::DoNotOptimize(machine.total_busy_time());
  }
}
BENCHMARK(BM_SimMachineSecond)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
