// Reproduces Fig 15: the effect of scheduling granularity on Haren. When
// Haren is forced to Lachesis' 1-second decision period (HAREN-1000), its
// advantage from fine-grained fresh metrics disappears and it becomes
// comparable to (or worse than) Lachesis (paper §6.4).
#include "bench/bench_common.h"
#include "queries/synthetic.h"

int main() {
  using namespace lachesis;
  using namespace lachesis::bench;

  const auto mode = BenchMode::FromEnv();
  const auto factory = [](double total_rate) {
    exp::ScenarioSpec spec;
    spec.cores = 4;
    spec.flavor = spe::LiebreFlavor();
    queries::SyntheticConfig config;
    auto workloads = queries::MakeSynthetic(config);
    for (auto& workload : workloads) {
      exp::WorkloadSpec w;
      w.workload = std::move(workload);
      w.rate_tps = total_rate / config.num_queries;
      spec.workloads.push_back(std::move(w));
    }
    return spec;
  };

  std::vector<Variant> variants;
  {
    exp::SchedulerSpec haren50;
    haren50.kind = exp::SchedulerKind::kHaren;
    haren50.policy = exp::PolicyKind::kFcfs;
    haren50.period = Millis(50);
    variants.push_back({"HAREN-50", haren50});
  }
  {
    exp::SchedulerSpec haren1000;
    haren1000.kind = exp::SchedulerKind::kHaren;
    haren1000.policy = exp::PolicyKind::kFcfs;
    haren1000.period = Seconds(1);
    variants.push_back({"HAREN-1000", haren1000});
  }
  {
    exp::SchedulerSpec lachesis;
    lachesis.kind = exp::SchedulerKind::kLachesis;
    lachesis.policy = exp::PolicyKind::kFcfs;
    lachesis.translator = exp::TranslatorKind::kCpuShares;
    lachesis.period = Seconds(1);
    variants.push_back({"LACHESIS", lachesis});
  }

  const std::vector<double> rates =
      mode.full ? std::vector<double>{4000, 5000, 5500, 6000, 6500, 7000}
                : std::vector<double>{5000, 6000, 7000};

  const SweepResult sweep =
      RunAndPrintSweep("Fig 15: Haren scheduling granularity (SYN, FCFS)",
                       factory, rates, variants, mode);
  PrintMetricTable("Fig 15 | FCFS goal (max head-of-line age, ms)", rates,
                   variants, sweep,
                   [](const exp::RunResult& r) { return r.fcfs_goal_ms; });
  return 0;
}
