#!/usr/bin/env bash
# Native control-plane smoke: proves the SAME runner that drives the
# simulator also drives a live Linux host.
#
#   1. lachesisd --dry-run over a real process (a spawned `sleep`),
#      discovered via /proc -- needs no privileges.
#   2. The sim-vs-native conformance differential (real setpriority /
#      cgroupfs where permitted; the test skips internally otherwise).
#
# Usage:
#   ci/run_native_smoke.sh [build-dir]
# Steps that need privileges the host lacks (CAP_SYS_NICE, a writable
# cgroupfs) are SKIPPED with an explicit message, not failed: an
# unprivileged CI container still validates discovery, config parsing, the
# wake loop, and delta accounting.
set -euo pipefail

SRC_DIR=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-ci"}

if [ ! -x "$BUILD_DIR/examples/lachesisd" ]; then
  echo "run_native_smoke.sh: building $BUILD_DIR first"
  cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}"
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" \
    --target lachesisd conformance_differential_test native_spe_load
fi
if [ ! -x "$BUILD_DIR/examples/native_spe_load" ]; then
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" \
    --target native_spe_load
fi

WORK_DIR=$(mktemp -d /tmp/lachesis-native-smoke.XXXXXX)
SLEEP_PID=
cleanup() {
  [ -n "$SLEEP_PID" ] && kill "$SLEEP_PID" 2>/dev/null || true
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# --- 1. lachesisd dry-run against a real discovered process ----------------
sleep 30 &
SLEEP_PID=$!
touch "$WORK_DIR/metrics.log"
cat > "$WORK_DIR/config.ini" <<EOF
[lachesis]
period_ms = 100
policy = queue-size
translator = nice
metrics_file = $WORK_DIR/metrics.log

[query smoke]
pid = $SLEEP_PID
operator main = sleep smoke.main ingress
provides = queue_size
EOF

echo "run_native_smoke.sh: lachesisd --dry-run (2 iterations)"
"$BUILD_DIR/examples/lachesisd" "$WORK_DIR/config.ini" --dry-run --iterations 2

# --- 1b. Chrome-trace export from the same dry run --------------------------
# The daemon must dump a Perfetto-loadable trace on exit when --trace is
# given; validating the header proves the observability plumbing is wired
# through the native path, not just the simulator.
echo "run_native_smoke.sh: lachesisd --trace export"
"$BUILD_DIR/examples/lachesisd" "$WORK_DIR/config.ini" --dry-run \
  --iterations 2 --trace "$WORK_DIR/trace.json"
if [ ! -s "$WORK_DIR/trace.json" ]; then
  echo "run_native_smoke.sh: FAIL --trace produced no file" >&2
  exit 1
fi
case "$(head -c 16 "$WORK_DIR/trace.json")" in
  '{"traceEvents"'*) echo "run_native_smoke.sh: trace export OK" ;;
  *)
    echo "run_native_smoke.sh: FAIL trace.json is not a Chrome trace:" >&2
    head -c 200 "$WORK_DIR/trace.json" >&2
    exit 1
    ;;
esac

# --- 2. sim-vs-native differential on real OS mechanisms --------------------
# Needs permission to renice within [0,19] (usually available) and, for the
# cgroup half, a writable cgroupfs; the gtest skips internally per-case.
if renice -n 5 -p $$ >/dev/null 2>&1 && renice -n 0 -p $$ >/dev/null 2>&1; then
  echo "run_native_smoke.sh: running sim-vs-native conformance differential"
  "$BUILD_DIR/tests/conformance_differential_test"
else
  echo "run_native_smoke.sh: SKIP conformance differential:" \
    "host does not permit renice (no CAP_SYS_NICE / restricted container)"
fi

# --- 3. native SPE executor short soak ---------------------------------------
# Real operator threads, lock-free rings, rate-controlled sources, and the
# LachesisRunner scheduling the live kernel tids each tick. The counting
# adapter needs no privileges; the binary itself exits non-zero unless
# traffic flowed AND the throughput scraped from the executor's metric
# registry is positive, so this asserts the full ingest->scrape->schedule
# loop, not just that threads started.
echo "run_native_smoke.sh: native executor soak (counting adapter, 2s)"
"$BUILD_DIR/examples/native_spe_load" --seconds 2

# The --real-os half drives actual setpriority/cgroupfs against the
# executor's own threads; gate it on the same privilege probe as the
# conformance differential.
if renice -n 5 -p $$ >/dev/null 2>&1 && renice -n 0 -p $$ >/dev/null 2>&1; then
  echo "run_native_smoke.sh: native executor soak (--real-os, 2s)"
  "$BUILD_DIR/examples/native_spe_load" --seconds 2 --real-os
else
  echo "run_native_smoke.sh: SKIP native executor --real-os soak:" \
    "host does not permit renice (no CAP_SYS_NICE / restricted container)"
fi

echo "run_native_smoke.sh: OK"
