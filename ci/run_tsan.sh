#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel fleet stepper: builds the fleet
# tests under TSan and runs them, then a short fleet chaos soak with the
# worker pool saturated. The stepper's only cross-thread edges are the
# epoch-barrier handshake and the mailbox drain, both on the coordinator
# thread -- TSan proves those edges carry every happens-before the shards
# rely on. The suites are seeded and deterministic modulo thread timing;
# the golden digests inside them additionally prove timing never leaks into
# simulation results. Usage:
#   ci/run_tsan.sh [build-dir]
# Environment:
#   CMAKE_BUILD_TYPE          defaults to RelWithDebInfo (asserts stay on)
#   LACHESIS_FLEET_SOAK_SCALE soak length multiplier (default 3)
set -euo pipefail

SRC_DIR=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-tsan"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}" \
  -DLACHESIS_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target fleet_sim_test fleet_golden_test fleet_chaos_test \
           stable_pool_test hash_index_test hetero_machine_test \
           native_queue_test native_runtime_test

status=0
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
"$BUILD_DIR/tests/fleet_sim_test" --gtest_brief=1 || status=$?

# Storage-layer container suites under TSan: the containers are
# single-writer by contract, but the recorder's interner is called under
# the recorder lock from concurrent contexts -- build and run the property
# suites in this lane so any future cross-thread use is instrumented.
"$BUILD_DIR/tests/stable_pool_test" --gtest_brief=1 || status=$?
"$BUILD_DIR/tests/hash_index_test" --gtest_brief=1 || status=$?

# Native SPE executor: the SPSC ring's entire correctness story is its
# acquire/release pairs and the eventcount sleep/wake fences -- TSan over
# the randomized FIFO-linearization and park/wake suites is the strongest
# check we have that no edge is missing. The runtime suite then instruments
# the thread-per-operator executor end to end (source -> rings -> egress,
# metric scrapes racing live operator threads).
"$BUILD_DIR/tests/native_queue_test" --gtest_brief=1 || status=$?
"$BUILD_DIR/tests/native_runtime_test" --gtest_brief=1 || status=$?

# Heterogeneous-core suite: capacity scaling, misfit migration, and
# deadline admission are single-threaded sim code, but fleet shards run
# hetero machines concurrently -- instrument the suite in this lane so any
# cross-shard sharing shows up under TSan.
"$BUILD_DIR/tests/hetero_machine_test" --gtest_brief=1 || status=$?

# Chaos soak: longer measurement window, churn on, pool saturated.
LACHESIS_FLEET_SOAK_SCALE="${LACHESIS_FLEET_SOAK_SCALE:-3}" \
  "$BUILD_DIR/tests/fleet_golden_test" --gtest_brief=1 || status=$?

# Fleet failure domain under TSan: dark shards freeze and catch up, agents
# die and reboot mid-run, and the coordinator re-places bindings on the
# barrier lane -- all while the worker pool steps survivors. The soak is
# trimmed (the fault schedule is a pure hash of (seed, machine, epoch), so
# the short run is an exact prefix of the default-length chaos).
LACHESIS_FLEET_CHAOS_EPOCHS="${LACHESIS_FLEET_CHAOS_EPOCHS:-2000}" \
  "$BUILD_DIR/tests/fleet_chaos_test" --gtest_brief=1 || status=$?

if [ "$status" -ne 0 ]; then
  echo "run_tsan.sh: fleet suites exited with status $status" >&2
fi
exit "$status"
