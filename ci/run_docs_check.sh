#!/usr/bin/env bash
# Documentation consistency gate (runs under ctest as `docs_check`, tier1):
#
#   1. every intra-repo markdown link resolves to a file that exists, and
#   2. every binary, script, or build target referenced from a sh/bash/
#      console code fence exists in the tree or in the CMake build graph.
#
# The point is to keep README/docs from drifting as code moves: a renamed
# test binary, a deleted doc page, or a stale `cmake --build --target`
# incantation fails CI instead of rotting silently.
#
# Usage: ci/run_docs_check.sh
set -euo pipefail

SRC_DIR=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
cd "$SRC_DIR"

ERRORS=$(mktemp /tmp/lachesis-docs-check.XXXXXX)
SCRATCH=$(mktemp -d /tmp/lachesis-docs-scratch.XXXXXX)
trap 'rm -rf "$ERRORS" "$SCRATCH"' EXIT

# Markdown we publish: repo root and docs/ (skip build trees).
find . -maxdepth 2 -name '*.md' \
  -not -path './build*' -not -path './.git/*' | sort > "$SCRATCH/md_files"

# --- 1. intra-repo links ----------------------------------------------------
while read -r md; do
  dir=$(dirname "$md")
  grep -oE '\]\([^)]+\)' "$md" 2>/dev/null |
    sed 's/^](//; s/)$//' > "$SCRATCH/links" || true
  while read -r link; do
    case "$link" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path=${link%%#*} # anchors within a page are not checked
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "./${path#/}" ]; then
      echo "broken link in $md: ($link)" >> "$ERRORS"
    fi
  done < "$SCRATCH/links"
done < "$SCRATCH/md_files"

# --- 2. commands inside sh/bash/console fences -------------------------------
# Names the build graph defines: executables, libraries, custom targets, and
# every gtest binary registered through the lachesis_test() helper.
find . -name 'CMakeLists.txt' -not -path './build*' \
  -exec cat {} + > "$SCRATCH/cmake"
grep -oE '(add_executable|add_library|add_custom_target|lachesis_test|lachesis_example|lachesis_bench)\([A-Za-z0-9_]+' \
  "$SCRATCH/cmake" | sed 's/.*(//' | sort -u > "$SCRATCH/targets"

known_target() { grep -qxF "$1" "$SCRATCH/targets"; }

while read -r md; do
  awk '/^[[:space:]]*```(sh|bash|console)[[:space:]]*$/ { f = 1; next }
       /^[[:space:]]*```/ { f = 0 }
       f' "$md" > "$SCRATCH/fence"
  [ -s "$SCRATCH/fence" ] || continue

  # a. paths under ./build*/ -- the basename must be a build target.
  grep -oE '\./build[^ "]*/[A-Za-z0-9_.-]+' "$SCRATCH/fence" |
    sort -u > "$SCRATCH/refs" || true
  while read -r ref; do
    base=$(basename "$ref")
    base=${base%.json} # BENCH_*.json artifacts are outputs, not targets
    if ! known_target "$base" && [[ "$ref" != *BENCH_* ]]; then
      echo "$md fence references unknown build binary: $ref" >> "$ERRORS"
    fi
  done < "$SCRATCH/refs"

  # b. repo scripts (ci/*.sh, tools/*) must exist and be executable.
  grep -oE '(ci|tools)/[A-Za-z0-9_.-]+' "$SCRATCH/fence" |
    sort -u > "$SCRATCH/refs" || true
  while read -r ref; do
    if [ ! -e "$ref" ]; then
      echo "$md fence references missing script: $ref" >> "$ERRORS"
    fi
  done < "$SCRATCH/refs"

  # c. every name after `--target` must be in the build graph.
  grep -oE -- '--target [A-Za-z0-9_ ]+' "$SCRATCH/fence" |
    sed 's/^--target //' | tr ' ' '\n' | grep -v '^-' | sort -u |
    grep -v '^$' > "$SCRATCH/refs" || true
  while read -r ref; do
    if ! known_target "$ref"; then
      echo "$md fence references unknown cmake target: $ref" >> "$ERRORS"
    fi
  done < "$SCRATCH/refs"
done < "$SCRATCH/md_files"

if [ -s "$ERRORS" ]; then
  echo "run_docs_check.sh: FAILED" >&2
  sed 's/^/  /' "$ERRORS" >&2
  exit 1
fi
echo "run_docs_check.sh: OK ($(wc -l < "$SCRATCH/md_files") markdown files)"
