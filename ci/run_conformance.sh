#!/usr/bin/env bash
# Conformance fuzzing gate: builds the conformance_fuzz binary under
# ASan/UBSan and runs a short fixed-seed budget, replaying (and persisting
# to) the checked-in failing-seed corpus. Usage:
#   ci/run_conformance.sh [build-dir]
# Environment:
#   LACHESIS_SANITIZE      sanitizer list (default address,undefined)
#   CONFORMANCE_SEEDS      number of fresh seeds to sweep (default 500)
#   CONFORMANCE_BUDGET_MS  wall-clock budget for the sweep (default 120000)
set -euo pipefail

SRC_DIR=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-conformance"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}" \
  -DLACHESIS_SANITIZE="${LACHESIS_SANITIZE:-address,undefined}"
cmake --build "$BUILD_DIR" -j "$JOBS" --target conformance_fuzz

status=0
"$BUILD_DIR/src/conformance/conformance_fuzz" \
  --seeds="${CONFORMANCE_SEEDS:-500}" \
  --budget-ms="${CONFORMANCE_BUDGET_MS:-120000}" \
  --corpus="$SRC_DIR/tests/conformance_corpus" || status=$?
if [ "$status" -ne 0 ]; then
  echo "run_conformance.sh: conformance_fuzz exited with status $status" >&2
fi
exit "$status"
