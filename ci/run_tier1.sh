#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, and run the full unit/property/golden
# test suite. Usage:
#   ci/run_tier1.sh [build-dir]
# Environment:
#   LACHESIS_SANITIZE  forwarded to cmake (e.g. address,undefined)
#   CMAKE_BUILD_TYPE   defaults to RelWithDebInfo (asserts stay on)
set -euo pipefail

SRC_DIR=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-ci"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}" \
  -DLACHESIS_SANITIZE="${LACHESIS_SANITIZE:-}"
cmake --build "$BUILD_DIR" -j "$JOBS"

status=0
ctest --test-dir "$BUILD_DIR" -L tier1 --no-tests=error --output-on-failure ||
  status=$?
if [ "$status" -ne 0 ]; then
  echo "run_tier1.sh: ctest exited with status $status" >&2
fi

# Perf trajectory: quick control-plane tick and fault-overhead benches,
# then list every machine-readable BENCH_*.json produced under the build
# dir.
if [ "$status" -eq 0 ]; then
  (cd "$BUILD_DIR" && ./bench/bench_runner_tick --quick) ||
    echo "run_tier1.sh: bench_runner_tick failed (non-fatal)" >&2
  (cd "$BUILD_DIR" && ./bench/bench_fault_overhead --quick) ||
    echo "run_tier1.sh: bench_fault_overhead failed (non-fatal)" >&2
  # Fleet stepper: worker-count sweep with a hard digest-equality gate
  # (exits non-zero on any determinism break), writes BENCH_fleet.json.
  (cd "$BUILD_DIR" && ./bench/bench_fleet) ||
    echo "run_tier1.sh: bench_fleet failed (non-fatal)" >&2
  # Heterogeneous cores + SCHED_DEADLINE: capacity-aware vs capacity-blind
  # placement, mixed-criticality SLO check, and deadline admission
  # micro-bench. Self-gating (non-zero when aware placement stops beating
  # blind or the deadline variant misses its SLO), writes
  # BENCH_hetero.json.
  (cd "$BUILD_DIR" && LACHESIS_BENCH_MODE=quick ./bench/bench_hetero) ||
    echo "run_tier1.sh: bench_hetero failed (non-fatal)" >&2
  # Native SPE executor: lock-free ring throughput (same-thread and
  # cross-thread) and tuples/sec through 1/2/4-operator chains; records
  # hw_cores so single-core CI numbers are not misread. Writes
  # BENCH_native.json.
  (cd "$BUILD_DIR" && LACHESIS_BENCH_MODE=quick ./bench/bench_native_spe) ||
    echo "run_tier1.sh: bench_native_spe failed (non-fatal)" >&2
  echo "run_tier1.sh: BENCH artifacts:"
  find "$BUILD_DIR" -maxdepth 1 -name 'BENCH_*.json' -print | sort |
    sed 's/^/  /'
fi
exit "$status"
