#!/usr/bin/env bash
# Chaos gate: builds the fault-tolerance and chaos-soak tests under
# ASan/UBSan and runs them. Everything in these suites is seeded and
# deterministic, so a failure here reproduces byte-identically with a plain
# local rerun of the same binaries. Usage:
#   ci/run_chaos.sh [build-dir]
# Environment:
#   LACHESIS_SANITIZE  sanitizer list (default address,undefined)
#   CMAKE_BUILD_TYPE   defaults to RelWithDebInfo (asserts stay on)
set -euo pipefail

SRC_DIR=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-chaos"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}" \
  -DLACHESIS_SANITIZE="${LACHESIS_SANITIZE:-address,undefined}"
# The container property suites (stable_pool_test, hash_index_test) run
# here too: linear-probing deletions, pool free-list reuse, and arena
# block recycling are exactly the code ASan/UBSan catches lying about.
# The heterogeneous-core suites run here too: the conformance fuzzer
# drives random capacity vectors and deadline triples through the sim, and
# ASan/UBSan is where queue index arithmetic and budget accounting get
# caught lying.
# fleet_chaos_test is the fleet-level failure domain: seeded machine
# crash/restart, partitions and slow shards against real per-shard control
# planes, with replay-determinism and reconvergence gates. ASan/UBSan is
# where the reboot path (retired runner graveyard, re-placed bindings,
# catch-up replay) would leak or index out of bounds.
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target fault_tolerance_test failure_injection_test \
           schedule_delta_test runner_dynamic_test \
           stable_pool_test hash_index_test alloc_regression_test \
           hetero_machine_test conformance_test \
           fleet_sim_test fleet_chaos_test

status=0
for t in fault_tolerance_test failure_injection_test \
         schedule_delta_test runner_dynamic_test \
         stable_pool_test hash_index_test alloc_regression_test \
         hetero_machine_test conformance_test \
         fleet_sim_test; do
  "$BUILD_DIR/tests/$t" --gtest_brief=1 || status=$?
done
# The soak's epoch count is trimmed under sanitizers: the schedule is a
# pure hash of (seed, machine, epoch), so the shorter run replays an exact
# prefix of the default-length chaos.
LACHESIS_FLEET_CHAOS_EPOCHS="${LACHESIS_FLEET_CHAOS_EPOCHS:-4000}" \
  "$BUILD_DIR/tests/fleet_chaos_test" --gtest_brief=1 || status=$?
if [ "$status" -ne 0 ]; then
  echo "run_chaos.sh: chaos suites exited with status $status" >&2
fi
exit "$status"
