// lachesisd: the standalone middleware daemon for real hosts.
//
// Reads a config file describing one or more unmodified engine processes
// (pids, operator thread-name patterns, the graphite-plaintext metrics file
// they export to) and a policy/translator choice, then runs the SAME
// LachesisRunner loop the simulator uses -- on the native control executor
// (monotonic clock) with the Linux OS adapter (nice / cgroups) behind the
// schedule-delta layer, so unchanged schedules cost zero syscalls and a
// vanished thread never aborts a tick.
//
// Usage:
//   lachesisd <config-file> [--dry-run] [--iterations N]
// --dry-run logs the schedule instead of touching the OS (no privileges
// needed); see src/osctl/daemon_config.h for the config format.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/policies.h"
#include "core/runner.h"
#include "core/translators.h"
#include "osctl/cgroupfs.h"
#include "osctl/daemon_config.h"
#include "osctl/linux_os_adapter.h"
#include "osctl/native_driver.h"
#include "osctl/native_executor.h"
#include "osctl/nice.h"

using namespace lachesis;

namespace {

// Adapter that only logs -- for --dry-run and unprivileged smoke tests.
class LoggingOsAdapter final : public core::OsAdapter {
 public:
  void SetNice(const core::ThreadHandle& thread, int nice) override {
    std::printf("  would set nice(%ld) = %d\n", thread.os_tid, nice);
  }
  void SetGroupShares(const std::string& group, std::uint64_t shares) override {
    std::printf("  would set %s cpu.shares = %llu\n", group.c_str(),
                static_cast<unsigned long long>(shares));
  }
  void MoveToGroup(const core::ThreadHandle& thread,
                   const std::string& group) override {
    std::printf("  would move tid %ld into %s\n", thread.os_tid, group.c_str());
  }
  void SetRtPriority(const core::ThreadHandle& thread, int priority) override {
    std::printf("  would set SCHED_FIFO(%ld) = %d\n", thread.os_tid, priority);
  }
  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override {
    std::printf("  would set %s cpu.max = %lld/%lld us\n", group.c_str(),
                static_cast<long long>(quota / kMicrosecond),
                static_cast<long long>(period / kMicrosecond));
  }
};

std::unique_ptr<core::SchedulingPolicy> MakePolicy(const std::string& name) {
  if (name == "queue-size") return std::make_unique<core::QueueSizePolicy>();
  if (name == "fcfs") return std::make_unique<core::FcfsPolicy>();
  if (name == "highest-rate") return std::make_unique<core::HighestRatePolicy>();
  if (name == "random") return std::make_unique<core::RandomPolicy>();
  if (name == "min-memory") return std::make_unique<core::MinMemoryPolicy>();
  throw std::runtime_error("unknown policy: " + name);
}

std::unique_ptr<core::Translator> MakeTranslator(const std::string& name) {
  if (name == "nice") return std::make_unique<core::NiceTranslator>();
  if (name == "cpu.shares") return std::make_unique<core::CpuSharesTranslator>();
  if (name == "quota") return std::make_unique<core::QuotaTranslator>();
  if (name == "rt") return std::make_unique<core::RtBoostTranslator>();
  throw std::runtime_error("unknown translator: " + name);
}

// Capability degradation ladder (best-first): mechanisms the runner falls
// back to when the configured translator's mechanism is persistently
// failing (e.g. no CAP_SYS_NICE for SCHED_FIFO, unwritable cgroup root).
// nice is the last resort everywhere: it needs no privileges for lowering
// priority and no filesystem.
std::vector<std::unique_ptr<core::Translator>> MakeFallbacks(
    const std::string& name) {
  std::vector<std::unique_ptr<core::Translator>> fallbacks;
  if (name == "rt") {
    fallbacks.push_back(std::make_unique<core::CpuSharesTranslator>());
    fallbacks.push_back(std::make_unique<core::NiceTranslator>());
  } else if (name == "cpu.shares" || name == "quota") {
    fallbacks.push_back(std::make_unique<core::NiceTranslator>());
  }
  return fallbacks;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file> [--dry-run] [--iterations N]\n",
                 argv[0]);
    return 2;
  }
  bool dry_run = false;
  long iterations = -1;  // forever
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  try {
    const osctl::DaemonConfig config = osctl::LoadDaemonConfig(argv[1]);
    osctl::NativeSpeDriver driver(config.spe);
    auto policy = MakePolicy(config.policy);
    auto translator = MakeTranslator(config.translator);

    osctl::LinuxNiceController nice;
    osctl::LinuxRtController rt;
    const auto version = osctl::CgroupController::DetectVersion();
    osctl::CgroupController cgroups(
        config.cgroup_root.empty() ? "/tmp/lachesisd-cgroup"
                                   : config.cgroup_root,
        version);
    osctl::LinuxOsAdapter real_os(nice, cgroups, &rt);
    LoggingOsAdapter logging_os;
    core::OsAdapter& os =
        dry_run ? static_cast<core::OsAdapter&>(logging_os) : real_os;

    std::printf("lachesisd: policy=%s translator=%s period=%ldms%s\n",
                config.policy.c_str(), config.translator.c_str(),
                config.period_ms, dry_run ? " (dry run)" : "");

    // The backend-agnostic control plane: the identical runner the
    // simulator exercises, on monotonic time. The driver's Poll refreshes
    // /proc discovery and the metrics file once per due period.
    osctl::NativeControlExecutor executor;
    core::LachesisRunner runner(executor, os,
                                static_cast<std::uint64_t>(::getpid()));

    core::HealthConfig health;
    health.enabled = true;
    health.backoff_base = Millis(config.backoff_base_ms);
    health.backoff_cap = Millis(config.backoff_cap_ms);
    health.breaker_threshold = static_cast<int>(config.breaker_threshold);
    health.probe_interval = Millis(config.breaker_probe_ms);
    health.seed = static_cast<std::uint64_t>(::getpid());
    runner.SetHealthConfig(health);

    core::PolicyBinding binding;
    binding.policy = std::move(policy);
    binding.translator = std::move(translator);
    if (config.degradation) {
      binding.fallback_translators = MakeFallbacks(config.translator);
    }
    binding.period = Millis(config.period_ms);
    binding.drivers = {&driver};
    runner.AddQuery(std::move(binding));

    // Crash-safe restart: observe what the kernel already holds (nice
    // values, RT classes, surviving Lachesis cgroups from a previous
    // incarnation) and seed the delta cache from it, so an unchanged
    // schedule costs zero operations on the first tick and orphaned
    // groups are adopted instead of fought.
    if (config.reconcile && !dry_run) {
      driver.Poll(executor.Now());
      const std::size_t seeded = runner.ReconcileWithBackend();
      std::printf("lachesisd: reconciled %zu kernel state entries, adopted "
                  "%zu cgroups\n",
                  seeded, runner.delta().adopted_groups());
    }

    long tick = 0;
    runner.SetTickObserver([&tick](const core::RunnerTickInfo& info) {
      std::printf(
          "tick %ld @%.3fs: policies=%d ops applied=%llu skipped=%llu "
          "errors=%llu suppressed=%llu%s%s\n",
          tick++, static_cast<double>(info.now) / 1e9, info.policies_run,
          static_cast<unsigned long long>(info.delta.applied),
          static_cast<unsigned long long>(info.delta.skipped),
          static_cast<unsigned long long>(info.delta.errors),
          static_cast<unsigned long long>(info.delta.suppressed),
          info.open_breakers > 0 ? " [breaker open]" : "",
          info.degraded_bindings > 0 ? " [degraded]" : "");
    });

    // Half a period of slack so startup latency cannot push the Nth tick
    // past the deadline.
    const SimTime until =
        iterations < 0 ? std::numeric_limits<SimTime>::max()
                       : executor.Now() +
                             iterations * Millis(config.period_ms) +
                             Millis(config.period_ms) / 2;
    runner.Start(until);
    executor.Run(until);

    const core::DeltaStats& totals = runner.delta_totals();
    std::printf(
        "lachesisd: %llu schedules, ops applied=%llu skipped=%llu "
        "errors=%llu suppressed=%llu\n",
        static_cast<unsigned long long>(runner.schedules_applied()),
        static_cast<unsigned long long>(totals.applied),
        static_cast<unsigned long long>(totals.skipped),
        static_cast<unsigned long long>(totals.errors),
        static_cast<unsigned long long>(totals.suppressed));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lachesisd: %s\n", e.what());
    return 1;
  }
  return 0;
}
