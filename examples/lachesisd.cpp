// lachesisd: the standalone middleware daemon for real hosts.
//
// Reads a config file describing one or more unmodified engine processes
// (pids, operator thread-name patterns, the graphite-plaintext metrics file
// they export to) and a policy/translator choice, then runs the SAME
// LachesisRunner loop the simulator uses -- on the native control executor
// (monotonic clock) with the Linux OS adapter (nice / cgroups) behind the
// schedule-delta layer, so unchanged schedules cost zero syscalls and a
// vanished thread never aborts a tick.
//
// Usage:
//   lachesisd <config-file> [--dry-run] [--iterations N] [--trace FILE]
// --dry-run logs the schedule instead of touching the OS (no privileges
// needed); see src/osctl/daemon_config.h for the config format and
// docs/OPERATIONS.md for the full operator guide (signals, observability,
// tuning).
//
// Observability: SIGUSR1 dumps a Chrome-trace JSON of the provenance ring
// to the configured trace file (config `trace_file` or --trace); the same
// dump also happens at exit and, when `trace_every_ticks` > 0, every N
// ticks (the previous dump is rotated to <file>.1). `metrics_textfile`
// exports the self-metrics catalog in Prometheus textfile format.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/policies.h"
#include "core/runner.h"
#include "core/translators.h"
#include "obs/self_metrics.h"
#include "obs/trace_export.h"
#include "osctl/cgroupfs.h"
#include "osctl/daemon_config.h"
#include "osctl/linux_os_adapter.h"
#include "osctl/native_driver.h"
#include "osctl/native_executor.h"
#include "osctl/native_runtime_driver.h"
#include "osctl/nice.h"
#include "spe/native_runtime.h"

using namespace lachesis;

namespace {

// SIGUSR1 = "dump the provenance trace now"; the handler only sets a flag,
// the dump happens on the next tick boundary (signal-safe).
volatile std::sig_atomic_t g_trace_requested = 0;
void HandleTraceSignal(int) { g_trace_requested = 1; }

// Adapter that only logs -- for --dry-run and unprivileged smoke tests.
class LoggingOsAdapter final : public core::OsAdapter {
 public:
  void SetNice(const core::ThreadHandle& thread, int nice) override {
    std::printf("  would set nice(%ld) = %d\n", thread.os_tid, nice);
  }
  void SetGroupShares(const std::string& group, std::uint64_t shares) override {
    std::printf("  would set %s cpu.shares = %llu\n", group.c_str(),
                static_cast<unsigned long long>(shares));
  }
  void MoveToGroup(const core::ThreadHandle& thread,
                   const std::string& group) override {
    std::printf("  would move tid %ld into %s\n", thread.os_tid, group.c_str());
  }
  void SetRtPriority(const core::ThreadHandle& thread, int priority) override {
    std::printf("  would set SCHED_FIFO(%ld) = %d\n", thread.os_tid, priority);
  }
  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override {
    std::printf("  would set %s cpu.max = %lld/%lld us\n", group.c_str(),
                static_cast<long long>(quota / kMicrosecond),
                static_cast<long long>(period / kMicrosecond));
  }
  void SetDeadline(const core::ThreadHandle& thread, SimDuration runtime,
                   SimDuration deadline, SimDuration period) override {
    std::printf("  would set SCHED_DEADLINE(%ld) = %lld/%lld/%lld us\n",
                thread.os_tid, static_cast<long long>(runtime / kMicrosecond),
                static_cast<long long>(deadline / kMicrosecond),
                static_cast<long long>(period / kMicrosecond));
  }
  void SetCpuAffinity(const core::ThreadHandle& thread,
                      core::CpuPreference pref) override {
    const char* name = pref == core::CpuPreference::kPreferBig ? "big"
                       : pref == core::CpuPreference::kPreferLittle
                           ? "little"
                           : "any";
    std::printf("  would bind tid %ld to %s cores\n", thread.os_tid, name);
  }
};

std::unique_ptr<core::SchedulingPolicy> MakePolicy(
    const osctl::DaemonConfig& config) {
  const std::string& name = config.policy;
  std::unique_ptr<core::SchedulingPolicy> policy;
  if (name == "queue-size") {
    policy = std::make_unique<core::QueueSizePolicy>();
  } else if (name == "fcfs") {
    policy = std::make_unique<core::FcfsPolicy>();
  } else if (name == "highest-rate") {
    policy = std::make_unique<core::HighestRatePolicy>();
  } else if (name == "random") {
    policy = std::make_unique<core::RandomPolicy>();
  } else if (name == "min-memory") {
    policy = std::make_unique<core::MinMemoryPolicy>();
  } else {
    throw std::runtime_error("unknown policy: " + name);
  }
  // critical_queries tags those queries' operators latency-critical so
  // deadline/RT translators give them hard guarantees.
  if (!config.critical_queries.empty()) {
    policy = std::make_unique<core::CriticalChainPolicy>(
        std::move(policy), config.critical_queries);
  }
  return policy;
}

std::unique_ptr<core::Translator> MakeTranslator(
    const osctl::DaemonConfig& config) {
  const std::string& name = config.translator;
  std::unique_ptr<core::Translator> translator;
  if (name == "nice") {
    translator = std::make_unique<core::NiceTranslator>();
  } else if (name == "cpu.shares") {
    translator = std::make_unique<core::CpuSharesTranslator>();
  } else if (name == "quota") {
    translator = std::make_unique<core::QuotaTranslator>();
  } else if (name == "rt") {
    translator = std::make_unique<core::RtBoostTranslator>();
  } else if (name == "deadline") {
    translator = std::make_unique<core::DeadlineTranslator>(
        Millis(config.dl_runtime_ms), Millis(config.dl_period_ms));
  } else {
    throw std::runtime_error("unknown translator: " + name);
  }
  // With a big.LITTLE topology configured, decorate with big-core
  // placement hints for the highest-priority / critical operators.
  if (!config.big_cores.empty()) {
    translator =
        std::make_unique<core::CapacityHintTranslator>(std::move(translator));
  }
  return translator;
}

// Capability degradation ladder (best-first): mechanisms the runner falls
// back to when the configured translator's mechanism is persistently
// failing (e.g. no CAP_SYS_NICE for SCHED_FIFO, unwritable cgroup root).
// nice is the last resort everywhere: it needs no privileges for lowering
// priority and no filesystem.
std::vector<std::unique_ptr<core::Translator>> MakeFallbacks(
    const std::string& name) {
  std::vector<std::unique_ptr<core::Translator>> fallbacks;
  if (name == "deadline") {
    // A reservation needs sched_setattr + admission headroom; degrade to an
    // RT boost (same "critical work preempts" intent), then weights.
    fallbacks.push_back(std::make_unique<core::RtBoostTranslator>());
    fallbacks.push_back(std::make_unique<core::CpuSharesTranslator>());
    fallbacks.push_back(std::make_unique<core::NiceTranslator>());
  } else if (name == "rt") {
    fallbacks.push_back(std::make_unique<core::CpuSharesTranslator>());
    fallbacks.push_back(std::make_unique<core::NiceTranslator>());
  } else if (name == "cpu.shares" || name == "quota") {
    fallbacks.push_back(std::make_unique<core::NiceTranslator>());
  }
  return fallbacks;
}

// A [native-query] section describes a linear chain; first operator is the
// ingress, last the egress.
spe::LogicalQuery BuildNativeChain(const osctl::NativeChainConfig& chain) {
  spe::LogicalQuery query;
  query.name = chain.name;
  int prev = -1;
  for (std::size_t i = 0; i < chain.operators.size(); ++i) {
    const osctl::NativeChainOp& opc = chain.operators[i];
    spe::LogicalOperator op;
    op.name = opc.name;
    op.role = i == 0 ? spe::OperatorRole::kIngress
              : i + 1 == chain.operators.size() ? spe::OperatorRole::kEgress
                                                : spe::OperatorRole::kTransform;
    op.cost = Micros(opc.cost_us);
    const int index = query.Add(std::move(op));
    if (prev >= 0) query.Connect(prev, index);
    prev = index;
  }
  return query;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file> [--dry-run] [--iterations N]\n",
                 argv[0]);
    return 2;
  }
  bool dry_run = false;
  long iterations = -1;  // forever
  std::string trace_override;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_override = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  try {
    const osctl::DaemonConfig config = osctl::LoadDaemonConfig(argv[1]);
    // External engine processes ([query ...] sections): /proc + graphite.
    std::unique_ptr<osctl::NativeSpeDriver> file_driver;
    if (!config.spe.queries.empty()) {
      file_driver = std::make_unique<osctl::NativeSpeDriver>(config.spe);
    }
    // In-process native executor ([native-query ...] sections): the daemon
    // itself serves traffic, and the control plane schedules its threads.
    std::unique_ptr<spe::NativeRuntime> runtime;
    std::unique_ptr<osctl::NativeRuntimeDriver> exec_driver;
    if (!config.native_queries.empty()) {
      spe::NativeRuntimeOptions rt_options;
      rt_options.name = "native-exec";
      rt_options.pin_cpus = config.native_pin_cores;
      runtime = std::make_unique<spe::NativeRuntime>(rt_options);
      for (const osctl::NativeChainConfig& chain : config.native_queries) {
        spe::NativeDeployOptions deploy;
        deploy.source_rate_tps = chain.rate_tps;
        deploy.queue_capacity = static_cast<std::size_t>(chain.queue_capacity);
        deploy.source_channel_capacity =
            static_cast<std::size_t>(chain.source_channel);
        runtime->AddQuery(BuildNativeChain(chain), deploy);
      }
      runtime->Start();
      exec_driver = std::make_unique<osctl::NativeRuntimeDriver>(*runtime);
      std::printf(
          "lachesisd: native executor serving %zu queries "
          "(%zu operator threads, %zu sources)\n",
          runtime->query_count(), runtime->ops().size(),
          runtime->sources().size());
    }
    auto policy = MakePolicy(config);
    auto translator = MakeTranslator(config);

    osctl::LinuxNiceController nice;
    osctl::LinuxRtController rt;
    osctl::LinuxDeadlineController deadline;
    osctl::LinuxAffinityController affinity;
    const auto version = osctl::CgroupController::DetectVersion();
    osctl::CgroupController cgroups(
        config.cgroup_root.empty() ? "/tmp/lachesisd-cgroup"
                                   : config.cgroup_root,
        version);
    osctl::LinuxOsAdapter real_os(nice, cgroups, &rt, &deadline, &affinity);
    real_os.SetCoreClasses(config.big_cores, config.little_cores);
    LoggingOsAdapter logging_os;
    core::OsAdapter& os =
        dry_run ? static_cast<core::OsAdapter&>(logging_os) : real_os;

    std::printf("lachesisd: policy=%s translator=%s period=%ldms%s\n",
                config.policy.c_str(), config.translator.c_str(),
                config.period_ms, dry_run ? " (dry run)" : "");

    // The backend-agnostic control plane: the identical runner the
    // simulator exercises, on monotonic time. The driver's Poll refreshes
    // /proc discovery and the metrics file once per due period.
    osctl::NativeControlExecutor executor;
    core::LachesisRunner runner(executor, os,
                                static_cast<std::uint64_t>(::getpid()));

    core::HealthConfig health;
    health.enabled = true;
    health.backoff_base = Millis(config.backoff_base_ms);
    health.backoff_cap = Millis(config.backoff_cap_ms);
    health.breaker_threshold = static_cast<int>(config.breaker_threshold);
    health.probe_interval = Millis(config.breaker_probe_ms);
    health.seed = static_cast<std::uint64_t>(::getpid());
    runner.SetHealthConfig(health);

    runner.recorder().SetRingCapacity(
        static_cast<std::size_t>(config.obs_ring_capacity));
    runner.recorder().set_verbose(config.obs_verbose);
    const std::string trace_path =
        trace_override.empty() ? config.trace_file : trace_override;
    const auto dump_trace = [&runner, &trace_path](const char* reason) {
      if (trace_path.empty()) {
        std::printf("lachesisd: trace requested (%s) but no trace file "
                    "configured (set trace_file or --trace)\n",
                    reason);
        return;
      }
      // Keep one previous dump: <file> -> <file>.1.
      std::rename(trace_path.c_str(), (trace_path + ".1").c_str());
      if (obs::DumpChromeTrace(runner.recorder(), trace_path,
                               core::LachesisRunner::OpClassNameForObs)) {
        std::printf("lachesisd: %s: wrote trace to %s (%llu events, %llu "
                    "evicted)\n",
                    reason, trace_path.c_str(),
                    static_cast<unsigned long long>(
                        runner.recorder().total_recorded()),
                    static_cast<unsigned long long>(
                        runner.recorder().dropped()));
      } else {
        std::fprintf(stderr, "lachesisd: failed to write trace to %s\n",
                     trace_path.c_str());
      }
    };
    const auto write_metrics = [&runner, &config] {
      if (config.metrics_textfile.empty()) return;
      if (!obs::WritePrometheusTextfile(runner.CollectSelfMetrics(),
                                        config.metrics_textfile)) {
        std::fprintf(stderr, "lachesisd: failed to write metrics to %s\n",
                     config.metrics_textfile.c_str());
      }
    };
    std::signal(SIGUSR1, HandleTraceSignal);

    core::PolicyBinding binding;
    binding.policy = std::move(policy);
    binding.translator = std::move(translator);
    if (config.degradation) {
      binding.fallback_translators = MakeFallbacks(config.translator);
    }
    binding.period = Millis(config.period_ms);
    if (file_driver != nullptr) binding.drivers.push_back(file_driver.get());
    if (exec_driver != nullptr) binding.drivers.push_back(exec_driver.get());
    runner.AddQuery(std::move(binding));

    // Crash-safe restart: observe what the kernel already holds (nice
    // values, RT classes, surviving Lachesis cgroups from a previous
    // incarnation) and seed the delta cache from it, so an unchanged
    // schedule costs zero operations on the first tick and orphaned
    // groups are adopted instead of fought.
    if (config.reconcile && !dry_run) {
      if (file_driver != nullptr) file_driver->Poll(executor.Now());
      if (exec_driver != nullptr) exec_driver->Poll(executor.Now());
      const std::size_t seeded = runner.ReconcileWithBackend();
      std::printf("lachesisd: reconciled %zu kernel state entries, adopted "
                  "%zu cgroups\n",
                  seeded, runner.delta().adopted_groups());
    }

    long tick = 0;
    runner.SetTickObserver([&tick, &config, &dump_trace, &write_metrics](
                               const core::RunnerTickInfo& info) {
      std::printf(
          "tick %ld @%.3fs: policies=%d ops applied=%llu skipped=%llu "
          "errors=%llu suppressed=%llu%s%s\n",
          tick++, static_cast<double>(info.now) / 1e9, info.policies_run,
          static_cast<unsigned long long>(info.delta.applied),
          static_cast<unsigned long long>(info.delta.skipped),
          static_cast<unsigned long long>(info.delta.errors),
          static_cast<unsigned long long>(info.delta.suppressed),
          info.open_breakers > 0 ? " [breaker open]" : "",
          info.degraded_bindings > 0 ? " [degraded]" : "");
      if (g_trace_requested != 0) {
        g_trace_requested = 0;
        dump_trace("SIGUSR1");
      }
      if (config.trace_every_ticks > 0 &&
          tick % config.trace_every_ticks == 0) {
        dump_trace("periodic");
      }
      if (tick % config.metrics_every_ticks == 0) write_metrics();
    });

    // Half a period of slack so startup latency cannot push the Nth tick
    // past the deadline.
    const SimTime until =
        iterations < 0 ? std::numeric_limits<SimTime>::max()
                       : executor.Now() +
                             iterations * Millis(config.period_ms) +
                             Millis(config.period_ms) / 2;
    runner.Start(until);
    executor.Run(until);

    if (runtime != nullptr) {
      runtime->Stop(/*drain=*/false);
      for (std::size_t q = 0; q < runtime->query_count(); ++q) {
        std::printf(
            "lachesisd: native query '%s': source=%llu ingested=%llu "
            "emitted=%llu\n",
            runtime->query_name(q).c_str(),
            static_cast<unsigned long long>(runtime->SourceEmitted(q)),
            static_cast<unsigned long long>(runtime->TotalIngested(q)),
            static_cast<unsigned long long>(runtime->TotalEmitted(q)));
      }
    }

    const core::DeltaStats& totals = runner.delta_totals();
    std::printf(
        "lachesisd: %llu schedules, ops applied=%llu skipped=%llu "
        "errors=%llu suppressed=%llu\n",
        static_cast<unsigned long long>(runner.schedules_applied()),
        static_cast<unsigned long long>(totals.applied),
        static_cast<unsigned long long>(totals.skipped),
        static_cast<unsigned long long>(totals.errors),
        static_cast<unsigned long long>(totals.suppressed));
    if (!trace_path.empty()) dump_trace("exit");
    write_metrics();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lachesisd: %s\n", e.what());
    return 1;
  }
  return 0;
}
