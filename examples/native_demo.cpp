// Native Linux demo: the SAME control plane that drives the simulator --
// LachesisRunner + QueueSizePolicy + NiceTranslator -- running on real time
// against a real host. Spawns a tiny "SPE" of actual worker threads (named,
// like Storm executors), discovers them via /proc through a demo SpeDriver,
// then loops at 500 ms enforcing the schedule with setpriority (and, when a
// writable cgroup root is given, cgroupfs). The schedule-delta layer means
// the steady-state loop issues zero syscalls after the first tick.
//
// Run:
//   ./build/examples/native_demo [cgroup-root]
// Without a cgroup root only nice is exercised. Lowering nice below 0
// requires CAP_SYS_NICE/root; the demo degrades gracefully without it.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <sys/syscall.h>

#include "core/entities.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/translators.h"
#include "osctl/cgroupfs.h"
#include "osctl/linux_os_adapter.h"
#include "osctl/native_executor.h"
#include "osctl/nice.h"
#include "osctl/procfs.h"

using namespace lachesis;

namespace {

std::atomic<bool> g_stop{false};
std::atomic<std::uint64_t> g_work[3];

void Operator(int index, const char* name) {
  pthread_setname_np(pthread_self(), name);
  while (!g_stop.load(std::memory_order_relaxed)) {
    // Busy work standing in for tuple processing.
    volatile double x = 1.0;
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
    g_work[index].fetch_add(1, std::memory_order_relaxed);
  }
}

// Minimal driver over the demo threads: a queue-size metric that pretends
// "exec-heavy" has a deep input queue, so the QS policy boosts it.
class DemoDriver final : public core::SpeDriver {
 public:
  explicit DemoDriver(std::vector<core::EntityInfo> entities)
      : entities_(std::move(entities)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  std::vector<core::EntityInfo> Entities() override { return entities_; }
  const core::LogicalTopology& Topology(QueryId) override {
    return topology_;
  }
  [[nodiscard]] bool Provides(core::MetricId metric) const override {
    return metric == core::MetricId::kQueueSize;
  }
  double Fetch(core::MetricId, const core::EntityInfo& entity) override {
    return entity.path == "exec-heavy" ? 100.0 : 1.0;
  }

 private:
  std::string name_ = "native-demo";
  std::vector<core::EntityInfo> entities_;
  core::LogicalTopology topology_;
};

}  // namespace

int main(int argc, char** argv) {
  // 1. A miniature "engine": three operator threads with executor names.
  std::vector<std::thread> operators;
  operators.emplace_back(Operator, 0, "exec-ingest");
  operators.emplace_back(Operator, 1, "exec-heavy");
  operators.emplace_back(Operator, 2, "exec-sink");

  // 2. Driver-style discovery through public OS interfaces only.
  usleep(100 * 1000);
  const long pid = getpid();
  std::vector<core::EntityInfo> entities;
  for (const osctl::OsThreadInfo& info : osctl::FindThreadsByName(pid, "exec-")) {
    core::EntityInfo e;
    e.id = OperatorId(entities.size());
    e.path = info.comm;
    e.query_name = "native-demo";
    e.thread.os_tid = info.tid;
    entities.push_back(e);
    std::printf("discovered operator thread %-12s tid=%ld\n", info.comm.c_str(),
                info.tid);
  }
  if (entities.size() != 3) {
    std::fprintf(stderr, "expected 3 operator threads via /proc\n");
    g_stop = true;
    for (auto& t : operators) t.join();
    return 1;
  }
  DemoDriver driver(entities);

  // 3. The real control plane on the real OS: native executor + Linux
  //    adapter, policy and translator identical to the simulated runs.
  osctl::LinuxNiceController nice;
  const auto version = osctl::CgroupController::DetectVersion();
  osctl::CgroupController cgroups(
      argc > 1 ? argv[1] : "/tmp/lachesis-demo-cgroup", version);
  osctl::LinuxOsAdapter adapter(nice, cgroups);

  osctl::NativeControlExecutor executor;
  core::LachesisRunner runner(executor, adapter);
  core::PolicyBinding binding;
  binding.policy = std::make_unique<core::QueueSizePolicy>();
  // Anchor at 0 so the demo works without CAP_SYS_NICE.
  binding.translator =
      std::make_unique<core::NiceTranslator>(/*nice_best=*/0, /*nice_worst=*/19);
  binding.period = Millis(500);
  binding.drivers = {&driver};
  runner.AddQuery(std::move(binding));

  // 4. Observe the effect: under contention the boosted thread makes more
  //    progress per wall-clock second.
  for (auto& counter : g_work) counter = 0;
  const SimTime until = executor.Now() + Seconds(2);
  runner.Start(until);
  executor.Run(until);

  for (const core::EntityInfo& e : entities) {
    const auto value = nice.GetNice(e.thread.os_tid);
    std::printf("thread %-12s nice=%d\n", e.path.c_str(), value.value_or(999));
  }
  g_stop = true;
  for (auto& t : operators) t.join();
  const core::DeltaStats& totals = runner.delta_totals();
  std::printf(
      "%llu schedules; ops applied=%llu skipped=%llu errors=%llu "
      "(delta layer elides the steady state)\n",
      static_cast<unsigned long long>(runner.schedules_applied()),
      static_cast<unsigned long long>(totals.applied),
      static_cast<unsigned long long>(totals.skipped),
      static_cast<unsigned long long>(totals.errors));
  std::printf("work done in 2s: ingest=%llu heavy=%llu sink=%llu\n",
              static_cast<unsigned long long>(g_work[0]),
              static_cast<unsigned long long>(g_work[1]),
              static_cast<unsigned long long>(g_work[2]));
  std::printf("(on a loaded machine, exec-heavy finishes the most work)\n");
  return 0;
}
