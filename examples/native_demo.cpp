// Native Linux demo: the same translator stack driving a REAL host instead
// of the simulator. Spawns a tiny "SPE" of actual worker threads (named,
// like Storm executors), discovers them via /proc, then enforces a schedule
// with setpriority and -- when a writable cgroup root is given -- cgroupfs.
//
// Run:
//   ./build/examples/native_demo [cgroup-root]
// Without a cgroup root only nice is exercised. Lowering nice below 0
// requires CAP_SYS_NICE/root; the demo degrades gracefully without it.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/syscall.h>

#include "core/entities.h"
#include "core/normalize.h"
#include "core/schedule.h"
#include "core/translators.h"
#include "osctl/cgroupfs.h"
#include "osctl/linux_os_adapter.h"
#include "osctl/nice.h"
#include "osctl/procfs.h"

using namespace lachesis;

namespace {

std::atomic<bool> g_stop{false};
std::atomic<std::uint64_t> g_work[3];

void Operator(int index, const char* name) {
  pthread_setname_np(pthread_self(), name);
  while (!g_stop.load(std::memory_order_relaxed)) {
    // Busy work standing in for tuple processing.
    volatile double x = 1.0;
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
    g_work[index].fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // 1. A miniature "engine": three operator threads with executor names.
  std::vector<std::thread> operators;
  operators.emplace_back(Operator, 0, "exec-ingest");
  operators.emplace_back(Operator, 1, "exec-heavy");
  operators.emplace_back(Operator, 2, "exec-sink");

  // 2. Driver-style discovery through public OS interfaces only.
  usleep(100 * 1000);
  const long pid = getpid();
  std::vector<core::EntityInfo> entities;
  for (const osctl::OsThreadInfo& info : osctl::FindThreadsByName(pid, "exec-")) {
    core::EntityInfo e;
    e.id = OperatorId(entities.size());
    e.path = info.comm;
    e.query_name = "native-demo";
    e.thread.os_tid = info.tid;
    entities.push_back(e);
    std::printf("discovered operator thread %-12s tid=%ld\n", info.comm.c_str(),
                info.tid);
  }
  if (entities.size() != 3) {
    std::fprintf(stderr, "expected 3 operator threads via /proc\n");
    g_stop = true;
    for (auto& t : operators) t.join();
    return 1;
  }

  // 3. A schedule (what a QS policy would produce: boost "heavy") applied
  //    through the real-OS adapter.
  osctl::LinuxNiceController nice;
  const auto version = osctl::CgroupController::DetectVersion();
  osctl::CgroupController cgroups(
      argc > 1 ? argv[1] : "/tmp/lachesis-demo-cgroup", version);
  osctl::LinuxOsAdapter adapter(nice, cgroups);

  core::Schedule schedule;
  for (core::EntityInfo& e : entities) {
    const double priority = e.path == "exec-heavy" ? 100.0 : 1.0;
    schedule.entries.push_back({e, priority});
  }
  // Anchor at 0 so the demo works without CAP_SYS_NICE.
  core::NiceTranslator translator(/*nice_best=*/0, /*nice_worst=*/19);
  translator.Apply(schedule, adapter);

  for (const core::EntityInfo& e : entities) {
    const auto value = nice.GetNice(e.thread.os_tid);
    std::printf("thread %-12s nice=%d\n", e.path.c_str(),
                value.value_or(999));
  }

  // 4. Observe the effect: under contention the boosted thread makes more
  //    progress per wall-clock second.
  for (auto& counter : g_work) counter = 0;
  sleep(2);
  g_stop = true;
  for (auto& t : operators) t.join();
  std::printf("work done in 2s: ingest=%llu heavy=%llu sink=%llu\n",
              static_cast<unsigned long long>(g_work[0]),
              static_cast<unsigned long long>(g_work[1]),
              static_cast<unsigned long long>(g_work[2]));
  std::printf("(on a loaded machine, exec-heavy finishes the most work)\n");
  return 0;
}
