// Branch prioritization: the paper's Fig 2 scenario. The Linear Road query
// has two branches -- variable tolls (deliver congestion tolls to vehicles
// promptly) and accident alerts. A user-defined HIGH-LEVEL policy assigns
// static priorities to LOGICAL operators ("branch 1 over branch 2"); the
// transformation rule (Algorithm 2) maps them onto whatever physical DAG
// the engine deployed (here with fission of the toll branch), and the nice
// translator enforces them.
#include <cstdio>

#include "core/os_adapter.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/sim_driver.h"
#include "queries/linear_road.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

using namespace lachesis;

namespace {

struct BranchLatencies {
  double toll_ms = 0;
  double alert_ms = 0;
};

BranchLatencies Run(bool prioritize_tolls) {
  const SimTime duration = Seconds(30);
  sim::Simulator sim;
  sim::Machine node(sim, 4);
  spe::SpeInstance storm(spe::StormFlavor(), {&node}, "storm");

  queries::Workload lr = queries::MakeLinearRoad();
  spe::DeployOptions options;
  spe::DeployedQuery& query = storm.Deploy(lr.query, options);

  spe::ExternalSource source(sim, query.source_channels(), lr.generator, 42);
  source.Start(6500, duration);

  tsdb::TimeSeriesStore metrics;
  tsdb::Scraper scraper(sim, metrics, Seconds(1));
  scraper.AddInstance(storm);
  scraper.Start(duration);

  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  core::LachesisRunner lachesis(executor, os);
  core::SimSpeDriver driver(storm, metrics);
  if (prioritize_tolls) {
    // Branch 1 (seg_stats -> congestion -> var_toll -> toll sink) above
    // branch 2 (accident -> alert sink); shared prefix in between.
    using Ops = queries::LinearRoadOps;
    std::map<int, double> priorities{
        {Ops::kIngress, 5},   {Ops::kParse, 5},      {Ops::kDispatch, 5},
        {Ops::kSegStats, 10}, {Ops::kCongestion, 10}, {Ops::kVarToll, 10},
        {Ops::kTollEgress, 10}, {Ops::kAccident, 1},  {Ops::kAlertEgress, 1}};
    core::PolicyBinding binding;
    binding.policy = std::make_unique<core::LogicalPriorityPolicy>(
        std::map<std::string, std::map<int, double>>{{"lr", priorities}});
    binding.translator = std::make_unique<core::NiceTranslator>();
    binding.period = Seconds(1);
    binding.drivers = {&driver};
    lachesis.AddBinding(std::move(binding));
    lachesis.Start(duration);
  }

  sim.RunUntil(duration);

  BranchLatencies result;
  for (const spe::DeployedOp& op : query.ops) {
    if (op.op->config().role != spe::OperatorRole::kEgress) continue;
    const double mean_ms = op.op->egress().latency.mean() / 1e6;
    if (op.op->config().name.find("toll_sink") != std::string::npos) {
      result.toll_ms = mean_ms;
    } else {
      result.alert_ms = mean_ms;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("LR branch latencies under load (6500 t/s, 4 cores):\n");
  const BranchLatencies fair = Run(false);
  std::printf("  OS default   : tolls %9.2f ms | alerts %9.2f ms\n",
              fair.toll_ms, fair.alert_ms);
  const BranchLatencies custom = Run(true);
  std::printf("  branch policy: tolls %9.2f ms | alerts %9.2f ms\n",
              custom.toll_ms, custom.alert_ms);
  std::printf(
      "\nWith the high-level policy, toll notifications (branch 1) are served"
      "\nahead of accident alerts (branch 2), without touching the query.\n");
  return 0;
}
