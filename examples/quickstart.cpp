// Quickstart: deploy one query on a simulated edge node, attach Lachesis
// with the Queue-Size policy over the nice translator, and watch it beat
// default OS scheduling at a rate past the OS saturation point.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart
//
// Pass a path as argv[1] to also dump the Lachesis run's decision
// provenance as Chrome-trace JSON (load it in ui.perfetto.dev); sim runs
// use virtual timestamps, so the trace is deterministic.
#include <cstdio>

#include "core/os_adapter.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/sim_driver.h"
#include "obs/trace_export.h"
#include "queries/linear_road.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

using namespace lachesis;

namespace {

// Runs Linear Road at `rate` tuples/s for `duration`, optionally under
// Lachesis, and prints throughput and latency.
void Run(bool with_lachesis, double rate, SimTime duration,
         const char* trace_path = nullptr) {
  sim::Simulator sim;
  sim::Machine odroid(sim, /*num_cores=*/4);

  // 1. An SPE instance (Storm-flavored) and a deployed query.
  spe::SpeInstance storm(spe::StormFlavor(), {&odroid}, "storm");
  queries::Workload lr = queries::MakeLinearRoad();
  spe::DeployedQuery& query = storm.Deploy(lr.query, {});

  // 2. A Kafka-like data source feeding the ingress.
  spe::ExternalSource source(sim, query.source_channels(), lr.generator, 42);
  source.Start(rate, duration);

  // 3. The metric reporting pipeline (the SPE pushes to a Graphite-like
  //    store once per second; Lachesis only ever reads this store).
  tsdb::TimeSeriesStore metrics;
  tsdb::Scraper scraper(sim, metrics, Seconds(1));
  scraper.AddInstance(storm);
  scraper.Start(duration);

  // 4. Lachesis: driver + policy + translator, decisions every second.
  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  core::LachesisRunner lachesis(executor, os);
  core::SimSpeDriver driver(storm, metrics);
  if (with_lachesis) {
    core::PolicyBinding binding;
    binding.policy = std::make_unique<core::QueueSizePolicy>();
    binding.translator = std::make_unique<core::NiceTranslator>();
    binding.period = Seconds(1);
    binding.drivers = {&driver};
    lachesis.AddBinding(std::move(binding));
    lachesis.Start(duration);
  }

  sim.RunUntil(duration);

  if (with_lachesis && trace_path != nullptr &&
      obs::DumpChromeTrace(lachesis.recorder(), trace_path,
                           core::LachesisRunner::OpClassNameForObs)) {
    std::printf("wrote decision trace to %s\n", trace_path);
  }

  const double throughput =
      static_cast<double>(query.TotalIngested()) / ToSeconds(duration);
  RunningStat latency;
  for (auto* egress : query.Egresses()) latency.Merge(egress->latency);
  std::printf("%-12s  throughput %7.0f t/s   avg latency %10.2f ms\n",
              with_lachesis ? "LACHESIS-QS" : "OS default", throughput,
              latency.mean() / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Linear Road @ 6800 t/s on a 4-core edge node, 30 s:\n");
  Run(/*with_lachesis=*/false, 6800, Seconds(30));
  Run(/*with_lachesis=*/true, 6800, Seconds(30),
      argc > 1 ? argv[1] : nullptr);
  return 0;
}
