// Runtime policy switching (paper §4): Lachesis can "switch scheduling
// policies at runtime (by enabling one policy and disabling another), with
// the conditions of this switch programmed by the user".
//
// This example runs Linear Road under a SwitchablePolicy that uses QS while
// the system is healthy and switches to FCFS when any operator's
// head-of-line tuple grows older than a threshold (i.e. when bounding the
// maximum latency becomes more urgent than balancing queues).
#include <cstdio>

#include "core/os_adapter.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/sim_driver.h"
#include "queries/linear_road.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

using namespace lachesis;

int main() {
  const SimTime duration = Seconds(40);
  sim::Simulator sim;
  sim::Machine node(sim, 4);
  // Liebre flavor: exposes head-of-line tuple age, which FCFS needs.
  spe::SpeInstance liebre(spe::LiebreFlavor(), {&node}, "liebre");
  queries::Workload lr = queries::MakeLinearRoad();
  spe::DeployedQuery& query = liebre.Deploy(lr.query, {});

  // Ramp the offered load: healthy at first, overloaded after a second
  // source doubles the rate at t=20s.
  spe::ExternalSource gentle(sim, query.source_channels(), lr.generator, 1);
  gentle.Start(4000, duration);
  spe::ExternalSource burst(sim, query.source_channels(), lr.generator, 2);
  sim.ScheduleAt(Seconds(20), [&burst, duration] { burst.Start(4000, duration); });

  tsdb::TimeSeriesStore metrics;
  tsdb::Scraper scraper(sim, metrics, Seconds(1));
  scraper.AddInstance(liebre);
  scraper.Start(duration);

  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  core::LachesisRunner lachesis(executor, os);
  core::SimSpeDriver driver(liebre, metrics);

  // User-programmed switch condition: any head-of-line tuple older than
  // 250 ms selects FCFS (candidate 1); otherwise QS (candidate 0).
  std::vector<std::unique_ptr<core::SchedulingPolicy>> candidates;
  candidates.push_back(std::make_unique<core::QueueSizePolicy>());
  candidates.push_back(std::make_unique<core::FcfsPolicy>());
  auto switchable = std::make_unique<core::SwitchablePolicy>(
      std::move(candidates), [](const core::PolicyContext& ctx) -> std::size_t {
        double max_age = 0;
        ctx.ForEachEntity([&](core::SpeDriver& d, const core::EntityInfo& e) {
          max_age = std::max(
              max_age, ctx.provider->Value(d, core::MetricId::kHeadTupleAge,
                                           e.id));
        });
        return max_age > static_cast<double>(Millis(250)) ? 1 : 0;
      });
  core::SwitchablePolicy* policy = switchable.get();

  core::PolicyBinding binding;
  binding.policy = std::move(switchable);
  binding.translator = std::make_unique<core::NiceTranslator>();
  binding.period = Seconds(1);
  binding.drivers = {&driver};
  lachesis.AddBinding(std::move(binding));
  lachesis.Start(duration);

  // Report the active policy once per simulated second.
  std::printf("t(s)  active policy\n");
  for (SimTime t = Seconds(2); t <= duration; t += Seconds(2)) {
    sim.ScheduleAt(t, [t, policy] {
      std::printf("%4lld  %s\n", static_cast<long long>(t / kSecond),
                  policy->active() == 0 ? "queue-size" : "fcfs");
    });
  }
  sim.RunUntil(duration);

  RunningStat latency;
  for (auto* egress : query.Egresses()) latency.Merge(egress->latency);
  std::printf(
      "\nThe switch to FCFS happens when the 20s burst doubles the load.\n"
      "throughput %.0f t/s, avg latency %.2f ms\n",
      static_cast<double>(query.TotalIngested()) / ToSeconds(duration),
      latency.mean() / 1e6);
  return 0;
}
