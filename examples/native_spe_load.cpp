// native_spe_load: self-contained load generator / soak harness for the
// native SPE executor under the real kernel's CFS.
//
// Deploys two queries on spe::NativeRuntime -- a light chain that the
// offered rate sustains and a heavy chain with a costly bottleneck
// operator -- then runs the standard LachesisRunner control loop against
// them through osctl::NativeRuntimeDriver: every period the driver scrapes
// the executor's live metric registry and the policy's schedule is applied
// to the executor's real threads (nice by default). This is the soak
// ci/run_native_smoke.sh runs: without privileges it uses a no-op counting
// adapter (scheduling decisions still flow; the kernel is not touched),
// with privileges (--real-os) it drives the LinuxOsAdapter.
//
// Usage:
//   native_spe_load [--seconds S] [--rate TPS] [--heavy-rate TPS]
//                   [--heavy-cost-us C] [--queue-cap N] [--period-ms M]
//                   [--policy P] [--translator T] [--pin CPU[,CPU...]]
//                   [--real-os]
//
// Prints per-query throughput from the runtime's counters plus the
// *scraped* throughput recomputed from the driver's time-series store, and
// exits nonzero when no traffic flowed (self-gating for CI).
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/runner.h"
#include "core/translators.h"
#include "osctl/cgroupfs.h"
#include "osctl/linux_os_adapter.h"
#include "osctl/native_executor.h"
#include "osctl/native_runtime_driver.h"
#include "osctl/nice.h"
#include "spe/native_runtime.h"

using namespace lachesis;

namespace {

// Counts scheduling operations without touching the OS: the unprivileged
// soak still exercises policy -> translator -> delta -> adapter end to end.
class CountingOsAdapter final : public core::OsAdapter {
 public:
  void SetNice(const core::ThreadHandle&, int) override { ++nice_ops; }
  void SetGroupShares(const std::string&, std::uint64_t) override {
    ++group_ops;
  }
  void MoveToGroup(const core::ThreadHandle&, const std::string&) override {
    ++group_ops;
  }
  void SetRtPriority(const core::ThreadHandle&, int) override { ++rt_ops; }
  std::uint64_t nice_ops = 0;
  std::uint64_t group_ops = 0;
  std::uint64_t rt_ops = 0;
};

std::vector<int> ParsePinList(const char* arg) {
  std::vector<int> cpus;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) cpus.push_back(std::stoi(token));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return cpus;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  double rate = 1000.0;
  double heavy_rate = 500.0;
  long heavy_cost_us = 200;
  std::size_t queue_cap = 1024;
  long period_ms = 250;
  std::string policy_name = "queue-size";
  std::string translator_name = "nice";
  std::vector<int> pin_cpus;
  bool real_os = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = std::stod(next("--seconds"));
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      rate = std::stod(next("--rate"));
    } else if (std::strcmp(argv[i], "--heavy-rate") == 0) {
      heavy_rate = std::stod(next("--heavy-rate"));
    } else if (std::strcmp(argv[i], "--heavy-cost-us") == 0) {
      heavy_cost_us = std::stol(next("--heavy-cost-us"));
    } else if (std::strcmp(argv[i], "--queue-cap") == 0) {
      queue_cap = static_cast<std::size_t>(std::stoul(next("--queue-cap")));
    } else if (std::strcmp(argv[i], "--period-ms") == 0) {
      period_ms = std::stol(next("--period-ms"));
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      policy_name = next("--policy");
    } else if (std::strcmp(argv[i], "--translator") == 0) {
      translator_name = next("--translator");
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      pin_cpus = ParsePinList(next("--pin"));
    } else if (std::strcmp(argv[i], "--real-os") == 0) {
      real_os = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  try {
    spe::NativeRuntimeOptions rt_options;
    rt_options.name = "native-load";
    rt_options.pin_cpus = pin_cpus;
    spe::NativeRuntime runtime(rt_options);

    // Light chain: sustained at the offered rate; the filter halves the
    // stream so per-operator rates are structurally distinct.
    spe::LogicalQuery light;
    light.name = "light";
    {
      const int in = light.Add(spe::MakeIngress("l.in", Micros(5)));
      const int filter = light.Add(spe::MakeTransform(
          "l.filter", Micros(20), [] {
            return std::make_unique<spe::FnLogic>(
                [](const spe::Tuple& t, std::vector<spe::Tuple>& out) {
                  if (t.key % 2 == 0) out.push_back(t);
                });
          }));
      const int sink = light.Add(spe::MakeEgress("l.out", Micros(5)));
      light.Connect(in, filter);
      light.Connect(filter, sink);
    }
    spe::NativeDeployOptions light_deploy;
    light_deploy.source_rate_tps = rate;
    light_deploy.queue_capacity = queue_cap;
    runtime.AddQuery(light, light_deploy);

    // Heavy chain: the bottleneck operator saturates first.
    spe::LogicalQuery heavy;
    heavy.name = "heavy";
    {
      const int in = heavy.Add(spe::MakeIngress("h.in", Micros(5)));
      const int work = heavy.Add(
          spe::MakeTransform("h.work", Micros(heavy_cost_us), nullptr));
      const int sink = heavy.Add(spe::MakeEgress("h.out", Micros(5)));
      heavy.Connect(in, work);
      heavy.Connect(work, sink);
    }
    spe::NativeDeployOptions heavy_deploy;
    heavy_deploy.source_rate_tps = heavy_rate;
    heavy_deploy.queue_capacity = queue_cap;
    runtime.AddQuery(heavy, heavy_deploy);

    runtime.Start();
    osctl::NativeRuntimeDriver driver(runtime);

    CountingOsAdapter counting_os;
    osctl::LinuxNiceController nice;
    osctl::LinuxRtController rt;
    osctl::LinuxDeadlineController deadline;
    osctl::LinuxAffinityController affinity;
    osctl::CgroupController cgroups("/tmp/native-spe-load-cgroup",
                                    osctl::CgroupController::DetectVersion());
    osctl::LinuxOsAdapter linux_os(nice, cgroups, &rt, &deadline, &affinity);
    core::OsAdapter& os = real_os ? static_cast<core::OsAdapter&>(linux_os)
                                  : counting_os;

    osctl::NativeControlExecutor executor;
    core::LachesisRunner runner(executor,
                                os, static_cast<std::uint64_t>(::getpid()));
    core::PolicyBinding binding;
    binding.policy = policy_name == "fcfs"
                         ? std::unique_ptr<core::SchedulingPolicy>(
                               std::make_unique<core::FcfsPolicy>())
                     : policy_name == "highest-rate"
                         ? std::unique_ptr<core::SchedulingPolicy>(
                               std::make_unique<core::HighestRatePolicy>())
                         : std::make_unique<core::QueueSizePolicy>();
    binding.translator =
        translator_name == "cpu.shares"
            ? std::unique_ptr<core::Translator>(
                  std::make_unique<core::CpuSharesTranslator>())
            : std::make_unique<core::NiceTranslator>();
    binding.period = Millis(period_ms);
    binding.drivers = {&driver};
    runner.AddQuery(std::move(binding));

    int ticks = 0;
    runner.SetTickObserver(
        [&ticks](const core::RunnerTickInfo&) { ++ticks; });

    const SimTime until =
        executor.Now() + static_cast<SimTime>(seconds * 1e9);
    runner.Start(until);
    executor.Run(until);
    runtime.Stop(/*drain=*/false);

    // Runtime-counter truth.
    std::uint64_t total_ingested = 0;
    for (std::size_t q = 0; q < runtime.query_count(); ++q) {
      const std::uint64_t ingested = runtime.TotalIngested(q);
      total_ingested += ingested;
      std::printf(
          "native_spe_load: query %s: source=%llu ingested=%llu emitted=%llu "
          "throughput_tps=%.1f\n",
          runtime.query_name(q).c_str(),
          static_cast<unsigned long long>(runtime.SourceEmitted(q)),
          static_cast<unsigned long long>(ingested),
          static_cast<unsigned long long>(runtime.TotalEmitted(q)),
          static_cast<double>(ingested) / seconds);
    }
    // Scraped truth: recompute ingress throughput from the driver's store,
    // proving the metric registry -> scrape -> tsdb pipeline carried the
    // traffic (what the CI soak asserts).
    double scraped_tps = 0;
    for (const core::EntityInfo& e : driver.Entities()) {
      if (!e.is_ingress) continue;
      const auto d = driver.store().Delta(e.path + ".tuples_in",
                                          static_cast<SimDuration>(seconds * 1e9));
      if (d) scraped_tps += *d / seconds;
    }
    std::printf("native_spe_load: ticks=%d nice_ops=%llu pin_failures=%d\n",
                ticks, static_cast<unsigned long long>(counting_os.nice_ops),
                runtime.pin_failures());
    std::printf("native_spe_load: scraped_throughput_tps=%.1f\n", scraped_tps);
    if (total_ingested == 0 || scraped_tps <= 0) {
      std::fprintf(stderr, "native_spe_load: FAIL: no traffic flowed\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "native_spe_load: %s\n", e.what());
    return 1;
  }
  return 0;
}
