// Multi-SPE scheduling (the paper's headline G5 capability, §6.6): one
// Lachesis instance schedules queries running in THREE different engines
// concurrently on a shared server -- per-query cgroups with equal
// cpu.shares plus QS-driven nice within each query.
#include <cstdio>

#include "core/os_adapter.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/sim_driver.h"
#include "queries/linear_road.h"
#include "queries/synthetic.h"
#include "queries/voip_stream.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

using namespace lachesis;

int main() {
  const SimTime duration = Seconds(30);
  sim::Simulator sim;
  sim::Machine server(sim, /*num_cores=*/8);

  // Three engines on the same host.
  spe::SpeInstance storm(spe::StormFlavor(), {&server}, "storm");
  spe::SpeInstance flink(spe::FlinkFlavor(), {&server}, "flink");
  spe::SpeInstance liebre(spe::LiebreFlavor(), {&server}, "liebre");

  std::vector<std::unique_ptr<spe::ExternalSource>> sources;
  const auto feed = [&](spe::DeployedQuery& q, const spe::TupleGenerator& gen,
                        double rate) {
    sources.push_back(std::make_unique<spe::ExternalSource>(
        sim, q.source_channels(), gen, 1000 + sources.size()));
    sources.back()->Start(rate, duration);
  };

  queries::Workload vs = queries::MakeVoipStream();
  spe::DeployedQuery& storm_vs = storm.Deploy(vs.query, {});
  feed(storm_vs, vs.generator, 1100);

  queries::Workload lr = queries::MakeLinearRoad();
  spe::DeployedQuery& flink_lr = flink.Deploy(lr.query, {});
  feed(flink_lr, lr.generator, 1800);

  queries::SyntheticConfig config;
  config.num_queries = 4;
  std::vector<spe::DeployedQuery*> syn_queries;
  for (auto& workload : queries::MakeSynthetic(config)) {
    spe::DeployedQuery& q = liebre.Deploy(workload.query, {});
    feed(q, workload.generator, 400);
    syn_queries.push_back(&q);
  }

  // One metric store scraped from all engines; one Lachesis over three
  // drivers.
  tsdb::TimeSeriesStore metrics;
  tsdb::Scraper scraper(sim, metrics, Seconds(1));
  scraper.AddInstance(storm);
  scraper.AddInstance(flink);
  scraper.AddInstance(liebre);
  scraper.Start(duration);

  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  core::LachesisRunner lachesis(executor, os);
  core::SimSpeDriver storm_driver(storm, metrics);
  core::SimSpeDriver flink_driver(flink, metrics);
  core::SimSpeDriver liebre_driver(liebre, metrics);
  core::PolicyBinding binding;
  binding.policy = std::make_unique<core::QueueSizePolicy>();
  binding.translator = std::make_unique<core::QuerySharesPlusNiceTranslator>();
  binding.period = Seconds(1);
  binding.drivers = {&storm_driver, &flink_driver, &liebre_driver};
  lachesis.AddBinding(std::move(binding));
  lachesis.Start(duration);

  sim.RunUntil(duration);

  const auto report = [&](const char* label, spe::DeployedQuery& q) {
    RunningStat latency;
    for (auto* egress : q.Egresses()) latency.Merge(egress->latency);
    std::printf("  %-12s throughput %7.0f t/s   avg latency %8.2f ms\n", label,
                static_cast<double>(q.TotalIngested()) / ToSeconds(duration),
                latency.mean() / 1e6);
  };
  std::printf("One Lachesis scheduling three engines on an 8-core server:\n");
  report("storm/VS", storm_vs);
  report("flink/LR", flink_lr);
  for (std::size_t i = 0; i < syn_queries.size(); ++i) {
    report(("liebre/" + syn_queries[i]->name).c_str(), *syn_queries[i]);
  }
  std::printf("(schedules applied: %llu)\n",
              static_cast<unsigned long long>(lachesis.schedules_applied()));
  return 0;
}
