// Goal G3 (paper §3.1): "schedule multiple queries at a time, possibly
// optimizing different goals for each query". Two queries share one node and
// one Lachesis instance, but each gets its own policy, period AND
// translator: the latency-critical Linear Road query is driven by FCFS over
// nice every 500 ms, while a batchy synthetic query is driven by QS over
// cpu.shares every 2 s -- one runner, two bindings, entity filters.
#include <cstdio>

#include "core/os_adapter.h"
#include "core/policies.h"
#include "core/runner.h"
#include "core/sim_executor.h"
#include "core/sim_driver.h"
#include "queries/linear_road.h"
#include "queries/synthetic.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/runtime.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

using namespace lachesis;

int main() {
  const SimTime duration = Seconds(30);
  sim::Simulator sim;
  sim::Machine node(sim, 4);
  spe::SpeInstance liebre(spe::LiebreFlavor(), {&node}, "liebre");

  queries::Workload lr = queries::MakeLinearRoad();
  spe::DeployedQuery& lr_query = liebre.Deploy(lr.query, {});
  spe::ExternalSource lr_source(sim, lr_query.source_channels(), lr.generator, 1);
  lr_source.Start(3500, duration);

  queries::SyntheticConfig config;
  config.num_queries = 1;
  auto syn = queries::MakeSynthetic(config);
  spe::DeployedQuery& syn_query = liebre.Deploy(syn[0].query, {});
  spe::ExternalSource syn_source(sim, syn_query.source_channels(),
                                 syn[0].generator, 2);
  syn_source.Start(2500, duration);

  tsdb::TimeSeriesStore metrics;
  tsdb::Scraper scraper(sim, metrics, Seconds(1));
  scraper.AddInstance(liebre);
  scraper.Start(duration);

  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  core::LachesisRunner lachesis(executor, os);
  core::SimSpeDriver driver(liebre, metrics);

  const QueryId lr_id = lr_query.id;
  {
    core::PolicyBinding binding;  // latency goal for LR
    binding.policy = std::make_unique<core::FcfsPolicy>();
    binding.translator = std::make_unique<core::NiceTranslator>();
    binding.period = Millis(500);
    binding.drivers = {&driver};
    binding.filter = [lr_id](const core::EntityInfo& e) {
      return e.query == lr_id;
    };
    lachesis.AddBinding(std::move(binding));
  }
  const QueryId syn_id = syn_query.id;
  {
    core::PolicyBinding binding;  // throughput goal for SYN
    binding.policy = std::make_unique<core::QueueSizePolicy>();
    binding.translator = std::make_unique<core::CpuSharesTranslator>();
    binding.period = Seconds(2);
    binding.drivers = {&driver};
    binding.filter = [syn_id](const core::EntityInfo& e) {
      return e.query == syn_id;
    };
    lachesis.AddBinding(std::move(binding));
  }
  lachesis.Start(duration);
  sim.RunUntil(duration);

  const auto report = [&](const char* label, spe::DeployedQuery& query) {
    RunningStat latency;
    for (auto* egress : query.Egresses()) latency.Merge(egress->latency);
    std::printf("  %-4s throughput %6.0f t/s   avg latency %8.2f ms\n", label,
                static_cast<double>(query.TotalIngested()) / ToSeconds(duration),
                latency.mean() / 1e6);
  };
  std::printf("Two queries, two policies, two translators, one Lachesis:\n");
  report("LR", lr_query);
  report("SYN", syn_query);
  std::printf("(schedules applied: %llu -- FCFS every 500 ms, QS every 2 s)\n",
              static_cast<unsigned long long>(lachesis.schedules_applied()));
  return 0;
}
