#include "obs/recorder.h"

#include <algorithm>

namespace lachesis::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTickBegin: return "TickBegin";
    case EventKind::kTickEnd: return "TickEnd";
    case EventKind::kMetricSample: return "MetricSample";
    case EventKind::kScheduleComputed: return "ScheduleComputed";
    case EventKind::kTranslatorPicked: return "TranslatorPicked";
    case EventKind::kOpApplied: return "OpApplied";
    case EventKind::kOpElided: return "OpElided";
    case EventKind::kOpSuppressed: return "OpSuppressed";
    case EventKind::kOpError: return "OpError";
    case EventKind::kBreakerTransition: return "BreakerTransition";
    case EventKind::kBackoffArmed: return "BackoffArmed";
    case EventKind::kDegradationMove: return "DegradationMove";
    case EventKind::kReconcile: return "Reconcile";
    case EventKind::kFaultInjected: return "FaultInjected";
    case EventKind::kQueryAttached: return "QueryAttached";
    case EventKind::kQueryDetached: return "QueryDetached";
  }
  return "?";
}

StrId Recorder::Intern(std::string_view s) {
  if (s.empty()) return kNoStr;
  std::lock_guard<std::mutex> lock(mutex_);
  return interner_.Intern(s);
}

StrId Recorder::Lookup(std::string_view s) const {
  if (s.empty()) return kNoStr;
  std::lock_guard<std::mutex> lock(mutex_);
  return interner_.Lookup(s);
}

std::string Recorder::Name(StrId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::string(interner_.View(id));
}

void Recorder::SetRingCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  EventRing fresh(capacity);
  const std::vector<Event> events = ring_.Snapshot();
  const std::size_t keep = std::min(events.size(), fresh.capacity());
  for (std::size_t i = events.size() - keep; i < events.size(); ++i) {
    fresh.Push(events[i]);
  }
  ring_ = std::move(fresh);
}

void Recorder::Push(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_++;
  ring_.Push(event);
}

// Interning takes the same mutex as Push, so hooks intern first and push
// second (two short critical sections instead of one recursive one).
void Recorder::TickBegin(SimTime now, std::uint64_t tick_index) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kTickBegin;
  e.i0 = static_cast<std::int32_t>(tick_index & 0x7fffffff);
  e.v0 = static_cast<std::int64_t>(tick_index);
  Push(e);
}

void Recorder::TickEnd(SimTime now, const TickSummary& summary) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kTickEnd;
  e.i0 = summary.policies_run;
  e.i1 = (summary.open_breakers & 0xffff) |
         ((summary.degraded_bindings & 0x7fff) << 16);
  e.v0 = PackTickCounts(summary.ops_applied, summary.ops_skipped,
                        summary.ops_errors, summary.ops_suppressed);
  Push(e);
}

void Recorder::MetricSample(SimTime now, std::string_view entity,
                            std::string_view metric, double value) {
  if (!verbose()) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kMetricSample;
  e.d0 = value;
  e.target = Intern(entity);
  e.detail = Intern(metric);
  Push(e);
}

void Recorder::ScheduleComputed(SimTime now, int binding, int entries,
                                std::string_view policy) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kScheduleComputed;
  e.i0 = binding;
  e.i1 = entries;
  e.detail = Intern(policy);
  Push(e);
}

void Recorder::TranslatorPicked(SimTime now, int binding, int rung,
                                std::string_view translator) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kTranslatorPicked;
  e.i0 = binding;
  e.i1 = rung;
  e.detail = Intern(translator);
  Push(e);
}

void Recorder::Op(SimTime now, EventKind kind, int op_class,
                  std::string_view target, std::int64_t value,
                  std::string_view detail) {
  if (!enabled_) return;
  if (kind == EventKind::kOpElided && !verbose_) return;
  Event e;
  e.time = now;
  e.kind = kind;
  e.op_class = static_cast<std::uint8_t>(op_class);
  e.v0 = value;
  e.target = Intern(target);
  e.detail = Intern(detail);
  Push(e);
}

void Recorder::BreakerTransition(SimTime now, int op_class, int from_state,
                                 int to_state) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kBreakerTransition;
  e.op_class = static_cast<std::uint8_t>(op_class);
  e.i0 = from_state;
  e.i1 = to_state;
  Push(e);
}

void Recorder::BackoffArmed(SimTime now, int op_class, std::string_view target,
                            int failures, SimTime next_retry) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kBackoffArmed;
  e.op_class = static_cast<std::uint8_t>(op_class);
  e.i0 = failures;
  e.v0 = next_retry;
  e.target = Intern(target);
  Push(e);
}

void Recorder::DegradationMove(SimTime now, int binding, int from_rung,
                               int to_rung, std::string_view translator) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kDegradationMove;
  e.i0 = binding;
  e.i1 = to_rung;
  e.v0 = from_rung;
  e.detail = Intern(translator);
  Push(e);
}

void Recorder::Reconcile(SimTime now, std::int64_t seeded,
                         std::int64_t adopted) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kReconcile;
  e.i0 = static_cast<std::int32_t>(adopted);
  e.v0 = seeded;
  Push(e);
}

void Recorder::FaultInjected(SimTime now, int op_class,
                             std::string_view target,
                             std::string_view fault_kind) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kFaultInjected;
  e.op_class = static_cast<std::uint8_t>(op_class);
  e.target = Intern(target);
  e.detail = Intern(fault_kind);
  Push(e);
}

void Recorder::QueryAttached(SimTime now, int binding) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kQueryAttached;
  e.i0 = binding;
  Push(e);
}

void Recorder::QueryDetached(SimTime now, int binding) {
  if (!enabled_) return;
  Event e;
  e.time = now;
  e.kind = EventKind::kQueryDetached;
  e.i0 = binding;
  Push(e);
}

std::vector<Event> Recorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.Snapshot();
}

// Both counters derive from next_seq_ (events ever recorded), not the
// ring's own accounting, so a SetRingCapacity resize cannot skew them.
std::uint64_t Recorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - ring_.size();
}

}  // namespace lachesis::obs
