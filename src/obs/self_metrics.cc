#include "obs/self_metrics.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace lachesis::obs {

namespace {

// Counters are integral in practice; render them without a decimal point so
// the textfile is stable and diff-friendly. Non-integral values fall back to
// %.9g (C locale assumed, as elsewhere in the tree).
std::string FormatValue(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

const MetricValue* FindValue(const SelfMetricsSnapshot& snapshot,
                             std::string_view name) {
  for (const MetricValue& m : snapshot) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace

const MetricDef* FindMetricDef(std::string_view name) {
  for (const MetricDef& def : kSelfMetricCatalog) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

std::string RenderPrometheusTextfile(const SelfMetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.size() * 96);
  for (const MetricDef& def : kSelfMetricCatalog) {
    const MetricValue* value = FindValue(snapshot, def.name);
    if (value == nullptr) continue;
    out += "# HELP ";
    out += def.name;
    out += " ";
    out += def.help;
    out += "\n# TYPE ";
    out += def.name;
    out += " ";
    out += def.type;
    out += "\n";
    out += def.name;
    out += " ";
    out += FormatValue(value->value);
    out += "\n";
  }
  for (const MetricValue& m : snapshot) {
    if (FindMetricDef(m.name) != nullptr) continue;
    out += "# HELP ";
    out += m.name;
    out += " (uncataloged)\n";
    out += m.name;
    out += " ";
    out += FormatValue(m.value);
    out += "\n";
  }
  return out;
}

std::vector<std::string> CatalogDiff(const SelfMetricsSnapshot& snapshot) {
  std::vector<std::string> problems;
  std::set<std::string> reported;
  for (const MetricValue& m : snapshot) {
    reported.insert(m.name);
    if (FindMetricDef(m.name) == nullptr) {
      problems.push_back("metric not in catalog: " + m.name);
    }
  }
  for (const MetricDef& def : kSelfMetricCatalog) {
    if (reported.count(def.name) == 0) {
      problems.push_back(std::string("cataloged metric never reported: ") +
                         def.name);
    }
  }
  return problems;
}

bool WritePrometheusTextfile(const SelfMetricsSnapshot& snapshot,
                             const std::string& path) {
  const std::string body = RenderPrometheusTextfile(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace lachesis::obs
