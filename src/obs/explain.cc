#include "obs/explain.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace lachesis::obs {

namespace {

// Fixed-point seconds with µs precision: deterministic, locale-free.
std::string FormatTime(SimTime t) {
  char buf[48];
  const std::int64_t us = t / 1000;
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64 "s", us / 1000000,
                us % 1000000 < 0 ? -(us % 1000000) : us % 1000000);
  return buf;
}

std::string ClassName(int cls, OpClassNameFn fn) {
  if (cls == kNoOpClass) return "";
  if (fn != nullptr) return fn(cls);
  return "class" + std::to_string(cls);
}

const char* BreakerStateName(int state) {
  switch (state) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half-open";
  }
  return "?";
}

}  // namespace

std::string FormatEvent(const Recorder& recorder, const Event& e,
                        OpClassNameFn op_class_name) {
  char head[64];
  std::snprintf(head, sizeof(head), "#%" PRIu64 " %s ", e.seq,
                FormatTime(e.time).c_str());
  std::string line = head;
  const std::string target = recorder.Name(e.target);
  const std::string detail = recorder.Name(e.detail);
  const std::string cls = ClassName(e.op_class, op_class_name);
  char buf[160];
  switch (e.kind) {
    case EventKind::kTickBegin:
      std::snprintf(buf, sizeof(buf), "tick %" PRId64 " begins", e.v0);
      break;
    case EventKind::kTickEnd:
      std::snprintf(buf, sizeof(buf),
                    "tick ends: policies=%d applied=%" PRIu64
                    " skipped=%" PRIu64 " errors=%" PRIu64
                    " suppressed=%" PRIu64 " open_breakers=%d degraded=%d",
                    e.i0, UnpackTickCount(e.v0, 0), UnpackTickCount(e.v0, 1),
                    UnpackTickCount(e.v0, 2), UnpackTickCount(e.v0, 3),
                    e.i1 & 0xffff, (e.i1 >> 16) & 0x7fff);
      break;
    case EventKind::kMetricSample:
      std::snprintf(buf, sizeof(buf), "metric %s(%s) = %.6g", detail.c_str(),
                    target.c_str(), e.d0);
      break;
    case EventKind::kScheduleComputed:
      std::snprintf(buf, sizeof(buf),
                    "policy %s computed schedule for binding %d (%d entries)",
                    detail.c_str(), e.i0, e.i1);
      break;
    case EventKind::kTranslatorPicked:
      std::snprintf(buf, sizeof(buf),
                    "binding %d applies via translator %s (rung %d)", e.i0,
                    detail.c_str(), e.i1);
      break;
    case EventKind::kOpApplied:
      std::snprintf(buf, sizeof(buf), "%s(%s) applied: value=%" PRId64 "%s%s",
                    cls.c_str(), target.c_str(), e.v0,
                    detail.empty() ? "" : " ", detail.c_str());
      break;
    case EventKind::kOpElided:
      std::snprintf(buf, sizeof(buf),
                    "%s(%s) elided: unchanged value=%" PRId64, cls.c_str(),
                    target.c_str(), e.v0);
      break;
    case EventKind::kOpSuppressed:
      std::snprintf(buf, sizeof(buf),
                    "%s(%s) suppressed by backoff/breaker (wanted %" PRId64
                    ")",
                    cls.c_str(), target.c_str(), e.v0);
      break;
    case EventKind::kOpError:
      std::snprintf(buf, sizeof(buf), "%s(%s) FAILED: %s", cls.c_str(),
                    target.c_str(), detail.c_str());
      break;
    case EventKind::kBreakerTransition:
      std::snprintf(buf, sizeof(buf), "breaker[%s] %s -> %s", cls.c_str(),
                    BreakerStateName(e.i0), BreakerStateName(e.i1));
      break;
    case EventKind::kBackoffArmed:
      std::snprintf(buf, sizeof(buf),
                    "backoff[%s] armed for %s: failures=%d retry at %s",
                    cls.c_str(), target.c_str(), e.i0,
                    FormatTime(e.v0).c_str());
      break;
    case EventKind::kDegradationMove:
      std::snprintf(buf, sizeof(buf),
                    "binding %d degradation rung %" PRId64 " -> %d (now %s)",
                    e.i0, e.v0, e.i1, detail.c_str());
      break;
    case EventKind::kReconcile:
      std::snprintf(buf, sizeof(buf),
                    "reconciled with backend: seeded=%" PRId64
                    " adopted_groups=%d",
                    e.v0, e.i0);
      break;
    case EventKind::kFaultInjected:
      std::snprintf(buf, sizeof(buf), "fault injected: %s on %s(%s)",
                    detail.c_str(), cls.c_str(), target.c_str());
      break;
    case EventKind::kQueryAttached:
      std::snprintf(buf, sizeof(buf), "query attached as binding %d", e.i0);
      break;
    case EventKind::kQueryDetached:
      std::snprintf(buf, sizeof(buf), "query detached from binding %d", e.i0);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s", EventKindName(e.kind));
      break;
  }
  line += buf;
  return line;
}

Explanation ExplainTarget(const Recorder& recorder, std::string_view target,
                          SimTime at, OpClassNameFn op_class_name) {
  Explanation out;
  out.target = std::string(target);
  out.at = at;

  const std::vector<Event> events = recorder.Snapshot();
  out.history_truncated = recorder.dropped() > 0;

  // Op classes that ever touched the target: breaker transitions of those
  // classes are part of the target's story (a suppression is explained by
  // the class breaker, not by anything the target did).
  std::map<int, bool> relevant_classes;
  const StrId target_id = recorder.Lookup(target);
  // kNoStr would also match events that carry no target at all (tick
  // boundaries, breaker transitions), so an unknown target stays empty.
  if (target_id != kNoStr) {
    for (const Event& e : events) {
      if (e.target == target_id && e.op_class != kNoOpClass) {
        relevant_classes[e.op_class] = true;
      }
    }
  }

  std::map<int, Explanation::AppliedValue> applied;  // by op class
  std::optional<Event> backoff;
  for (const Event& e : events) {
    if (e.time > at) break;  // ring is time-ordered (single control loop)
    const bool targets_me = e.target == target_id && target_id != kNoStr;
    const bool breaker_of_mine =
        e.kind == EventKind::kBreakerTransition &&
        relevant_classes.count(e.op_class) > 0;
    if (!targets_me && !breaker_of_mine) continue;
    out.trail.push_back(e);
    if (e.kind == EventKind::kOpApplied) {
      Explanation::AppliedValue v;
      v.op_class = ClassName(e.op_class, op_class_name);
      v.value = e.v0;
      v.detail = recorder.Name(e.detail);
      v.since = e.time;
      v.seq = e.seq;
      applied[e.op_class] = std::move(v);
    } else if (e.kind == EventKind::kBackoffArmed) {
      backoff = e;
    }
  }
  for (auto& [cls, value] : applied) out.applied.push_back(value);
  if (backoff && backoff->v0 > at) out.backing_off = backoff;

  // Render.
  std::string text = "explain " + out.target + " @" + [&] {
    char buf[48];
    const std::int64_t us = at / 1000;
    std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                  static_cast<long long>(us / 1000000),
                  static_cast<long long>(us % 1000000));
    return std::string(buf);
  }();
  text += "\n";
  if (out.trail.empty()) {
    text += "  no recorded events for this target";
    if (out.history_truncated) {
      text += " (ring dropped " + std::to_string(recorder.dropped()) +
              " older events)";
    }
    text += "\n";
  } else {
    for (const Event& e : out.trail) {
      text += "  " + FormatEvent(recorder, e, op_class_name) + "\n";
    }
    text += "  verdict:";
    if (out.applied.empty()) {
      text += " no operation ever applied to this target";
    } else {
      for (const auto& v : out.applied) {
        text += " " + v.op_class + "=" + std::to_string(v.value) +
                (v.detail.empty() ? "" : "(" + v.detail + ")") + " since " +
                FormatTime(v.since) + " [#" + std::to_string(v.seq) + "]";
      }
    }
    if (out.backing_off) {
      text += "; backing off until " + FormatTime(out.backing_off->v0);
    }
    if (out.history_truncated) {
      text += " (history truncated: " + std::to_string(recorder.dropped()) +
              " events evicted)";
    }
    text += "\n";
  }
  out.text = std::move(text);
  return out;
}

}  // namespace lachesis::obs
