#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

namespace lachesis::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Timestamps are microseconds with a fixed 3-digit nanosecond remainder --
// pure integer math so identical event streams serialize identically.
void AppendTs(std::string& out, SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000 < 0 ? -(ns % 1000) : ns % 1000);
  out += buf;
}

std::string ClassName(int cls, OpClassNameFn fn) {
  if (fn != nullptr) return fn(cls);
  return "class" + std::to_string(cls);
}

const char* BreakerStateName(int state) {
  switch (state) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half-open";
  }
  return "?";
}

// Incrementally builds the traceEvents array, one event per line.
class TraceWriter {
 public:
  TraceWriter() { out_ = "{\"traceEvents\":[\n"; }

  // All subsequent events carry this pid; fleet export gives each shard's
  // recorder its own process track (pid = shard + 1).
  void set_pid(int pid) { pid_ = pid; }

  // args entries are pre-rendered "\"key\":value" fragments.
  void Emit(char ph, std::string_view name, int tid, SimTime ts,
            const std::vector<std::string>& args, SimTime dur = -1,
            bool instant_scope = false) {
    Sep();
    out_ += "{\"ph\":\"";
    out_ += ph;
    out_ += "\",\"pid\":";
    out_ += std::to_string(pid_);
    out_ += ",\"tid\":";
    out_ += std::to_string(tid);
    out_ += ",\"ts\":";
    AppendTs(out_, ts);
    if (dur >= 0) {
      out_ += ",\"dur\":";
      AppendTs(out_, dur);
    }
    if (instant_scope) out_ += ",\"s\":\"t\"";
    out_ += ",\"name\":\"";
    AppendEscaped(out_, name);
    out_ += "\"";
    if (!args.empty()) {
      out_ += ",\"args\":{";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out_ += ",";
        out_ += args[i];
      }
      out_ += "}";
    }
    out_ += "}";
  }

  void EmitMeta(std::string_view meta_name, int tid, std::string_view value) {
    Sep();
    out_ += "{\"ph\":\"M\",\"pid\":";
    out_ += std::to_string(pid_);
    out_ += ",\"tid\":";
    out_ += std::to_string(tid);
    out_ += ",\"name\":\"";
    AppendEscaped(out_, meta_name);
    out_ += "\",\"args\":{\"name\":\"";
    AppendEscaped(out_, value);
    out_ += "\"}}";
  }

  std::string Finish() {
    out_ += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return std::move(out_);
  }

 private:
  void Sep() {
    if (!first_) out_ += ",\n";
    first_ = false;
  }

  std::string out_;
  bool first_ = true;
  int pid_ = 1;
};

std::string StrArg(std::string_view key, std::string_view value) {
  std::string out = "\"";
  out += key;
  out += "\":\"";
  AppendEscaped(out, value);
  out += "\"";
  return out;
}

std::string IntArg(std::string_view key, std::int64_t value) {
  std::string out = "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
  return out;
}

std::string DoubleArg(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%.9g",
                static_cast<int>(key.size()), key.data(), value);
  return buf;
}

// Emits one recorder's complete track set (metadata + events + dangling
// tick) into `w` under whatever pid `w` currently carries. Shared by the
// single-process and fleet renderers so both serialize identically.
void AppendRecorderTracks(TraceWriter& w, const Recorder& recorder,
                          std::string_view process_name,
                          OpClassNameFn op_class_name) {
  const std::vector<Event> events = recorder.Snapshot();

  // Pass 1: which tracks exist, and what to call them. Sorted by tid so the
  // metadata block is deterministic regardless of first-use order.
  std::map<int, std::string> tracks;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kTickBegin:
      case EventKind::kTickEnd:
        tracks.emplace(kTraceTidTicks, "control ticks");
        break;
      case EventKind::kBreakerTransition:
      case EventKind::kBackoffArmed:
      case EventKind::kFaultInjected:
        tracks.emplace(kTraceTidFaults, "faults & breakers");
        break;
      case EventKind::kReconcile:
      case EventKind::kQueryAttached:
      case EventKind::kQueryDetached:
        tracks.emplace(kTraceTidLifecycle, "lifecycle");
        break;
      case EventKind::kOpApplied:
      case EventKind::kOpElided:
      case EventKind::kOpSuppressed:
      case EventKind::kOpError:
        tracks.emplace(kTraceTidOpBase + e.op_class,
                       ClassName(e.op_class, op_class_name));
        break;
      case EventKind::kScheduleComputed:
      case EventKind::kTranslatorPicked:
      case EventKind::kDegradationMove:
        tracks.emplace(kTraceTidBindBase + e.i0,
                       "binding " + std::to_string(e.i0));
        break;
      case EventKind::kMetricSample:
        break;  // counters attach to the process, not a thread track
    }
  }

  w.EmitMeta("process_name", 0, process_name);
  for (const auto& [tid, name] : tracks) w.EmitMeta("thread_name", tid, name);

  // Pass 2: the events themselves, in recorded (seq) order.
  bool tick_open = false;
  SimTime tick_begin_ts = 0;
  std::int64_t tick_index = 0;
  std::uint64_t tick_begin_seq = 0;
  for (const Event& e : events) {
    const std::string target = recorder.Name(e.target);
    const std::string detail = recorder.Name(e.detail);
    switch (e.kind) {
      case EventKind::kTickBegin:
        tick_open = true;
        tick_begin_ts = e.time;
        tick_index = e.v0;
        tick_begin_seq = e.seq;
        break;
      case EventKind::kTickEnd: {
        std::vector<std::string> args = {
            IntArg("policies", e.i0),
            IntArg("applied", static_cast<std::int64_t>(UnpackTickCount(e.v0, 0))),
            IntArg("skipped", static_cast<std::int64_t>(UnpackTickCount(e.v0, 1))),
            IntArg("errors", static_cast<std::int64_t>(UnpackTickCount(e.v0, 2))),
            IntArg("suppressed",
                   static_cast<std::int64_t>(UnpackTickCount(e.v0, 3))),
            IntArg("open_breakers", e.i1 & 0xffff),
            IntArg("degraded", (e.i1 >> 16) & 0x7fff),
        };
        if (tick_open) {
          args.push_back(IntArg("index", tick_index));
          args.push_back(IntArg("seq", static_cast<std::int64_t>(tick_begin_seq)));
          w.Emit('X', "tick", kTraceTidTicks, tick_begin_ts, args,
                 e.time - tick_begin_ts);
          tick_open = false;
        } else {
          // The matching begin was evicted from the ring; keep the summary.
          args.push_back(IntArg("seq", static_cast<std::int64_t>(e.seq)));
          w.Emit('i', "tick end (begin evicted)", kTraceTidTicks, e.time, args,
                 -1, true);
        }
        // Per-tick counters render as graphs under the process.
        w.Emit('C', "delta ops", kTraceTidTicks, e.time,
               {IntArg("applied",
                       static_cast<std::int64_t>(UnpackTickCount(e.v0, 0))),
                IntArg("skipped",
                       static_cast<std::int64_t>(UnpackTickCount(e.v0, 1))),
                IntArg("errors",
                       static_cast<std::int64_t>(UnpackTickCount(e.v0, 2))),
                IntArg("suppressed",
                       static_cast<std::int64_t>(UnpackTickCount(e.v0, 3)))});
        w.Emit('C', "health", kTraceTidTicks, e.time,
               {IntArg("open_breakers", e.i1 & 0xffff),
                IntArg("degraded_bindings", (e.i1 >> 16) & 0x7fff)});
        break;
      }
      case EventKind::kMetricSample:
        w.Emit('C', "metric:" + detail, kTraceTidTicks, e.time,
               {DoubleArg(target, e.d0)});
        break;
      case EventKind::kScheduleComputed:
        w.Emit('i', "schedule: " + detail, kTraceTidBindBase + e.i0, e.time,
               {IntArg("entries", e.i1),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      case EventKind::kTranslatorPicked:
        w.Emit('i', "translator: " + detail, kTraceTidBindBase + e.i0, e.time,
               {IntArg("rung", e.i1),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      case EventKind::kOpApplied:
      case EventKind::kOpElided:
      case EventKind::kOpSuppressed: {
        const char* verb = e.kind == EventKind::kOpApplied ? "applied"
                           : e.kind == EventKind::kOpElided ? "elided"
                                                            : "suppressed";
        std::vector<std::string> args = {
            StrArg("target", target), IntArg("value", e.v0),
            IntArg("seq", static_cast<std::int64_t>(e.seq))};
        if (!detail.empty()) args.push_back(StrArg("detail", detail));
        w.Emit('i', ClassName(e.op_class, op_class_name) + " " + verb,
               kTraceTidOpBase + e.op_class, e.time, args, -1, true);
        break;
      }
      case EventKind::kOpError:
        w.Emit('i', ClassName(e.op_class, op_class_name) + " ERROR",
               kTraceTidOpBase + e.op_class, e.time,
               {StrArg("target", target), StrArg("error", detail),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      case EventKind::kBreakerTransition:
        w.Emit('i',
               "breaker[" + ClassName(e.op_class, op_class_name) + "] " +
                   BreakerStateName(e.i0) + " -> " + BreakerStateName(e.i1),
               kTraceTidFaults, e.time,
               {IntArg("seq", static_cast<std::int64_t>(e.seq))}, -1, true);
        break;
      case EventKind::kBackoffArmed: {
        std::string retry;
        AppendTs(retry, e.v0);
        w.Emit('i',
               "backoff[" + ClassName(e.op_class, op_class_name) + "] " +
                   target,
               kTraceTidFaults, e.time,
               {IntArg("failures", e.i0), StrArg("retry_at_us", retry),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      }
      case EventKind::kDegradationMove:
        w.Emit('i', "degrade -> rung " + std::to_string(e.i1),
               kTraceTidBindBase + e.i0, e.time,
               {IntArg("from_rung", e.v0), StrArg("translator", detail),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      case EventKind::kReconcile:
        w.Emit('i', "reconcile", kTraceTidLifecycle, e.time,
               {IntArg("seeded", e.v0), IntArg("adopted_groups", e.i0),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      case EventKind::kFaultInjected:
        w.Emit('i', "fault: " + detail, kTraceTidFaults, e.time,
               {StrArg("target", target),
                StrArg("op_class", ClassName(e.op_class, op_class_name)),
                IntArg("seq", static_cast<std::int64_t>(e.seq))},
               -1, true);
        break;
      case EventKind::kQueryAttached:
        w.Emit('i', "attach binding " + std::to_string(e.i0),
               kTraceTidLifecycle, e.time,
               {IntArg("seq", static_cast<std::int64_t>(e.seq))}, -1, true);
        break;
      case EventKind::kQueryDetached:
        w.Emit('i', "detach binding " + std::to_string(e.i0),
               kTraceTidLifecycle, e.time,
               {IntArg("seq", static_cast<std::int64_t>(e.seq))}, -1, true);
        break;
    }
  }
  if (tick_open) {
    // Stream ended mid-tick (e.g. dump taken between begin and end).
    w.Emit('B', "tick", kTraceTidTicks, tick_begin_ts,
           {IntArg("index", tick_index),
            IntArg("seq", static_cast<std::int64_t>(tick_begin_seq))});
  }
}

}  // namespace

std::string RenderChromeTrace(const Recorder& recorder,
                              OpClassNameFn op_class_name) {
  TraceWriter w;
  AppendRecorderTracks(w, recorder, "lachesis", op_class_name);
  return w.Finish();
}

std::string RenderFleetChromeTrace(const std::vector<const Recorder*>& shards,
                                   const std::vector<std::string>& names,
                                   OpClassNameFn op_class_name) {
  TraceWriter w;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i] == nullptr) continue;
    w.set_pid(static_cast<int>(i) + 1);
    const std::string fallback = "lachesis shard " + std::to_string(i);
    AppendRecorderTracks(w, *shards[i],
                         i < names.size() && !names[i].empty() ? names[i]
                                                               : fallback,
                         op_class_name);
  }
  return w.Finish();
}

bool DumpChromeTrace(const Recorder& recorder, const std::string& path,
                     OpClassNameFn op_class_name) {
  const std::string body = RenderChromeTrace(recorder, op_class_name);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace lachesis::obs
