// "Why did thread T get nice -12 at t=4.2s?" -- decision provenance queries.
//
// Replays the recorder's event ring and reconstructs, for one target (a
// thread health key like "t:3/-1" or a group key like "g:etl-parse"), the
// state the control plane had decided at a given time: the last value
// applied per op class, whether the target was backing off or its class
// breaker was open, which policy/translator produced the decision, and the
// event trail leading up to it. The rendered transcript is deterministic
// (stable event ids, fixed formatting), so it can be asserted in tests and
// pasted into bug reports.
//
// The ring is bounded, so an explanation is only as deep as the retained
// history; `history_truncated` says whether older events were evicted.
#ifndef LACHESIS_OBS_EXPLAIN_H_
#define LACHESIS_OBS_EXPLAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace lachesis::obs {

struct Explanation {
  std::string target;
  SimTime at = 0;
  // Events involving the target (or its op classes' breakers) with
  // time <= at, oldest first.
  std::vector<Event> trail;
  // Last successfully applied value per op-class name, as of `at`.
  struct AppliedValue {
    std::string op_class;
    std::int64_t value = 0;
    std::string detail;  // e.g. group name for MoveToGroup
    SimTime since = 0;
    std::uint64_t seq = 0;
  };
  std::vector<AppliedValue> applied;
  // Pending backoff at `at`, if any (from the latest kBackoffArmed whose
  // next_retry is still in the future at `at`).
  std::optional<Event> backing_off;
  bool history_truncated = false;  // ring evicted events older than the trail
  std::string text;                // rendered transcript
};

// op_class_name(cls) resolves class ids to names for rendering; obs cannot
// see core's OpClassName, so callers pass it in (core::ExplainThread wraps
// this with the right table). Null falls back to numeric ids.
using OpClassNameFn = const char* (*)(int);

[[nodiscard]] Explanation ExplainTarget(const Recorder& recorder,
                                        std::string_view target, SimTime at,
                                        OpClassNameFn op_class_name = nullptr);

// Renders one event as a stable single-line string (used by the transcript
// and handy for log statements).
[[nodiscard]] std::string FormatEvent(const Recorder& recorder, const Event& e,
                                      OpClassNameFn op_class_name = nullptr);

}  // namespace lachesis::obs

#endif  // LACHESIS_OBS_EXPLAIN_H_
