// Decision-provenance recorder for the control plane.
//
// One Recorder instance is owned by each LachesisRunner (always on by
// default) and threaded by pointer into the layers below it: the
// schedule-delta adapter records op outcomes, the health tracker records
// breaker transitions and backoff arming, fault injectors record injected
// faults. Every hook is a single branch when recording is disabled and a
// mutex-guarded fixed-size ring push when enabled, so the steady-state cost
// is a few tens of nanoseconds per recorded event -- and the steady state
// of a healthy deployment records almost nothing beyond the two tick
// boundary events (elided ops are aggregated into the tick summary unless
// verbose mode is on).
//
// Strings (targets, policy/translator names, error texts) are interned into
// StrIds so ring entries stay fixed-size; the intern table only grows when
// a never-seen-before string appears, which in practice means during
// warmup. The recorder is thread-safe: the native backend may run several
// runners (or a signal-triggered exporter) against one process.
#ifndef LACHESIS_OBS_RECORDER_H_
#define LACHESIS_OBS_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash_index.h"
#include "common/sim_time.h"
#include "obs/event_ring.h"

namespace lachesis::obs {

inline constexpr std::size_t kDefaultRingCapacity = 8192;

// Per-tick summary mirrored from core::RunnerTickInfo (obs sits below core,
// so it declares its own POD).
struct TickSummary {
  int policies_run = 0;
  std::uint64_t ops_applied = 0;
  std::uint64_t ops_skipped = 0;
  std::uint64_t ops_errors = 0;
  std::uint64_t ops_suppressed = 0;
  int open_breakers = 0;
  int degraded_bindings = 0;
};

class Recorder {
 public:
  explicit Recorder(std::size_t capacity = kDefaultRingCapacity)
      : ring_(capacity) {}  // StrId 0 = none (the interner's "" slot)

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Verbose mode additionally records one kOpElided event per delta-layer
  // elision and per-entity metric samples. Off by default: a stable 1k-
  // entity deployment would otherwise push 1k events per tick into the ring
  // for decisions that are, by definition, "nothing changed".
  void set_verbose(bool verbose) { verbose_ = verbose; }
  [[nodiscard]] bool verbose() const { return enabled_ && verbose_; }

  // Replaces the ring with one of the given capacity, keeping the newest
  // events that fit. Sequence numbers and drop accounting carry over.
  void SetRingCapacity(std::size_t capacity);

  // --- string interning ----------------------------------------------------
  [[nodiscard]] StrId Intern(std::string_view s);
  // Read-only lookup: kNoStr when the string was never interned.
  [[nodiscard]] StrId Lookup(std::string_view s) const;
  // Resolves an id to its string ("" for kNoStr / unknown ids).
  [[nodiscard]] std::string Name(StrId id) const;

  // --- hooks (each is a no-op when disabled) -------------------------------
  void TickBegin(SimTime now, std::uint64_t tick_index);
  void TickEnd(SimTime now, const TickSummary& summary);
  void MetricSample(SimTime now, std::string_view entity,
                    std::string_view metric, double value);
  void ScheduleComputed(SimTime now, int binding, int entries,
                        std::string_view policy);
  void TranslatorPicked(SimTime now, int binding, int rung,
                        std::string_view translator);
  void Op(SimTime now, EventKind kind, int op_class, std::string_view target,
          std::int64_t value, std::string_view detail = {});
  void BreakerTransition(SimTime now, int op_class, int from_state,
                         int to_state);
  void BackoffArmed(SimTime now, int op_class, std::string_view target,
                    int failures, SimTime next_retry);
  void DegradationMove(SimTime now, int binding, int from_rung, int to_rung,
                       std::string_view translator);
  void Reconcile(SimTime now, std::int64_t seeded, std::int64_t adopted);
  void FaultInjected(SimTime now, int op_class, std::string_view target,
                     std::string_view fault_kind);
  void QueryAttached(SimTime now, int binding);
  void QueryDetached(SimTime now, int binding);

  // --- introspection / export ----------------------------------------------
  [[nodiscard]] std::vector<Event> Snapshot() const;
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

 private:
  void Push(Event event);

  mutable std::mutex mutex_;
  bool enabled_ = true;
  bool verbose_ = false;
  std::uint64_t next_seq_ = 0;
  EventRing ring_;
  // Dense ids in intern-call order (StrId == StringInterner id; both
  // reserve 0 for ""), payload bytes arena-backed so Lookup never copies
  // the probe string to the heap the way the old unordered_map did.
  StringInterner interner_;
};

}  // namespace lachesis::obs

#endif  // LACHESIS_OBS_RECORDER_H_
