// Fixed-capacity ring buffer of structured observability events.
//
// The control plane records one Event per interesting decision (tick
// boundaries, delta-layer op outcomes, breaker transitions, degradation
// moves, fault injections, ...). Events are fixed-size PODs -- strings are
// interned by the Recorder into small ids -- so recording in the steady
// state allocates nothing once the ring's backing vector is built, and the
// ring bounds memory on a long-lived daemon: when full, the oldest event is
// overwritten and counted as dropped.
//
// Event sequence numbers are assigned by the Recorder in record order and
// never reused, so they are stable identifiers: a trace export, an explain
// transcript and a log line all refer to the same decision by the same id,
// and gaps at the front of the ring reveal exactly how much history was
// evicted.
#ifndef LACHESIS_OBS_EVENT_RING_H_
#define LACHESIS_OBS_EVENT_RING_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace lachesis::obs {

// Interned string id (see Recorder); 0 means "none".
using StrId = std::uint32_t;
inline constexpr StrId kNoStr = 0;

// Marker for events not tied to an OS operation class.
inline constexpr std::uint8_t kNoOpClass = 0xff;

enum class EventKind : std::uint8_t {
  kTickBegin = 0,      // i0 = tick index
  kTickEnd,            // i0 = policies run, i1 = open breakers,
                       // v0 = packed DeltaStats (see PackTickCounts)
  kMetricSample,       // target = entity, detail = metric name, d0 = value
  kScheduleComputed,   // i0 = binding, i1 = entries, detail = policy name
  kTranslatorPicked,   // i0 = binding, i1 = rung, detail = translator name
  kOpApplied,          // op_class, target, v0 = value, detail = aux (group)
  kOpElided,           // same payload as kOpApplied (verbose mode only)
  kOpSuppressed,       // op withheld by backoff / open breaker
  kOpError,            // backend threw; detail = error text
  kBreakerTransition,  // op_class, i0 = from BreakerState, i1 = to
  kBackoffArmed,       // op_class, target, i0 = failures, v0 = next retry ns
  kDegradationMove,    // i0 = binding, i1 = new rung, v0 = old rung,
                       //   detail = translator now active
  kReconcile,          // v0 = cache entries seeded, i0 = adopted groups
  kFaultInjected,      // op_class, target, detail = fault kind
  kQueryAttached,      // i0 = binding index
  kQueryDetached,      // i0 = binding index
};
inline constexpr int kEventKindCount = 16;

[[nodiscard]] const char* EventKindName(EventKind kind);

struct Event {
  std::uint64_t seq = 0;  // stable id, assigned in record order
  SimTime time = 0;
  EventKind kind = EventKind::kTickBegin;
  std::uint8_t op_class = kNoOpClass;
  std::int32_t i0 = 0;
  std::int32_t i1 = 0;
  std::int64_t v0 = 0;
  double d0 = 0.0;
  StrId target = kNoStr;
  StrId detail = kNoStr;
};

// The tick-end event packs the four per-tick DeltaStats counters into v0
// (16 bits each, saturating) so one fixed-size event carries the whole
// summary.
[[nodiscard]] inline std::int64_t PackTickCounts(std::uint64_t applied,
                                                 std::uint64_t skipped,
                                                 std::uint64_t errors,
                                                 std::uint64_t suppressed) {
  const auto clamp = [](std::uint64_t v) -> std::int64_t {
    return static_cast<std::int64_t>(v > 0xffff ? 0xffff : v);
  };
  return clamp(applied) | (clamp(skipped) << 16) | (clamp(errors) << 32) |
         (clamp(suppressed) << 48);
}
[[nodiscard]] inline std::uint64_t UnpackTickCount(std::int64_t packed,
                                                   int slot) {
  return static_cast<std::uint64_t>((packed >> (16 * slot)) & 0xffff);
}

// Single-writer ring; thread safety is the Recorder's job.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void Push(const Event& event) {
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[head_] = event;
      head_ = (head_ + 1) % capacity_;
    }
    ++total_pushed_;
  }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return total_pushed_ - ring_.size();
  }

  // Visits retained events oldest -> newest (ascending seq for a
  // single-writer recorder).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(head_ + i) % ring_.size()]);
    }
  }

  [[nodiscard]] std::vector<Event> Snapshot() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    ForEach([&out](const Event& e) { out.push_back(e); });
    return out;
  }

  void Clear() {
    ring_.clear();
    head_ = 0;
    // total_pushed_ is NOT reset: seq/drop accounting must survive a clear.
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::uint64_t total_pushed_ = 0;
  std::vector<Event> ring_;
};

}  // namespace lachesis::obs

#endif  // LACHESIS_OBS_EVENT_RING_H_
