// Control-plane self-metrics: the control plane watching itself.
//
// The runner snapshots its own counters (ticks, delta-layer op outcomes,
// breaker/degradation state, recorder health) into a SelfMetricsSnapshot;
// this module renders that snapshot in Prometheus textfile exposition
// format and keeps the authoritative catalog of every metric's name, type,
// unit and meaning. docs/OBSERVABILITY.md documents the same catalog, and a
// tier-1 test pins the two to each other -- adding a metric without
// documenting it (or documenting one that no longer exists) fails CI.
#ifndef LACHESIS_OBS_SELF_METRICS_H_
#define LACHESIS_OBS_SELF_METRICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lachesis::obs {

struct MetricDef {
  const char* name;
  const char* type;  // "counter" | "gauge"
  const char* unit;  // "1", "seconds", "entries", ...
  const char* help;  // one-line meaning, mirrored in docs/OBSERVABILITY.md
};

// The full catalog. Order here is exposition order in the textfile.
inline constexpr MetricDef kSelfMetricCatalog[] = {
    {"lachesis_ticks_total", "counter", "1",
     "Control-loop ticks executed since start."},
    {"lachesis_idle_ticks_total", "counter", "1",
     "Ticks in which no policy was due (pure wake-and-sleep)."},
    {"lachesis_policies_run_total", "counter", "1",
     "Policy evaluations across all bindings and ticks."},
    {"lachesis_schedules_applied_total", "counter", "1",
     "Translator Apply() invocations (one per policy run that produced a "
     "schedule)."},
    {"lachesis_ops_applied_total", "counter", "1",
     "OS operations that reached the backend and succeeded."},
    {"lachesis_ops_skipped_total", "counter", "1",
     "OS operations elided by the delta layer (value already in place)."},
    {"lachesis_ops_errors_total", "counter", "1",
     "OS operations that reached the backend and failed."},
    {"lachesis_ops_suppressed_total", "counter", "1",
     "OS operations withheld by backoff or an open circuit breaker."},
    {"lachesis_open_breakers", "gauge", "1",
     "Op classes whose circuit breaker is currently open."},
    {"lachesis_breaker_opens_total", "counter", "1",
     "Breaker open transitions summed over all op classes since start."},
    {"lachesis_degraded_bindings", "gauge", "1",
     "Policy bindings currently running a fallback translator (rung > 0)."},
    {"lachesis_attached_queries", "gauge", "1",
     "Policy bindings currently attached and enabled."},
    {"lachesis_wake_interval_seconds", "gauge", "seconds",
     "GCD of binding periods: how often the control loop wakes."},
    {"lachesis_tracked_backoff_targets", "gauge", "entries",
     "Targets with live per-target backoff state in the health tracker."},
    {"lachesis_reconcile_seeded_entries", "gauge", "entries",
     "Delta-cache entries seeded by the most recent backend reconcile."},
    {"lachesis_adopted_cgroups", "gauge", "entries",
     "Pre-existing cgroups adopted by the most recent backend reconcile."},
    {"lachesis_obs_events_recorded_total", "counter", "1",
     "Observability events recorded into the provenance ring."},
    {"lachesis_obs_events_dropped_total", "counter", "1",
     "Observability events evicted from the ring before export."},
};
inline constexpr int kSelfMetricCount =
    static_cast<int>(sizeof(kSelfMetricCatalog) / sizeof(MetricDef));

struct MetricValue {
  std::string name;
  double value = 0.0;
};
using SelfMetricsSnapshot = std::vector<MetricValue>;

// nullptr when the name is not in the catalog.
[[nodiscard]] const MetricDef* FindMetricDef(std::string_view name);

// Renders "# HELP ... / # TYPE ... / name value" stanzas in catalog order.
// Values not present in the snapshot are omitted; values whose names are
// not in the catalog are rendered last with a "# HELP ... (uncataloged)"
// marker so they are visible rather than silently dropped.
[[nodiscard]] std::string RenderPrometheusTextfile(
    const SelfMetricsSnapshot& snapshot);

// Returns human-readable discrepancies between the snapshot and the
// catalog: snapshot names missing from the catalog and catalog entries the
// snapshot never reported. Empty means the two agree exactly -- the
// self-metrics test asserts this against a live runner.
[[nodiscard]] std::vector<std::string> CatalogDiff(
    const SelfMetricsSnapshot& snapshot);

// Atomic write (tmp + rename) for node_exporter textfile collection.
bool WritePrometheusTextfile(const SelfMetricsSnapshot& snapshot,
                             const std::string& path);

// Bridges a snapshot into any sink with an `append(name, value)` shape --
// e.g. a tsdb::TimeSeriesStore series per metric. obs deliberately does not
// link the tsdb layer; the caller owns the store.
template <typename AppendFn>
void PublishSelfMetrics(const SelfMetricsSnapshot& snapshot,
                        AppendFn&& append) {
  for (const MetricValue& m : snapshot) append(m.name, m.value);
}

}  // namespace lachesis::obs

#endif  // LACHESIS_OBS_SELF_METRICS_H_
