// Chrome trace-event JSON export of a Recorder's retained history.
//
// The output loads directly in chrome://tracing and in Perfetto
// (ui.perfetto.dev): control ticks render as duration slices on one track,
// faults and breaker transitions as instant markers on another, each OS op
// class (SetNice, MoveToGroup, ...) and each policy binding gets its own
// track, and the per-tick delta counters render as counter graphs.
//
// Serialization is deliberately byte-stable for identical event streams:
// all timestamps are formatted with integer math (microseconds with a
// fixed 3-digit nanosecond remainder), floats go through a locale-free
// fixed formatter, and track metadata is emitted in sorted tid order. The
// golden-file test pins the trace of a seeded sim run byte-for-byte.
#ifndef LACHESIS_OBS_TRACE_EXPORT_H_
#define LACHESIS_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/explain.h"  // OpClassNameFn
#include "obs/recorder.h"

namespace lachesis::obs {

// Track layout (tids inside the single "lachesis" process, pid 1):
inline constexpr int kTraceTidTicks = 1;     // tick slices ("X" events)
inline constexpr int kTraceTidFaults = 2;    // faults / breakers / errors
inline constexpr int kTraceTidLifecycle = 3; // attach/detach/reconcile
inline constexpr int kTraceTidOpBase = 10;   // + op class -> per-class track
inline constexpr int kTraceTidBindBase = 100;  // + binding -> per-query track

// Renders the recorder's retained events as a complete Chrome trace JSON
// document ({"traceEvents": [...]}).
[[nodiscard]] std::string RenderChromeTrace(
    const Recorder& recorder, OpClassNameFn op_class_name = nullptr);

// Fleet variant: one trace document with one process per shard (pid =
// shard index + 1, named from `names`, falling back to "lachesis shard
// <i>"). Within each process the track layout is identical to
// RenderChromeTrace, so per-shard control loops line up side by side in
// Perfetto. Null recorder entries are skipped.
[[nodiscard]] std::string RenderFleetChromeTrace(
    const std::vector<const Recorder*>& shards,
    const std::vector<std::string>& names,
    OpClassNameFn op_class_name = nullptr);

// Writes RenderChromeTrace() to `path` atomically (tmp file + rename) so a
// signal-triggered dump never leaves a torn file for the reader. Returns
// false (and cleans up the tmp file) on any I/O failure.
bool DumpChromeTrace(const Recorder& recorder, const std::string& path,
                     OpClassNameFn op_class_name = nullptr);

}  // namespace lachesis::obs

#endif  // LACHESIS_OBS_TRACE_EXPORT_H_
