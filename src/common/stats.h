// Statistics utilities used by metrics, policies and the experiment harness.
//
// Includes Welford running moments, linear-interpolation quantiles,
// letter-value summaries (the "boxen" plots of Fig. 13), and Student-t 95%
// confidence intervals for cross-repetition aggregation.
#ifndef LACHESIS_COMMON_STATS_H_
#define LACHESIS_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace lachesis {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  // Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Quantile of `sorted` (ascending) with linear interpolation, q in [0, 1].
// Precondition: !sorted.empty().
double QuantileSorted(std::span<const double> sorted, double q);

// Sorts a copy of `values` and returns the quantile. Precondition: non-empty.
double Quantile(std::vector<double> values, double q);

// Population variance of `values` (n denominator); 0 if empty.
double PopulationVariance(std::span<const double> values);

// One letter-value box of a letter-value ("boxen") plot.
struct LetterValue {
  int depth;     // 1 = median, 2 = fourths, 3 = eighths, ...
  double lower;  // lower letter value (quantile 2^-depth)
  double upper;  // upper letter value (quantile 1 - 2^-depth)
};

// Letter values per Hofmann, Wickham & Kafadar (2017): successive halved
// quantiles, stopping when a box would summarize fewer than `min_tail`
// observations. Returns at least the median (depth 1) for non-empty input.
std::vector<LetterValue> LetterValues(std::vector<double> values,
                                      std::size_t min_tail = 8);

// Mean and half-width of a 95% confidence interval over repetitions.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;
};

// Student-t based 95% CI. With fewer than two samples the half-width is 0.
MeanCi ConfidenceInterval95(std::span<const double> samples);

}  // namespace lachesis

#endif  // LACHESIS_COMMON_STATS_H_
