// A bounded-memory, HDR-style latency histogram.
//
// Log-linear bucketing: values are grouped into half-decades of base-2
// magnitude with `sub_bucket_bits` linear sub-buckets each, giving a fixed
// relative error (~1/2^sub_bucket_bits) across the whole range. Unlike a
// sampling reservoir, the tail quantiles (p99.9, max) are exact up to the
// bucket resolution no matter how many values are recorded -- which is what
// the letter-value/tail analysis (paper Fig 13) needs at high rates.
#ifndef LACHESIS_COMMON_HDR_HISTOGRAM_H_
#define LACHESIS_COMMON_HDR_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace lachesis {

class HdrHistogram {
 public:
  // Tracks values in [0, max_value] with relative error ~2^-sub_bucket_bits.
  // Layout: magnitude 0 holds values [0, 2^b) exactly (2^b slots); each
  // further magnitude m holds [2^(b+m-1), 2^(b+m)) in 2^(b-1) slots of
  // width 2^m.
  explicit HdrHistogram(std::uint64_t max_value = std::uint64_t{1} << 40,
                        int sub_bucket_bits = 5)
      : sub_bucket_bits_(sub_bucket_bits),
        sub_buckets_(std::size_t{1} << sub_bucket_bits),
        max_value_(max_value) {
    int magnitudes = 0;
    while ((std::uint64_t{1} << (sub_bucket_bits_ + magnitudes)) <= max_value) {
      ++magnitudes;
    }
    counts_.assign(sub_buckets_ +
                       static_cast<std::size_t>(magnitudes) * (sub_buckets_ / 2),
                   0);
  }

  void Record(std::uint64_t value) {
    value = std::min(value, max_value_);
    ++counts_[IndexFor(value)];
    ++total_;
    min_ = total_ == 1 ? value : std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += value;
  }

  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] std::uint64_t min() const { return total_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return total_ > 0 ? static_cast<double>(sum_) / static_cast<double>(total_)
                      : 0.0;
  }

  // Value at quantile q in [0, 1] (bucket midpoint); 0 when empty.
  [[nodiscard]] std::uint64_t ValueAtQuantile(double q) const {
    if (total_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_) + 0.5);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      running += counts_[i];
      if (running >= target && counts_[i] > 0) return MidpointFor(i);
    }
    return max_;
  }

  void Merge(const HdrHistogram& other) {
    // Merging requires identical geometry.
    if (other.counts_.size() != counts_.size() ||
        other.sub_bucket_bits_ != sub_bucket_bits_) {
      // Fall back to re-recording bucket midpoints.
      for (std::size_t i = 0; i < other.counts_.size(); ++i) {
        for (std::uint64_t c = 0; c < other.counts_[i]; ++c) {
          Record(other.MidpointFor(i));
        }
      }
      return;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    if (other.total_ > 0) {
      min_ = total_ > 0 ? std::min(min_, other.min_) : other.min_;
      max_ = std::max(max_, other.max_);
    }
    total_ += other.total_;
    sum_ += other.sum_;
  }

  void Reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    min_ = 0;
    max_ = 0;
    sum_ = 0;
  }

 private:
  [[nodiscard]] std::size_t IndexFor(std::uint64_t value) const {
    const int bits = 64 - std::countl_zero(value | 1);
    const int magnitude = std::max(0, bits - sub_bucket_bits_);
    if (magnitude == 0) {
      return static_cast<std::size_t>(value);  // exact, < sub_buckets_
    }
    // value in [2^(b+m-1), 2^(b+m)): value >> m lands in the upper half
    // [2^(b-1), 2^b) of the sub-bucket range.
    const std::uint64_t sub = value >> magnitude;
    const std::size_t half = sub_buckets_ / 2;
    const std::size_t index =
        sub_buckets_ + (static_cast<std::size_t>(magnitude) - 1) * half +
        static_cast<std::size_t>(sub - half);
    return std::min(index, counts_.size() - 1);
  }

  [[nodiscard]] std::uint64_t MidpointFor(std::size_t index) const {
    if (index < sub_buckets_) return static_cast<std::uint64_t>(index);
    const std::size_t half = sub_buckets_ / 2;
    const std::size_t magnitude = (index - sub_buckets_) / half + 1;
    const std::uint64_t sub = (index - sub_buckets_) % half + half;
    const std::uint64_t base = sub << magnitude;
    const std::uint64_t width = std::uint64_t{1} << magnitude;
    return base + width / 2;
  }

  int sub_bucket_bits_;
  std::size_t sub_buckets_;
  std::uint64_t max_value_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;  // of clamped values
};

}  // namespace lachesis

#endif  // LACHESIS_COMMON_HDR_HISTOGRAM_H_
