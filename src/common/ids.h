// Strongly-typed integral identifiers.
//
// Simulation, SPE, and middleware layers all pass small integer handles
// around (threads, operators, cgroups, queries, ...). Mixing them up is a
// classic source of silent bugs, so each layer gets its own tag type that
// does not implicitly convert to any other.
#ifndef LACHESIS_COMMON_IDS_H_
#define LACHESIS_COMMON_IDS_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace lachesis {

// A type-safe wrapper around an integer id. `Tag` is an empty struct used
// only to make distinct instantiations incompatible.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  underlying_type value_ = 0;
};

struct ThreadIdTag {};
struct CoreIdTag {};
struct CgroupIdTag {};
struct OperatorIdTag {};
struct QueryIdTag {};
struct NodeIdTag {};

// A simulated kernel thread (one per physical operator in the SPE model).
using ThreadId = Id<ThreadIdTag>;
// A simulated CPU core.
using CoreId = Id<CoreIdTag>;
// A node of the simulated control-group hierarchy.
using CgroupId = Id<CgroupIdTag>;
// A physical operator instance.
using OperatorId = Id<OperatorIdTag>;
// A continuous query (DAG of operators).
using QueryId = Id<QueryIdTag>;
// A simulated machine in scale-out deployments.
using NodeId = Id<NodeIdTag>;

}  // namespace lachesis

namespace std {
template <typename Tag>
struct hash<lachesis::Id<Tag>> {
  size_t operator()(lachesis::Id<Tag> id) const noexcept {
    return std::hash<typename lachesis::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std

#endif  // LACHESIS_COMMON_IDS_H_
