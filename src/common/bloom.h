// A standard Bloom filter.
//
// Used by the VoipStream query (telemarketer detection over call detail
// records, per DSPBench) and the ETL query's duplicate detection. Double
// hashing (Kirsch & Mitzenmacher) derives the k probe positions from two
// SplitMix64-based hashes.
#ifndef LACHESIS_COMMON_BLOOM_H_
#define LACHESIS_COMMON_BLOOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lachesis {

class BloomFilter {
 public:
  // Sizes the filter for `expected_items` at `false_positive_rate`.
  BloomFilter(std::size_t expected_items, double false_positive_rate) {
    expected_items = expected_items > 0 ? expected_items : 1;
    false_positive_rate =
        false_positive_rate > 0 && false_positive_rate < 1 ? false_positive_rate
                                                           : 0.01;
    const double ln2 = 0.6931471805599453;
    const double m = -static_cast<double>(expected_items) *
                     std::log(false_positive_rate) / (ln2 * ln2);
    bits_.assign((static_cast<std::size_t>(m) + 63) / 64 + 1, 0);
    num_hashes_ = static_cast<int>(
        std::ceil(m / static_cast<double>(expected_items) * ln2));
    if (num_hashes_ < 1) num_hashes_ = 1;
    if (num_hashes_ > 16) num_hashes_ = 16;
  }

  void Add(std::uint64_t key) {
    auto [h1, h2] = Hashes(key);
    for (int i = 0; i < num_hashes_; ++i) {
      SetBit((h1 + static_cast<std::uint64_t>(i) * h2) % num_bits());
    }
  }

  [[nodiscard]] bool MightContain(std::uint64_t key) const {
    auto [h1, h2] = Hashes(key);
    for (int i = 0; i < num_hashes_; ++i) {
      if (!TestBit((h1 + static_cast<std::uint64_t>(i) * h2) % num_bits())) {
        return false;
      }
    }
    return true;
  }

  // Adds and reports whether the key was (probably) already present --
  // the common streaming "first time seen?" idiom.
  bool TestAndAdd(std::uint64_t key) {
    const bool present = MightContain(key);
    Add(key);
    return present;
  }

  void Clear() { std::fill(bits_.begin(), bits_.end(), 0); }

  [[nodiscard]] std::uint64_t num_bits() const {
    return static_cast<std::uint64_t>(bits_.size()) * 64;
  }
  [[nodiscard]] int num_hashes() const { return num_hashes_; }

 private:
  static std::pair<std::uint64_t, std::uint64_t> Hashes(std::uint64_t key) {
    std::uint64_t s1 = key ^ 0x2545F4914F6CDD1DULL;
    std::uint64_t s2 = key + 0x9E3779B97F4A7C15ULL;
    const std::uint64_t h1 = SplitMix64(s1);
    std::uint64_t h2 = SplitMix64(s2);
    if (h2 % 2 == 0) ++h2;  // odd stride
    return {h1, h2};
  }

  void SetBit(std::uint64_t i) { bits_[i / 64] |= (1ULL << (i % 64)); }
  [[nodiscard]] bool TestBit(std::uint64_t i) const {
    return (bits_[i / 64] >> (i % 64)) & 1;
  }

  std::vector<std::uint64_t> bits_;
  int num_hashes_ = 1;
};

}  // namespace lachesis

#endif  // LACHESIS_COMMON_BLOOM_H_
