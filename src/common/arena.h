// Bump-pointer scratch arena with block reuse.
//
// Per-tick control-plane work (scratch sets during RemoveQuery /
// reconciliation, interned string payloads) needs many small short-lived
// or append-only allocations. A general-purpose heap pays per-allocation
// metadata and, at 10^5-10^6 entities, allocator lock traffic and cache
// misses on every node. The arena replaces that with a bump pointer over
// geometrically grown blocks:
//
//  - Allocate() is a pointer bump (no per-allocation header, no free);
//  - Reset() rewinds to the first block and REUSES every block already
//    grown, so a warmed-up arena allocates nothing from the heap ever
//    again -- the steady-state contract the allocation-regression test
//    (tests/alloc_regression_test.cc) pins;
//  - blocks never move, so arena-backed payloads (e.g. interned string
//    bytes, see hash_index.h) are pointer-stable for the arena's lifetime
//    (until Reset or destruction).
//
// Not thread-safe; owners that share one (obs::Recorder) guard it with
// their own mutex. Alignment: every allocation is aligned to `align`
// (defaults to alignof(std::max_align_t) for raw bytes, alignof(T) for
// typed arrays).
#ifndef LACHESIS_COMMON_ARENA_H_
#define LACHESIS_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace lachesis {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 1 << 16;  // 64 KiB

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < 64 ? 64 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Returns `size` bytes aligned to `align`. Never fails for size 0 (a
  // distinct, valid pointer is still returned). Oversized requests get a
  // dedicated block of exactly the requested size.
  void* Allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    std::size_t offset = Align(offset_, align);
    if (block_ >= blocks_.size() || offset + size > blocks_[block_].size) {
      if (!AdvanceToFit(size, align)) NewBlock(size);
      offset = Align(offset_, align);
    }
    void* p = blocks_[block_].data.get() + offset;
    offset_ = offset + size;
    bytes_used_ += size;
    return p;
  }

  // Typed array allocation. Memory is uninitialized; trivially-destructible
  // payloads only (the arena never runs destructors).
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Copies `size` bytes into the arena and returns the stable copy.
  char* CopyBytes(const char* data, std::size_t size) {
    char* p = static_cast<char*>(Allocate(size, 1));
    for (std::size_t i = 0; i < size; ++i) p[i] = data[i];
    return p;
  }

  // Rewinds to empty WITHOUT releasing blocks: the next fill reuses them.
  // Everything previously allocated is invalidated.
  void Reset() {
    block_ = 0;
    offset_ = 0;
    bytes_used_ = 0;
  }

  // Releases all blocks (used by tests and by owners being destroyed
  // early; normal per-tick use wants Reset()).
  void Release() {
    blocks_.clear();
    Reset();
  }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  static std::size_t Align(std::size_t offset, std::size_t align) {
    return (offset + align - 1) & ~(align - 1);
  }

  // Tries to move to an already-grown block that fits; returns false when a
  // fresh block is needed.
  bool AdvanceToFit(std::size_t size, std::size_t align) {
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      offset_ = 0;
      if (Align(offset_, align) + size <= blocks_[block_].size) return true;
    }
    return false;
  }

  void NewBlock(std::size_t min_size) {
    // Geometric growth doubles the block size each time so a warmed arena
    // holds O(log total) blocks; oversized one-off requests get an exact
    // block without disturbing the growth schedule.
    std::size_t size = block_bytes_ << (blocks_.size() < 16 ? blocks_.size() : 16);
    if (size < min_size + alignof(std::max_align_t)) {
      size = min_size + alignof(std::max_align_t);
    }
    Block b;
    b.data = std::make_unique<char[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // current block index
  std::size_t offset_ = 0;  // bump offset inside the current block
  std::size_t bytes_used_ = 0;
};

}  // namespace lachesis

#endif  // LACHESIS_COMMON_ARENA_H_
