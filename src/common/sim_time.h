// Simulated time.
//
// All simulation code measures time as nanoseconds since simulation start,
// held in a signed 64-bit value (signed so that subtraction is safe). Helper
// literals keep call sites readable without pulling in <chrono> conversions
// everywhere.
#ifndef LACHESIS_COMMON_SIM_TIME_H_
#define LACHESIS_COMMON_SIM_TIME_H_

#include <cstdint>

namespace lachesis {

// Nanoseconds since the start of the simulation.
using SimTime = std::int64_t;
// A duration in simulated nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration Micros(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(std::int64_t n) { return n * kSecond; }

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace lachesis

#endif  // LACHESIS_COMMON_SIM_TIME_H_
