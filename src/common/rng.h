// Deterministic pseudo-random number generation.
//
// Experiments must be exactly reproducible across runs and platforms, so we
// avoid std::mt19937/std::uniform_* (whose distributions are
// implementation-defined) and ship a small xoshiro256** generator with
// portable distribution helpers. Streams are split via SplitMix64 so that
// per-component generators are statistically independent.
#ifndef LACHESIS_COMMON_RNG_H_
#define LACHESIS_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace lachesis {

// SplitMix64: used for seeding and stream splitting.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// re-expressed); fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Derives an independent generator; `stream` distinguishes children of the
  // same parent.
  [[nodiscard]] Rng Split(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (state_[3] + 0x9E3779B97F4A7C15ULL * (stream + 1));
    return Rng(SplitMix64(sm));
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Exponential with the given mean (>0); used for Poisson arrivals.
  double Exponential(double mean) {
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Standard normal via Box-Muller (deterministic, portable).
  double Normal(double mean, double stddev) {
    double u1;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lachesis

#endif  // LACHESIS_COMMON_RNG_H_
