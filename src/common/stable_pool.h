// Generation-checked slot pool with stable addresses and dense indices.
//
// The control plane and simulator track 10^5-10^6 per-(op-class, target)
// records; node-based containers pay one heap allocation per record and a
// pointer chase per lookup. StablePool stores records in fixed-size chunks
// (contiguous arrays, allocated once per kChunkSlots records), so:
//
//  - Alloc()/Free() are O(1): a free-list pop/push plus a placement
//    new/destroy. Steady-state churn inside a warmed pool never touches
//    the heap;
//  - element addresses are stable for the element's lifetime (chunks never
//    move or shrink), so callers may hold T* across unrelated Alloc/Free;
//  - slot indices are dense and start at 0: a pool that is never Free()d
//    (the simulator's entity tables) numbers its slots exactly like the
//    vector-of-unique_ptr it replaces, which is what keeps golden traces
//    byte-identical across the migration;
//  - every handle carries a generation. Freeing a slot bumps the slot's
//    generation, so a stale handle (the ABA hazard: slot freed, then
//    reused for a different entity) is detected and rejected instead of
//    silently aliasing the new occupant.
//
// Not thread-safe. Exemplar lineage: the stable_array/hash_index pairing
// in Boostibot's c_lib (ROADMAP item 2); see docs/ARCHITECTURE.md for how
// the subsystems divide ownership of pools.
#ifndef LACHESIS_COMMON_STABLE_POOL_H_
#define LACHESIS_COMMON_STABLE_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace lachesis {

// 64-bit handle: 32-bit slot index + 32-bit generation. Generation 0 never
// names a live slot, so a default-constructed handle is always invalid.
struct PoolHandle {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  [[nodiscard]] constexpr bool valid() const { return generation != 0; }
  friend constexpr bool operator==(PoolHandle, PoolHandle) = default;
};

template <typename T>
class StablePool {
 public:
  // 256 slots per chunk: big enough that chunk allocations amortize away,
  // small enough that a few-entity pool does not reserve megabytes.
  static constexpr std::uint32_t kChunkSlots = 256;

  StablePool() = default;
  ~StablePool() { Clear(); }
  StablePool(const StablePool&) = delete;
  StablePool& operator=(const StablePool&) = delete;
  StablePool(StablePool&& other) noexcept { *this = std::move(other); }
  StablePool& operator=(StablePool&& other) noexcept {
    if (this != &other) {
      Clear();
      chunks_ = std::move(other.chunks_);
      meta_ = std::move(other.meta_);
      free_head_ = other.free_head_;
      live_ = other.live_;
      other.chunks_.clear();
      other.meta_.clear();
      other.free_head_ = kNoSlot;
      other.live_ = 0;
    }
    return *this;
  }

  // Constructs a T in a free slot (reusing the most recently freed slot
  // first, else appending) and returns its handle. O(1); allocates only
  // when a fresh chunk is needed.
  template <typename... Args>
  PoolHandle Alloc(Args&&... args) {
    std::uint32_t idx;
    if (free_head_ != kNoSlot) {
      idx = free_head_;
      free_head_ = meta_[idx].next_free;
    } else {
      idx = static_cast<std::uint32_t>(meta_.size());
      if (idx / kChunkSlots >= chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      meta_.push_back({});
    }
    Slot& m = meta_[idx];
    // Live generations are odd; freeing bumps to even, reallocating back
    // to odd. A handle is valid iff its generation matches the slot's
    // current (odd) generation.
    m.generation |= 1u;
    if (m.generation == 0) m.generation = 1;  // 32-bit wrap safety
    ::new (RawSlot(idx)) T(std::forward<Args>(args)...);
    ++live_;
    return PoolHandle{idx, m.generation};
  }

  // Destroys the element behind a live handle. Returns false (and does
  // nothing) for stale or never-valid handles: double-free and ABA misuse
  // degrade to a no-op, never to corruption.
  bool Free(PoolHandle h) {
    T* p = TryGet(h);
    if (p == nullptr) return false;
    p->~T();
    Slot& m = meta_[h.index];
    ++m.generation;  // now even = free; stale handles stop matching
    m.next_free = free_head_;
    free_head_ = h.index;
    --live_;
    return true;
  }

  // Handle-checked access: nullptr when the handle is stale (its slot was
  // freed, possibly reused) or out of range.
  [[nodiscard]] T* TryGet(PoolHandle h) {
    if (h.index >= meta_.size() || meta_[h.index].generation != h.generation ||
        (h.generation & 1u) == 0) {
      return nullptr;
    }
    return std::launder(reinterpret_cast<T*>(RawSlot(h.index)));
  }
  [[nodiscard]] const T* TryGet(PoolHandle h) const {
    return const_cast<StablePool*>(this)->TryGet(h);
  }
  [[nodiscard]] T& Get(PoolHandle h) {
    T* p = TryGet(h);
    assert(p != nullptr && "stale or invalid pool handle");
    return *p;
  }
  [[nodiscard]] const T& Get(PoolHandle h) const {
    return const_cast<StablePool*>(this)->Get(h);
  }

  // Unchecked dense access for pools used as append-only entity tables
  // (the simulator): the caller guarantees slot `idx` is live.
  [[nodiscard]] T& at(std::uint32_t idx) {
    assert(idx < meta_.size() && (meta_[idx].generation & 1u) != 0);
    return *std::launder(reinterpret_cast<T*>(RawSlot(idx)));
  }
  [[nodiscard]] const T& at(std::uint32_t idx) const {
    return const_cast<StablePool*>(this)->at(idx);
  }

  [[nodiscard]] bool IsLive(std::uint32_t idx) const {
    return idx < meta_.size() && (meta_[idx].generation & 1u) != 0;
  }
  // Current generation of a slot (handle reconstruction for dense tables).
  [[nodiscard]] PoolHandle HandleOf(std::uint32_t idx) const {
    assert(IsLive(idx));
    return PoolHandle{idx, meta_[idx].generation};
  }

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  // Total slots ever created (live + free-listed); the dense index bound.
  [[nodiscard]] std::uint32_t slot_count() const {
    return static_cast<std::uint32_t>(meta_.size());
  }

  // Visits every live element in slot-index order (deterministic).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (std::uint32_t i = 0; i < meta_.size(); ++i) {
      if ((meta_[i].generation & 1u) != 0) {
        fn(i, *std::launder(reinterpret_cast<T*>(RawSlot(i))));
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint32_t i = 0; i < meta_.size(); ++i) {
      if ((meta_[i].generation & 1u) != 0) {
        fn(i, *std::launder(reinterpret_cast<const T*>(
                  const_cast<StablePool*>(this)->RawSlot(i))));
      }
    }
  }

  // Destroys every live element. Chunks are released; generations are NOT
  // preserved across Clear (a cleared pool is a new pool).
  void Clear() {
    ForEach([](std::uint32_t, T& value) { value.~T(); });
    chunks_.clear();
    meta_.clear();
    free_head_ = kNoSlot;
    live_ = 0;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct alignas(T) ChunkStorage {
    unsigned char bytes[sizeof(T) * kChunkSlots];
  };
  using Chunk = ChunkStorage;

  struct Slot {
    std::uint32_t generation = 0;  // odd = live, even = free
    std::uint32_t next_free = kNoSlot;
  };

  [[nodiscard]] void* RawSlot(std::uint32_t idx) {
    return chunks_[idx / kChunkSlots]->bytes +
           static_cast<std::size_t>(idx % kChunkSlots) * sizeof(T);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<Slot> meta_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
};

}  // namespace lachesis

#endif  // LACHESIS_COMMON_STABLE_POOL_H_
