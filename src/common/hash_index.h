// Open-addressing hash index for small POD keys + arena-backed interner.
//
// The control plane's hot lookups (delta cache, op-health, scratch
// membership sets, string interning) were node-based std::map /
// std::unordered_map: one allocation per entry, a pointer chase per probe.
// At 10^5-10^6 targets that is the dominant tick cost. This header
// replaces them with flat, probe-local storage:
//
//  - FlatMap<K, V>: linear-probing open addressing over one contiguous
//    slot array, power-of-two capacity, backward-shift deletion (no
//    tombstones, so load factor never rots). Keys are small trivially
//    copyable PODs; find/insert/erase are O(1) expected with zero heap
//    traffic except on growth -- the steady-state contract pinned by
//    tests/alloc_regression_test.cc;
//  - FlatSet<K>: membership-only FlatMap;
//  - StringInterner: string -> dense uint32 id, payload bytes in an Arena
//    (stable views), collision-verified 64-bit hashing. Lookup() never
//    allocates and never inserts, which is what makes per-op health-key
//    resolution allocation-free.
//
// Iteration order is table order: deterministic for a fixed operation
// sequence, NOT insertion order. Nothing that feeds golden traces iterates
// these tables; aggregate counters and keyed lookups only.
//
// Not thread-safe. Exemplar lineage: Boostibot c_lib's hash_index (ROADMAP
// item 2): the index stores (hash, value) and the caller verifies payload
// equality, which is exactly how StringInterner resolves 64-bit collisions.
#ifndef LACHESIS_COMMON_HASH_INDEX_H_
#define LACHESIS_COMMON_HASH_INDEX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"

namespace lachesis {

// FNV-1a over the bytes, then a SplitMix64 finalizer so short keys with
// low-entropy tails still spread over the table.
inline std::uint64_t HashBytes(const void* data, std::size_t size,
                               std::uint64_t seed = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

// Default hasher: the key's object representation. Only sound for keys
// without padding bytes; keys with padding must supply their own hasher.
template <typename K>
struct PodHash {
  static_assert(std::is_trivially_copyable_v<K>,
                "FlatMap keys must be trivially copyable PODs");
  std::uint64_t operator()(const K& key) const {
    return HashBytes(&key, sizeof(K));
  }
};

template <typename K, typename V, typename Hash = PodHash<K>>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  // Pointer to the mapped value, nullptr when absent. Never allocates.
  [[nodiscard]] V* Find(const K& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (full_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  [[nodiscard]] const V* Find(const K& key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }
  [[nodiscard]] bool Contains(const K& key) const {
    return Find(key) != nullptr;
  }

  // Inserts or overwrites; returns the mapped value. Allocates only when
  // the table grows past its 3/4 load factor.
  V& Insert(const K& key, V value) {
    V* slot = FindOrInsert(key);
    *slot = std::move(value);
    return *slot;
  }

  // Returns the existing value, or a default-constructed one just inserted
  // (the FlatMap operator[]).
  V* FindOrInsert(const K& key) {
    ReserveFor(size_ + 1);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (full_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    slots_[i].key = key;
    slots_[i].value = V{};
    full_[i] = 1;
    ++size_;
    return &slots_[i].value;
  }

  // Backward-shift deletion: the probe chain after the hole is compacted,
  // so lookups never wade through tombstones. Returns true when removed.
  bool Erase(const K& key) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (full_[i]) {
      if (slots_[i].key == key) break;
      i = (i + 1) & mask;
    }
    if (!full_[i]) return false;
    full_[i] = 0;
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!full_[j]) break;
      const std::size_t ideal = Hash{}(slots_[j].key)&mask;
      // Move j back into the hole unless its ideal slot lies strictly
      // inside (hole, j] on the probe circle (then it is already as close
      // to home as it can get).
      const bool in_range = hole <= j ? (ideal > hole && ideal <= j)
                                      : (ideal > hole || ideal <= j);
      if (!in_range) {
        slots_[hole] = slots_[j];
        full_[hole] = 1;
        full_[j] = 0;
        hole = j;
      }
    }
    --size_;
    return true;
  }

  // Drops all entries but keeps the table memory (steady-state reuse).
  void Clear() {
    std::fill(full_.begin(), full_.end(), 0);
    size_ = 0;
  }

  // Grows the table so `count` entries fit without rehashing.
  void Reserve(std::size_t count) { ReserveFor(count); }

  // Visits every entry in table order (deterministic for a fixed op
  // sequence; not insertion order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (full_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    K key;
    V value;
  };

  void ReserveFor(std::size_t count) {
    // Grow at 3/4 load so probe chains stay short.
    if (!slots_.empty() && count * 4 <= slots_.size() * 3) return;
    std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    while (count * 4 > cap * 3) cap *= 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    slots_.assign(cap, Slot{});
    full_.assign(cap, 0);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_full[i]) continue;
      std::size_t j = Hash{}(old_slots[i].key)&mask;
      while (full_[j]) j = (j + 1) & mask;
      slots_[j] = old_slots[i];
      full_[j] = 1;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> full_;  // 1 = occupied
  std::size_t size_ = 0;
};

// Membership-only FlatMap.
template <typename K, typename Hash = PodHash<K>>
class FlatSet {
 public:
  // True when newly inserted, false when already present.
  bool Insert(const K& key) {
    const std::size_t before = map_.size();
    map_.FindOrInsert(key);
    return map_.size() != before;
  }
  [[nodiscard]] bool Contains(const K& key) const { return map_.Contains(key); }
  bool Erase(const K& key) { return map_.Erase(key); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }
  void Reserve(std::size_t count) { map_.Reserve(count); }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash> map_;
};

// String -> dense uint32 id interner. Id 0 is reserved for "" (interned at
// construction), matching the obs recorder's StrId convention. Payload
// bytes live in an Arena so returned views are stable for the interner's
// lifetime; the index stores (hash, id) pairs and verifies bytes on every
// probe, so 64-bit hash collisions cost an extra compare, never a wrong id.
// Entries are never removed: growth is bounded by the number of distinct
// strings ever seen (targets, group names, policy names -- warmup-bounded
// in practice).
class StringInterner {
 public:
  StringInterner() { views_.push_back(std::string_view()); }

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Returns the id of `s`, interning it first if new. "" -> 0.
  std::uint32_t Intern(std::string_view s) {
    if (s.empty()) return 0;
    const std::uint64_t hash = HashOf(s);
    std::uint32_t id = Probe(hash, s);
    if (id != kAbsent) return id;
    id = static_cast<std::uint32_t>(views_.size());
    const char* stable = arena_.CopyBytes(s.data(), s.size());
    views_.push_back(std::string_view(stable, s.size()));
    InsertIndex(hash, id);
    return id;
  }

  // Non-inserting lookup: 0 when never interned (or empty). Never
  // allocates -- the allocation-free hot path for health-key resolution.
  [[nodiscard]] std::uint32_t Lookup(std::string_view s) const {
    if (s.empty()) return 0;
    const std::uint32_t id = Probe(HashOf(s), s);
    return id == kAbsent ? 0 : id;
  }

  // The interned bytes ("" for unknown ids). Stable until destruction.
  [[nodiscard]] std::string_view View(std::uint32_t id) const {
    return id < views_.size() ? views_[id] : std::string_view();
  }

  // Number of ids handed out, including id 0.
  [[nodiscard]] std::size_t size() const { return views_.size(); }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  struct IndexSlot {
    std::uint64_t hash = 0;
    std::uint32_t id = kAbsent;
  };

  static std::uint64_t HashOf(std::string_view s) {
    // Hash 0 doubles as the empty-slot sentinel; remap the (vanishingly
    // rare) real 0 so it stays probeable.
    const std::uint64_t h = HashBytes(s.data(), s.size());
    return h == 0 ? 1 : h;
  }

  [[nodiscard]] std::uint32_t Probe(std::uint64_t hash,
                                    std::string_view s) const {
    if (index_.empty()) return kAbsent;
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash & mask;
    while (index_[i].hash != 0) {
      if (index_[i].hash == hash && views_[index_[i].id] == s) {
        return index_[i].id;
      }
      i = (i + 1) & mask;
    }
    return kAbsent;
  }

  void InsertIndex(std::uint64_t hash, std::uint32_t id) {
    if (index_.empty() || (views_.size()) * 4 > index_.size() * 3) {
      const std::size_t cap = index_.empty() ? 64 : index_.size() * 2;
      std::vector<IndexSlot> old = std::move(index_);
      index_.assign(cap, IndexSlot{});
      for (const IndexSlot& slot : old) {
        if (slot.hash != 0) Place(slot.hash, slot.id);
      }
    }
    Place(hash, id);
  }

  void Place(std::uint64_t hash, std::uint32_t id) {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash & mask;
    while (index_[i].hash != 0) i = (i + 1) & mask;
    index_[i] = IndexSlot{hash, id};
  }

  Arena arena_;
  std::vector<std::string_view> views_;
  std::vector<IndexSlot> index_;
};

}  // namespace lachesis

#endif  // LACHESIS_COMMON_HASH_INDEX_H_
