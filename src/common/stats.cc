#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lachesis {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSorted(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

double PopulationVariance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  RunningStat stat;
  for (double v : values) stat.Add(v);
  const double n = static_cast<double>(values.size());
  // Convert sample variance (n-1) back to population variance (n).
  return stat.variance() * (n - 1.0) / n;
}

std::vector<LetterValue> LetterValues(std::vector<double> values,
                                      std::size_t min_tail) {
  std::vector<LetterValue> result;
  if (values.empty()) return result;
  std::sort(values.begin(), values.end());
  const double median = QuantileSorted(values, 0.5);
  result.push_back({1, median, median});
  double tail_fraction = 0.5;
  for (int depth = 2;; ++depth) {
    tail_fraction /= 2.0;  // 0.25, 0.125, ...
    const auto tail_count =
        static_cast<std::size_t>(tail_fraction * static_cast<double>(values.size()));
    if (tail_count < min_tail) break;
    result.push_back({depth, QuantileSorted(values, tail_fraction),
                      QuantileSorted(values, 1.0 - tail_fraction)});
  }
  return result;
}

namespace {

// Two-sided 97.5% Student-t critical values for small n; converges to the
// normal value 1.96 for large samples.
double TCritical95(std::size_t df) {
  static constexpr double kTable[] = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262, 2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101, 2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052, 2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df < std::size(kTable)) return kTable[df];
  return 1.96;
}

}  // namespace

MeanCi ConfidenceInterval95(std::span<const double> samples) {
  RunningStat stat;
  for (double s : samples) stat.Add(s);
  MeanCi ci;
  ci.n = stat.count();
  ci.mean = stat.mean();
  if (stat.count() >= 2) {
    const double sem = stat.stddev() / std::sqrt(static_cast<double>(stat.count()));
    ci.half_width = TCritical95(stat.count() - 1) * sem;
  }
  return ci;
}

}  // namespace lachesis
