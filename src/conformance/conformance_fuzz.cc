// Standalone conformance fuzzer.
//
// Sweeps seeds through GenerateScenario, runs every invariant checker (and
// the metamorphic properties on eligible scenarios), and finishes with one
// sim<->native differential pass per mode. Failing seeds are minimized and
// persisted to the corpus directory as seed-<N>.txt; existing corpus entries
// are replayed first so past failures act as regressions.
//
// Usage:
//   conformance_fuzz [--seeds=N] [--start-seed=N] [--budget-ms=N]
//                    [--corpus=DIR] [--no-differential]
//
// Exit status is 0 only if every replayed and freshly generated scenario
// passed and the differential pass did not mismatch (skips are fine).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "conformance/differential.h"
#include "conformance/harness.h"
#include "conformance/scenario.h"

namespace {

namespace conf = lachesis::conformance;
namespace fs = std::filesystem;

struct Options {
  std::uint64_t seeds = 200;
  std::uint64_t start_seed = 1;
  long budget_ms = -1;  // < 0: no wall-clock budget
  std::string corpus;
  bool differential = true;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string& value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "seeds", value)) {
      opts.seeds = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "start-seed", value)) {
      opts.start_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "budget-ms", value)) {
      opts.budget_ms = std::strtol(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "corpus", value)) {
      opts.corpus = value;
    } else if (arg == "--no-differential") {
      opts.differential = false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: conformance_fuzz [--seeds=N] [--start-seed=N] "
                   "[--budget-ms=N] [--corpus=DIR] [--no-differential]\n";
      std::exit(2);
    }
  }
  return opts;
}

// Full check for one seed: invariants over the run, then metamorphic
// properties when the scenario is eligible and the base run was clean.
conf::CheckReport CheckSeed(std::uint64_t seed) {
  const conf::ScenarioSpec spec = conf::GenerateScenario(seed);
  conf::CheckReport report = conf::CheckScenario(spec);
  if (report.ok() && spec.FairnessEligible()) {
    report = conf::CheckMetamorphic(spec);
  }
  return report;
}

void PersistFailure(const std::string& corpus, std::uint64_t seed,
                    const conf::CheckReport& report) {
  if (corpus.empty()) return;
  std::error_code ec;
  fs::create_directories(corpus, ec);
  const conf::ScenarioSpec minimized =
      conf::MinimizeFailure(conf::GenerateScenario(seed));
  const fs::path path = fs::path(corpus) / ("seed-" + std::to_string(seed) +
                                            ".txt");
  std::ofstream out(path);
  out << "# minimized failing scenario; replayed from the seed line below\n"
      << conf::Describe(minimized) << "violations:\n"
      << report.Summary();
  std::cout << "  persisted " << path.string() << "\n";
}

// Replays every seed-<N>.txt under the corpus directory. Returns the number
// of entries that fail again.
int ReplayCorpus(const std::string& corpus) {
  if (corpus.empty()) return 0;
  std::error_code ec;
  if (!fs::is_directory(corpus, ec)) return 0;
  int failures = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seed-", 0) != 0 || entry.path().extension() != ".txt") {
      continue;
    }
    const std::uint64_t seed =
        std::strtoull(name.c_str() + 5, nullptr, 10);
    const conf::CheckReport report = CheckSeed(seed);
    if (report.ok()) {
      std::cout << "corpus " << name << ": ok\n";
    } else {
      std::cout << "corpus " << name << ": FAIL\n" << report.Summary();
      ++failures;
    }
  }
  return failures;
}

const char* StatusName(conf::DiffStatus status) {
  switch (status) {
    case conf::DiffStatus::kAgree: return "agree";
    case conf::DiffStatus::kSkipped: return "skipped";
    case conf::DiffStatus::kMismatch: return "MISMATCH";
  }
  return "?";
}

// Returns true unless a differential mode mismatched (skips are fine).
bool RunDifferential() {
  const conf::DiffConfig config;
  bool ok = true;
  const conf::DiffResult nice_diff =
      conf::RunNiceDifferential({0, 5, 10}, config);
  std::cout << "differential nice: " << StatusName(nice_diff.status) << " -- "
            << nice_diff.message << "\n";
  for (const conf::DiffShare& share : nice_diff.shares) {
    std::cout << "  sim " << share.sim_fraction << " native "
              << share.native_fraction << "\n";
  }
  ok = ok && nice_diff.status != conf::DiffStatus::kMismatch;
  const conf::DiffResult shares_diff =
      conf::RunSharesDifferential({1024, 4096}, config);
  std::cout << "differential shares: " << StatusName(shares_diff.status)
            << " -- " << shares_diff.message << "\n";
  for (const conf::DiffShare& share : shares_diff.shares) {
    std::cout << "  sim " << share.sim_fraction << " native "
              << share.native_fraction << "\n";
  }
  return ok && shares_diff.status != conf::DiffStatus::kMismatch;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  const auto start = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (opts.budget_ms < 0) return false;
    return std::chrono::steady_clock::now() - start >=
           std::chrono::milliseconds(opts.budget_ms);
  };

  int failures = ReplayCorpus(opts.corpus);

  std::uint64_t ran = 0;
  for (std::uint64_t i = 0; i < opts.seeds; ++i) {
    if (over_budget()) {
      std::cout << "wall budget exhausted after " << ran << " seeds\n";
      break;
    }
    const std::uint64_t seed = opts.start_seed + i;
    const conf::CheckReport report = CheckSeed(seed);
    ++ran;
    if (!report.ok()) {
      ++failures;
      std::cout << "seed " << seed << ": FAIL\n" << report.Summary();
      PersistFailure(opts.corpus, seed, report);
    }
  }

  bool differential_ok = true;
  if (opts.differential && !over_budget()) {
    differential_ok = RunDifferential();
  }

  std::cout << "conformance_fuzz: " << ran << " seed(s), " << failures
            << " failure(s), differential "
            << (opts.differential ? (differential_ok ? "ok" : "mismatch")
                                  : "disabled")
            << "\n";
  return (failures == 0 && differential_ok) ? 0 : 1;
}
