#include "conformance/scenario.h"

#include <sstream>

#include "common/rng.h"

namespace lachesis::conformance {

bool ScenarioSpec::FairnessEligible() const {
  if (!mutations.empty()) return false;
  if (cores > 1 && !groups.empty()) return false;
  for (const ThreadSpec& t : threads) {
    if (t.kind != ThreadKind::kBusy) return false;
  }
  return !threads.empty();
}

bool ScenarioSpec::HomogeneousSiblings() const {
  if (groups.empty()) return true;
  for (const ThreadSpec& t : threads) {
    if (t.group < 0) return false;  // thread at root, next to the groups
    for (const CgroupSpec& g : groups) {
      if (g.parent == t.group) return false;  // thread next to a sub-group
    }
  }
  return true;
}

bool ScenarioSpec::SharesScaleInvariant() const {
  return FairnessEligible() && HomogeneousSiblings() && !groups.empty();
}

bool ScenarioSpec::PureBusyContested() const {
  if (static_cast<int>(threads.size()) <= cores) return false;
  for (const ThreadSpec& t : threads) {
    if (t.kind != ThreadKind::kBusy) return false;
  }
  // Mutations are fine: SetNice/SetShares/MoveToCgroup never truncate a
  // running slice, and SliceFor clamps to [min_granularity, sched_latency]
  // regardless of the weights in effect.
  return true;
}

bool ScenarioSpec::HasNestedGroups() const {
  for (const CgroupSpec& g : groups) {
    if (g.parent >= 0) return true;
  }
  return false;
}

namespace {

sim::CfsParams OverheadFreeParams() {
  sim::CfsParams p;
  p.context_switch_cost = 0;
  p.wakeup_check_cost = 0;
  return p;
}

void GenerateGroups(Rng& rng, int count, ScenarioSpec& spec) {
  for (int g = 0; g < count; ++g) {
    CgroupSpec group;
    // Nest under an earlier group half the time (hierarchical shares).
    group.parent = (g > 0 && rng.Chance(0.5))
                       ? static_cast<int>(rng.UniformInt(0, g - 1))
                       : -1;
    group.shares = static_cast<std::uint64_t>(rng.UniformInt(64, 8192));
    spec.groups.push_back(group);
  }
}

int PickGroup(Rng& rng, const ScenarioSpec& spec) {
  // -1 (root) is as likely as each concrete group.
  return static_cast<int>(
             rng.UniformInt(0, static_cast<std::int64_t>(spec.groups.size()))) -
         1;
}

void GenerateMutations(Rng& rng, int count, ScenarioSpec& spec) {
  for (int i = 0; i < count; ++i) {
    MutationSpec mut;
    // Keep mutations inside the middle of the run so both the before and
    // after regimes get simulated time.
    mut.at = static_cast<SimTime>(
        rng.UniformInt(spec.duration / 10, spec.duration * 9 / 10));
    const int thread_count = static_cast<int>(spec.threads.size());
    switch (rng.UniformInt(0, spec.groups.empty() ? 1 : 2)) {
      case 0:
        mut.kind = MutationKind::kSetNice;
        mut.thread = static_cast<int>(rng.UniformInt(0, thread_count - 1));
        mut.nice = static_cast<int>(rng.UniformInt(-15, 15));
        break;
      case 1:
        mut.kind = MutationKind::kMoveToCgroup;
        mut.thread = static_cast<int>(rng.UniformInt(0, thread_count - 1));
        mut.group = PickGroup(rng, spec);
        break;
      default:
        mut.kind = MutationKind::kSetShares;
        mut.group = static_cast<int>(
            rng.UniformInt(0, static_cast<std::int64_t>(spec.groups.size()) - 1));
        mut.shares = static_cast<std::uint64_t>(rng.UniformInt(64, 8192));
        break;
    }
    spec.mutations.push_back(mut);
  }
}

}  // namespace

ScenarioSpec GenerateScenario(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.cores = static_cast<int>(rng.UniformInt(1, 4));

  const double profile = rng.NextDouble();
  if (profile < 0.3) {
    // Fairness profile: permanently CPU-bound threads, overhead-free params,
    // static configuration -- checkable against the water-filling model.
    spec.params = OverheadFreeParams();
    spec.duration = Seconds(2);
    if (rng.Chance(0.5)) {
      // Hierarchical-fairness variant: the water-filling model is exact
      // only on one core (see FairnessEligible), so pin cores to 1 when
      // the scenario gets a group tree.
      spec.cores = 1;
      GenerateGroups(rng, static_cast<int>(rng.UniformInt(1, 3)), spec);
    }
    const int n = static_cast<int>(
        rng.UniformInt(spec.cores + 1, spec.cores + 8));
    for (int i = 0; i < n; ++i) {
      ThreadSpec t;
      t.kind = ThreadKind::kBusy;
      t.group = PickGroup(rng, spec);
      t.nice = static_cast<int>(rng.UniformInt(-10, 10));
      t.busy = Micros(rng.UniformInt(50, 500));
      spec.threads.push_back(t);
    }
    return spec;
  }

  if (profile < 0.5) {
    // Pure-busy contested profile with default (overheadful) params and
    // optional mid-run mutations: drives the timeslice-bound checker.
    spec.duration = Seconds(1);
    GenerateGroups(rng, static_cast<int>(rng.UniformInt(0, 2)), spec);
    const int n = static_cast<int>(
        rng.UniformInt(spec.cores + 1, spec.cores + 6));
    for (int i = 0; i < n; ++i) {
      ThreadSpec t;
      t.kind = ThreadKind::kBusy;
      t.group = PickGroup(rng, spec);
      t.nice = static_cast<int>(rng.UniformInt(-15, 15));
      t.busy = Micros(rng.UniformInt(50, 1000));
      spec.threads.push_back(t);
    }
    GenerateMutations(rng, static_cast<int>(rng.UniformInt(0, 3)), spec);
    return spec;
  }

  // Mixed profile: every thread kind, hierarchies, and mutations.
  spec.duration = Seconds(1);
  GenerateGroups(rng, static_cast<int>(rng.UniformInt(0, 4)), spec);
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  for (int i = 0; i < n; ++i) {
    ThreadSpec t;
    t.group = PickGroup(rng, spec);
    t.nice = static_cast<int>(rng.UniformInt(-15, 15));
    const double kind = rng.NextDouble();
    if (kind < 0.4) {
      t.kind = ThreadKind::kBusy;
      t.busy = Micros(rng.UniformInt(50, 1000));
    } else if (kind < 0.65) {
      t.kind = ThreadKind::kBursty;
      t.busy = Micros(rng.UniformInt(1000, 5000));
      t.sleep = Micros(rng.UniformInt(100, 2000));
    } else if (kind < 0.92) {
      t.kind = ThreadKind::kPeriodic;
      t.busy = Micros(rng.UniformInt(50, 400));
      t.sleep = Millis(rng.UniformInt(1, 10));
    } else {
      // RT tasks are periodic so they cannot starve a whole core forever.
      t.kind = ThreadKind::kRt;
      t.rt_priority = static_cast<int>(rng.UniformInt(1, 10));
      t.busy = Micros(rng.UniformInt(50, 500));
      t.sleep = Millis(rng.UniformInt(1, 5));
    }
    spec.threads.push_back(t);
  }
  GenerateMutations(rng, static_cast<int>(rng.UniformInt(0, 5)), spec);
  return spec;
}

std::string Describe(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "seed: " << spec.seed << "\n"
      << "cores: " << spec.cores << " duration_ns: " << spec.duration << "\n"
      << "params: latency=" << spec.params.sched_latency
      << " min_gran=" << spec.params.min_granularity
      << " wakeup_gran=" << spec.params.wakeup_granularity
      << " switch_cost=" << spec.params.context_switch_cost << "\n";
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    out << "group " << g << ": parent=" << spec.groups[g].parent
        << " shares=" << spec.groups[g].shares << "\n";
  }
  static constexpr const char* kKindNames[] = {"busy", "bursty", "periodic",
                                               "rt"};
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    const ThreadSpec& spec_t = spec.threads[t];
    out << "thread " << t << ": "
        << kKindNames[static_cast<int>(spec_t.kind)]
        << " group=" << spec_t.group << " nice=" << spec_t.nice;
    if (spec_t.rt_priority > 0) out << " rt=" << spec_t.rt_priority;
    out << " busy_ns=" << spec_t.busy << " sleep_ns=" << spec_t.sleep << "\n";
  }
  static constexpr const char* kMutNames[] = {"set_nice", "set_shares",
                                              "move_to_cgroup"};
  for (const MutationSpec& m : spec.mutations) {
    out << "mutation at " << m.at << ": "
        << kMutNames[static_cast<int>(m.kind)] << " thread=" << m.thread
        << " group=" << m.group << " nice=" << m.nice
        << " shares=" << m.shares << "\n";
  }
  return out.str();
}

}  // namespace lachesis::conformance
