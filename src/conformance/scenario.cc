#include "conformance/scenario.h"

#include <sstream>

#include "common/rng.h"

namespace lachesis::conformance {

bool ScenarioSpec::FairnessEligible() const {
  if (!mutations.empty()) return false;
  if (cores > 1 && !groups.empty()) return false;
  if (Heterogeneous()) return false;
  for (const ThreadSpec& t : threads) {
    if (t.kind != ThreadKind::kBusy) return false;
  }
  return !threads.empty();
}

bool ScenarioSpec::HomogeneousSiblings() const {
  if (groups.empty()) return true;
  for (const ThreadSpec& t : threads) {
    if (t.group < 0) return false;  // thread at root, next to the groups
    for (const CgroupSpec& g : groups) {
      if (g.parent == t.group) return false;  // thread next to a sub-group
    }
  }
  return true;
}

bool ScenarioSpec::SharesScaleInvariant() const {
  return FairnessEligible() && HomogeneousSiblings() && !groups.empty();
}

bool ScenarioSpec::PureBusyContested() const {
  if (static_cast<int>(threads.size()) <= cores) return false;
  for (const ThreadSpec& t : threads) {
    if (t.kind != ThreadKind::kBusy) return false;
  }
  // Mutations are fine: SetNice/SetShares/MoveToCgroup never truncate a
  // running slice, and SliceFor clamps to [min_granularity, sched_latency]
  // regardless of the weights in effect.
  return true;
}

bool ScenarioSpec::HasNestedGroups() const {
  for (const CgroupSpec& g : groups) {
    if (g.parent >= 0) return true;
  }
  return false;
}

bool ScenarioSpec::Heterogeneous() const {
  for (const double c : params.core_capacities) {
    if (c != 1.0) return true;
  }
  return false;
}

namespace {

sim::CfsParams OverheadFreeParams() {
  sim::CfsParams p;
  p.context_switch_cost = 0;
  p.wakeup_check_cost = 0;
  return p;
}

void GenerateGroups(Rng& rng, int count, ScenarioSpec& spec) {
  for (int g = 0; g < count; ++g) {
    CgroupSpec group;
    // Nest under an earlier group half the time (hierarchical shares).
    group.parent = (g > 0 && rng.Chance(0.5))
                       ? static_cast<int>(rng.UniformInt(0, g - 1))
                       : -1;
    group.shares = static_cast<std::uint64_t>(rng.UniformInt(64, 8192));
    spec.groups.push_back(group);
  }
}

// About a quarter of multi-core scenarios run on an asymmetric machine.
// Core 0 stays a full-capacity big core (so misfit migration always has a
// destination worth upgrading to); the rest draw from the big.LITTLE-ish
// palette. Capacities never go below 0.25: the conservation checker's
// in-flight bound scales with 1/min_capacity (a compute chunk takes up to
// 4x its work in wall-clock on the smallest little core).
void MaybeGenerateHetero(Rng& rng, ScenarioSpec& spec) {
  if (spec.cores < 2 || !rng.Chance(0.25)) return;
  static constexpr double kPalette[] = {0.25, 0.5, 0.75, 1.0};
  spec.params.core_capacities.assign(static_cast<std::size_t>(spec.cores),
                                     1.0);
  for (int c = 1; c < spec.cores; ++c) {
    spec.params.core_capacities[static_cast<std::size_t>(c)] =
        kPalette[rng.UniformInt(0, 3)];
  }
  // One in five heterogeneous scenarios runs capacity-blind: the placement
  // control arm must satisfy every invariant except the misfit check.
  spec.params.capacity_aware = !rng.Chance(0.2);
}

int PickGroup(Rng& rng, const ScenarioSpec& spec) {
  // -1 (root) is as likely as each concrete group.
  return static_cast<int>(
             rng.UniformInt(0, static_cast<std::int64_t>(spec.groups.size()))) -
         1;
}

void GenerateMutations(Rng& rng, int count, ScenarioSpec& spec) {
  for (int i = 0; i < count; ++i) {
    MutationSpec mut;
    // Keep mutations inside the middle of the run so both the before and
    // after regimes get simulated time.
    mut.at = static_cast<SimTime>(
        rng.UniformInt(spec.duration / 10, spec.duration * 9 / 10));
    const int thread_count = static_cast<int>(spec.threads.size());
    switch (rng.UniformInt(0, spec.groups.empty() ? 1 : 2)) {
      case 0:
        mut.kind = MutationKind::kSetNice;
        mut.thread = static_cast<int>(rng.UniformInt(0, thread_count - 1));
        mut.nice = static_cast<int>(rng.UniformInt(-15, 15));
        break;
      case 1:
        mut.kind = MutationKind::kMoveToCgroup;
        mut.thread = static_cast<int>(rng.UniformInt(0, thread_count - 1));
        mut.group = PickGroup(rng, spec);
        break;
      default:
        mut.kind = MutationKind::kSetShares;
        mut.group = static_cast<int>(
            rng.UniformInt(0, static_cast<std::int64_t>(spec.groups.size()) - 1));
        mut.shares = static_cast<std::uint64_t>(rng.UniformInt(64, 8192));
        break;
    }
    spec.mutations.push_back(mut);
  }
}

}  // namespace

ScenarioSpec GenerateScenario(std::uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.cores = static_cast<int>(rng.UniformInt(1, 4));

  const double profile = rng.NextDouble();
  if (profile < 0.3) {
    // Fairness profile: permanently CPU-bound threads, overhead-free params,
    // static configuration -- checkable against the water-filling model.
    spec.params = OverheadFreeParams();
    spec.duration = Seconds(2);
    if (rng.Chance(0.5)) {
      // Hierarchical-fairness variant: the water-filling model is exact
      // only on one core (see FairnessEligible), so pin cores to 1 when
      // the scenario gets a group tree.
      spec.cores = 1;
      GenerateGroups(rng, static_cast<int>(rng.UniformInt(1, 3)), spec);
    }
    const int n = static_cast<int>(
        rng.UniformInt(spec.cores + 1, spec.cores + 8));
    for (int i = 0; i < n; ++i) {
      ThreadSpec t;
      t.kind = ThreadKind::kBusy;
      t.group = PickGroup(rng, spec);
      t.nice = static_cast<int>(rng.UniformInt(-10, 10));
      t.busy = Micros(rng.UniformInt(50, 500));
      spec.threads.push_back(t);
    }
    return spec;
  }

  if (profile < 0.5) {
    // Pure-busy contested profile with default (overheadful) params and
    // optional mid-run mutations: drives the timeslice-bound checker.
    // Heterogeneous capacities keep every slice wall-clock bounded (SliceFor
    // and slice_end are wall-clock), so the checker still applies.
    spec.duration = Seconds(1);
    MaybeGenerateHetero(rng, spec);
    GenerateGroups(rng, static_cast<int>(rng.UniformInt(0, 2)), spec);
    const int n = static_cast<int>(
        rng.UniformInt(spec.cores + 1, spec.cores + 6));
    for (int i = 0; i < n; ++i) {
      ThreadSpec t;
      t.kind = ThreadKind::kBusy;
      t.group = PickGroup(rng, spec);
      t.nice = static_cast<int>(rng.UniformInt(-15, 15));
      t.busy = Micros(rng.UniformInt(50, 1000));
      spec.threads.push_back(t);
    }
    GenerateMutations(rng, static_cast<int>(rng.UniformInt(0, 3)), spec);
    return spec;
  }

  // Mixed profile: every thread kind, hierarchies, and mutations.
  spec.duration = Seconds(1);
  MaybeGenerateHetero(rng, spec);
  GenerateGroups(rng, static_cast<int>(rng.UniformInt(0, 4)), spec);
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  for (int i = 0; i < n; ++i) {
    ThreadSpec t;
    t.group = PickGroup(rng, spec);
    t.nice = static_cast<int>(rng.UniformInt(-15, 15));
    const double kind = rng.NextDouble();
    if (kind < 0.37) {
      t.kind = ThreadKind::kBusy;
      t.busy = Micros(rng.UniformInt(50, 1000));
    } else if (kind < 0.62) {
      t.kind = ThreadKind::kBursty;
      t.busy = Micros(rng.UniformInt(1000, 5000));
      t.sleep = Micros(rng.UniformInt(100, 2000));
    } else if (kind < 0.85) {
      t.kind = ThreadKind::kPeriodic;
      t.busy = Micros(rng.UniformInt(50, 400));
      t.sleep = Millis(rng.UniformInt(1, 10));
    } else if (kind < 0.93) {
      // RT tasks are periodic so they cannot starve a whole core forever.
      t.kind = ThreadKind::kRt;
      t.rt_priority = static_cast<int>(rng.UniformInt(1, 10));
      t.busy = Micros(rng.UniformInt(50, 500));
      t.sleep = Millis(rng.UniformInt(1, 5));
    } else {
      // Deadline tasks: periodic bodies under a random CBS reservation.
      // Reservations deliberately range from generous to starvation-tight
      // (budget smaller than the busy chunk forces throttle/replenish
      // cycles); stacking several may trip admission control, which the
      // harness tolerates -- the rejected thread stays plain CFS.
      t.kind = ThreadKind::kDeadline;
      t.busy = Micros(rng.UniformInt(100, 600));
      t.sleep = Millis(rng.UniformInt(1, 5));
      t.dl.runtime = Micros(rng.UniformInt(200, 2000));
      t.dl.period = t.dl.runtime * rng.UniformInt(2, 8);
      t.dl.deadline = t.dl.period;
    }
    spec.threads.push_back(t);
  }
  GenerateMutations(rng, static_cast<int>(rng.UniformInt(0, 5)), spec);
  return spec;
}

std::string Describe(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "seed: " << spec.seed << "\n"
      << "cores: " << spec.cores << " duration_ns: " << spec.duration << "\n"
      << "params: latency=" << spec.params.sched_latency
      << " min_gran=" << spec.params.min_granularity
      << " wakeup_gran=" << spec.params.wakeup_granularity
      << " switch_cost=" << spec.params.context_switch_cost << "\n";
  if (!spec.params.core_capacities.empty()) {
    out << "capacities:";
    for (const double c : spec.params.core_capacities) out << " " << c;
    out << (spec.params.capacity_aware ? " (aware)" : " (blind)") << "\n";
  }
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    out << "group " << g << ": parent=" << spec.groups[g].parent
        << " shares=" << spec.groups[g].shares << "\n";
  }
  static constexpr const char* kKindNames[] = {"busy", "bursty", "periodic",
                                               "rt", "deadline"};
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    const ThreadSpec& spec_t = spec.threads[t];
    out << "thread " << t << ": "
        << kKindNames[static_cast<int>(spec_t.kind)]
        << " group=" << spec_t.group << " nice=" << spec_t.nice;
    if (spec_t.rt_priority > 0) out << " rt=" << spec_t.rt_priority;
    if (!spec_t.dl.is_zero()) {
      out << " dl=" << spec_t.dl.runtime << "/" << spec_t.dl.deadline << "/"
          << spec_t.dl.period;
    }
    out << " busy_ns=" << spec_t.busy << " sleep_ns=" << spec_t.sleep << "\n";
  }
  static constexpr const char* kMutNames[] = {"set_nice", "set_shares",
                                              "move_to_cgroup"};
  for (const MutationSpec& m : spec.mutations) {
    out << "mutation at " << m.at << ": "
        << kMutNames[static_cast<int>(m.kind)] << " thread=" << m.thread
        << " group=" << m.group << " nice=" << m.nice
        << " shares=" << m.shares << "\n";
  }
  return out.str();
}

}  // namespace lachesis::conformance
