#include "conformance/harness.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "sim/simulator.h"
#include "sim/weights.h"

namespace lachesis::conformance {

namespace {

// --- thread bodies ----------------------------------------------------------

class BusyBody final : public sim::ThreadBody {
 public:
  explicit BusyBody(SimDuration chunk) : chunk_(chunk) {}
  sim::Action Next(sim::Machine&) override { return sim::Action::Compute(chunk_); }

 private:
  SimDuration chunk_;
};

class BurstSleepBody final : public sim::ThreadBody {
 public:
  BurstSleepBody(SimDuration busy, SimDuration sleep)
      : busy_(busy), sleep_(sleep) {}
  sim::Action Next(sim::Machine&) override {
    compute_turn_ = !compute_turn_;
    return compute_turn_ ? sim::Action::Compute(busy_)
                         : sim::Action::Sleep(sleep_);
  }

 private:
  SimDuration busy_;
  SimDuration sleep_;
  bool compute_turn_ = false;
};

std::unique_ptr<sim::ThreadBody> MakeBody(const ThreadSpec& spec) {
  if (spec.kind == ThreadKind::kBusy) {
    return std::make_unique<BusyBody>(spec.busy);
  }
  return std::make_unique<BurstSleepBody>(spec.busy, spec.sleep);
}

class TraceCollector final : public sim::SchedTraceObserver {
 public:
  void OnSchedTransition(SimTime time, ThreadId tid,
                         sim::SchedTransition kind) override {
    records.push_back({time, tid.value(), kind});
  }

  std::vector<TransitionRecord> records;
};

std::string KindName(sim::SchedTransition kind) {
  switch (kind) {
    case sim::SchedTransition::kWake: return "wake";
    case sim::SchedTransition::kDispatch: return "dispatch";
    case sim::SchedTransition::kPreempt: return "preempt";
    case sim::SchedTransition::kBlock: return "block";
    case sim::SchedTransition::kSleep: return "sleep";
    case sim::SchedTransition::kExit: return "exit";
  }
  return "?";
}

}  // namespace

// --- execution ---------------------------------------------------------------

RunResult RunScenario(const ScenarioSpec& spec) {
  sim::Simulator sim;
  sim::Machine machine(sim, spec.cores, spec.params, "conformance");
  TraceCollector trace;
  machine.set_trace_observer(&trace);

  std::vector<CgroupId> groups;
  groups.reserve(spec.groups.size());
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const CgroupId parent = spec.groups[g].parent < 0
                                ? machine.root_cgroup()
                                : groups[static_cast<std::size_t>(
                                      spec.groups[g].parent)];
    groups.push_back(machine.CreateCgroup("g" + std::to_string(g), parent,
                                          spec.groups[g].shares));
  }

  std::vector<ThreadId> threads;
  threads.reserve(spec.threads.size());
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    const ThreadSpec& ts = spec.threads[t];
    const CgroupId group =
        ts.group < 0 ? machine.root_cgroup()
                     : groups[static_cast<std::size_t>(ts.group)];
    threads.push_back(machine.CreateThread("t" + std::to_string(t),
                                           MakeBody(ts), group, ts.nice));
    if (ts.kind == ThreadKind::kRt) {
      machine.SetRtPriority(threads.back(), ts.rt_priority);
    } else if (ts.kind == ThreadKind::kDeadline && !ts.dl.is_zero()) {
      // Admission control may reject an over-committed reservation; the
      // thread then runs as plain CFS, which is exactly what the kernel
      // does when sched_setattr returns EBUSY.
      (void)machine.SetDeadline(threads.back(), ts.dl);
    }
  }

  for (const MutationSpec& mut : spec.mutations) {
    sim.ScheduleAt(mut.at, [&machine, &groups, &threads, mut] {
      switch (mut.kind) {
        case MutationKind::kSetNice:
          machine.SetNice(threads[static_cast<std::size_t>(mut.thread)],
                          mut.nice);
          break;
        case MutationKind::kSetShares:
          machine.SetShares(groups[static_cast<std::size_t>(mut.group)],
                            mut.shares);
          break;
        case MutationKind::kMoveToCgroup:
          machine.MoveToCgroup(
              threads[static_cast<std::size_t>(mut.thread)],
              mut.group < 0 ? machine.root_cgroup()
                            : groups[static_cast<std::size_t>(mut.group)]);
          break;
      }
    });
  }

  RunResult result;
  result.spec = spec;

  const SimDuration interval =
      std::max<SimDuration>(spec.duration / 200, Micros(100));
  std::function<void()> probe = [&] {
    ProbeSample sample;
    sample.at = machine.now();
    sample.group_min_vruntime.reserve(machine.cgroup_count());
    for (std::size_t g = 0; g < machine.cgroup_count(); ++g) {
      sample.group_min_vruntime.push_back(machine.GroupMinVruntime(CgroupId(g)));
    }
    sample.thread_vruntime.reserve(threads.size());
    for (const ThreadId tid : threads) {
      sample.thread_vruntime.push_back(machine.ThreadVruntime(tid));
    }
    sample.idle_cores = machine.IdleCoreCount();
    sample.unthrottled_runnable = machine.UnthrottledRunnableCount();
    sample.dl_admitted_util = machine.DlAdmittedUtilization();
    sample.dl_util_bound = machine.DlUtilizationBound();
    sample.misfit_runners = machine.MisfitRunnerCount();
    result.probes.push_back(std::move(sample));
    if (machine.now() + interval <= spec.duration) {
      sim.ScheduleAfter(interval, probe);
    }
  };
  sim.ScheduleAfter(interval, probe);

  sim.RunUntil(spec.duration);

  for (const ThreadId tid : threads) {
    result.stats.push_back(machine.GetStats(tid));
    result.final_states.push_back(machine.GetState(tid));
  }
  result.trace = std::move(trace.records);
  result.total_busy = machine.total_busy_time();
  return result;
}

// --- invariant checkers ------------------------------------------------------

std::string CheckReport::Summary() const {
  if (violations.empty()) return "ok";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const std::string& v : violations) out << "  - " << v << "\n";
  return out.str();
}

namespace {

// Trace-derived per-thread scheduling state, advanced transition by
// transition; any illegal edge is a lost/duplicated wakeup or a scheduler
// state-machine bug.
enum class TraceState { kNew, kRunnable, kRunning, kBlocked, kSleeping, kExited };

void CheckTransitions(const RunResult& run, CheckReport& report) {
  const std::size_t n = run.spec.threads.size();
  std::vector<TraceState> state(n, TraceState::kNew);
  std::vector<std::uint64_t> wakes(n, 0);
  std::vector<std::uint64_t> preempts(n, 0);
  for (const TransitionRecord& rec : run.trace) {
    if (rec.tid >= n) {
      report.Add("trace references unknown thread " + std::to_string(rec.tid));
      return;
    }
    TraceState& s = state[rec.tid];
    const auto illegal = [&] {
      report.Add("illegal transition '" + KindName(rec.kind) + "' of thread " +
                 std::to_string(rec.tid) + " at t=" + std::to_string(rec.at) +
                 "ns (trace state " + std::to_string(static_cast<int>(s)) + ")");
    };
    switch (rec.kind) {
      case sim::SchedTransition::kWake:
        // A wake of a runnable/running thread would be a duplicated wakeup.
        if (s != TraceState::kNew && s != TraceState::kBlocked &&
            s != TraceState::kSleeping) {
          illegal();
          return;
        }
        s = TraceState::kRunnable;
        ++wakes[rec.tid];
        break;
      case sim::SchedTransition::kDispatch:
        if (s != TraceState::kRunnable) {
          illegal();
          return;
        }
        s = TraceState::kRunning;
        break;
      case sim::SchedTransition::kPreempt:
        if (s != TraceState::kRunning) {
          illegal();
          return;
        }
        s = TraceState::kRunnable;
        ++preempts[rec.tid];
        break;
      case sim::SchedTransition::kBlock:
        if (s != TraceState::kRunning) {
          illegal();
          return;
        }
        s = TraceState::kBlocked;
        break;
      case sim::SchedTransition::kSleep:
        if (s != TraceState::kRunning) {
          illegal();
          return;
        }
        s = TraceState::kSleeping;
        break;
      case sim::SchedTransition::kExit:
        if (s != TraceState::kRunning) {
          illegal();
          return;
        }
        s = TraceState::kExited;
        break;
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    // The trace-derived state must agree with the machine's final state --
    // a mismatch means a transition was never reported (lost) or reported
    // twice (duplicated).
    static constexpr sim::ThreadState kExpected[] = {
        sim::ThreadState::kNew,      sim::ThreadState::kRunnable,
        sim::ThreadState::kRunning,  sim::ThreadState::kBlocked,
        sim::ThreadState::kSleeping, sim::ThreadState::kExited};
    if (kExpected[static_cast<int>(state[t])] != run.final_states[t]) {
      report.Add("thread " + std::to_string(t) +
                 ": trace-derived final state disagrees with machine state");
    }
    if (wakes[t] != run.stats[t].nr_wakeups) {
      report.Add("thread " + std::to_string(t) + ": " +
                 std::to_string(wakes[t]) + " wake transitions but stats say " +
                 std::to_string(run.stats[t].nr_wakeups));
    }
    if (preempts[t] != run.stats[t].nr_preemptions) {
      report.Add("thread " + std::to_string(t) + ": " +
                 std::to_string(preempts[t]) +
                 " preempt transitions but stats say " +
                 std::to_string(run.stats[t].nr_preemptions));
    }
  }
}

void CheckConservation(const RunResult& run, CheckReport& report) {
  SimDuration sum = 0;
  for (const sim::ThreadStats& s : run.stats) sum += s.cpu_time;
  const SimDuration capacity =
      static_cast<SimDuration>(run.spec.cores) * run.spec.duration;
  if (run.total_busy > capacity) {
    report.Add("conservation: total busy time " +
               std::to_string(run.total_busy) + "ns exceeds capacity " +
               std::to_string(capacity) + "ns");
  }
  if (sum > run.total_busy) {
    report.Add("conservation: per-thread cpu_time sum " + std::to_string(sum) +
               "ns exceeds total busy time " + std::to_string(run.total_busy) +
               "ns");
  }
  // Runtime still in flight on each core (charged to busy, not yet to a
  // thread) is bounded by one scheduling period plus the largest compute
  // chunk a body can hold a core event off with. On a heterogeneous
  // machine a chunk occupies up to 1/min_capacity of its work in
  // wall-clock, so the chunk term stretches accordingly.
  double min_capacity = 1.0;
  for (const double c : run.spec.params.core_capacities) {
    min_capacity = std::min(min_capacity, c);
  }
  const SimDuration in_flight_bound =
      static_cast<SimDuration>(run.spec.cores) *
      (run.spec.params.sched_latency +
       static_cast<SimDuration>(static_cast<double>(Millis(10)) /
                                min_capacity));
  if (run.total_busy - sum > in_flight_bound) {
    report.Add("conservation: " + std::to_string(run.total_busy - sum) +
               "ns of busy time unaccounted to any thread (bound " +
               std::to_string(in_flight_bound) + "ns)");
  }
}

void CheckVruntimeMonotonicity(const RunResult& run, CheckReport& report) {
  // Threads moved between cgroups have their vruntime renormalized into the
  // destination frame, which may legitimately decrease it.
  std::vector<bool> moved(run.spec.threads.size(), false);
  for (const MutationSpec& m : run.spec.mutations) {
    if (m.kind == MutationKind::kMoveToCgroup && m.thread >= 0) {
      moved[static_cast<std::size_t>(m.thread)] = true;
    }
  }
  const ProbeSample* prev = nullptr;
  for (const ProbeSample& sample : run.probes) {
    if (prev != nullptr) {
      for (std::size_t g = 0; g < sample.group_min_vruntime.size(); ++g) {
        if (sample.group_min_vruntime[g] < prev->group_min_vruntime[g]) {
          report.Add("runqueue " + std::to_string(g) +
                     ": min_vruntime decreased between t=" +
                     std::to_string(prev->at) + "ns and t=" +
                     std::to_string(sample.at) + "ns");
        }
      }
      for (std::size_t t = 0; t < sample.thread_vruntime.size(); ++t) {
        if (!moved[t] && sample.thread_vruntime[t] < prev->thread_vruntime[t]) {
          report.Add("thread " + std::to_string(t) +
                     ": vruntime decreased between t=" +
                     std::to_string(prev->at) + "ns and t=" +
                     std::to_string(sample.at) + "ns");
        }
      }
    }
    prev = &sample;
  }
}

void CheckWorkConservation(const RunResult& run, CheckReport& report) {
  for (const ProbeSample& sample : run.probes) {
    if (sample.idle_cores > 0 && sample.unthrottled_runnable > 0) {
      report.Add("work conservation: " + std::to_string(sample.idle_cores) +
                 " idle core(s) while " +
                 std::to_string(sample.unthrottled_runnable) +
                 " thread(s) runnable at t=" + std::to_string(sample.at) +
                 "ns");
    }
  }
}

void CheckTimesliceBounds(const RunResult& run, CheckReport& report) {
  if (!run.spec.PureBusyContested()) return;
  // A complete involuntary slice (dispatch -> preempt) is exactly SliceFor
  // at dispatch time, which is clamped to [min_granularity, sched_latency].
  // Skip the start-up transient where creation-order wakeups still ripple.
  const SimTime warmup = Millis(100);
  constexpr SimDuration kEps = Micros(1);
  std::vector<SimTime> dispatched_at(run.spec.threads.size(), -1);
  for (const TransitionRecord& rec : run.trace) {
    if (rec.kind == sim::SchedTransition::kDispatch) {
      dispatched_at[rec.tid] = rec.at;
      continue;
    }
    if (rec.kind != sim::SchedTransition::kPreempt) {
      dispatched_at[rec.tid] = -1;
      continue;
    }
    const SimTime start = dispatched_at[rec.tid];
    dispatched_at[rec.tid] = -1;
    if (start < warmup) continue;
    const SimDuration slice = rec.at - start;
    if (slice < run.spec.params.min_granularity - kEps ||
        slice > run.spec.params.sched_latency + kEps) {
      report.Add("timeslice: thread " + std::to_string(rec.tid) + " ran " +
                 std::to_string(slice) + "ns before preemption (bounds [" +
                 std::to_string(run.spec.params.min_granularity) + ", " +
                 std::to_string(run.spec.params.sched_latency) + "]ns)");
    }
  }
}

// SCHED_DEADLINE admission control must never over-commit the machine: at
// every probe the summed utilization of admitted reservations stays within
// dl_admission_frac * total capacity, including across mid-run admissions
// and releases.
void CheckDlAdmission(const RunResult& run, CheckReport& report) {
  for (const ProbeSample& sample : run.probes) {
    if (sample.dl_admitted_util > sample.dl_util_bound + 1e-9) {
      report.Add("dl admission: admitted utilization " +
                 std::to_string(sample.dl_admitted_util) + " exceeds bound " +
                 std::to_string(sample.dl_util_bound) + " at t=" +
                 std::to_string(sample.at) + "ns");
    }
  }
}

// Capacity-aware migration must not strand a long-running CFS task on a
// little core while a strictly bigger core idles. A misfit can only arise
// at a compute-chunk boundary (remaining work only shrinks mid-chunk), and
// both chunk starts (TryMisfitUpgrade) and idle transitions
// (TryMisfitSteal) re-place it, so a misfit should never survive to the
// next probe; requiring two consecutive nonzero probes additionally
// forgives any same-timestamp event-ordering transient.
void CheckMisfitMigration(const RunResult& run, CheckReport& report) {
  if (!run.spec.Heterogeneous() || !run.spec.params.capacity_aware) return;
  const ProbeSample* prev = nullptr;
  for (const ProbeSample& sample : run.probes) {
    if (prev != nullptr && prev->misfit_runners > 0 &&
        sample.misfit_runners > 0) {
      report.Add("misfit: " + std::to_string(sample.misfit_runners) +
                 " CFS runner(s) stuck on a little core with a bigger core " +
                 "idle from t=" + std::to_string(prev->at) + "ns through t=" +
                 std::to_string(sample.at) + "ns");
    }
    prev = &sample;
  }
}

// --- hierarchical water-filling (expected fair allocation) -------------------

struct FairNode {
  std::uint64_t weight = 0;
  double cap = 0;  // max CPU seconds the subtree can consume
  bool is_thread = false;
  std::size_t thread_index = 0;
  std::vector<int> children;  // indices into the node vector
};

void AssignFair(std::vector<FairNode>& nodes, int node, double offered,
                std::vector<double>& out) {
  FairNode& n = nodes[static_cast<std::size_t>(node)];
  if (n.is_thread) {
    out[n.thread_index] = std::min(offered, n.cap);
    return;
  }
  std::vector<int> active = n.children;
  double remaining = std::min(offered, n.cap);
  while (!active.empty()) {
    double total_weight = 0;
    for (const int c : active) {
      total_weight += static_cast<double>(nodes[static_cast<std::size_t>(c)].weight);
    }
    if (total_weight <= 0) break;
    // Children whose subtree saturates below their weighted share consume
    // their cap; the freed capacity redistributes to the rest.
    std::vector<int> saturated;
    for (const int c : active) {
      const FairNode& child = nodes[static_cast<std::size_t>(c)];
      const double alloc =
          remaining * static_cast<double>(child.weight) / total_weight;
      if (child.cap < alloc * (1.0 - 1e-12)) saturated.push_back(c);
    }
    if (saturated.empty()) {
      for (const int c : active) {
        const FairNode& child = nodes[static_cast<std::size_t>(c)];
        AssignFair(nodes, c,
                   remaining * static_cast<double>(child.weight) / total_weight,
                   out);
      }
      return;
    }
    for (const int c : saturated) {
      FairNode& child = nodes[static_cast<std::size_t>(c)];
      AssignFair(nodes, c, child.cap, out);
      remaining -= child.cap;
      active.erase(std::find(active.begin(), active.end(), c));
    }
  }
}

}  // namespace

std::vector<double> ExpectedFairSeconds(const ScenarioSpec& spec) {
  const double window = ToSeconds(spec.duration);
  // Node 0 is the machine root; groups follow in spec order, then threads.
  std::vector<FairNode> nodes(1 + spec.groups.size() + spec.threads.size());
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const int node = static_cast<int>(1 + g);
    nodes[static_cast<std::size_t>(node)].weight =
        sim::ClampShares(spec.groups[g].shares);
    const int parent = spec.groups[g].parent < 0 ? 0 : 1 + spec.groups[g].parent;
    nodes[static_cast<std::size_t>(parent)].children.push_back(node);
  }
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    const int node = static_cast<int>(1 + spec.groups.size() + t);
    FairNode& n = nodes[static_cast<std::size_t>(node)];
    n.is_thread = true;
    n.thread_index = t;
    n.weight = sim::NiceToWeight(spec.threads[t].nice);
    n.cap = window;  // a thread can hold at most one core
    const int parent = spec.threads[t].group < 0 ? 0 : 1 + spec.threads[t].group;
    nodes[static_cast<std::size_t>(parent)].children.push_back(node);
  }
  // Subtree caps bottom-up: children were appended after their parents, so a
  // reverse index walk sees every child before its parent.
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (nodes[i].is_thread) continue;
    double cap = 0;
    for (const int c : nodes[i].children) {
      cap += nodes[static_cast<std::size_t>(c)].cap;
    }
    nodes[i].cap = cap;
  }
  std::vector<double> expected(spec.threads.size(), 0.0);
  AssignFair(nodes, 0, static_cast<double>(spec.cores) * window, expected);
  return expected;
}

namespace {

void CheckWeightedFairness(const RunResult& run, CheckReport& report) {
  if (!run.spec.FairnessEligible()) return;
  const std::vector<double> expected = ExpectedFairSeconds(run.spec);
  for (std::size_t t = 0; t < run.stats.size(); ++t) {
    const double actual = ToSeconds(run.stats[t].cpu_time);
    const double tolerance = std::max(0.15 * expected[t], 0.06);
    if (std::abs(actual - expected[t]) > tolerance) {
      report.Add("fairness: thread " + std::to_string(t) + " got " +
                 std::to_string(actual) + "s of CPU, expected " +
                 std::to_string(expected[t]) + "s (tolerance " +
                 std::to_string(tolerance) + "s)");
    }
  }
}

}  // namespace

CheckReport CheckInvariants(const RunResult& run) {
  CheckReport report;
  CheckTransitions(run, report);
  CheckConservation(run, report);
  CheckVruntimeMonotonicity(run, report);
  CheckWorkConservation(run, report);
  CheckTimesliceBounds(run, report);
  CheckDlAdmission(run, report);
  CheckMisfitMigration(run, report);
  CheckWeightedFairness(run, report);
  return report;
}

CheckReport CheckScenario(const ScenarioSpec& spec) {
  return CheckInvariants(RunScenario(spec));
}

// --- metamorphic properties --------------------------------------------------

namespace {

// CPU fraction per thread, or empty when nothing ran.
std::vector<double> CpuFractions(const RunResult& run) {
  double total = 0;
  for (const sim::ThreadStats& s : run.stats) total += ToSeconds(s.cpu_time);
  if (total <= 0) return {};
  std::vector<double> fractions;
  fractions.reserve(run.stats.size());
  for (const sim::ThreadStats& s : run.stats) {
    fractions.push_back(ToSeconds(s.cpu_time) / total);
  }
  return fractions;
}

void CompareFractions(const std::vector<double>& base,
                      const std::vector<double>& variant,
                      const std::string& property, CheckReport& report) {
  if (base.size() != variant.size() || base.empty()) {
    report.Add(property + ": variant run produced no comparable CPU fractions");
    return;
  }
  for (std::size_t t = 0; t < base.size(); ++t) {
    const double tolerance = std::max(0.15 * base[t], 0.02);
    if (std::abs(base[t] - variant[t]) > tolerance) {
      report.Add(property + ": thread " + std::to_string(t) +
                 " CPU fraction moved from " + std::to_string(base[t]) +
                 " to " + std::to_string(variant[t]) + " (tolerance " +
                 std::to_string(tolerance) + ")");
    }
  }
}

}  // namespace

CheckReport CheckMetamorphic(const ScenarioSpec& spec) {
  CheckReport report;
  if (!spec.FairnessEligible()) return report;
  const std::vector<double> base = CpuFractions(RunScenario(spec));

  bool nice_shiftable = spec.HomogeneousSiblings();
  for (const ThreadSpec& t : spec.threads) {
    if (t.nice >= sim::kMaxNice) nice_shiftable = false;
  }
  if (nice_shiftable) {
    ScenarioSpec shifted = spec;
    for (ThreadSpec& t : shifted.threads) ++t.nice;
    CompareFractions(base, CpuFractions(RunScenario(shifted)),
                     "metamorphic nice+1", report);
  }

  bool shares_scalable = spec.SharesScaleInvariant();
  for (const CgroupSpec& g : spec.groups) {
    if (g.shares * 4 > sim::kMaxShares) shares_scalable = false;
  }
  if (shares_scalable) {
    ScenarioSpec scaled = spec;
    for (CgroupSpec& g : scaled.groups) g.shares *= 4;
    CompareFractions(base, CpuFractions(RunScenario(scaled)),
                     "metamorphic shares x4", report);
  }
  return report;
}

// --- failure minimization ----------------------------------------------------

namespace {

ScenarioSpec RemoveMutation(const ScenarioSpec& spec, std::size_t idx) {
  ScenarioSpec out = spec;
  out.mutations.erase(out.mutations.begin() + static_cast<std::ptrdiff_t>(idx));
  return out;
}

ScenarioSpec RemoveThread(const ScenarioSpec& spec, int idx) {
  ScenarioSpec out = spec;
  out.threads.erase(out.threads.begin() + idx);
  std::vector<MutationSpec> kept;
  for (MutationSpec m : out.mutations) {
    if (m.kind == MutationKind::kSetNice ||
        m.kind == MutationKind::kMoveToCgroup) {
      if (m.thread == idx) continue;
      if (m.thread > idx) --m.thread;
    }
    kept.push_back(m);
  }
  out.mutations = std::move(kept);
  return out;
}

// Removes group `idx` if nothing references it (no child group, no thread,
// no mutation); returns false when it is still referenced.
bool TryRemoveGroup(const ScenarioSpec& spec, int idx, ScenarioSpec& out) {
  for (const CgroupSpec& g : spec.groups) {
    if (g.parent == idx) return false;
  }
  for (const ThreadSpec& t : spec.threads) {
    if (t.group == idx) return false;
  }
  for (const MutationSpec& m : spec.mutations) {
    if (m.group == idx) return false;
  }
  out = spec;
  out.groups.erase(out.groups.begin() + idx);
  for (CgroupSpec& g : out.groups) {
    if (g.parent > idx) --g.parent;
  }
  for (ThreadSpec& t : out.threads) {
    if (t.group > idx) --t.group;
  }
  for (MutationSpec& m : out.mutations) {
    if (m.group > idx) --m.group;
  }
  return true;
}

}  // namespace

ScenarioSpec MinimizeFailure(const ScenarioSpec& spec) {
  const auto fails = [](const ScenarioSpec& s) {
    return !CheckScenario(s).ok();
  };
  if (!fails(spec)) return spec;
  ScenarioSpec best = spec;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = best.mutations.size(); i-- > 0;) {
      const ScenarioSpec candidate = RemoveMutation(best, i);
      if (fails(candidate)) {
        best = candidate;
        progress = true;
      }
    }
    for (int i = static_cast<int>(best.threads.size()); i-- > 0;) {
      if (best.threads.size() <= 1) break;
      const ScenarioSpec candidate = RemoveThread(best, i);
      if (fails(candidate)) {
        best = candidate;
        progress = true;
      }
    }
    for (int i = static_cast<int>(best.groups.size()); i-- > 0;) {
      ScenarioSpec candidate;
      if (TryRemoveGroup(best, i, candidate) && fails(candidate)) {
        best = candidate;
        progress = true;
      }
    }
    if (best.duration >= Millis(200)) {
      ScenarioSpec candidate = best;
      candidate.duration /= 2;
      if (fails(candidate)) {
        best = candidate;
        progress = true;
      }
    }
  }
  return best;
}

}  // namespace lachesis::conformance
