// Randomized scheduler scenarios for the conformance harness.
//
// A ScenarioSpec is a plain, fully-deterministic description of one
// simulated-CFS workload: a cgroup hierarchy with cpu.shares, a mix of
// thread behaviours (CPU-bound, bursty, periodic sleep/wake, SCHED_FIFO)
// with nice values, and a timeline of mid-run control-plane mutations
// (SetNice / SetShares / MoveToCgroup -- the exact knobs Lachesis turns).
// GenerateScenario(seed) derives a spec from a single u64 so failures
// reproduce from the seed alone; the spec is also directly editable, which
// is what failure minimization (harness.h) relies on.
#ifndef LACHESIS_CONFORMANCE_SCENARIO_H_
#define LACHESIS_CONFORMANCE_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sim/cfs_params.h"

namespace lachesis::conformance {

// One cgroup. Groups are created in vector order, so a parent index always
// refers to an earlier element; -1 is the machine root.
struct CgroupSpec {
  int parent = -1;
  std::uint64_t shares = 1024;
};

enum class ThreadKind : std::uint8_t {
  kBusy,      // CPU-bound: computes forever in `busy` chunks
  kBursty,    // long compute bursts separated by short sleeps
  kPeriodic,  // short compute, long sleep (interactive/timer task)
  kRt,        // SCHED_FIFO periodic task at `rt_priority`
  kDeadline,  // SCHED_DEADLINE periodic task with a CBS reservation `dl`
};

struct ThreadSpec {
  ThreadKind kind = ThreadKind::kBusy;
  int group = -1;  // index into ScenarioSpec::groups, -1 = root
  int nice = 0;
  int rt_priority = 0;  // > 0 only for kRt
  SimDuration busy = Micros(100);
  SimDuration sleep = 0;  // unused for kBusy
  // Reservation triple for kDeadline. Admission control may reject it
  // (over-committed machine); the harness tolerates that -- the thread then
  // just runs as a plain CFS task, and the admission invariant checks that
  // whatever WAS admitted never exceeds the utilization bound.
  sim::DeadlineParams dl;
};

enum class MutationKind : std::uint8_t {
  kSetNice,       // thread `thread` -> `nice`
  kSetShares,     // group `group` -> `shares`
  kMoveToCgroup,  // thread `thread` -> group `group` (-1 = root)
};

struct MutationSpec {
  MutationKind kind = MutationKind::kSetNice;
  SimTime at = 0;
  int thread = -1;
  int group = -1;
  int nice = 0;
  std::uint64_t shares = 1024;
};

struct ScenarioSpec {
  std::uint64_t seed = 0;
  int cores = 1;
  sim::CfsParams params;
  SimDuration duration = Seconds(1);
  std::vector<CgroupSpec> groups;
  std::vector<ThreadSpec> threads;
  std::vector<MutationSpec> mutations;

  // True when long-run CPU ratios are predictable from the weight tree
  // alone: every thread permanently CPU-bound, no RT/deadline class, no
  // mid-run mutations, symmetric full-capacity cores (the water-filling
  // model divides wall-clock seconds, which only equals delivered work on
  // homogeneous cores), and either a single core or a flat (group-free)
  // hierarchy.
  // (On SMP, a thread running on one core is dequeued from its group's
  // runqueue, so a low-weight sibling picked through the group entity by
  // another core briefly owns the whole group slice; intra-group ratios
  // then deviate from the ideal water-filling split, as they do on real
  // per-core CFS.) Enables the weighted-fairness and metamorphic checkers.
  [[nodiscard]] bool FairnessEligible() const;
  // True when no thread competes directly against a group under the same
  // parent. Metamorphic weight transformations (global nice+1, shares x k)
  // rescale thread weights and group weights independently, so they only
  // preserve ratios when every sibling set is homogeneous.
  [[nodiscard]] bool HomogeneousSiblings() const;
  // Scaling every group's shares by a constant is ratio-preserving:
  // fairness-eligible, homogeneous siblings, and at least one group.
  [[nodiscard]] bool SharesScaleInvariant() const;
  // True when every complete timeslice is bounded by
  // [min_granularity, sched_latency]: all threads CPU-bound (no wakeup
  // preemption can truncate a slice) and more threads than cores (every
  // slice end is contested). Enables the timeslice-bound checker.
  [[nodiscard]] bool PureBusyContested() const;
  [[nodiscard]] bool HasNestedGroups() const;
  // True when params.core_capacities describes an asymmetric (big.LITTLE)
  // machine: at least one core below full capacity.
  [[nodiscard]] bool Heterogeneous() const;
};

// Deterministically derives a scenario from `seed`. Roughly 30% of seeds
// produce fairness-profile scenarios (all-busy, overhead-free, checkable
// against the hierarchical water-filling model), the rest mixed workloads
// with sleep/wake threads, RT tasks, SCHED_DEADLINE reservations and
// mid-run mutations. Multi-core non-fairness seeds get a random big.LITTLE
// capacity vector about a quarter of the time (occasionally capacity-blind,
// exercising the control arm of the migration logic).
ScenarioSpec GenerateScenario(std::uint64_t seed);

// Human-readable dump (one line per element) used in failure reports and
// the persisted corpus entries.
std::string Describe(const ScenarioSpec& spec);

}  // namespace lachesis::conformance

#endif  // LACHESIS_CONFORMANCE_SCENARIO_H_
