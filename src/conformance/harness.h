// Scheduler conformance harness: runs a ScenarioSpec on the discrete-event
// CFS machine while recording everything the invariant checkers need.
//
// RunScenario executes the scenario and collects (a) the full scheduler
// transition trace, (b) periodic probe samples of per-runqueue min_vruntime,
// per-thread vruntime and core/runqueue occupancy, and (c) the final
// per-thread statistics. CheckInvariants evaluates the checkers described in
// DESIGN.md over that record; CheckScenario is the run+check convenience;
// CheckMetamorphic re-runs transformed variants (global +1 nice, shares x k)
// and compares long-run CPU distributions. MinimizeFailure greedily shrinks
// a failing spec so persisted corpus entries stay readable.
#ifndef LACHESIS_CONFORMANCE_HARNESS_H_
#define LACHESIS_CONFORMANCE_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/scenario.h"
#include "sim/machine.h"

namespace lachesis::conformance {

struct TransitionRecord {
  SimTime at = 0;
  std::uint64_t tid = 0;
  sim::SchedTransition kind = sim::SchedTransition::kWake;
};

// One periodic snapshot of scheduler state (every duration/200).
struct ProbeSample {
  SimTime at = 0;
  std::vector<double> group_min_vruntime;  // indexed by cgroup id
  std::vector<double> thread_vruntime;     // indexed by thread id
  int idle_cores = 0;
  int unthrottled_runnable = 0;
  // SCHED_DEADLINE admission state: summed admitted utilization must never
  // exceed the bound (dl_admission_frac * total capacity).
  double dl_admitted_util = 0.0;
  double dl_util_bound = 0.0;
  // Running CFS threads stuck on a too-small core while a strictly bigger
  // core idles; capacity-aware migration must clear these promptly.
  int misfit_runners = 0;
};

struct RunResult {
  ScenarioSpec spec;
  std::vector<sim::ThreadStats> stats;
  std::vector<sim::ThreadState> final_states;
  std::vector<TransitionRecord> trace;
  std::vector<ProbeSample> probes;
  SimDuration total_busy = 0;
};

RunResult RunScenario(const ScenarioSpec& spec);

struct CheckReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string Summary() const;
  void Add(std::string violation) { violations.push_back(std::move(violation)); }
};

// All invariant checkers over one finished run. Checkers that need workload
// restrictions (fairness, timeslice bounds) gate themselves on the spec's
// eligibility flags.
CheckReport CheckInvariants(const RunResult& run);

// RunScenario + CheckInvariants.
CheckReport CheckScenario(const ScenarioSpec& spec);

// Metamorphic properties (empty report when the spec is not eligible):
//  - adding +1 nice to every thread preserves CPU fractions (the nice table
//    is ~geometric, so ratios shift by at most a few percent per step);
//  - scaling every group's shares by k preserves CPU fractions exactly in
//    expectation (weights are relative).
CheckReport CheckMetamorphic(const ScenarioSpec& spec);

// Expected per-thread CPU seconds for a fairness-eligible spec, from the
// hierarchical water-filling model (weighted max-min with a one-core cap
// per thread). Exposed for tests.
std::vector<double> ExpectedFairSeconds(const ScenarioSpec& spec);

// Greedily removes mutations, threads and groups (and halves the duration)
// while CheckScenario keeps failing. Returns the smallest failing spec
// found; returns `spec` unchanged if it does not fail.
ScenarioSpec MinimizeFailure(const ScenarioSpec& spec);

}  // namespace lachesis::conformance

#endif  // LACHESIS_CONFORMANCE_HARNESS_H_
