#include "conformance/differential.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "conformance/harness.h"
#include "conformance/scenario.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>

#include "osctl/cgroupfs.h"
#include "osctl/nice.h"
#endif

namespace lachesis::conformance {

namespace {

// Simulated CPU fractions for a static scenario (indexed by thread).
std::vector<double> SimFractions(const ScenarioSpec& spec) {
  const RunResult run = RunScenario(spec);
  double total = 0;
  for (const sim::ThreadStats& s : run.stats) total += ToSeconds(s.cpu_time);
  std::vector<double> fractions(run.stats.size(), 0.0);
  if (total <= 0) return fractions;
  for (std::size_t t = 0; t < run.stats.size(); ++t) {
    fractions[t] = ToSeconds(run.stats[t].cpu_time) / total;
  }
  return fractions;
}

ScenarioSpec OneCoreSpec() {
  ScenarioSpec spec;
  spec.cores = 1;
  spec.duration = Millis(500);
  spec.params.context_switch_cost = 0;
  spec.params.wakeup_check_cost = 0;
  return spec;
}

}  // namespace

#ifndef __linux__

DiffResult RunNiceDifferential(const std::vector<int>&, const DiffConfig&) {
  return {DiffStatus::kSkipped, "differential mode requires Linux", {}};
}

DiffResult RunSharesDifferential(const std::vector<std::uint64_t>&,
                                 const DiffConfig&) {
  return {DiffStatus::kSkipped, "differential mode requires Linux", {}};
}

#else

namespace {

// A crew of CPU-spinning workers, all pinned to the same CPU so contention
// exists even on one-core hosts and the 1-core simulator is the reference.
class SpinCrew {
 public:
  explicit SpinCrew(std::size_t n)
      : tids_(n, 0), clocks_(n), threads_(n), ready_(0) {}

  // `setup(i, tid)` runs on the worker before it starts spinning; returning
  // false aborts the crew (Fail() records why).
  template <typename Setup>
  bool Start(int target_cpu, Setup setup) {
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      threads_[i] = std::thread([this, i, target_cpu, setup] {
        const long tid = static_cast<long>(::syscall(SYS_gettid));
        tids_[i] = tid;
        cpu_set_t one;
        CPU_ZERO(&one);
        CPU_SET(target_cpu, &one);
        if (pthread_setaffinity_np(pthread_self(), sizeof(one), &one) != 0) {
          Fail("cannot pin worker to CPU " + std::to_string(target_cpu));
        } else if (!setup(i, tid)) {
          // setup recorded its own failure message
        } else if (pthread_getcpuclockid(pthread_self(), &clocks_[i]) != 0) {
          Fail("pthread_getcpuclockid failed");
        }
        ready_.fetch_add(1, std::memory_order_release);
        std::uint64_t x = tid == 0 ? 1 : static_cast<std::uint64_t>(tid);
        while (!stop_.load(std::memory_order_relaxed)) {
          for (int spin = 0; spin < 4096; ++spin) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
          }
          sink_.store(x, std::memory_order_relaxed);  // keep the work alive
        }
      });
    }
    // Wait for every worker to finish setup (bounded: spinners are live).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (ready_.load(std::memory_order_acquire) <
           static_cast<int>(threads_.size())) {
      if (std::chrono::steady_clock::now() > deadline) {
        Fail("workers did not come up within 5s");
        break;
      }
      std::this_thread::yield();
    }
    return !failed();
  }

  // Per-worker CPU seconds consumed so far.
  std::vector<double> CpuSeconds() const {
    std::vector<double> out(clocks_.size(), 0.0);
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      timespec ts{};
      if (clock_gettime(clocks_[i], &ts) == 0) {
        out[i] = static_cast<double>(ts.tv_sec) +
                 static_cast<double>(ts.tv_nsec) * 1e-9;
      }
    }
    return out;
  }

  void StopAndJoin() {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  void Fail(const std::string& why) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error_.empty()) error_ = why;
    failed_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string error() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return error_;
  }
  [[nodiscard]] long tid(std::size_t i) const { return tids_[i]; }

 private:
  std::vector<long> tids_;
  std::vector<clockid_t> clocks_;
  std::vector<std::thread> threads_;
  std::atomic<int> ready_;
  std::atomic<std::uint64_t> sink_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  mutable std::mutex mutex_;
  std::string error_;
};

// First CPU the calling thread may run on; every worker pins there.
int PickTargetCpu() {
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (pthread_getaffinity_np(pthread_self(), sizeof(mask), &mask) != 0) {
    return 0;
  }
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) return cpu;
  }
  return 0;
}

DiffResult Compare(const std::vector<double>& sim,
                   const std::vector<double>& native,
                   const DiffConfig& config) {
  DiffResult result;
  result.status = DiffStatus::kAgree;
  result.message = "agree within tolerance";
  for (std::size_t i = 0; i < sim.size(); ++i) {
    result.shares.push_back({sim[i], native[i]});
    const double tolerance =
        std::max(config.rel_tolerance * sim[i], config.abs_tolerance);
    if (std::abs(native[i] - sim[i]) > tolerance &&
        result.status == DiffStatus::kAgree) {
      result.status = DiffStatus::kMismatch;
      result.message = "worker " + std::to_string(i) +
                       ": native CPU fraction " + std::to_string(native[i]) +
                       " vs simulated " + std::to_string(sim[i]) +
                       " (tolerance " + std::to_string(tolerance) + ")";
    }
  }
  return result;
}

// Runs `crew` for config.wall_ms and returns per-worker CPU fractions, or a
// skip result through `out` on measurement failure.
bool MeasureFractions(SpinCrew& crew, const DiffConfig& config,
                      std::vector<double>& fractions, DiffResult& out) {
  const std::vector<double> before = crew.CpuSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(config.wall_ms));
  const std::vector<double> after = crew.CpuSeconds();
  double total = 0;
  fractions.assign(before.size(), 0.0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    fractions[i] = std::max(0.0, after[i] - before[i]);
    total += fractions[i];
  }
  if (total <= 0) {
    out = {DiffStatus::kSkipped, "workers consumed no measurable CPU time", {}};
    return false;
  }
  for (double& f : fractions) f /= total;
  return true;
}

}  // namespace

DiffResult RunNiceDifferential(const std::vector<int>& nices,
                               const DiffConfig& config) {
  for (const int nice : nices) {
    if (nice < 0) {
      return {DiffStatus::kSkipped,
              "negative nice requires CAP_SYS_NICE; differential uses only "
              "unprivileged controls",
              {}};
    }
  }

  ScenarioSpec spec = OneCoreSpec();
  for (const int nice : nices) {
    ThreadSpec t;
    t.kind = ThreadKind::kBusy;
    t.nice = nice;
    t.busy = Micros(200);
    spec.threads.push_back(t);
  }
  const std::vector<double> sim = SimFractions(spec);

  SpinCrew crew(nices.size());
  osctl::LinuxNiceController nice_ctl;
  const int target_cpu = PickTargetCpu();
  crew.Start(target_cpu, [&](std::size_t i, long tid) {
    // A thread may always raise its own nice; that is the whole trick.
    if (nices[i] != 0 && !nice_ctl.SetNice(tid, nices[i])) {
      crew.Fail("setpriority(tid=" + std::to_string(tid) + ", nice=" +
                std::to_string(nices[i]) + ") failed: " + std::strerror(errno));
      return false;
    }
    return true;
  });
  if (crew.failed()) {
    crew.StopAndJoin();
    return {DiffStatus::kSkipped, "nice differential skipped: " + crew.error(),
            {}};
  }
  std::vector<double> native;
  DiffResult skip;
  const bool measured = MeasureFractions(crew, config, native, skip);
  crew.StopAndJoin();
  if (!measured) return skip;
  return Compare(sim, native, config);
}

DiffResult RunSharesDifferential(const std::vector<std::uint64_t>& shares,
                                 const DiffConfig& config) {
  namespace fs = std::filesystem;
  const osctl::CgroupVersion version = osctl::CgroupController::DetectVersion();
  const fs::path root = version == osctl::CgroupVersion::kV2
                            ? fs::path("/sys/fs/cgroup")
                            : fs::path("/sys/fs/cgroup/cpu");
  osctl::CgroupController cgroups(root, version);

  std::vector<std::string> names;
  const auto cleanup = [&] {
    for (const std::string& name : names) {
      std::error_code ec;
      fs::remove(root / name, ec);  // rmdir; best effort
    }
  };
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const std::string name = "lachesis_diff_" + std::to_string(i);
    if (!cgroups.EnsureGroup(name)) {
      cleanup();
      return {DiffStatus::kSkipped,
              "cgroup differential skipped: cannot create " +
                  (root / name).string() + " (" + std::strerror(errno) + ")",
              {}};
    }
    names.push_back(name);
    if (!cgroups.SetShares(name, shares[i])) {
      cleanup();
      return {DiffStatus::kSkipped,
              "cgroup differential skipped: cannot write cpu shares under " +
                  (root / name).string() + " (" + std::strerror(errno) + ")",
              {}};
    }
  }

  ScenarioSpec spec = OneCoreSpec();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    CgroupSpec group;
    group.shares = shares[i];
    spec.groups.push_back(group);
    ThreadSpec t;
    t.kind = ThreadKind::kBusy;
    t.group = static_cast<int>(i);
    t.busy = Micros(200);
    spec.threads.push_back(t);
  }
  const std::vector<double> sim = SimFractions(spec);

  SpinCrew crew(shares.size());
  const int target_cpu = PickTargetCpu();
  crew.Start(target_cpu, [&](std::size_t i, long tid) {
    if (!cgroups.MoveThread(names[i], tid)) {
      crew.Fail("cannot move tid " + std::to_string(tid) + " into " +
                names[i] + ": " + std::strerror(errno));
      return false;
    }
    return true;
  });
  if (crew.failed()) {
    crew.StopAndJoin();
    cleanup();
    return {DiffStatus::kSkipped,
            "cgroup differential skipped: " + crew.error(), {}};
  }
  std::vector<double> native;
  DiffResult skip;
  const bool measured = MeasureFractions(crew, config, native, skip);
  crew.StopAndJoin();
  cleanup();
  if (!measured) return skip;
  return Compare(sim, native, config);
}

#endif  // __linux__

}  // namespace lachesis::conformance
