// Sim <-> native differential validation.
//
// Replays small, statically-configured scenarios both through the
// discrete-event CFS machine and on the real Linux scheduler (via the same
// src/osctl/ controllers the Lachesis middleware uses), then compares the
// achieved per-thread CPU-share ratios. Everything runs pinned to a single
// CPU so the comparison is against the 1-core simulator regardless of the
// host's core count, and only unprivileged controls are used:
//  - nice mode raises each worker's own nice (always allowed), and
//  - cgroup mode writes real cgroupfs groups, skipping with an explicit
//    message when the hierarchy is not writable (no perms / read-only fs).
//
// Tolerances are deliberately loose (the native side fights timer ticks,
// autogroup, and sibling load): a thread's native CPU fraction must match
// the simulated fraction within max(rel_tolerance * sim, abs_tolerance).
#ifndef LACHESIS_CONFORMANCE_DIFFERENTIAL_H_
#define LACHESIS_CONFORMANCE_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lachesis::conformance {

enum class DiffStatus : std::uint8_t {
  kAgree,     // native ratios matched the simulator within tolerance
  kSkipped,   // environment cannot run this mode; see `message`
  kMismatch,  // ran, but at least one thread's share was out of tolerance
};

struct DiffShare {
  double sim_fraction = 0;
  double native_fraction = 0;
};

struct DiffResult {
  DiffStatus status = DiffStatus::kSkipped;
  std::string message;  // skip reason or first mismatch description
  std::vector<DiffShare> shares;  // one per worker, in spec order
};

struct DiffConfig {
  // Native measurement window, in milliseconds of wall time.
  int wall_ms = 400;
  // |native - sim| <= max(rel_tolerance * sim, abs_tolerance) per thread.
  double rel_tolerance = 0.35;
  double abs_tolerance = 0.05;
};

// Spins one worker per entry of `nices` (all pinned to one CPU, each raising
// its own nice) and compares CPU fractions against the 1-core simulator.
// Nice values must be >= 0: raising nice needs no privilege.
DiffResult RunNiceDifferential(const std::vector<int>& nices,
                               const DiffConfig& config);

// Spins one worker per entry of `shares`, each in its own freshly-created
// cgroup with that cpu.shares value (converted to cpu.weight on v2), and
// compares CPU fractions against the 1-core simulator. Skips when the
// cgroup filesystem is not writable.
DiffResult RunSharesDifferential(const std::vector<std::uint64_t>& shares,
                                 const DiffConfig& config);

}  // namespace lachesis::conformance

#endif  // LACHESIS_CONFORMANCE_DIFFERENTIAL_H_
