// A Graphite-like time-series store (paper §6.1).
//
// All evaluated SPEs report their metrics to Graphite, which Lachesis then
// queries; the store's one-second resolution is what bounds Lachesis'
// scheduling period in the paper. The store keeps a bounded history per
// series and supports the two reads drivers need: the latest sample and a
// windowed delta (for rates / per-tuple costs from cumulative counters).
#ifndef LACHESIS_TSDB_TSDB_H_
#define LACHESIS_TSDB_TSDB_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/sim_time.h"

namespace lachesis::tsdb {

struct Sample {
  SimTime time;
  double value;
};

class TimeSeriesStore {
 public:
  // Retains at most `max_samples` points per series (ring semantics).
  explicit TimeSeriesStore(std::size_t max_samples = 600)
      : max_samples_(max_samples) {}

  void Append(const std::string& series, SimTime time, double value) {
    auto& points = series_[series];
    points.push_back({time, value});
    if (points.size() > max_samples_) points.pop_front();
  }

  [[nodiscard]] std::optional<Sample> Latest(const std::string& series) const {
    const auto it = series_.find(series);
    if (it == series_.end() || it->second.empty()) return std::nullopt;
    return it->second.back();
  }

  // Difference between the newest sample and the newest sample at least
  // `window` older; nullopt when fewer than two suitable samples exist.
  // Useful for turning cumulative counters into windowed deltas.
  [[nodiscard]] std::optional<double> Delta(const std::string& series,
                                            SimDuration window) const {
    const auto it = series_.find(series);
    if (it == series_.end() || it->second.size() < 2) return std::nullopt;
    const auto& points = it->second;
    const Sample& last = points.back();
    for (auto rit = points.rbegin() + 1; rit != points.rend(); ++rit) {
      if (last.time - rit->time >= window) return last.value - rit->value;
    }
    // No sample old enough: fall back to the oldest available.
    return last.value - points.front().value;
  }

  // Delta divided by the actual elapsed time between the samples used, in
  // units of 1/second; nullopt mirrors Delta.
  [[nodiscard]] std::optional<double> Rate(const std::string& series,
                                           SimDuration window) const {
    const auto it = series_.find(series);
    if (it == series_.end() || it->second.size() < 2) return std::nullopt;
    const auto& points = it->second;
    const Sample& last = points.back();
    const Sample* base = &points.front();
    for (auto rit = points.rbegin() + 1; rit != points.rend(); ++rit) {
      if (last.time - rit->time >= window) {
        base = &*rit;
        break;
      }
    }
    const SimDuration dt = last.time - base->time;
    if (dt <= 0) return std::nullopt;
    return (last.value - base->value) / ToSeconds(dt);
  }

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }

 private:
  std::size_t max_samples_;
  std::unordered_map<std::string, std::deque<Sample>> series_;
};

}  // namespace lachesis::tsdb

#endif  // LACHESIS_TSDB_TSDB_H_
