// Periodic metric scraper: SPE -> time-series store.
//
// Models the reporting pipeline of §6.1: each SPE pushes its public metrics
// to Graphite at a fixed resolution (1 s in the paper). Because Lachesis
// reads the store rather than the engines, its view of the system is up to
// one scrape period stale -- the key information disadvantage vs. UL-SS like
// Haren, examined in Fig 15.
#ifndef LACHESIS_TSDB_SCRAPER_H_
#define LACHESIS_TSDB_SCRAPER_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"
#include "spe/flavor.h"
#include "spe/runtime.h"
#include "tsdb/tsdb.h"

namespace lachesis::tsdb {

// Human-readable series suffix for each raw metric.
inline const char* RawMetricName(spe::RawMetric m) {
  switch (m) {
    case spe::RawMetric::kTuplesIn: return "tuples_in";
    case spe::RawMetric::kTuplesOut: return "tuples_out";
    case spe::RawMetric::kQueueSize: return "queue_size";
    case spe::RawMetric::kBufferUsage: return "buffer_usage";
    case spe::RawMetric::kBufferCapacity: return "buffer_capacity";
    case spe::RawMetric::kAvgExecLatencyUs: return "avg_exec_latency_us";
    case spe::RawMetric::kBusyTimeNs: return "busy_time_ns";
    case spe::RawMetric::kCost: return "cost_ns";
    case spe::RawMetric::kSelectivity: return "selectivity";
    case spe::RawMetric::kHeadTupleAgeNs: return "head_tuple_age_ns";
    case spe::RawMetric::kQueueHighWater: return "queue_high_water";
  }
  return "unknown";
}

class Scraper {
 public:
  Scraper(sim::Simulator& sim, TimeSeriesStore& store, SimDuration period)
      : sim_(&sim), store_(&store), period_(period) {}

  // Registers an instance. A non-negative `machine_index` restricts the
  // scrape to operators placed on that machine: fleet shards each run their
  // own Scraper on their own simulator and must not read operator state the
  // worker of another shard is mutating mid-epoch.
  void AddInstance(spe::SpeInstance& instance, int machine_index = -1) {
    instances_.push_back(Target{&instance, machine_index});
  }

  // Scrapes every `period` until `until`.
  void Start(SimTime until) {
    until_ = until;
    ScheduleNext(sim_->now() + period_);
  }

  void ScrapeOnce() {
    for (const Target& target : instances_) {
      target.instance->ForEachRawMetric(
          [this](const spe::DeployedQuery&, const spe::DeployedOp& op,
                 spe::RawMetric metric, double value) {
            store_->Append(op.op->config().name + "." + RawMetricName(metric),
                           sim_->now(), value);
          },
          target.machine_index);
    }
  }

 private:
  void ScheduleNext(SimTime when) {
    if (when > until_) return;
    sim_->ScheduleAt(when, [this, when] {
      ScrapeOnce();
      ScheduleNext(when + period_);
    });
  }

  struct Target {
    spe::SpeInstance* instance;
    int machine_index;  // -1 = all machines
  };

  sim::Simulator* sim_;
  TimeSeriesStore* store_;
  SimDuration period_;
  SimTime until_ = 0;
  std::vector<Target> instances_;
};

}  // namespace lachesis::tsdb

#endif  // LACHESIS_TSDB_SCRAPER_H_
