#include "ulss/ulss.h"

#include <algorithm>
#include <cassert>

namespace lachesis::ulss {

namespace {

// Worker thread: pick the best ready operator, run a non-preemptive batch
// through it, repeat; park on the shared channel when nothing is ready.
class UlssWorkerBody final : public sim::ThreadBody {
 public:
  explicit UlssWorkerBody(UlssScheduler& scheduler) : scheduler_(&scheduler) {}

  sim::Action Next(sim::Machine& machine) override {
    for (;;) {
      switch (phase_) {
        case Phase::kPick: {
          SimDuration extra = 0;
          if (current_ == nullptr || batch_left_ <= 0 ||
              current_->op->input().empty()) {
            if (current_ != nullptr) {
              current_->claimed = false;
              current_ = nullptr;
            }
            current_ = scheduler_->PickBest();
            if (current_ == nullptr) {
              return sim::Action::Wait(scheduler_->work_channel());
            }
            current_->claimed = true;
            batch_left_ = scheduler_->config().batch_size;
            extra = scheduler_->config().decision_cost;
            if (current_->op != last_op_) {
              // Switching operators disturbs the worker's cache exactly like
              // a kernel-level context switch between operator threads does.
              extra += machine.params().context_switch_cost;
              last_op_ = current_->op;
            }
            scheduler_->RecordDecision();
          }
          SimDuration cost = 0;
          if (!current_->op->Begin(cost)) {
            current_->claimed = false;
            current_ = nullptr;
            continue;
          }
          --batch_left_;
          phase_ = Phase::kFinish;
          return sim::Action::Compute(cost + extra);
        }
        case Phase::kFinish: {
          const SimDuration block = current_->op->Finish(machine.now());
          // UL-SS are only paired with unbounded-queue engines in the paper;
          // emission never blocks on capacity.
          current_->op->EmitAllUnbounded();
          phase_ = Phase::kPick;
          if (block > 0) {
            // Simulated blocking I/O inside an operator: the WHOLE worker
            // stalls -- the drawback Fig 16 quantifies.
            return sim::Action::Sleep(block);
          }
          continue;
        }
      }
    }
  }

 private:
  enum class Phase { kPick, kFinish };
  UlssScheduler* scheduler_;
  UlssScheduler::ManagedOp* current_ = nullptr;
  const spe::PhysicalOp* last_op_ = nullptr;
  int batch_left_ = 0;
  Phase phase_ = Phase::kPick;
};

}  // namespace

UlssScheduler::UlssScheduler(sim::Machine& machine, UlssConfig config)
    : machine_(&machine), config_(config), work_available_(machine) {}

void UlssScheduler::AddQuery(spe::DeployedQuery& query) {
  assert(!started_);
  queries_.push_back(&query);
  for (spe::DeployedOp& d : query.ops) {
    assert(!d.has_thread && "deploy with create_threads=false for UL-SS");
    ops_.push_back({d.op, &query, false, 0.0});
    d.op->input().set_push_listener(&work_available_);
  }
}

void UlssScheduler::Start(SimTime until) {
  assert(!started_);
  started_ = true;
  RefreshPriorities();
  for (int i = 0; i < config_.num_workers; ++i) {
    machine_->CreateThread("ulss-worker-" + std::to_string(i),
                           std::make_unique<UlssWorkerBody>(*this),
                           machine_->root_cgroup());
  }
  if (config_.flavor == UlssFlavor::kHaren) {
    // Haren refreshes priorities from fresh in-engine metrics periodically.
    ScheduleRefresh(until);
  }
}

void UlssScheduler::ScheduleRefresh(SimTime until) {
  const SimTime when = machine_->now() + config_.refresh_period;
  if (when > until) return;
  machine_->simulator().ScheduleAt(when, [this, until] {
    RefreshPriorities();
    ScheduleRefresh(until);
  });
}

void UlssScheduler::RefreshPriorities() {
  for (ManagedOp& m : ops_) {
    switch (config_.policy) {
      case UlssPolicy::kQueueSize:
        m.priority = static_cast<double>(m.op->input().size());
        break;
      case UlssPolicy::kFcfs:
        m.priority =
            static_cast<double>(m.op->input().HeadAge(machine_->now()));
        break;
      case UlssPolicy::kHighestRate:
        m.priority = HighestRateOf(m);
        break;
    }
  }
}

double UlssScheduler::HighestRateOf(const ManagedOp& managed) const {
  // Path rate over the logical DAG using live measured cost/selectivity
  // (fresh in-engine metrics: the information advantage Haren has over an
  // external middleware).
  const spe::LogicalQuery& topo = managed.query->logical;
  const int n = static_cast<int>(topo.operators.size());
  std::vector<double> cost(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sel(static_cast<std::size_t>(n), 0.0);
  std::vector<int> replicas(static_cast<std::size_t>(n), 0);
  for (const spe::DeployedOp& d : managed.query->ops) {
    for (const int l : d.logical_indices) {
      cost[static_cast<std::size_t>(l)] += d.op->MeasuredCostNs();
      sel[static_cast<std::size_t>(l)] += d.op->MeasuredSelectivity();
      ++replicas[static_cast<std::size_t>(l)];
    }
  }
  for (int l = 0; l < n; ++l) {
    const auto i = static_cast<std::size_t>(l);
    if (replicas[i] > 0) {
      cost[i] /= replicas[i];
      sel[i] /= replicas[i];
    }
    if (cost[i] <= 0) {
      cost[i] = static_cast<double>(
          topo.operators[i].cost > 0 ? topo.operators[i].cost : 1000);
    }
    if (sel[i] <= 0) sel[i] = 1.0;
  }

  double best = 0.0;
  struct Frame {
    int op;
    double sel_product, cost_sum;
  };
  for (const int start : managed.op->config().logical_indices) {
    std::vector<Frame> stack{{start, sel[static_cast<std::size_t>(start)],
                              cost[static_cast<std::size_t>(start)]}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const auto down = topo.Downstream(f.op);
      if (down.empty()) {
        if (f.cost_sum > 0) best = std::max(best, f.sel_product / f.cost_sum);
        continue;
      }
      for (const int d : down) {
        stack.push_back({d, f.sel_product * sel[static_cast<std::size_t>(d)],
                         f.cost_sum + cost[static_cast<std::size_t>(d)]});
      }
    }
  }
  return best;
}

UlssScheduler::ManagedOp* UlssScheduler::PickBest() {
  // EdgeWise evaluates queue sizes at pick time (its fixed QS policy);
  // Haren uses the last refreshed priorities.
  ManagedOp* best = nullptr;
  double best_priority = -1;
  for (ManagedOp& m : ops_) {
    if (m.claimed || m.op->input().empty() || m.op->Throttled()) continue;
    const double priority =
        config_.flavor == UlssFlavor::kEdgeWise
            ? static_cast<double>(m.op->input().size())
            : m.priority;
    if (priority > best_priority) {
      best_priority = priority;
      best = &m;
    }
  }
  return best;
}

}  // namespace lachesis::ulss
