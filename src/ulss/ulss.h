// User-Level Streaming Scheduler (UL-SS) baselines (paper §1, §6.2, §6.4).
//
// The state-of-the-art custom schedulers Lachesis is compared against run
// operators as user-level tasks on a small pool of worker kernel threads,
// inside the SPE:
//  - EdgeWise [18]: fixed Queue-Size policy; a worker picks the ready
//    operator with the longest input queue and runs a non-preemptive batch.
//  - Haren [43]: pluggable policies (QS/FCFS/HR here); operator priorities
//    are refreshed from FRESH in-engine metrics at a configurable period
//    (50 ms in its paper -- 20x more decisions than Lachesis, Fig 15).
//
// The structural drawback the paper examines (Fig 16) falls out naturally:
// when an operator blocks (simulated I/O), the whole worker thread stalls,
// because the UL-SS cannot preempt user-level tasks.
#ifndef LACHESIS_ULSS_ULSS_H_
#define LACHESIS_ULSS_ULSS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sim/machine.h"
#include "spe/runtime.h"

namespace lachesis::ulss {

enum class UlssFlavor { kEdgeWise, kHaren };
enum class UlssPolicy { kQueueSize, kFcfs, kHighestRate };

struct UlssConfig {
  UlssFlavor flavor = UlssFlavor::kEdgeWise;
  UlssPolicy policy = UlssPolicy::kQueueSize;
  int num_workers = 4;  // typically = #cores
  // Tuples a worker may process from one operator per decision
  // (non-preemptive batch).
  int batch_size = 16;
  // CPU burned per scheduling decision (pick + queue scan).
  SimDuration decision_cost = Micros(5);
  // Haren: period of the priority-refresh task.
  SimDuration refresh_period = Millis(50);
};

class UlssScheduler {
 public:
  struct ManagedOp {
    spe::PhysicalOp* op;
    spe::DeployedQuery* query;
    bool claimed = false;
    double priority = 0;
  };

  UlssScheduler(sim::Machine& machine, UlssConfig config);

  // Registers a query deployed with DeployOptions::create_threads = false;
  // the scheduler becomes its executor.
  void AddQuery(spe::DeployedQuery& query);

  // Spawns the worker threads (and Haren's refresh task).
  void Start(SimTime until);

  // --- worker interface ------------------------------------------------------
  // Highest-priority unclaimed ready operator, or nullptr.
  ManagedOp* PickBest();
  [[nodiscard]] sim::WaitChannel& work_channel() { return work_available_; }
  void RecordDecision() { ++decisions_; }

  [[nodiscard]] const UlssConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }

 private:
  void ScheduleRefresh(SimTime until);
  void RefreshPriorities();
  [[nodiscard]] double HighestRateOf(const ManagedOp& managed) const;

  sim::Machine* machine_;
  UlssConfig config_;
  std::vector<ManagedOp> ops_;
  std::vector<spe::DeployedQuery*> queries_;
  sim::WaitChannel work_available_;
  std::uint64_t decisions_ = 0;
  bool started_ = false;
};

}  // namespace lachesis::ulss

#endif  // LACHESIS_ULSS_ULSS_H_
