// The metric provider (paper §4, §5.2, Algorithm 3).
//
// Single component responsible for computing the metrics policies request.
// Per scheduling period it iterates the drivers and computes every
// registered metric for every entity, using a per-driver cache, fetching
// directly from the driver when the SPE exposes the metric and recursively
// resolving the dependency graph otherwise. A missing primitive dependency
// is a configuration error.
#ifndef LACHESIS_CORE_METRIC_PROVIDER_H_
#define LACHESIS_CORE_METRIC_PROVIDER_H_

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "core/entities.h"
#include "core/metric.h"

namespace lachesis::core {

// Thrown when a registered metric can be neither fetched nor derived for a
// driver (Algorithm 3 L15).
class ConfigurationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class MetricProvider {
 public:
  // Installs the built-in derived metrics (queue size, cost, selectivity,
  // input rate, highest rate).
  MetricProvider();

  // Registers a metric required by some policy (Algorithm 1 L1). Leaf
  // dependencies are registered implicitly during resolution.
  void Register(MetricId metric) { registered_.insert(metric); }

  // Drops a registration (a query detached and no remaining policy needs
  // the metric); it is no longer computed on Update.
  void Unregister(MetricId metric) { registered_.erase(metric); }
  [[nodiscard]] const std::set<MetricId>& registered() const {
    return registered_;
  }

  // Adds or replaces a derived metric (the set is user-extensible).
  void InstallDerived(std::unique_ptr<DerivedMetric> metric);

  // Computes all registered metrics for all entities of all drivers
  // (Algorithm 3, update()). `window` is the delta window used by
  // windowed metrics, normally the scheduling period.
  void Update(const std::vector<SpeDriver*>& drivers, SimDuration window);

  // Reads a computed value from the last Update. Precondition: the metric
  // was registered and Update ran.
  [[nodiscard]] double Value(const SpeDriver& driver, MetricId metric,
                             OperatorId entity) const;

  // Entities snapshot taken during the last Update.
  [[nodiscard]] const std::vector<EntityInfo>& EntitiesOf(
      const SpeDriver& driver) const;

 private:
  friend class DriverResolver;

  std::set<MetricId> registered_;
  std::map<MetricId, std::unique_ptr<DerivedMetric>> derived_;

  struct DriverState {
    std::vector<EntityInfo> entities;
    std::unordered_map<QueryId, std::vector<EntityInfo>> by_query;
    // (metric, entity) -> value; rebuilt each Update.
    std::map<std::pair<MetricId, OperatorId>, double> values;
  };
  std::map<const SpeDriver*, DriverState> states_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_METRIC_PROVIDER_H_
