#include "core/metric_provider.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

namespace lachesis::core {

namespace {

// --- built-in derived metrics (the paper's Fig 4 style graph) ---------------

class QueueSizeMetric final : public DerivedMetric {
 public:
  [[nodiscard]] MetricId id() const override { return MetricId::kQueueSize; }
  [[nodiscard]] std::vector<MetricId> deps() const override {
    return {MetricId::kBufferUsage, MetricId::kBufferCapacity};
  }
  double Compute(MetricResolver& r, const EntityInfo& e) override {
    return r.Get(MetricId::kBufferUsage, e) * r.Get(MetricId::kBufferCapacity, e);
  }
};

class CostMetric final : public DerivedMetric {
 public:
  [[nodiscard]] MetricId id() const override { return MetricId::kCost; }
  [[nodiscard]] std::vector<MetricId> deps() const override {
    return {MetricId::kBusyDeltaNs, MetricId::kTuplesInDelta};
  }
  double Compute(MetricResolver& r, const EntityInfo& e) override {
    const double in = r.Get(MetricId::kTuplesInDelta, e);
    if (in <= 0) return 0.0;
    return r.Get(MetricId::kBusyDeltaNs, e) / in;
  }
};

class SelectivityMetric final : public DerivedMetric {
 public:
  [[nodiscard]] MetricId id() const override { return MetricId::kSelectivity; }
  [[nodiscard]] std::vector<MetricId> deps() const override {
    return {MetricId::kTuplesOutDelta, MetricId::kTuplesInDelta};
  }
  double Compute(MetricResolver& r, const EntityInfo& e) override {
    const double in = r.Get(MetricId::kTuplesInDelta, e);
    if (in <= 0) return 0.0;
    return r.Get(MetricId::kTuplesOutDelta, e) / in;
  }
};

class InputRateMetric final : public DerivedMetric {
 public:
  [[nodiscard]] MetricId id() const override { return MetricId::kInputRate; }
  [[nodiscard]] std::vector<MetricId> deps() const override {
    return {MetricId::kTuplesInDelta};
  }
  double Compute(MetricResolver& r, const EntityInfo& e) override {
    const double window_s = ToSeconds(r.window());
    if (window_s <= 0) return 0.0;
    return r.Get(MetricId::kTuplesInDelta, e) / window_s;
  }
};

// Highest Rate (Sharaf et al. [50]): for each operator, the best output rate
// of any path from it to a sink: max over paths of prod(selectivity) /
// sum(cost). Logical-level values are aggregated over the physical replicas
// implementing each logical operator, then the per-entity value is the best
// over the entity's (possibly fused) logical operators.
class HighestRateMetric final : public DerivedMetric {
 public:
  [[nodiscard]] MetricId id() const override { return MetricId::kHighestRate; }
  [[nodiscard]] std::vector<MetricId> deps() const override {
    return {MetricId::kCost, MetricId::kSelectivity};
  }
  double Compute(MetricResolver& r, const EntityInfo& e) override {
    const LogicalTopology& topo = r.Topology(e.query);
    const auto& entities = r.QueryEntities(e.query);
    const int n = topo.size();

    // Aggregate physical cost/selectivity onto logical operators.
    std::vector<double> cost(static_cast<std::size_t>(n), 0.0);
    std::vector<double> sel(static_cast<std::size_t>(n), 0.0);
    std::vector<int> replicas(static_cast<std::size_t>(n), 0);
    for (const EntityInfo& other : entities) {
      const double c = r.Get(MetricId::kCost, other);
      const double s = r.Get(MetricId::kSelectivity, other);
      for (const int l : other.logical_indices) {
        cost[static_cast<std::size_t>(l)] += c;
        sel[static_cast<std::size_t>(l)] += s;
        ++replicas[static_cast<std::size_t>(l)];
      }
    }
    for (int l = 0; l < n; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (replicas[idx] > 0) {
        cost[idx] /= replicas[idx];
        sel[idx] /= replicas[idx];
      }
      // Unmeasured operators fall back to static hints / neutral values so
      // HR still produces a usable schedule during warm-up.
      if (cost[idx] <= 0) {
        cost[idx] = topo.base_costs.empty() || topo.base_costs[idx] <= 0
                        ? 1000.0
                        : topo.base_costs[idx];
      }
      if (sel[idx] <= 0) sel[idx] = 1.0;
    }

    double best = 0.0;
    for (const int l : e.logical_indices) {
      best = std::max(best, BestPathRate(topo, cost, sel, l));
    }
    return best;
  }

 private:
  // DFS over the DAG enumerating (selectivity product, cost sum) per path to
  // a sink; returns the best ratio. Query DAGs are small, so enumeration is
  // fine.
  static double BestPathRate(const LogicalTopology& topo,
                             const std::vector<double>& cost,
                             const std::vector<double>& sel, int from) {
    double best = 0.0;
    struct Frame {
      int op;
      double sel_product;
      double cost_sum;
    };
    std::vector<Frame> stack;
    stack.push_back({from, sel[static_cast<std::size_t>(from)],
                     cost[static_cast<std::size_t>(from)]});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const auto down = topo.Downstream(f.op);
      if (down.empty()) {
        if (f.cost_sum > 0) best = std::max(best, f.sel_product / f.cost_sum);
        continue;
      }
      for (const int d : down) {
        stack.push_back({d, f.sel_product * sel[static_cast<std::size_t>(d)],
                         f.cost_sum + cost[static_cast<std::size_t>(d)]});
      }
    }
    return best;
  }
};

}  // namespace

// Per-driver resolver implementing Algorithm 3's compute() with cache.
class DriverResolver final : public MetricResolver {
 public:
  DriverResolver(MetricProvider& provider, SpeDriver& driver,
                 MetricProvider::DriverState& state, SimDuration window)
      : provider_(&provider), driver_(&driver), state_(&state), window_(window) {}

  double Get(MetricId metric, const EntityInfo& entity) override {
    const auto key = std::make_pair(metric, entity.id);
    // L10-11: already computed in this period.
    if (const auto it = state_->values.find(key); it != state_->values.end()) {
      return it->second;
    }
    // L12-13: available directly from the driver.
    if (driver_->Provides(metric)) {
      const double value = driver_->Fetch(metric, entity);
      state_->values.emplace(key, value);
      return value;
    }
    // L14-15: primitive metric missing -> configuration error.
    const auto derived_it = provider_->derived_.find(metric);
    if (derived_it == provider_->derived_.end()) {
      throw ConfigurationError(std::string("metric '") + MetricName(metric) +
                               "' is neither provided by driver '" +
                               driver_->name() + "' nor derivable");
    }
    // A user-installed derived metric may (transitively) depend on itself;
    // Algorithm 3's recursion must fail loudly instead of overflowing.
    if (!in_flight_.insert(key).second) {
      throw ConfigurationError(std::string("metric '") + MetricName(metric) +
                               "' has a cyclic dependency");
    }
    // L16-18: compute recursively from dependencies.
    const double value = derived_it->second->Compute(*this, entity);
    in_flight_.erase(key);
    state_->values.emplace(key, value);
    return value;
  }

  const std::vector<EntityInfo>& QueryEntities(QueryId query) override {
    return state_->by_query[query];
  }

  const LogicalTopology& Topology(QueryId query) override {
    return driver_->Topology(query);
  }

  [[nodiscard]] SimDuration window() const override { return window_; }

 private:
  MetricProvider* provider_;
  SpeDriver* driver_;
  MetricProvider::DriverState* state_;
  SimDuration window_;
  std::set<std::pair<MetricId, OperatorId>> in_flight_;
};

MetricProvider::MetricProvider() {
  InstallDerived(std::make_unique<QueueSizeMetric>());
  InstallDerived(std::make_unique<CostMetric>());
  InstallDerived(std::make_unique<SelectivityMetric>());
  InstallDerived(std::make_unique<InputRateMetric>());
  InstallDerived(std::make_unique<HighestRateMetric>());
}

void MetricProvider::InstallDerived(std::unique_ptr<DerivedMetric> metric) {
  const MetricId id = metric->id();
  derived_[id] = std::move(metric);
}

void MetricProvider::Update(const std::vector<SpeDriver*>& drivers,
                            SimDuration window) {
  for (SpeDriver* driver : drivers) {
    DriverState& state = states_[driver];
    state.values.clear();  // L4: fresh per-driver cache each period
    state.entities = driver->Entities();
    state.by_query.clear();
    for (const EntityInfo& e : state.entities) {
      state.by_query[e.query].push_back(e);
    }
    DriverResolver resolver(*this, *driver, state, window);
    for (const MetricId metric : registered_) {  // L5-7
      for (const EntityInfo& e : state.entities) {
        resolver.Get(metric, e);
      }
    }
  }
}

double MetricProvider::Value(const SpeDriver& driver, MetricId metric,
                             OperatorId entity) const {
  const auto state_it = states_.find(&driver);
  assert(state_it != states_.end() && "Update must run before Value");
  const auto it = state_it->second.values.find({metric, entity});
  assert(it != state_it->second.values.end() && "metric not computed");
  return it->second;
}

const std::vector<EntityInfo>& MetricProvider::EntitiesOf(
    const SpeDriver& driver) const {
  const auto it = states_.find(&driver);
  assert(it != states_.end());
  return it->second.entities;
}

}  // namespace lachesis::core
