#include "core/transform.h"

#include <algorithm>

namespace lachesis::core {

std::vector<ScheduleEntry> TransformLogicalSchedule(
    const LogicalSchedule& logical, const std::vector<EntityInfo>& entities,
    FusionAggregate aggregate) {
  std::vector<ScheduleEntry> out;
  out.reserve(entities.size());
  for (const EntityInfo& e : entities) {  // each physical op (incl. replicas)
    if (e.query != logical.query) continue;
    double priority = 0.0;
    bool first = true;
    int contributors = 0;
    for (const int l : e.logical_indices) {  // fused logical operators
      const auto it = logical.priorities.find(l);
      if (it == logical.priorities.end()) continue;
      const double p = it->second;
      ++contributors;
      if (first) {
        priority = p;
        first = false;
        continue;
      }
      switch (aggregate) {
        case FusionAggregate::kMax:
          priority = std::max(priority, p);
          break;
        case FusionAggregate::kMin:
          priority = std::min(priority, p);
          break;
        case FusionAggregate::kSum:
        case FusionAggregate::kMean:
          priority += p;
          break;
      }
    }
    if (aggregate == FusionAggregate::kMean && contributors > 1) {
      priority /= contributors;
    }
    out.push_back({e, priority});
  }
  return out;
}

}  // namespace lachesis::core
