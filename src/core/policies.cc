#include "core/policies.h"

#include <cassert>

#include "core/transform.h"

namespace lachesis::core {

Schedule QueueSizePolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLinear;
  ctx.ForEachEntity([&](SpeDriver& driver, const EntityInfo& e) {
    const double queue = ctx.provider->Value(driver, MetricId::kQueueSize, e.id);
    schedule.entries.push_back({e, queue});
  });
  return schedule;
}

Schedule HighestRatePolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLogarithmic;
  ctx.ForEachEntity([&](SpeDriver& driver, const EntityInfo& e) {
    const double hr = ctx.provider->Value(driver, MetricId::kHighestRate, e.id);
    schedule.entries.push_back({e, hr});
  });
  return schedule;
}

Schedule FcfsPolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLinear;
  ctx.ForEachEntity([&](SpeDriver& driver, const EntityInfo& e) {
    const double age = ctx.provider->Value(driver, MetricId::kHeadTupleAge, e.id);
    schedule.entries.push_back({e, age});
  });
  return schedule;
}

Schedule RandomPolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLinear;
  ctx.ForEachEntity([&](SpeDriver&, const EntityInfo& e) {
    schedule.entries.push_back({e, ctx.rng->NextDouble()});
  });
  return schedule;
}

Schedule MinMemoryPolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLinear;
  ctx.ForEachEntity([&](SpeDriver& driver, const EntityInfo& e) {
    const double cost = ctx.provider->Value(driver, MetricId::kCost, e.id);
    const double sel = ctx.provider->Value(driver, MetricId::kSelectivity, e.id);
    // Data shed per CPU nanosecond; negative for expanding operators, which
    // correctly deprioritizes them when memory is the goal.
    const double priority = cost > 0 ? (1.0 - sel) / cost : 0.0;
    schedule.entries.push_back({e, priority});
  });
  return schedule;
}

Schedule PressureStallPolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLinear;
  ctx.ForEachEntity([&](SpeDriver& driver, const EntityInfo& e) {
    const double pressure =
        ctx.provider->Value(driver, MetricId::kCpuPressure, e.id);
    schedule.entries.push_back({e, pressure});
  });
  return schedule;
}

SwitchablePolicy::SwitchablePolicy(
    std::vector<std::unique_ptr<SchedulingPolicy>> candidates,
    Selector selector)
    : candidates_(std::move(candidates)), selector_(std::move(selector)) {
  assert(!candidates_.empty());
}

std::vector<MetricId> SwitchablePolicy::RequiredMetrics() const {
  std::vector<MetricId> all;
  for (const auto& candidate : candidates_) {
    for (const MetricId m : candidate->RequiredMetrics()) all.push_back(m);
  }
  return all;
}

Schedule SwitchablePolicy::ComputeSchedule(const PolicyContext& ctx) {
  active_ = std::min(selector_(ctx), candidates_.size() - 1);
  return candidates_[active_]->ComputeSchedule(ctx);
}

CriticalChainPolicy::CriticalChainPolicy(
    std::unique_ptr<SchedulingPolicy> inner,
    std::vector<std::string> critical_queries)
    : inner_(std::move(inner)),
      critical_queries_(std::move(critical_queries)),
      name_("critical+" + inner_->name()) {}

std::vector<MetricId> CriticalChainPolicy::RequiredMetrics() const {
  return inner_->RequiredMetrics();
}

Schedule CriticalChainPolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule = inner_->ComputeSchedule(ctx);
  for (ScheduleEntry& entry : schedule.entries) {
    for (const std::string& query : critical_queries_) {
      if (entry.entity.query_name == query) {
        entry.criticality = Criticality::kLatencyCritical;
        break;
      }
    }
  }
  return schedule;
}

Schedule LogicalPriorityPolicy::ComputeSchedule(const PolicyContext& ctx) {
  Schedule schedule;
  schedule.spacing = PrioritySpacing::kLinear;
  for (SpeDriver* driver : ctx.drivers) {
    // Group this driver's entities by query, then apply Algorithm 2 to each
    // query that has configured logical priorities.
    std::map<QueryId, std::vector<EntityInfo>> by_query;
    std::map<QueryId, std::string> query_names;
    for (const EntityInfo& e : ctx.provider->EntitiesOf(*driver)) {
      if (ctx.filter && !ctx.filter(e)) continue;
      by_query[e.query].push_back(e);
      query_names[e.query] = e.query_name;
    }
    for (const auto& [query, entities] : by_query) {
      const auto it = priorities_.find(query_names[query]);
      if (it == priorities_.end()) continue;
      LogicalSchedule logical;
      logical.query = query;
      logical.priorities = it->second;
      const auto physical = TransformLogicalSchedule(logical, entities);
      schedule.entries.insert(schedule.entries.end(), physical.begin(),
                              physical.end());
    }
  }
  return schedule;
}

}  // namespace lachesis::core
