// Per-operation-class health tracking for the control plane's OS boundary.
//
// The schedule-delta layer absorbs backend failures, but absorbing alone
// means a persistently failing operation is re-issued every tick (a blind
// retry storm against a dead backend). This module adds the fault-tolerance
// state machine between "op failed" and "try again":
//
//  - per-(class, target) exponential backoff with deterministic jitter:
//    a failing op's retries spread out as base * 2^k, so a permanently
//    failing single target costs O(log T) syscalls over T ticks instead of
//    O(T);
//  - a per-operation-class circuit breaker: when a whole class fails
//    consecutively (threshold in a row with no intervening success -- the
//    signature of a dead backend, an unwritable cgroupfs, or a missing
//    capability) the breaker opens and every op of the class is suppressed
//    except one half-open probe per probe interval (the interval doubles
//    after each failed probe, so a dead backend costs O(log T) probes over
//    T ticks and O(1) work per tick). A successful probe closes the
//    per-target backoff of the class: an environmental failure ended, so
//    everything is retried promptly (this is what lets schedules reconverge
//    within a few ticks of faults clearing);
//  - error classification: kPermanent (EPERM/EACCES: retrying the same call
//    cannot succeed until the environment changes) deepens backoff twice as
//    fast; kVanished (ESRCH/ENOENT: the target is gone) backs off the
//    target but does NOT count against the class -- one dead thread says
//    nothing about the backend.
//
// All delays are deterministic: jitter is derived from SplitMix64 over
// (seed, target, attempt), never from a global RNG, so chaos runs replay
// byte-identically.
#ifndef LACHESIS_CORE_OP_HEALTH_H_
#define LACHESIS_CORE_OP_HEALTH_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/hash_index.h"
#include "common/sim_time.h"

namespace lachesis::obs {
class Recorder;
}

namespace lachesis::core {

// The operation classes of the OsAdapter surface. Health is tracked per
// class because failure modes are per-mechanism: RT ops fail together
// (missing CAP_SYS_NICE), cgroup ops fail together (unwritable root), nice
// ops fail together (backend down), deadline ops fail together (no
// sched_setattr / admission disabled), affinity ops fail together (no
// sched_setaffinity or a pinned cpuset).
enum class OpClass {
  kSetNice = 0,
  kSetGroupShares,
  kMoveToGroup,
  kSetRtPriority,
  kSetGroupQuota,
  kSetDeadline,
  kSetAffinity,
};
inline constexpr int kOpClassCount = 7;

[[nodiscard]] const char* OpClassName(OpClass cls);

// Bitmask helpers so translators can declare which classes they depend on
// (drives the capability degradation ladder in the runner).
[[nodiscard]] constexpr std::uint32_t OpClassBit(OpClass cls) {
  return 1u << static_cast<int>(cls);
}

enum class ErrorSeverity {
  kTransient,  // EBUSY/EAGAIN/unknown: retry soon, count against the class
  kVanished,   // ESRCH/ENOENT: target gone; back off, class unaffected
  kPermanent,  // EPERM/EACCES: environment must change; deepen backoff fast
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct HealthConfig {
  bool enabled = false;  // raw delta adapters default off; the runner turns
                         // it on (see LachesisRunner)
  SimDuration backoff_base = Millis(500);  // first retry delay
  // 0 = uncapped doubling (pure O(log T) retries, clamped only by
  // kBackoffCeiling); > 0 must be >= backoff_base.
  SimDuration backoff_cap = 0;
  double jitter_frac = 0.25;  // deterministic jitter in [0, frac * delay)
  int breaker_threshold = 5;  // consecutive class failures that open it
  SimDuration probe_interval = Seconds(2);  // half-open probe cadence
  std::uint64_t seed = 0x1ac4e515;          // jitter stream

  // Throws std::invalid_argument on out-of-range values.
  void Validate() const;
};

// Hard ceiling on any backoff delay so "uncapped" doubling cannot overflow
// or effectively disable a target forever on a long-lived daemon.
inline constexpr SimDuration kBackoffCeiling = Seconds(3600);

class OpHealthTracker {
 public:
  OpHealthTracker() = default;
  explicit OpHealthTracker(HealthConfig config);

  // Validates and swaps the configuration (existing state is kept).
  void set_config(const HealthConfig& config);
  [[nodiscard]] const HealthConfig& config() const { return config_; }

  // Optional decision-provenance sink: breaker transitions and backoff
  // arming are recorded as structured events. Null disables (default).
  void SetRecorder(obs::Recorder* recorder) { recorder_ = recorder; }

  // True when an attempt on (cls, target) is allowed at `now`: the class
  // breaker is closed (or due a half-open probe, in which case this call IS
  // the probe) and the target is not backing off. Callers must follow every
  // allowed attempt with RecordSuccess or RecordFailure.
  [[nodiscard]] bool AllowAttempt(OpClass cls, const std::string& target,
                                  SimTime now);
  void RecordSuccess(OpClass cls, const std::string& target, SimTime now);
  void RecordFailure(OpClass cls, const std::string& target, SimTime now,
                     ErrorSeverity severity);

  // Drops all health state for `target` across every class (the entity was
  // removed; retrying against it would be a leak and a bug).
  void ForgetTarget(const std::string& target);
  void Reset();

  [[nodiscard]] BreakerState class_state(OpClass cls) const {
    return classes_[static_cast<int>(cls)].state;
  }
  [[nodiscard]] int open_breakers() const;
  // True when the class breaker is open and its next probe is due at `now`
  // (the next op of the class will be let through as the probe).
  [[nodiscard]] bool ProbeDue(OpClass cls, SimTime now) const;
  [[nodiscard]] std::size_t tracked_targets() const;
  // Introspection for tests: consecutive failures / next allowed retry of a
  // target (0 when untracked).
  [[nodiscard]] int target_failures(OpClass cls,
                                    const std::string& target) const;
  [[nodiscard]] SimTime target_next_retry(OpClass cls,
                                          const std::string& target) const;
  [[nodiscard]] std::uint64_t breaker_opens(OpClass cls) const {
    return classes_[static_cast<int>(cls)].times_opened;
  }

 private:
  static constexpr std::uint32_t kAbsentTarget = 0xffffffffu;

  struct TargetHealth {
    int failures = 0;
    SimTime next_retry = 0;
  };
  struct ClassHealth {
    int consecutive_failures = 0;
    // Failed half-open probes since the breaker opened; doubles the probe
    // interval so a dead class costs O(log T) probes.
    int probe_failures = 0;
    BreakerState state = BreakerState::kClosed;
    SimTime probe_at = 0;
    std::uint64_t times_opened = 0;
  };

  [[nodiscard]] SimDuration BackoffDelay(const std::string& target,
                                         int failures) const;
  // Interned id of `target`, or kAbsent when the tracker has never seen it.
  // (Id 0 is the interner's "" sentinel AND its miss value, so a plain
  // Lookup cannot distinguish an unknown target from the empty string.)
  [[nodiscard]] std::uint32_t IdOf(const std::string& target) const;

  HealthConfig config_;
  obs::Recorder* recorder_ = nullptr;
  std::array<ClassHealth, kOpClassCount> classes_{};
  // Targets are interned once (string -> dense uint32 id); per-class state
  // lives in open-addressing maps keyed by id, so the tick-time
  // AllowAttempt / RecordSuccess / RecordFailure cycle is O(1) and touches
  // the heap only the first time a target is ever seen. Lookups on the
  // allow path never allocate at all (StringInterner::Lookup contract).
  StringInterner target_ids_;
  std::array<FlatMap<std::uint32_t, TargetHealth>, kOpClassCount> targets_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_OP_HEALTH_H_
