// Schedules: the output of scheduling policies (paper §5.3).
//
// A single-priority schedule maps entities (threads) to real-valued
// priorities; a grouping schedule maps group ids to a priority plus member
// entities. Policies produce single-priority schedules over physical
// operators (Def 3.2); translators turn them into OS parameters, optionally
// forming groups first.
#ifndef LACHESIS_CORE_SCHEDULE_H_
#define LACHESIS_CORE_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/entities.h"

namespace lachesis::core {

// Hints translators use to pick the right normalization (paper §5.3):
// linearly spaced priorities (e.g. QS) get min-max normalization;
// logarithmically spaced ones (e.g. HR) are normalized on their logarithms.
enum class PrioritySpacing { kLinear, kLogarithmic };

// Mixed-criticality tag a policy may attach to an entry. Translators that
// command real-time mechanisms (RT boost, SCHED_DEADLINE reservations) use
// it to decide which entities get a hard guarantee; priority-only
// translators (nice, shares) ignore it.
enum class Criticality : std::uint8_t {
  kNormal = 0,
  kLatencyCritical = 1,  // deserves a deadline/RT guarantee if available
};

struct ScheduleEntry {
  EntityInfo entity;
  double priority;  // higher = more CPU
  Criticality criticality = Criticality::kNormal;
};

struct Schedule {
  std::vector<ScheduleEntry> entries;
  PrioritySpacing spacing = PrioritySpacing::kLinear;
};

// Grouping schedule: gid -> (priority, member threads); produced by
// translators that group entities (per query, per operator, ...).
struct ScheduleGroup {
  std::string gid;
  double priority;
  std::vector<EntityInfo> members;
};

struct GroupingSchedule {
  std::vector<ScheduleGroup> groups;
  PrioritySpacing spacing = PrioritySpacing::kLinear;
};

// High-level schedules assign priorities to LOGICAL operators (paper §5.1);
// a transformation rule converts them to physical schedules (Algorithm 2).
struct LogicalSchedule {
  QueryId query;
  std::map<int, double> priorities;  // logical index -> priority
  PrioritySpacing spacing = PrioritySpacing::kLinear;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_SCHEDULE_H_
