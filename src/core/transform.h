// Transformation rules: logical schedule -> physical schedule (paper §5.1,
// Algorithm 2).
//
// Users may express scheduling goals on logical operators, independent of
// how the SPE fused/fissioned the DAG. A transformation rule maps those
// priorities onto the physical operators: under fission every replica
// inherits the logical priority; under fusion the physical operator gets an
// aggregate (the paper's example rule uses the maximum) of the fused logical
// operators' priorities.
#ifndef LACHESIS_CORE_TRANSFORM_H_
#define LACHESIS_CORE_TRANSFORM_H_

#include <vector>

#include "core/schedule.h"

namespace lachesis::core {

enum class FusionAggregate { kMax, kMin, kSum, kMean };

// Algorithm 2 with a configurable fusion aggregate (kMax reproduces the
// paper's example). `entities` are the physical operators of the schedule's
// query; operators without a priority entry keep priority 0.
std::vector<ScheduleEntry> TransformLogicalSchedule(
    const LogicalSchedule& logical, const std::vector<EntityInfo>& entities,
    FusionAggregate aggregate = FusionAggregate::kMax);

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_TRANSFORM_H_
