// Metric identifiers and the dependency-graph node type (paper §5.2, Fig 4).
//
// A metric is quantitative information about an entity at a time (Def 3.1).
// Each derived metric declares dependencies; the metric provider resolves
// them per driver: fetched directly when the SPE exposes the metric, or
// computed recursively from dependencies otherwise (Algorithm 3).
#ifndef LACHESIS_CORE_METRIC_H_
#define LACHESIS_CORE_METRIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/entities.h"

namespace lachesis::core {

enum class MetricId : std::uint8_t {
  // Leaf metrics (only ever fetched from drivers).
  kTuplesInTotal,    // cumulative input count
  kTuplesOutTotal,   // cumulative output count
  kTuplesInDelta,    // input count over the last window
  kTuplesOutDelta,   // output count over the last window
  kBusyDeltaNs,      // processing time over the last window
  kBufferUsage,      // input queue fill fraction
  kBufferCapacity,   // input queue capacity

  // Derivable metrics (fetched if the SPE exposes them, else computed).
  kQueueSize,        // input queue length        <- usage * capacity
  kCost,             // ns per input tuple        <- busy delta / in delta
  kSelectivity,      // outputs per input         <- out delta / in delta
  kInputRate,        // tuples/s                  <- in delta / window
  kHeadTupleAge,     // ns the head-of-line tuple has been in the system
  kHighestRate,      // HR policy goal            <- path selectivity / cost
  kCpuPressure,      // ns the thread spent runnable-but-not-running over the
                     // last window (PSI-style, read from the OS -- paper §8)
  kQueueHighWater,   // peak input-queue length since deployment (leaf; only
                     // engines whose registry tracks it provide it)
};

inline const char* MetricName(MetricId id) {
  switch (id) {
    case MetricId::kTuplesInTotal: return "tuples_in_total";
    case MetricId::kTuplesOutTotal: return "tuples_out_total";
    case MetricId::kTuplesInDelta: return "tuples_in_delta";
    case MetricId::kTuplesOutDelta: return "tuples_out_delta";
    case MetricId::kBusyDeltaNs: return "busy_delta_ns";
    case MetricId::kBufferUsage: return "buffer_usage";
    case MetricId::kBufferCapacity: return "buffer_capacity";
    case MetricId::kQueueSize: return "queue_size";
    case MetricId::kCost: return "cost";
    case MetricId::kSelectivity: return "selectivity";
    case MetricId::kInputRate: return "input_rate";
    case MetricId::kHeadTupleAge: return "head_tuple_age";
    case MetricId::kHighestRate: return "highest_rate";
    case MetricId::kCpuPressure: return "cpu_pressure";
    case MetricId::kQueueHighWater: return "queue_high_water";
  }
  return "unknown";
}

// Resolution context handed to derived-metric computations. Get() recursively
// resolves a dependency for an entity of the same driver (Algorithm 3 L16).
class MetricResolver {
 public:
  virtual ~MetricResolver() = default;
  virtual double Get(MetricId metric, const EntityInfo& entity) = 0;
  // Entities of the same query (for path metrics).
  virtual const std::vector<EntityInfo>& QueryEntities(QueryId query) = 0;
  virtual const LogicalTopology& Topology(QueryId query) = 0;
  // The provider's update window (policies' period GCD).
  [[nodiscard]] virtual SimDuration window() const = 0;
};

// A derived metric: dependencies plus a combine function.
class DerivedMetric {
 public:
  virtual ~DerivedMetric() = default;
  [[nodiscard]] virtual MetricId id() const = 0;
  [[nodiscard]] virtual std::vector<MetricId> deps() const = 0;
  virtual double Compute(MetricResolver& resolver, const EntityInfo& entity) = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_METRIC_H_
