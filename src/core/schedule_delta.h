// Schedule-delta application layer (between translators and the OS).
//
// Policies recompute a full schedule every period, but between consecutive
// periods most of it is unchanged. This adapter decorates the real
// OsAdapter and forwards only operations whose value differs from the last
// one successfully applied to the same target: on the native backend that
// is a syscall/cgroupfs-write count win, on the simulator it shrinks event
// churn.
//
// It is also the control plane's failure boundary. An operation that
// throws (e.g. the target thread or cgroup vanished mid-period on a live
// host) is logged and counted, never aborting the tick, and is not cached
// so it will be retried -- but not blindly: failures feed an
// OpHealthTracker (op_health.h) that classifies errors, backs a failing
// target off exponentially with deterministic jitter, and opens a
// per-operation-class circuit breaker when the whole class is failing, so
// a dead backend costs O(1) operations per tick instead of a re-apply
// storm. Suppressed operations are counted separately from errors.
//
// For crash-safe restarts, the cache can be seeded from an OsStateSnapshot
// taken through the backend (ReconcileFromBackend): a restarted daemon
// whose computed schedule matches the kernel's residual state applies zero
// operations on its first tick.
#ifndef LACHESIS_CORE_SCHEDULE_DELTA_H_
#define LACHESIS_CORE_SCHEDULE_DELTA_H_

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/hash_index.h"
#include "core/op_health.h"
#include "core/os_adapter.h"

namespace lachesis::core {

// Identifies a thread across both backends: sim threads by (machine,
// sim_tid), native threads by os_tid. Padding-free POD so the delta cache
// (and the runner's purge/reconcile scratch sets) can hash the object
// representation directly with PodHash.
struct ThreadKey {
  const void* machine = nullptr;
  std::uint64_t sim_tid = 0;
  long os_tid = 0;

  friend constexpr bool operator==(const ThreadKey&,
                                   const ThreadKey&) = default;
};
static_assert(sizeof(ThreadKey) ==
                  sizeof(const void*) + sizeof(std::uint64_t) + sizeof(long),
              "ThreadKey must stay padding-free: PodHash hashes its bytes");

[[nodiscard]] inline ThreadKey ThreadKeyOf(const ThreadHandle& thread) {
  return ThreadKey{thread.machine, thread.sim_tid.value(), thread.os_tid};
}

// Thrown by backends to signal that one OS operation failed (target
// vanished, permission denied, ...). The delta layer absorbs it and uses
// the severity (derived from errno on the native backend) to pick a retry
// strategy; see op_health.h.
class OsOperationError : public std::runtime_error {
 public:
  explicit OsOperationError(const std::string& what,
                            ErrorSeverity severity = ErrorSeverity::kTransient,
                            int err = 0)
      : std::runtime_error(what), severity_(severity), err_(err) {}

  [[nodiscard]] ErrorSeverity severity() const { return severity_; }
  [[nodiscard]] int err() const { return err_; }

 private:
  ErrorSeverity severity_;
  int err_;
};

struct DeltaStats {
  std::uint64_t applied = 0;     // forwarded to the backend and succeeded
  std::uint64_t skipped = 0;     // identical to the last applied value
  std::uint64_t errors = 0;      // backend threw; value not cached
  std::uint64_t suppressed = 0;  // withheld by backoff / open breaker

  DeltaStats& operator+=(const DeltaStats& other) {
    applied += other.applied;
    skipped += other.skipped;
    errors += other.errors;
    suppressed += other.suppressed;
    return *this;
  }
};

class ScheduleDeltaAdapter final : public OsAdapter {
 public:
  explicit ScheduleDeltaAdapter(OsAdapter& next) : next_(&next) {}

  // Pass-through mode: every operation is forwarded (and still counted /
  // error-contained). Used to measure the delta win in benches.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Starts a new scheduling period: resets the per-tick counters and
  // anchors the health tracker's notion of "now" (backoff deadlines and
  // breaker probes are evaluated against it).
  void BeginTick(SimTime now = 0) {
    tick_ = {};
    now_ = now;
  }
  [[nodiscard]] const DeltaStats& tick_stats() const { return tick_; }
  [[nodiscard]] const DeltaStats& totals() const { return totals_; }

  // Fault-tolerance state machine (disabled by default for a raw adapter;
  // the runner enables it with its defaults).
  void SetHealthConfig(const HealthConfig& config) {
    health_.set_config(config);
  }

  // Decision-provenance sink for op outcomes (applied/elided/suppressed/
  // error); threaded into the health tracker as well so breaker and backoff
  // transitions land in the same event stream. Null disables (default for a
  // raw adapter; the runner installs its own recorder).
  void SetRecorder(obs::Recorder* recorder) {
    recorder_ = recorder;
    health_.SetRecorder(recorder);
  }
  [[nodiscard]] OpHealthTracker& health() { return health_; }
  [[nodiscard]] const OpHealthTracker& health() const { return health_; }

  // Drops all cached state so the next schedule is applied in full (e.g.
  // after the backend lost state behind our back). Health state is kept:
  // a reset must not forget that a backend is failing.
  void Reset();

  // Drops cached values AND health/backoff state for one thread. Called
  // when the entity is removed from the control plane: retrying a pending
  // failed op against a dead entity would be a leak and a bug.
  void ForgetThread(const ThreadHandle& thread);
  // Same for a group target.
  void ForgetGroup(const std::string& group);

  // Seeds the cache from observed kernel state (restart reconciliation).
  // Returns the number of cache entries seeded. Groups present in the
  // snapshot but never referenced by a schedule are "adopted": their state
  // is cached so a matching re-creation costs nothing.
  std::size_t SeedFromSnapshot(const OsStateSnapshot& snapshot);
  // Convenience: snapshots the wrapped backend for `threads` and seeds.
  // Returns 0 when the backend cannot observe state.
  std::size_t ReconcileFromBackend(const std::vector<ThreadHandle>& threads);
  [[nodiscard]] std::size_t adopted_groups() const { return adopted_groups_; }

  // Threads currently in the RT class as far as the delta layer knows
  // (last applied rt priority > 0). Lets tests and translators reconcile
  // against applied -- not merely requested -- state.
  [[nodiscard]] std::size_t rt_boosted_count() const;
  // Threads currently holding a SCHED_DEADLINE reservation as far as the
  // delta layer knows (last applied triple non-zero).
  [[nodiscard]] std::size_t dl_reserved_count() const;

  // Stable per-target health key, also the canonical target string in
  // recorded provenance events and explain queries. Deliberately excludes
  // the machine pointer (addresses vary across runs and would break
  // deterministic jitter); sim_tid + os_tid is unique within a backend.
  static std::string HealthKeyOf(const ThreadHandle& thread) {
    return "t:" + std::to_string(thread.sim_tid.value()) + "/" +
           std::to_string(thread.os_tid);
  }
  static std::string HealthKeyOf(const std::string& group) {
    return "g:" + group;
  }

  void SetNice(const ThreadHandle& thread, int nice) override;
  void SetGroupShares(const std::string& group, std::uint64_t shares) override;
  void MoveToGroup(const ThreadHandle& thread,
                   const std::string& group) override;
  void SetRtPriority(const ThreadHandle& thread, int rt_priority) override;
  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override;
  void SetDeadline(const ThreadHandle& thread, SimDuration runtime,
                   SimDuration deadline, SimDuration period) override;
  void SetCpuAffinity(const ThreadHandle& thread, CpuPreference pref) override;
  bool SnapshotState(const std::vector<ThreadHandle>& threads,
                     OsStateSnapshot& out) override {
    return next_->SnapshotState(threads, out);
  }

 private:
  static ThreadKey KeyOf(const ThreadHandle& thread) {
    return ThreadKeyOf(thread);
  }
  // Runs `fn` (the backend call) under the health tracker; returns true
  // when it succeeded. Failures are counted and logged once per
  // (operation, target); suppressed attempts are counted but not logged.
  // `value`/`detail` only feed the provenance recorder.
  template <typename Fn>
  bool Forward(OpClass cls, const std::string& health_key,
               const std::string& target, std::int64_t value,
               const std::string& detail, Fn&& fn);

  // Records a delta-layer elision (verbose recorders only).
  void RecordElided(OpClass cls, const std::string& health_key,
                    std::int64_t value);
  // Once-per-(operation, target) stderr logging; O(1), allocation-free once
  // the pair has been seen.
  void LogFailureOnce(OpClass cls, const std::string& target,
                      const char* what);
  // Interned id of `group`, or kUnknownGroup when no group state was ever
  // cached under that name (disambiguates the interner's 0-for-miss from
  // 0-for-"").
  [[nodiscard]] std::uint32_t GroupIdOf(const std::string& group) const {
    const std::uint32_t id = group_ids_.Lookup(group);
    return id == 0 && !group.empty() ? kUnknownGroup : id;
  }

  static constexpr std::uint32_t kUnknownGroup = 0xffffffffu;

  OsAdapter* next_;
  bool enabled_ = true;
  obs::Recorder* recorder_ = nullptr;
  SimTime now_ = 0;
  DeltaStats tick_;
  DeltaStats totals_;
  OpHealthTracker health_;
  std::size_t adopted_groups_ = 0;
  // The last-applied cache: open-addressing maps keyed by padding-free PODs
  // (threads by ThreadKey, groups by interned id), so the per-tick
  // skip-or-forward decision is an O(1) probe with zero heap traffic once
  // the table is warm. Group names are interned once; cached group state
  // compares dense uint32 ids instead of strings.
  StringInterner group_ids_;
  FlatMap<ThreadKey, int> nice_;
  FlatMap<ThreadKey, int> rt_;
  // Last applied (runtime, deadline, period); the all-zero triple means
  // "reservation cleared" and, like rt demotion, clearing a never-reserved
  // thread is elided by construction.
  FlatMap<ThreadKey, std::array<SimDuration, 3>> deadline_;
  FlatMap<ThreadKey, std::uint8_t> affinity_;   // value: CpuPreference
  FlatMap<ThreadKey, std::uint32_t> group_of_;  // value: interned group id
  FlatMap<std::uint32_t, std::uint64_t> shares_;
  FlatMap<std::uint32_t, std::pair<SimDuration, SimDuration>> quota_;
  // Failure-log dedup: targets interned once, membership per class is a
  // FlatSet probe (exact, and allocation-free after the first occurrence).
  StringInterner log_names_;
  std::array<FlatSet<std::uint32_t>, kOpClassCount> logged_failures_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_SCHEDULE_DELTA_H_
