// Schedule-delta application layer (between translators and the OS).
//
// Policies recompute a full schedule every period, but between consecutive
// periods most of it is unchanged. This adapter decorates the real
// OsAdapter and forwards only operations whose value differs from the last
// one successfully applied to the same target: on the native backend that
// is a syscall/cgroupfs-write count win, on the simulator it shrinks event
// churn. It is also the control plane's failure boundary: an operation
// that throws (e.g. the target thread or cgroup vanished mid-period on a
// live host) is logged and counted, never aborting the tick, and is
// retried on the next change because failed values are not cached.
#ifndef LACHESIS_CORE_SCHEDULE_DELTA_H_
#define LACHESIS_CORE_SCHEDULE_DELTA_H_

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "core/os_adapter.h"

namespace lachesis::core {

// Thrown by backends to signal that one OS operation failed (target
// vanished, permission denied, ...). The delta layer absorbs it.
class OsOperationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DeltaStats {
  std::uint64_t applied = 0;  // forwarded to the backend and succeeded
  std::uint64_t skipped = 0;  // identical to the last applied value
  std::uint64_t errors = 0;   // backend threw; value not cached

  DeltaStats& operator+=(const DeltaStats& other) {
    applied += other.applied;
    skipped += other.skipped;
    errors += other.errors;
    return *this;
  }
};

class ScheduleDeltaAdapter final : public OsAdapter {
 public:
  explicit ScheduleDeltaAdapter(OsAdapter& next) : next_(&next) {}

  // Pass-through mode: every operation is forwarded (and still counted /
  // error-contained). Used to measure the delta win in benches.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Starts a new scheduling period: resets the per-tick counters.
  void BeginTick() { tick_ = {}; }
  [[nodiscard]] const DeltaStats& tick_stats() const { return tick_; }
  [[nodiscard]] const DeltaStats& totals() const { return totals_; }

  // Drops all cached state so the next schedule is applied in full (e.g.
  // after the backend lost state behind our back).
  void Reset();

  // Threads currently in the RT class as far as the delta layer knows
  // (last applied rt priority > 0). Lets tests and translators reconcile
  // against applied -- not merely requested -- state.
  [[nodiscard]] std::size_t rt_boosted_count() const;

  void SetNice(const ThreadHandle& thread, int nice) override;
  void SetGroupShares(const std::string& group, std::uint64_t shares) override;
  void MoveToGroup(const ThreadHandle& thread,
                   const std::string& group) override;
  void SetRtPriority(const ThreadHandle& thread, int rt_priority) override;
  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override;

 private:
  // Identifies a thread across both backends: sim threads by
  // (machine, sim_tid), native threads by os_tid.
  using ThreadKey = std::tuple<const void*, std::uint64_t, long>;
  static ThreadKey KeyOf(const ThreadHandle& thread) {
    return {thread.machine, thread.sim_tid.value(), thread.os_tid};
  }

  // Runs `fn` (the backend call); returns true when it succeeded. Failures
  // are counted and logged once per (operation, target).
  template <typename Fn>
  bool Forward(const char* what, const std::string& target, Fn&& fn);

  OsAdapter* next_;
  bool enabled_ = true;
  DeltaStats tick_;
  DeltaStats totals_;
  std::map<ThreadKey, int> nice_;
  std::map<ThreadKey, int> rt_;
  std::map<ThreadKey, std::string> group_of_;
  std::map<std::string, std::uint64_t> shares_;
  std::map<std::string, std::pair<SimDuration, SimDuration>> quota_;
  std::set<std::string> logged_failures_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_SCHEDULE_DELTA_H_
