// SPE driver interface (paper §4).
//
// A driver bridges one SPE (possibly spanning several processes/nodes) and
// Lachesis by reading PUBLIC APIs only: the entity graph from the engine's
// deployment state and raw metrics from the metric store the engine already
// reports to. It never touches engine internals, which is what keeps
// Lachesis decoupled (G2) and lets one driver serve multiple engine
// versions.
#ifndef LACHESIS_CORE_DRIVER_H_
#define LACHESIS_CORE_DRIVER_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "core/entities.h"
#include "core/metric.h"

namespace lachesis::core {

class SpeDriver {
 public:
  virtual ~SpeDriver() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  // Called by the control loop at the start of every scheduling period the
  // driver participates in, before metrics are read. Drivers that pull
  // state from a live engine (re-scan /proc, tail a metric file) refresh
  // here; drivers whose state is pushed to them (the simulated scraper
  // pipeline) keep the default no-op.
  virtual void Poll(SimTime now) { (void)now; }

  // Snapshot of all physical operators currently deployed.
  virtual std::vector<EntityInfo> Entities() = 0;

  // Logical topology of a query (for transformation rules / path metrics).
  virtual const LogicalTopology& Topology(QueryId query) = 0;

  // True if the SPE's public metric API exposes `metric` (directly or via a
  // trivial unit conversion the driver performs).
  [[nodiscard]] virtual bool Provides(MetricId metric) const = 0;

  // Fetches a provided metric for an entity. Values come from the metric
  // store, i.e. they are up to one scrape period stale. Precondition:
  // Provides(metric).
  virtual double Fetch(MetricId metric, const EntityInfo& entity) = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_DRIVER_H_
