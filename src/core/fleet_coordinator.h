// Thin coordinator over per-shard Lachesis runners (fleet mode).
//
// The paper's scale-out deployment (§6.5, Fig 17) runs one per-node-isolated
// Lachesis instance per machine; the cluster tier of the scheduling
// taxonomy adds a coordinator that only aggregates state and places work,
// never touching the per-node decision loops. FleetCoordinator is that
// tier for the sharded simulation: each shard owns a full control plane
// (LachesisRunner + executor + adapter + tsdb, all built on that shard's
// Simulator), and the coordinator -- which runs exclusively on the fleet's
// barrier lane, while every shard is quiescent -- merges RunnerTickInfo and
// self-metrics across shards, renders a combined Chrome trace (one process
// per shard), and reconciles cross-machine query placement on
// attach/detach by picking the least-loaded shard.
//
// Failure awareness: the coordinator derives per-machine liveness from
// barrier participation (a shard whose last observed tick is older than
// `stale_after` is presumed dead -- exactly the signal a real coordinator
// has: the agent stopped heartbeating). Control bindings placed on a dead
// machine are orphaned and re-placed onto the least-loaded survivor after a
// configurable backoff; self-metrics from dark shards are refused rather
// than merged stale; and placement operations validate liveness up front,
// throwing a typed FleetPlacementError instead of indexing a drained shard.
#ifndef LACHESIS_CORE_FLEET_COORDINATOR_H_
#define LACHESIS_CORE_FLEET_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.h"
#include "obs/self_metrics.h"

namespace lachesis::core {

// Typed placement failures; callers branch on code() (e.g. a churn loop
// abandons a handle on kMachineDead instead of crashing).
enum class FleetErrorCode {
  kNoLiveShards = 0,  // attach/re-place with every machine dark
  kMachineDead,       // operation routed at a machine presumed dead
  kUnknownHandle,     // stale or never-issued query handle
};

[[nodiscard]] const char* FleetErrorCodeName(FleetErrorCode code);

class FleetPlacementError : public std::runtime_error {
 public:
  FleetPlacementError(FleetErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] FleetErrorCode code() const { return code_; }

 private:
  FleetErrorCode code_;
};

// Liveness / re-placement knobs (docs/OPERATIONS.md).
struct FleetFailoverConfig {
  // A shard is presumed dead when its last observed tick is older than
  // this at a barrier. Must exceed the largest runner wake interval or
  // healthy shards flap dead between ticks.
  SimDuration stale_after = Millis(2500);
  // How long an orphaned query waits before re-placement -- the hysteresis
  // that stops a briefly-partitioned machine's queries from bouncing.
  SimDuration replace_backoff = Seconds(1);
};

// Fleet-wide aggregate of the per-shard runner counters, taken at a
// barrier. `last_tick` fields come from each shard's most recent
// RunnerTickInfo (gauges: summed across shards); the totals are summed
// lifetime counters.
struct FleetTickTotals {
  std::uint64_t ticks_total = 0;
  std::uint64_t schedules_applied = 0;
  DeltaStats delta;
  int open_breakers = 0;      // sum of last-tick gauges (live shards only)
  int degraded_bindings = 0;  // sum of last-tick gauges (live shards only)
  int shards_reporting = 0;   // live shards that ticked at least once
  int live_shards = 0;        // shards currently presumed alive
};

// Handle for a query attached through the coordinator; identifies the
// owning shard and the runner binding index so DetachQuery can route the
// RemoveQuery call.
struct FleetQueryHandle {
  std::uint64_t id = 0;
  std::size_t shard = 0;
  std::size_t binding = 0;
};

class FleetCoordinator {
 public:
  // Registers a shard's runner. Installs a tick observer on the runner
  // (chaining to any observer installed later is NOT supported; the
  // coordinator must be attached first, or use the runner's observer to
  // call the coordinator). `initial_queries` seeds the placement load
  // counter with bindings attached outside the coordinator. Returns the
  // shard index.
  std::size_t AddShard(LachesisRunner& runner, std::string name,
                       std::size_t initial_queries = 0);

  // Swaps a shard's runner for a freshly built one after a machine reboot
  // (the old runner was Stop()ped at crash time; the caller keeps it alive
  // until its executor drains). Accumulates the old runner's lifetime
  // counters into a retired total so fleet counters stay monotonic,
  // re-installs the tick observer, marks the shard live, and grants it a
  // fresh liveness grace period anchored at `now`. `initial_queries` seeds
  // the load counter with bindings the reboot re-created outside the
  // coordinator (the re-placed orphans stay wherever failover put them).
  void ReattachShardRunner(std::size_t shard, LachesisRunner& runner,
                           SimTime now, std::size_t initial_queries = 0);

  void SetFailoverConfig(const FleetFailoverConfig& config) {
    failover_ = config;
  }
  [[nodiscard]] const FleetFailoverConfig& failover_config() const {
    return failover_;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] LachesisRunner& runner(std::size_t shard) {
    return *shards_.at(shard).runner;
  }
  [[nodiscard]] const RunnerTickInfo& last_tick(std::size_t shard) const {
    return shards_.at(shard).last_tick;
  }

  // --- barrier-lane aggregation ------------------------------------------------
  // All of these read shard runner state and must only be called while the
  // shards are quiescent (from a FleetSimulator barrier action, or after
  // RunUntil returned).

  // Liveness + failover step; call once per barrier BEFORE the merges. A
  // shard whose last tick is older than stale_after is marked dead: its
  // coordinator-placed queries are orphaned and, once replace_backoff has
  // elapsed, re-deployed (in handle order -- deterministic) onto the
  // least-loaded live shard via their recorded DeployFn. A shard that
  // resumes ticking is revived. With every shard live and ticking this is
  // pure bookkeeping: fault-free fleet results are unchanged.
  void NoteBarrier(SimTime now);

  [[nodiscard]] FleetTickTotals MergeTickTotals() const;

  // Sums the shards' self-metric snapshots by name. Counters add up
  // naturally; gauges (open breakers, attached queries, ...) become
  // fleet-wide totals, which is the operator-facing semantic documented in
  // docs/OPERATIONS.md. Dead shards are skipped -- their last snapshot is
  // stale by at least stale_after, and merging it would report a dark
  // machine's breakers/bindings as current fleet state (each refusal is
  // counted in stale_metric_skips()).
  [[nodiscard]] obs::SelfMetricsSnapshot MergeSelfMetrics();

  // One Chrome trace document, one process per shard (pid = shard + 1,
  // process name = the AddShard name).
  [[nodiscard]] std::string RenderChromeTrace() const;

  // --- placement ---------------------------------------------------------------
  // Deploys a query on the least-loaded LIVE shard (fewest
  // coordinator-visible queries; ties break toward the lowest shard index
  // -- deterministic). `deploy` receives the chosen shard index and its
  // runner and returns the runner binding index it created (it typically
  // builds the SPE query on that shard's machines and calls AddQuery). The
  // deploy function is retained for failover re-placement. Throws
  // FleetPlacementError(kNoLiveShards) when every machine is presumed
  // dead. Returns a handle for DetachQuery.
  using DeployFn =
      std::function<std::size_t(std::size_t shard, LachesisRunner& runner)>;
  FleetQueryHandle AttachQuery(const std::string& name, const DeployFn& deploy);

  // Detaches a coordinator-placed query: RemoveQuery on the owning runner
  // and release of its load share. The handle is resolved against the
  // coordinator's CURRENT record, so it keeps working after failover moved
  // the query. Throws FleetPlacementError(kUnknownHandle) for stale or
  // never-issued handles and FleetPlacementError(kMachineDead) -- without
  // touching the dead runner and without dropping the record -- when the
  // owning machine is presumed dead or the query awaits re-placement; the
  // caller decides between waiting for failover and AbandonQuery.
  void DetachQuery(const FleetQueryHandle& handle);

  // Drops a query's coordinator record without touching any runner: the
  // detach path for a query stranded on a dead machine (the machine is
  // gone, there is no RemoveQuery to route). Counts as a detach.
  void AbandonQuery(const FleetQueryHandle& handle);

  [[nodiscard]] std::size_t attached_queries(std::size_t shard) const {
    return shards_.at(shard).attached_queries;
  }
  [[nodiscard]] bool shard_live(std::size_t shard) const {
    return shards_.at(shard).live;
  }
  [[nodiscard]] std::size_t live_shard_count() const;
  [[nodiscard]] std::uint64_t attach_count() const { return attach_count_; }
  [[nodiscard]] std::uint64_t detach_count() const { return detach_count_; }
  [[nodiscard]] std::uint64_t shard_deaths() const { return deaths_; }
  [[nodiscard]] std::uint64_t shard_revivals() const { return revivals_; }
  [[nodiscard]] std::uint64_t queries_replaced() const { return replacements_; }
  [[nodiscard]] std::uint64_t replacements_deferred() const {
    return replacements_deferred_;
  }
  [[nodiscard]] std::uint64_t queries_abandoned() const {
    return queries_abandoned_;
  }
  [[nodiscard]] std::uint64_t stale_metric_skips() const {
    return stale_metric_skips_;
  }
  [[nodiscard]] std::uint64_t reattach_count() const { return reattach_count_; }

  // Conformance surface: verifies no query is double-placed (two records
  // sharing a (shard, binding)) and no non-orphaned record points at a
  // dead machine or a detached binding. Returns "" when all invariants
  // hold, else a description of the first violation.
  [[nodiscard]] std::string CheckPlacementInvariants() const;

 private:
  struct ShardState {
    LachesisRunner* runner = nullptr;
    std::string name;
    RunnerTickInfo last_tick;
    bool ticked = false;
    bool live = true;
    SimTime dead_since = 0;
    std::size_t attached_queries = 0;
  };

  // A coordinator-placed query: its current placement plus everything
  // needed to re-place it after the owning machine dies.
  struct HandleRecord {
    FleetQueryHandle handle;
    std::string name;
    DeployFn deploy;
    bool orphaned = false;
    SimTime orphaned_at = 0;
  };

  void InstallObserver(std::size_t index);

  std::vector<ShardState> shards_;
  std::map<std::uint64_t, HandleRecord> live_handles_;
  FleetFailoverConfig failover_;
  // Lifetime counters of runners retired by ReattachShardRunner, so fleet
  // totals stay monotonic across agent reboots.
  struct RetiredTotals {
    std::uint64_t ticks_total = 0;
    std::uint64_t schedules_applied = 0;
    DeltaStats delta;
  } retired_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t attach_count_ = 0;
  std::uint64_t detach_count_ = 0;
  std::uint64_t deaths_ = 0;
  std::uint64_t revivals_ = 0;
  std::uint64_t replacements_ = 0;
  std::uint64_t replacements_deferred_ = 0;
  std::uint64_t queries_abandoned_ = 0;
  std::uint64_t stale_metric_skips_ = 0;
  std::uint64_t reattach_count_ = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_FLEET_COORDINATOR_H_
