// Thin coordinator over per-shard Lachesis runners (fleet mode).
//
// The paper's scale-out deployment (§6.5, Fig 17) runs one per-node-isolated
// Lachesis instance per machine; the cluster tier of the scheduling
// taxonomy adds a coordinator that only aggregates state and places work,
// never touching the per-node decision loops. FleetCoordinator is that
// tier for the sharded simulation: each shard owns a full control plane
// (LachesisRunner + executor + adapter + tsdb, all built on that shard's
// Simulator), and the coordinator -- which runs exclusively on the fleet's
// barrier lane, while every shard is quiescent -- merges RunnerTickInfo and
// self-metrics across shards, renders a combined Chrome trace (one process
// per shard), and reconciles cross-machine query placement on
// attach/detach by picking the least-loaded shard.
#ifndef LACHESIS_CORE_FLEET_COORDINATOR_H_
#define LACHESIS_CORE_FLEET_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/runner.h"
#include "obs/self_metrics.h"

namespace lachesis::core {

// Fleet-wide aggregate of the per-shard runner counters, taken at a
// barrier. `last_tick` fields come from each shard's most recent
// RunnerTickInfo (gauges: summed across shards); the totals are summed
// lifetime counters.
struct FleetTickTotals {
  std::uint64_t ticks_total = 0;
  std::uint64_t schedules_applied = 0;
  DeltaStats delta;
  int open_breakers = 0;      // sum of last-tick gauges
  int degraded_bindings = 0;  // sum of last-tick gauges
  int shards_reporting = 0;   // shards that ticked at least once
};

// Handle for a query attached through the coordinator; identifies the
// owning shard and the runner binding index so DetachQuery can route the
// RemoveQuery call.
struct FleetQueryHandle {
  std::uint64_t id = 0;
  std::size_t shard = 0;
  std::size_t binding = 0;
};

class FleetCoordinator {
 public:
  // Registers a shard's runner. Installs a tick observer on the runner
  // (chaining to any observer installed later is NOT supported; the
  // coordinator must be attached first, or use the runner's observer to
  // call the coordinator). `initial_queries` seeds the placement load
  // counter with bindings attached outside the coordinator. Returns the
  // shard index.
  std::size_t AddShard(LachesisRunner& runner, std::string name,
                       std::size_t initial_queries = 0);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] LachesisRunner& runner(std::size_t shard) {
    return *shards_.at(shard).runner;
  }
  [[nodiscard]] const RunnerTickInfo& last_tick(std::size_t shard) const {
    return shards_.at(shard).last_tick;
  }

  // --- barrier-lane aggregation ------------------------------------------------
  // All of these read shard runner state and must only be called while the
  // shards are quiescent (from a FleetSimulator barrier action, or after
  // RunUntil returned).
  [[nodiscard]] FleetTickTotals MergeTickTotals() const;

  // Sums the shards' self-metric snapshots by name. Counters add up
  // naturally; gauges (open breakers, attached queries, ...) become
  // fleet-wide totals, which is the operator-facing semantic documented in
  // docs/OPERATIONS.md.
  [[nodiscard]] obs::SelfMetricsSnapshot MergeSelfMetrics() const;

  // One Chrome trace document, one process per shard (pid = shard + 1,
  // process name = the AddShard name).
  [[nodiscard]] std::string RenderChromeTrace() const;

  // --- placement ---------------------------------------------------------------
  // Deploys a query on the least-loaded shard (fewest coordinator-visible
  // queries; ties break toward the lowest shard index -- deterministic).
  // `deploy` receives the chosen shard index and its runner and returns the
  // runner binding index it created (it typically builds the SPE query on
  // that shard's machines and calls AddQuery). Returns a handle for
  // DetachQuery.
  using DeployFn =
      std::function<std::size_t(std::size_t shard, LachesisRunner& runner)>;
  FleetQueryHandle AttachQuery(const std::string& name, const DeployFn& deploy);

  // Detaches a coordinator-placed query: RemoveQuery on the owning runner
  // and release of its load share. Unknown/stale handles throw
  // std::out_of_range.
  void DetachQuery(const FleetQueryHandle& handle);

  [[nodiscard]] std::size_t attached_queries(std::size_t shard) const {
    return shards_.at(shard).attached_queries;
  }
  [[nodiscard]] std::uint64_t attach_count() const { return attach_count_; }
  [[nodiscard]] std::uint64_t detach_count() const { return detach_count_; }

 private:
  struct ShardState {
    LachesisRunner* runner = nullptr;
    std::string name;
    RunnerTickInfo last_tick;
    bool ticked = false;
    std::size_t attached_queries = 0;
  };

  std::vector<ShardState> shards_;
  std::map<std::uint64_t, FleetQueryHandle> live_handles_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t attach_count_ = 0;
  std::uint64_t detach_count_ = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_FLEET_COORDINATOR_H_
