// The built-in scheduling policies evaluated in the paper (§5.1) plus two
// extension policies from the related-work catalogue (§7).
#ifndef LACHESIS_CORE_POLICIES_H_
#define LACHESIS_CORE_POLICIES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"

namespace lachesis::core {

// Queue Size (QS) [EdgeWise]: prioritizes operators with longer input
// queues, balancing queue sizes to raise throughput and lower latency.
class QueueSizePolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {MetricId::kQueueSize};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::string name_ = "queue-size";
};

// Highest Rate (HR) [Sharaf et al.]: prioritizes operators on productive and
// inexpensive paths to sinks, minimizing average processing latency.
// Logarithmically spaced priorities.
class HighestRatePolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {MetricId::kHighestRate};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::string name_ = "highest-rate";
};

// First-Come-First-Serve (FCFS) [Bender et al.]: prioritizes operators whose
// head-of-line tuples have been in the system longest, minimizing maximum
// latency. The paper quotes it at ~15 lines of code; it is about that here.
class FcfsPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {MetricId::kHeadTupleAge};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::string name_ = "fcfs";
};

// RANDOM: uniformly random priorities; the control showing improvements are
// not an artifact of merely perturbing OS priorities (§6.3).
class RandomPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::string name_ = "random";
};

// Chain-inspired memory-minimizing policy (§7, [6]): prioritizes operators
// that shed the most data per unit of CPU, i.e. (1 - selectivity) / cost,
// keeping total queued bytes low.
class MinMemoryPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {MetricId::kCost, MetricId::kSelectivity};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::string name_ = "min-memory";
};

// Pressure-stall policy (paper §8 future work (4)): prioritizes the
// operators whose threads spent the most time runnable-but-not-running --
// i.e. the CPU-starved ones -- using fresh kernel-side PSI accounting
// instead of scraped engine metrics.
class PressureStallPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {MetricId::kCpuPressure};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::string name_ = "pressure-stall";
};

// Runtime policy switching (paper §4: "switch scheduling policies at
// runtime ... with the conditions of this switch programmed by the user"):
// wraps candidate policies and delegates each period to the one the
// user-provided selector picks.
class SwitchablePolicy final : public SchedulingPolicy {
 public:
  using Selector = std::function<std::size_t(const PolicyContext&)>;

  SwitchablePolicy(std::vector<std::unique_ptr<SchedulingPolicy>> candidates,
                   Selector selector);
  [[nodiscard]] const std::string& name() const override { return name_; }
  // Union over candidates, so the provider can serve whichever is active.
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override;
  Schedule ComputeSchedule(const PolicyContext& ctx) override;
  [[nodiscard]] std::size_t active() const { return active_; }

 private:
  std::vector<std::unique_ptr<SchedulingPolicy>> candidates_;
  Selector selector_;
  std::size_t active_ = 0;
  std::string name_ = "switchable";
};

// Mixed-criticality decorator: delegates scheduling to the wrapped policy,
// then tags every entry of the named queries Criticality::kLatencyCritical.
// Deadline/RT-capable translators turn the tag into a hard guarantee; the
// inner policy's priorities still order everything else.
class CriticalChainPolicy final : public SchedulingPolicy {
 public:
  CriticalChainPolicy(std::unique_ptr<SchedulingPolicy> inner,
                      std::vector<std::string> critical_queries);
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override;
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::unique_ptr<SchedulingPolicy> inner_;
  std::vector<std::string> critical_queries_;
  std::string name_;
};

// A user-defined high-level policy (paper §5.1 mode (2)): static priorities
// on LOGICAL operators (e.g. "branch 1 over branch 2", Fig 2), converted to
// a physical schedule with a transformation rule each period.
class LogicalPriorityPolicy final : public SchedulingPolicy {
 public:
  // priorities: query name -> (logical index -> priority).
  explicit LogicalPriorityPolicy(
      std::map<std::string, std::map<int, double>> priorities)
      : priorities_(std::move(priorities)) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::vector<MetricId> RequiredMetrics() const override {
    return {};
  }
  Schedule ComputeSchedule(const PolicyContext& ctx) override;

 private:
  std::map<std::string, std::map<int, double>> priorities_;
  std::string name_ = "logical-priority";
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_POLICIES_H_
