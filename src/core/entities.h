// Lachesis' SPE-agnostic entity model (paper §3, §4).
//
// Drivers convert engine-specific runtime structures into these abstract
// entities so policies, the metric provider and translators never see
// SPE-specific details (goal G2). An entity describes one physical operator:
// its identity, the logical operators it implements (fusion/fission mapping
// for Algorithm 2), and the kernel thread executing it (for translators).
#ifndef LACHESIS_CORE_ENTITIES_H_
#define LACHESIS_CORE_ENTITIES_H_

#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace lachesis::sim {
class Machine;
}

namespace lachesis::core {

// Handle to the kernel thread running a physical operator. The simulation
// backend uses {machine, sim_tid}; the real-Linux backend (src/osctl/) uses
// os_tid. Translators go through an OsAdapter, which knows which side it
// drives.
struct ThreadHandle {
  sim::Machine* machine = nullptr;
  ThreadId sim_tid{};
  long os_tid = -1;
};

// Abstract logical-DAG shape of one query, as exposed by a driver. Enough
// for high-level policies (HR path traversal) and transformation rules.
struct LogicalTopology {
  std::vector<std::string> names;
  std::vector<double> base_costs;  // static cost hints, ns (0 when unknown)
  std::vector<std::pair<int, int>> edges;
  std::vector<int> ingress_indices;
  std::vector<int> egress_indices;

  [[nodiscard]] std::vector<int> Downstream(int op) const {
    std::vector<int> result;
    for (const auto& [from, to] : edges) {
      if (from == op) result.push_back(to);
    }
    return result;
  }
  [[nodiscard]] std::vector<int> Upstream(int op) const {
    std::vector<int> result;
    for (const auto& [from, to] : edges) {
      if (to == op) result.push_back(from);
    }
    return result;
  }
  [[nodiscard]] int size() const { return static_cast<int>(names.size()); }
};

// One physical operator, as seen by Lachesis.
struct EntityInfo {
  OperatorId id;          // unique within a driver
  std::string path;       // metric-store path prefix for this operator
  QueryId query;
  std::string query_name;
  std::vector<int> logical_indices;  // fused logical operators (>=1)
  int replica = 0;
  bool is_ingress = false;
  bool is_egress = false;
  ThreadHandle thread;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_ENTITIES_H_
