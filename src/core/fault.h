// Deterministic fault injection for the control plane.
//
// Lachesis steers CFS through a fallible interface: setpriority and
// cgroupfs writes fail with EPERM when capabilities are missing, threads
// and cgroups vanish mid-tick as queries terminate, metric exporters stall
// or emit garbage. Reproducing those failure modes on demand -- and
// DETERMINISTICALLY, so a chaos run replays byte-identically -- is what
// this module does:
//
//  - FaultInjectingOsAdapter decorates any OsAdapter and injects
//    EPERM/ESRCH/EBUSY errors and slow calls according to a scriptable
//    FaultPlan (per-operation-class rules with time windows, target
//    filters and per-call probabilities);
//  - FaultInjectingDriver decorates any SpeDriver and injects vanishing
//    entities, NaN metrics and stale (frozen) metrics.
//
// Every probabilistic decision is a pure hash of (seed, rule, target,
// time): no RNG state, so outcomes are independent of call order and
// identical across replays. Time comes from the backend's Clock (the
// SimControlExecutor in simulation, the native executor on a live host),
// which is what makes sim chaos runs exactly reproducible.
#ifndef LACHESIS_CORE_FAULT_H_
#define LACHESIS_CORE_FAULT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/driver.h"
#include "core/executor.h"
#include "core/op_health.h"
#include "core/os_adapter.h"
#include "sim/fleet.h"

namespace lachesis::core {

enum class FaultKind {
  kEperm = 0,  // permission denied (permanent severity)
  kVanish,     // target disappeared (ESRCH/ENOENT, vanished severity)
  kEbusy,      // transient resource contention
  kSlowCall,   // call succeeds but is charged a latency penalty
};
inline constexpr int kFaultKindCount = 4;

[[nodiscard]] const char* FaultKindName(FaultKind kind);

// One OS-operation fault rule. A call matches when its class matches `op`
// (or `op` is unset), the clock is inside [from, until), and the target
// contains `target_substr` (when non-empty); a matching call then faults
// with `probability` (decided by a deterministic hash).
struct OsFaultRule {
  std::optional<OpClass> op;
  FaultKind kind = FaultKind::kEperm;
  SimTime from = 0;
  SimTime until = std::numeric_limits<SimTime>::max();
  double probability = 1.0;
  std::string target_substr;
  SimDuration slow_latency = Millis(1);  // kSlowCall only
};

// Driver-side fault rules: entities vanishing from discovery, NaN metric
// values, and stale metrics (the exporter froze: Fetch keeps returning the
// last pre-fault value).
struct DriverFaultRule {
  enum class Kind { kVanishEntity, kNanMetric, kStaleMetric };
  Kind kind = Kind::kVanishEntity;
  SimTime from = 0;
  SimTime until = std::numeric_limits<SimTime>::max();
  double probability = 1.0;
  std::optional<MetricId> metric;  // metric rules only; unset = any metric
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<OsFaultRule> os_rules;
  std::vector<DriverFaultRule> driver_rules;

  // True when no rule's window extends to or past `time` (used by chaos
  // tests to find the reconvergence point).
  [[nodiscard]] bool QuietAfter(SimTime time) const;
};

// Deterministic Bernoulli: hash(seed, salt) < probability. Exposed so
// tests can predict injection decisions.
[[nodiscard]] bool FaultChance(std::uint64_t seed, std::uint64_t salt,
                               double probability);

class FaultInjectingOsAdapter final : public OsAdapter {
 public:
  FaultInjectingOsAdapter(OsAdapter& next, const Clock& clock, FaultPlan plan)
      : next_(&next), clock_(&clock), plan_(std::move(plan)) {}

  void SetNice(const ThreadHandle& thread, int nice) override;
  void SetGroupShares(const std::string& group, std::uint64_t shares) override;
  void MoveToGroup(const ThreadHandle& thread,
                   const std::string& group) override;
  void SetRtPriority(const ThreadHandle& thread, int rt_priority) override;
  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override;
  bool SnapshotState(const std::vector<ThreadHandle>& threads,
                     OsStateSnapshot& out) override {
    return next_->SnapshotState(threads, out);
  }

  // Provenance sink: every injected fault is recorded as a kFaultInjected
  // event, so a chaos trace shows the cause next to the breaker/backoff
  // effects. Null disables (default).
  void SetRecorder(obs::Recorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<int>(kind)];
  }
  [[nodiscard]] std::uint64_t total_injected() const;
  // Latency charged by kSlowCall rules (not slept: the simulator's clock
  // is discrete and the chaos soak must stay fast; native harnesses can
  // read it and sleep if they want wall-clock slowness).
  [[nodiscard]] SimDuration injected_latency() const {
    return injected_latency_;
  }

 private:
  // Throws when a rule injects an error fault for (cls, target) at Now().
  void MaybeInject(OpClass cls, const std::string& target);

  OsAdapter* next_;
  const Clock* clock_;
  FaultPlan plan_;
  obs::Recorder* recorder_ = nullptr;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
  SimDuration injected_latency_ = 0;
};

class FaultInjectingDriver final : public SpeDriver {
 public:
  FaultInjectingDriver(SpeDriver& next, FaultPlan plan)
      : next_(&next), plan_(std::move(plan)) {}

  [[nodiscard]] const std::string& name() const override {
    return next_->name();
  }
  void Poll(SimTime now) override {
    now_ = now;
    next_->Poll(now);
  }
  std::vector<EntityInfo> Entities() override;
  const LogicalTopology& Topology(QueryId query) override {
    return next_->Topology(query);
  }
  [[nodiscard]] bool Provides(MetricId metric) const override {
    return next_->Provides(metric);
  }
  double Fetch(MetricId metric, const EntityInfo& entity) override;

  [[nodiscard]] std::uint64_t entities_vanished() const {
    return entities_vanished_;
  }
  [[nodiscard]] std::uint64_t nan_injected() const { return nan_injected_; }
  [[nodiscard]] std::uint64_t stale_served() const { return stale_served_; }

 private:
  SpeDriver* next_;
  FaultPlan plan_;
  SimTime now_ = 0;
  std::uint64_t entities_vanished_ = 0;
  std::uint64_t nan_injected_ = 0;
  std::uint64_t stale_served_ = 0;
  // Last genuine value per (metric, entity), served while a stale rule is
  // active.
  std::map<std::pair<MetricId, OperatorId>, double> last_real_;
};

// ---------------------------------------------------------------------------
// Fleet-scoped faults: whole machines and links misbehaving, decided -- like
// every fault above -- by pure hashes of (seed, rule, machine, epoch), so a
// fleet chaos run replays byte-identically at any worker count.

enum class FleetFaultKind {
  kMachineCrash = 0,  // shard goes dark; optional restart after down_epochs
  kSlowShard,         // epoch step inflated (wall clock only)
  kPartition,         // directed (machine, dest) mailbox link drops
};
inline constexpr int kFleetFaultKindCount = 3;

[[nodiscard]] const char* FleetFaultKindName(FleetFaultKind kind);

// One fleet fault rule, evaluated once per epoch per candidate machine (or
// per directed link for kPartition). `machine`/`dest` of -1 mean "any";
// epochs count barriers since time zero (epoch e covers simulated time
// [e*epoch, (e+1)*epoch)).
struct FleetFaultRule {
  FleetFaultKind kind = FleetFaultKind::kMachineCrash;
  std::uint64_t from_epoch = 0;
  std::uint64_t until_epoch = std::numeric_limits<std::uint64_t>::max();
  double probability = 1.0;
  int machine = -1;  // crash/slow: the machine; partition: the sender
  int dest = -1;     // partition only: the receiving machine
  // kMachineCrash: epochs the machine stays dark before the director
  // revives it (0 = down forever -- no restart).
  std::uint64_t down_epochs = 2;
  // kSlowShard: wall-clock penalty per epoch step while the rule matches.
  std::uint32_t slow_micros = 200;
};

struct FleetFaultPlan {
  std::uint64_t seed = 1;
  std::vector<FleetFaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  // First epoch from which no rule can fire and every crash window's
  // restarts have landed (windows + down time + the director's one-epoch
  // restart deferral). max() when any window is unbounded. Chaos tests use
  // this as the reconvergence anchor, mirroring FaultPlan::QuietAfter.
  [[nodiscard]] std::uint64_t QuietAfterEpoch() const;
};

// Drives a FleetFaultPlan against a FleetSimulator from the barrier lane.
// Each epoch it decides crashes, restarts, partitions and slowdowns by pure
// hash, applies them through the barrier-lane-only toggles, and invokes the
// caller's hooks so the control plane can model agent death (stop the
// runner) and reboot (fresh runner + ReconcileWithBackend). Restart hooks
// run one epoch AFTER the shard is revived: the revived shard first
// catches up its backlog, so the hook schedules control work in the
// present, not the past.
class FleetFaultDirector {
 public:
  struct Hooks {
    // Called at the crash barrier, after the shard went dark.
    std::function<void(std::size_t shard, SimTime now)> on_crash;
    // Called one epoch after the shard was revived (it has caught up).
    std::function<void(std::size_t shard, SimTime now)> on_restart;
  };

  FleetFaultDirector(sim::FleetSimulator& fleet, FleetFaultPlan plan,
                     Hooks hooks = {});

  // Registers the per-epoch decision callback from now() through `until`.
  // Call once, from the barrier lane, before RunUntil.
  void Arm(SimTime until);

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  [[nodiscard]] std::uint64_t partition_epochs() const {
    return partition_epochs_;
  }
  [[nodiscard]] std::uint64_t slow_epochs() const { return slow_epochs_; }
  // True when every crashed machine has been revived (pending restarts all
  // delivered) and no links are down or shards slowed.
  [[nodiscard]] bool AllClear() const;
  // Simulated time of FleetFaultPlan::QuietAfterEpoch (saturates to
  // SimTime max for unbounded plans).
  [[nodiscard]] SimTime QuietAfterTime() const;

 private:
  void OnBarrier(SimTime now);

  sim::FleetSimulator* fleet_;
  FleetFaultPlan plan_;
  Hooks hooks_;
  SimTime until_ = 0;
  // Epoch at which each dark machine is due back (max() = never).
  std::map<std::size_t, std::uint64_t> down_until_;
  // Machines revived but whose restart hook has not yet fired: exempt from
  // crash decisions, or the deferred hook would boot an agent onto a shard
  // that went dark again in the meantime.
  std::set<std::size_t> rebooting_;
  std::uint64_t pending_restart_hooks_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t partition_epochs_ = 0;
  std::uint64_t slow_epochs_ = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_FAULT_H_
