// Driver for the simulated SPE flavors (paper §4, "SPE Drivers").
//
// One driver class serves Storm-, Flink- and Liebre-flavored instances: the
// flavor's exposed raw metrics determine which Lachesis metrics the driver
// Provides(); everything else is derived by the metric provider (the paper's
// Fig 4 example: the same HR policy resolves differently per SPE). Metric
// values are read from the Graphite-like store the engine reports to -- not
// from live engine state -- so the driver sees data up to one scrape period
// old, exactly like the real middleware.
#ifndef LACHESIS_CORE_SIM_DRIVER_H_
#define LACHESIS_CORE_SIM_DRIVER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "spe/runtime.h"
#include "tsdb/tsdb.h"

namespace lachesis::core {

class SimSpeDriver final : public SpeDriver {
 public:
  SimSpeDriver(spe::SpeInstance& instance, const tsdb::TimeSeriesStore& store,
               SimDuration delta_window = Seconds(1));

  [[nodiscard]] const std::string& name() const override { return name_; }
  std::vector<EntityInfo> Entities() override;
  const LogicalTopology& Topology(QueryId query) override;
  [[nodiscard]] bool Provides(MetricId metric) const override;
  double Fetch(MetricId metric, const EntityInfo& entity) override;

 private:
  spe::SpeInstance* instance_;
  const tsdb::TimeSeriesStore* store_;
  SimDuration delta_window_;
  std::string name_;
  mutable std::unordered_map<QueryId, LogicalTopology> topologies_;
  // Previous runnable-wait snapshot per entity, for the PSI delta. Pressure
  // is an OS facility (read fresh from the kernel, not scraped via the
  // metric store).
  std::unordered_map<OperatorId, double> last_wait_ns_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_SIM_DRIVER_H_
