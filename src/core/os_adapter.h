// OS-mechanism abstraction used by translators.
//
// Lachesis enforces schedules through two Linux mechanisms (paper §2): the
// per-thread nice value and cgroup cpu.shares. Translators speak to this
// interface so the same policy/translator stack drives either the CFS
// simulator (sim_os_adapter.h) or a real Linux host (src/osctl/).
#ifndef LACHESIS_CORE_OS_ADAPTER_H_
#define LACHESIS_CORE_OS_ADAPTER_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/entities.h"
#include "sim/machine.h"

namespace lachesis::core {

// Capacity-class placement hint on heterogeneous (big.LITTLE) machines.
enum class CpuPreference : std::uint8_t {
  kNone = 0,       // no constraint (clears a previous hint)
  kPreferBig = 1,  // bind/steer toward the highest-capacity cores
  kPreferLittle = 2,
};

// Snapshot of the kernel-side scheduling state an adapter can observe, used
// for crash-safe restart reconciliation: a restarted daemon seeds its
// schedule-delta cache from this instead of starting empty, so it neither
// blindly re-applies a schedule the kernel already holds nor fights
// residual state from a previous incarnation.
struct OsStateSnapshot {
  struct ThreadState {
    ThreadHandle thread;
    std::optional<int> nice;
    std::optional<int> rt_priority;
    std::optional<std::string> group;  // Lachesis group currently holding it
    // Active SCHED_DEADLINE reservation, if the backend can observe one.
    std::optional<sim::DeadlineParams> deadline;
  };
  std::vector<ThreadState> threads;
  std::map<std::string, std::uint64_t> group_shares;
  std::map<std::string, std::pair<SimDuration, SimDuration>> group_quota;
  // Every Lachesis-owned group found on the backend (including orphans left
  // behind by a previous run, which the restarting daemon adopts).
  std::vector<std::string> groups;
};

class OsAdapter {
 public:
  virtual ~OsAdapter() = default;

  virtual void SetNice(const ThreadHandle& thread, int nice) = 0;
  // Creates/updates the named cgroup with the given cpu.shares. Group names
  // are flat, nested under Lachesis' private root group (§6.1: "Lachesis
  // nests the SPE threads under a custom root cgroup").
  virtual void SetGroupShares(const std::string& group, std::uint64_t shares) = 0;
  virtual void MoveToGroup(const ThreadHandle& thread,
                           const std::string& group) = 0;

  // --- additional mechanisms (paper §8 future work) -------------------------
  // SCHED_FIFO-like priority; 0 returns the thread to the fair class.
  // Default no-op so adapters without RT support stay valid.
  virtual void SetRtPriority(const ThreadHandle& thread, int rt_priority) {
    (void)thread;
    (void)rt_priority;
  }
  // CFS bandwidth: the group may use at most `quota` CPU per `period`
  // (cpu.cfs_quota_us / cpu.max). quota = 0 removes the limit.
  virtual void SetGroupQuota(const std::string& group, SimDuration quota,
                             SimDuration period) {
    (void)group;
    (void)quota;
    (void)period;
  }
  // SCHED_DEADLINE reservation (sched_setattr): `runtime` of CPU every
  // `period`, due within `deadline`. The all-zero triple clears the
  // reservation. Backends with admission control may reject by throwing;
  // the schedule-delta layer absorbs and backs off. Default no-op so
  // adapters without deadline support stay valid.
  virtual void SetDeadline(const ThreadHandle& thread, SimDuration runtime,
                           SimDuration deadline, SimDuration period) {
    (void)thread;
    (void)runtime;
    (void)deadline;
    (void)period;
  }
  // Capacity-class placement hint for heterogeneous machines: steer the
  // thread toward big or little cores (sched_setaffinity over a capacity
  // mask on Linux). kNone clears the hint. Default no-op.
  virtual void SetCpuAffinity(const ThreadHandle& thread, CpuPreference pref) {
    (void)thread;
    (void)pref;
  }

  // --- restart reconciliation ----------------------------------------------
  // Fills `out` with the backend's current scheduling state for the given
  // threads plus every Lachesis-owned group it can enumerate. Returns false
  // when the adapter cannot observe state (the default); callers then start
  // from an empty delta cache, which is safe but re-applies in full.
  virtual bool SnapshotState(const std::vector<ThreadHandle>& threads,
                             OsStateSnapshot& out) {
    (void)threads;
    (void)out;
    return false;
  }
};

// Drives the simulated machines. Cgroups are created lazily per (machine,
// name) under a per-machine "lachesis" root group.
class SimOsAdapter final : public OsAdapter {
 public:
  void SetNice(const ThreadHandle& thread, int nice) override {
    thread.machine->SetNice(thread.sim_tid, nice);
  }

  void SetGroupShares(const std::string& group, std::uint64_t shares) override {
    desired_shares_[group] = shares;
    for (auto& [key, cgroup] : groups_) {
      if (key.second == group) key.first->SetShares(cgroup, shares);
    }
  }

  void MoveToGroup(const ThreadHandle& thread, const std::string& group) override {
    thread.machine->MoveToCgroup(thread.sim_tid,
                                 EnsureGroup(*thread.machine, group));
  }

  void SetRtPriority(const ThreadHandle& thread, int rt_priority) override {
    thread.machine->SetRtPriority(thread.sim_tid, rt_priority);
  }

  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override {
    desired_quota_[group] = {quota, period};
    for (auto& [key, cgroup] : groups_) {
      if (key.second == group) key.first->SetQuota(cgroup, quota, period);
    }
  }

  void SetDeadline(const ThreadHandle& thread, SimDuration runtime,
                   SimDuration deadline, SimDuration period) override {
    if (!thread.machine->SetDeadline(thread.sim_tid,
                                     {runtime, deadline, period})) {
      // Admission control rejected the reservation; surface it as a
      // transient failure so the delta layer backs off and retries after
      // other reservations are released.
      throw std::runtime_error("SetDeadline: admission control rejected " +
                               std::to_string(runtime) + "/" +
                               std::to_string(deadline) + "/" +
                               std::to_string(period));
    }
  }

  void SetCpuAffinity(const ThreadHandle& thread, CpuPreference pref) override {
    // The simulator has no hard-affinity mechanism (capacity-aware
    // placement already steers misfit work to big cores); record the hint
    // so tests can assert translator plumbing.
    affinity_[std::make_pair(thread.machine, thread.sim_tid.value())] = pref;
  }

  [[nodiscard]] CpuPreference AffinityOf(const ThreadHandle& thread) const {
    const auto it =
        affinity_.find(std::make_pair(thread.machine, thread.sim_tid.value()));
    return it == affinity_.end() ? CpuPreference::kNone : it->second;
  }

  // Restart reconciliation against the simulated kernel: reads each
  // thread's actual nice/RT/cgroup/deadline from its Machine and each
  // Lachesis-owned group's shares from machine truth (quota comes from the
  // adapter's desired map -- the sim has no per-group quota getter). This
  // is what lets a rebooted fleet agent seed its delta cache instead of
  // re-applying the whole schedule, mirroring LinuxOsAdapter's procfs/
  // cgroupfs snapshot.
  bool SnapshotState(const std::vector<ThreadHandle>& threads,
                     OsStateSnapshot& out) override {
    out = OsStateSnapshot{};
    for (const ThreadHandle& thread : threads) {
      if (thread.machine == nullptr) continue;
      OsStateSnapshot::ThreadState state;
      state.thread = thread;
      state.nice = thread.machine->GetNice(thread.sim_tid);
      const int rt = thread.machine->GetRtPriority(thread.sim_tid);
      if (rt > 0) state.rt_priority = rt;
      if (thread.machine->IsDeadline(thread.sim_tid)) {
        state.deadline = thread.machine->GetDeadline(thread.sim_tid);
      }
      const CgroupId cgroup = thread.machine->GetCgroup(thread.sim_tid);
      for (const auto& [key, group_id] : groups_) {
        if (key.first == thread.machine && group_id == cgroup) {
          state.group = key.second;
          break;
        }
      }
      out.threads.push_back(std::move(state));
    }
    for (const auto& [key, group_id] : groups_) {
      out.group_shares[key.second] = key.first->GetShares(group_id);
      if (const auto qit = desired_quota_.find(key.second);
          qit != desired_quota_.end() && qit->second.first > 0) {
        out.group_quota[key.second] = qit->second;
      }
      if (std::find(out.groups.begin(), out.groups.end(), key.second) ==
          out.groups.end()) {
        out.groups.push_back(key.second);
      }
    }
    return true;
  }

 private:
  CgroupId EnsureGroup(sim::Machine& machine, const std::string& group) {
    const auto key = std::make_pair(&machine, group);
    if (const auto it = groups_.find(key); it != groups_.end()) {
      return it->second;
    }
    CgroupId root;
    if (const auto rit = roots_.find(&machine); rit != roots_.end()) {
      root = rit->second;
    } else {
      root = machine.CreateCgroup("lachesis", machine.root_cgroup());
      roots_.emplace(&machine, root);
    }
    std::uint64_t shares = sim::kNice0Weight;
    if (const auto sit = desired_shares_.find(group); sit != desired_shares_.end()) {
      shares = sit->second;
    }
    const CgroupId cgroup = machine.CreateCgroup(group, root, shares);
    if (const auto qit = desired_quota_.find(group); qit != desired_quota_.end()) {
      machine.SetQuota(cgroup, qit->second.first, qit->second.second);
    }
    groups_.emplace(key, cgroup);
    return cgroup;
  }

  std::map<std::pair<sim::Machine*, std::string>, CgroupId> groups_;
  std::map<sim::Machine*, CgroupId> roots_;
  std::map<std::pair<sim::Machine*, std::uint64_t>, CpuPreference> affinity_;
  std::map<std::string, std::uint64_t> desired_shares_;
  std::map<std::string, std::pair<SimDuration, SimDuration>> desired_quota_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_OS_ADAPTER_H_
