#include "core/fleet_coordinator.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/trace_export.h"

namespace lachesis::core {

std::size_t FleetCoordinator::AddShard(LachesisRunner& runner,
                                       std::string name,
                                       std::size_t initial_queries) {
  const std::size_t index = shards_.size();
  ShardState state;
  state.runner = &runner;
  state.name = std::move(name);
  state.attached_queries = initial_queries;
  shards_.push_back(std::move(state));
  // The observer writes only this shard's slot. The shard's worker thread
  // runs it mid-epoch; the coordinator reads the slot at barriers, where
  // the fleet's epoch handshake orders the accesses.
  shards_[index].runner->SetTickObserver(
      [this, index](const RunnerTickInfo& info) {
        shards_[index].last_tick = info;
        shards_[index].ticked = true;
      });
  return index;
}

FleetTickTotals FleetCoordinator::MergeTickTotals() const {
  FleetTickTotals totals;
  for (const ShardState& s : shards_) {
    totals.ticks_total += s.runner->ticks_total();
    totals.schedules_applied += s.runner->schedules_applied();
    totals.delta += s.runner->delta_totals();
    if (s.ticked) {
      totals.open_breakers += s.last_tick.open_breakers;
      totals.degraded_bindings += s.last_tick.degraded_bindings;
      ++totals.shards_reporting;
    }
  }
  return totals;
}

obs::SelfMetricsSnapshot FleetCoordinator::MergeSelfMetrics() const {
  // Runs on the barrier lane every scrape period; accumulate through a name
  // index so the merge is O(shards x metrics) instead of quadratic in the
  // metric count. First-seen order is preserved.
  obs::SelfMetricsSnapshot merged;
  std::unordered_map<std::string, std::size_t> index;
  for (const ShardState& s : shards_) {
    const obs::SelfMetricsSnapshot snapshot = s.runner->CollectSelfMetrics();
    for (const obs::MetricValue& m : snapshot) {
      const auto [it, inserted] = index.emplace(m.name, merged.size());
      if (inserted) {
        merged.push_back(m);
      } else {
        merged[it->second].value += m.value;
      }
    }
  }
  return merged;
}

std::string FleetCoordinator::RenderChromeTrace() const {
  std::vector<const obs::Recorder*> recorders;
  std::vector<std::string> names;
  recorders.reserve(shards_.size());
  names.reserve(shards_.size());
  for (const ShardState& s : shards_) {
    recorders.push_back(&s.runner->recorder());
    names.push_back(s.name);
  }
  return obs::RenderFleetChromeTrace(recorders, names,
                                     LachesisRunner::OpClassNameForObs);
}

FleetQueryHandle FleetCoordinator::AttachQuery(const std::string& name,
                                               const DeployFn& deploy) {
  if (shards_.empty()) {
    throw std::logic_error("FleetCoordinator::AttachQuery: no shards");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    if (shards_[i].attached_queries < shards_[best].attached_queries) best = i;
  }
  const std::size_t binding = deploy(best, *shards_[best].runner);
  ++shards_[best].attached_queries;
  ++attach_count_;
  FleetQueryHandle handle{next_handle_++, best, binding};
  live_handles_.emplace(handle.id, handle);
  (void)name;  // placement is load-based; the name is for the caller's logs
  return handle;
}

void FleetCoordinator::DetachQuery(const FleetQueryHandle& handle) {
  auto it = live_handles_.find(handle.id);
  if (it == live_handles_.end()) {
    throw std::out_of_range("FleetCoordinator::DetachQuery: unknown handle");
  }
  const FleetQueryHandle live = it->second;
  live_handles_.erase(it);
  shards_.at(live.shard).runner->RemoveQuery(live.binding);
  if (shards_[live.shard].attached_queries > 0) {
    --shards_[live.shard].attached_queries;
  }
  ++detach_count_;
}

}  // namespace lachesis::core
