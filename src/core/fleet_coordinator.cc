#include "core/fleet_coordinator.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/trace_export.h"

namespace lachesis::core {

const char* FleetErrorCodeName(FleetErrorCode code) {
  switch (code) {
    case FleetErrorCode::kNoLiveShards: return "no-live-shards";
    case FleetErrorCode::kMachineDead: return "machine-dead";
    case FleetErrorCode::kUnknownHandle: return "unknown-handle";
  }
  return "?";
}

void FleetCoordinator::InstallObserver(std::size_t index) {
  // The observer writes only this shard's slot. The shard's worker thread
  // runs it mid-epoch; the coordinator reads the slot at barriers, where
  // the fleet's epoch handshake orders the accesses.
  shards_[index].runner->SetTickObserver(
      [this, index](const RunnerTickInfo& info) {
        shards_[index].last_tick = info;
        shards_[index].ticked = true;
      });
}

std::size_t FleetCoordinator::AddShard(LachesisRunner& runner,
                                       std::string name,
                                       std::size_t initial_queries) {
  const std::size_t index = shards_.size();
  ShardState state;
  state.runner = &runner;
  state.name = std::move(name);
  state.attached_queries = initial_queries;
  shards_.push_back(std::move(state));
  InstallObserver(index);
  return index;
}

void FleetCoordinator::ReattachShardRunner(std::size_t shard,
                                           LachesisRunner& runner, SimTime now,
                                           std::size_t initial_queries) {
  ShardState& s = shards_.at(shard);
  // Fold the dying incarnation's lifetime counters into the retired total
  // before the pointer swap, so MergeTickTotals stays monotonic.
  retired_.ticks_total += s.runner->ticks_total();
  retired_.schedules_applied += s.runner->schedules_applied();
  retired_.delta += s.runner->delta_totals();
  s.runner = &runner;
  // Grace period: the fresh runner has not ticked yet; anchor its liveness
  // at the reboot time so the next barrier does not immediately re-kill it.
  s.last_tick = RunnerTickInfo{};
  s.last_tick.now = now;
  s.ticked = true;
  s.live = true;
  s.dead_since = 0;
  s.attached_queries = initial_queries;
  InstallObserver(shard);
  ++reattach_count_;
}

void FleetCoordinator::NoteBarrier(SimTime now) {
  // 1. Liveness from barrier participation: the agent's tick observer is
  //    its heartbeat.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardState& s = shards_[i];
    const SimTime last_seen = s.ticked ? s.last_tick.now : 0;
    const bool fresh = last_seen + failover_.stale_after > now;
    if (s.live && !fresh) {
      s.live = false;
      s.dead_since = now;
      ++deaths_;
      // Orphan every coordinator-placed query stranded on the machine; the
      // records keep their DeployFn so failover can re-place them.
      for (auto& [id, rec] : live_handles_) {
        if (!rec.orphaned && rec.handle.shard == i) {
          rec.orphaned = true;
          rec.orphaned_at = now;
          if (s.attached_queries > 0) --s.attached_queries;
        }
      }
    } else if (!s.live && fresh) {
      s.live = true;
      s.dead_since = 0;
      ++revivals_;
    }
  }

  // 2. Re-place orphans whose backoff elapsed, in handle-id order (the map
  //    is sorted) so failover is deterministic.
  for (auto& [id, rec] : live_handles_) {
    if (!rec.orphaned || now < rec.orphaned_at + failover_.replace_backoff) {
      continue;
    }
    std::size_t best = shards_.size();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (!shards_[i].live) continue;
      if (best == shards_.size() ||
          shards_[i].attached_queries < shards_[best].attached_queries) {
        best = i;
      }
    }
    if (best == shards_.size()) {
      // Nothing to place on; retry at the next barrier.
      ++replacements_deferred_;
      continue;
    }
    rec.handle.shard = best;
    rec.handle.binding = rec.deploy(best, *shards_[best].runner);
    rec.orphaned = false;
    rec.orphaned_at = 0;
    ++shards_[best].attached_queries;
    ++replacements_;
  }
}

FleetTickTotals FleetCoordinator::MergeTickTotals() const {
  FleetTickTotals totals;
  totals.ticks_total = retired_.ticks_total;
  totals.schedules_applied = retired_.schedules_applied;
  totals.delta = retired_.delta;
  for (const ShardState& s : shards_) {
    // Lifetime counters come from every shard (a dark machine's history
    // happened); the instantaneous gauges only from live ones.
    totals.ticks_total += s.runner->ticks_total();
    totals.schedules_applied += s.runner->schedules_applied();
    totals.delta += s.runner->delta_totals();
    if (s.live) ++totals.live_shards;
    if (s.ticked && s.live) {
      totals.open_breakers += s.last_tick.open_breakers;
      totals.degraded_bindings += s.last_tick.degraded_bindings;
      ++totals.shards_reporting;
    }
  }
  return totals;
}

obs::SelfMetricsSnapshot FleetCoordinator::MergeSelfMetrics() {
  // Runs on the barrier lane every scrape period; accumulate through a name
  // index so the merge is O(shards x metrics) instead of quadratic in the
  // metric count. First-seen order is preserved.
  obs::SelfMetricsSnapshot merged;
  std::unordered_map<std::string, std::size_t> index;
  for (const ShardState& s : shards_) {
    if (!s.live) {
      ++stale_metric_skips_;
      continue;
    }
    const obs::SelfMetricsSnapshot snapshot = s.runner->CollectSelfMetrics();
    for (const obs::MetricValue& m : snapshot) {
      const auto [it, inserted] = index.emplace(m.name, merged.size());
      if (inserted) {
        merged.push_back(m);
      } else {
        merged[it->second].value += m.value;
      }
    }
  }
  return merged;
}

std::string FleetCoordinator::RenderChromeTrace() const {
  std::vector<const obs::Recorder*> recorders;
  std::vector<std::string> names;
  recorders.reserve(shards_.size());
  names.reserve(shards_.size());
  for (const ShardState& s : shards_) {
    recorders.push_back(&s.runner->recorder());
    names.push_back(s.name);
  }
  return obs::RenderFleetChromeTrace(recorders, names,
                                     LachesisRunner::OpClassNameForObs);
}

std::size_t FleetCoordinator::live_shard_count() const {
  std::size_t live = 0;
  for (const ShardState& s : shards_) {
    if (s.live) ++live;
  }
  return live;
}

FleetQueryHandle FleetCoordinator::AttachQuery(const std::string& name,
                                               const DeployFn& deploy) {
  if (shards_.empty()) {
    throw std::logic_error("FleetCoordinator::AttachQuery: no shards");
  }
  std::size_t best = shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i].live) continue;
    if (best == shards_.size() ||
        shards_[i].attached_queries < shards_[best].attached_queries) {
      best = i;
    }
  }
  if (best == shards_.size()) {
    throw FleetPlacementError(
        FleetErrorCode::kNoLiveShards,
        "FleetCoordinator::AttachQuery(" + name +
            "): every machine is presumed dead");
  }
  const std::size_t binding = deploy(best, *shards_[best].runner);
  ++shards_[best].attached_queries;
  ++attach_count_;
  HandleRecord record;
  record.handle = FleetQueryHandle{next_handle_++, best, binding};
  record.name = name;
  record.deploy = deploy;  // retained for failover re-placement
  const FleetQueryHandle handle = record.handle;
  live_handles_.emplace(handle.id, std::move(record));
  return handle;
}

void FleetCoordinator::DetachQuery(const FleetQueryHandle& handle) {
  auto it = live_handles_.find(handle.id);
  if (it == live_handles_.end()) {
    throw FleetPlacementError(
        FleetErrorCode::kUnknownHandle,
        "FleetCoordinator::DetachQuery: unknown handle " +
            std::to_string(handle.id));
  }
  // Resolve against the coordinator's record, not the caller's copy:
  // failover may have moved the query since the handle was issued.
  const HandleRecord& rec = it->second;
  if (rec.orphaned || !shards_.at(rec.handle.shard).live) {
    // The owning machine is dark (or the query awaits re-placement): there
    // is no runner to route RemoveQuery to. Keep the record -- the caller
    // chooses between waiting for failover and AbandonQuery.
    throw FleetPlacementError(
        FleetErrorCode::kMachineDead,
        "FleetCoordinator::DetachQuery(" + rec.name + "): machine " +
            std::to_string(rec.handle.shard) + " is presumed dead");
  }
  const FleetQueryHandle live = rec.handle;
  live_handles_.erase(it);
  shards_.at(live.shard).runner->RemoveQuery(live.binding);
  if (shards_[live.shard].attached_queries > 0) {
    --shards_[live.shard].attached_queries;
  }
  ++detach_count_;
}

void FleetCoordinator::AbandonQuery(const FleetQueryHandle& handle) {
  auto it = live_handles_.find(handle.id);
  if (it == live_handles_.end()) {
    throw FleetPlacementError(
        FleetErrorCode::kUnknownHandle,
        "FleetCoordinator::AbandonQuery: unknown handle " +
            std::to_string(handle.id));
  }
  const HandleRecord& rec = it->second;
  if (!rec.orphaned) {
    ShardState& s = shards_.at(rec.handle.shard);
    if (s.attached_queries > 0) --s.attached_queries;
  }
  live_handles_.erase(it);
  ++queries_abandoned_;
  ++detach_count_;
}

std::string FleetCoordinator::CheckPlacementInvariants() const {
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> placed;
  for (const auto& [id, rec] : live_handles_) {
    if (rec.orphaned) continue;  // awaiting re-placement: not placed anywhere
    const std::size_t shard = rec.handle.shard;
    if (shard >= shards_.size()) {
      return "handle " + std::to_string(id) + " points at missing shard " +
             std::to_string(shard);
    }
    if (!shards_[shard].live) {
      return "query '" + rec.name + "' (handle " + std::to_string(id) +
             ") placed on dead machine " + std::to_string(shard);
    }
    if (!shards_[shard].runner->query_attached(rec.handle.binding)) {
      return "query '" + rec.name + "' (handle " + std::to_string(id) +
             ") points at detached binding " +
             std::to_string(rec.handle.binding) + " on shard " +
             std::to_string(shard);
    }
    const auto key = std::make_pair(shard, rec.handle.binding);
    const auto [it, inserted] = placed.emplace(key, id);
    if (!inserted) {
      return "double placement: handles " + std::to_string(it->second) +
             " and " + std::to_string(id) + " both hold shard " +
             std::to_string(shard) + " binding " +
             std::to_string(rec.handle.binding);
    }
  }
  return "";
}

}  // namespace lachesis::core
