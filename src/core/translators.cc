#include "core/translators.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/normalize.h"

namespace lachesis::core {

void NiceTranslator::Apply(const Schedule& schedule, OsAdapter& os) {
  if (schedule.entries.empty()) return;
  std::vector<double> priorities;
  priorities.reserve(schedule.entries.size());
  for (const ScheduleEntry& entry : schedule.entries) {
    priorities.push_back(entry.priority);
  }

  std::vector<int> nices;
  if (schedule.spacing == PrioritySpacing::kLogarithmic) {
    nices = PrioritiesToNice(priorities, nice_best_);
  } else {
    // Linear: min-max into the nice interval, best priority -> nice_best.
    const auto normalized = MinMaxNormalize(priorities, 0.0, 1.0);
    nices.resize(normalized.size());
    for (std::size_t i = 0; i < normalized.size(); ++i) {
      const double nice =
          nice_worst_ - normalized[i] * (nice_worst_ - nice_best_);
      nices[i] = std::clamp(static_cast<int>(std::lround(nice)), -20, 19);
    }
  }
  for (std::size_t i = 0; i < schedule.entries.size(); ++i) {
    os.SetNice(schedule.entries[i].entity.thread, nices[i]);
  }
}

CpuSharesTranslator::CpuSharesTranslator(GroupKeyFn group_of)
    : group_of_(std::move(group_of)) {
  if (!group_of_) {
    group_of_ = [](const EntityInfo& e) { return "op-" + e.path; };
  }
}

GroupingSchedule CpuSharesTranslator::BuildGroups(const Schedule& schedule) const {
  std::map<std::string, ScheduleGroup> groups;
  for (const ScheduleEntry& entry : schedule.entries) {
    const std::string gid = group_of_(entry.entity);
    auto [it, inserted] = groups.try_emplace(gid);
    if (inserted) {
      it->second.gid = gid;
      it->second.priority = entry.priority;
    } else {
      it->second.priority = std::max(it->second.priority, entry.priority);
    }
    it->second.members.push_back(entry.entity);
  }
  GroupingSchedule result;
  result.spacing = schedule.spacing;
  result.groups.reserve(groups.size());
  for (auto& [gid, group] : groups) result.groups.push_back(std::move(group));
  return result;
}

void CpuSharesTranslator::Apply(const Schedule& schedule, OsAdapter& os) {
  if (schedule.entries.empty()) return;
  const GroupingSchedule grouping = BuildGroups(schedule);

  std::vector<double> priorities;
  priorities.reserve(grouping.groups.size());
  for (const ScheduleGroup& g : grouping.groups) priorities.push_back(g.priority);

  const auto normalized = grouping.spacing == PrioritySpacing::kLogarithmic
                              ? LogMinMaxNormalize(priorities, 0.0, 1.0)
                              : MinMaxNormalize(priorities, 0.0, 1.0);
  const auto shares = PrioritiesToShares(normalized);

  for (std::size_t i = 0; i < grouping.groups.size(); ++i) {
    const ScheduleGroup& group = grouping.groups[i];
    os.SetGroupShares(group.gid, shares[i]);
    for (const EntityInfo& member : group.members) {
      os.MoveToGroup(member.thread, group.gid);
    }
  }
}

QuotaTranslator::QuotaTranslator(double min_cores, double max_cores,
                                 SimDuration period, GroupKeyFn group_of)
    : min_cores_(min_cores),
      max_cores_(max_cores),
      period_(period),
      grouping_helper_(std::move(group_of)) {}

void QuotaTranslator::Apply(const Schedule& schedule, OsAdapter& os) {
  if (schedule.entries.empty()) return;
  const GroupingSchedule grouping = grouping_helper_.BuildGroups(schedule);
  std::vector<double> priorities;
  priorities.reserve(grouping.groups.size());
  for (const ScheduleGroup& g : grouping.groups) priorities.push_back(g.priority);
  const auto normalized = grouping.spacing == PrioritySpacing::kLogarithmic
                              ? LogMinMaxNormalize(priorities, 0.0, 1.0)
                              : MinMaxNormalize(priorities, 0.0, 1.0);
  for (std::size_t i = 0; i < grouping.groups.size(); ++i) {
    const ScheduleGroup& group = grouping.groups[i];
    const double cores =
        min_cores_ + normalized[i] * (max_cores_ - min_cores_);
    os.SetGroupQuota(group.gid, static_cast<SimDuration>(
                                    cores * static_cast<double>(period_)),
                     period_);
    for (const EntityInfo& member : group.members) {
      os.MoveToGroup(member.thread, group.gid);
    }
  }
}

void RtBoostTranslator::Apply(const Schedule& schedule, OsAdapter& os) {
  if (schedule.entries.empty()) return;
  const ScheduleEntry* top = &schedule.entries.front();
  for (const ScheduleEntry& entry : schedule.entries) {
    if (entry.priority > top->priority) top = &entry;
  }
  // Reconcile: demote every previously boosted thread that is not the new
  // top -- using the stored handle, so an entity that was demoted AND
  // dropped from the schedule (operator terminated) cannot keep a stale RT
  // boost. The delta layer skips demotions already applied.
  for (const auto& [path, thread] : boosted_) {
    if (path != top->entity.path) os.SetRtPriority(thread, 0);
  }
  os.SetRtPriority(top->entity.thread, rt_priority_);
  boosted_.clear();
  boosted_.emplace(top->entity.path, top->entity.thread);
  nice_.Apply(schedule, os);
}

void DeadlineTranslator::Apply(const Schedule& schedule, OsAdapter& os) {
  if (schedule.entries.empty()) return;
  // The critical set: tagged entries, or the single top-priority entry.
  std::map<std::string, ThreadHandle> critical;
  for (const ScheduleEntry& entry : schedule.entries) {
    if (entry.criticality == Criticality::kLatencyCritical) {
      critical.emplace(entry.entity.path, entry.entity.thread);
    }
  }
  if (critical.empty()) {
    const ScheduleEntry* top = &schedule.entries.front();
    for (const ScheduleEntry& entry : schedule.entries) {
      if (entry.priority > top->priority) top = &entry;
    }
    critical.emplace(top->entity.path, top->entity.thread);
  }
  // Reconcile: clear every reservation whose holder left the critical set,
  // via the stored handle (the entity may be gone from the schedule). The
  // delta layer elides clears already applied.
  for (const auto& [path, thread] : reserved_) {
    if (critical.find(path) == critical.end()) {
      os.SetDeadline(thread, 0, 0, 0);
    }
  }
  for (const auto& [path, thread] : critical) {
    os.SetDeadline(thread, runtime_, period_, period_);
  }
  reserved_ = std::move(critical);
  nice_.Apply(schedule, os);
}

void CapacityHintTranslator::Apply(const Schedule& schedule, OsAdapter& os) {
  inner_->Apply(schedule, os);
  if (schedule.entries.empty()) return;
  // Big-core set: the top ceil(big_frac * n) entries by priority, plus
  // every latency-critical entry.
  std::vector<const ScheduleEntry*> by_priority;
  by_priority.reserve(schedule.entries.size());
  for (const ScheduleEntry& entry : schedule.entries) {
    by_priority.push_back(&entry);
  }
  std::stable_sort(by_priority.begin(), by_priority.end(),
                   [](const ScheduleEntry* a, const ScheduleEntry* b) {
                     return a->priority > b->priority;
                   });
  const auto big_count = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(by_priority.size()),
      std::ceil(big_frac_ * static_cast<double>(by_priority.size()))));
  std::map<std::string, ThreadHandle> big;
  for (std::size_t i = 0; i < by_priority.size(); ++i) {
    const ScheduleEntry& entry = *by_priority[i];
    if (i < big_count ||
        entry.criticality == Criticality::kLatencyCritical) {
      big.emplace(entry.entity.path, entry.entity.thread);
    }
  }
  for (const auto& [path, thread] : hinted_) {
    if (big.find(path) == big.end()) {
      os.SetCpuAffinity(thread, CpuPreference::kNone);
    }
  }
  for (const auto& [path, thread] : big) {
    os.SetCpuAffinity(thread, CpuPreference::kPreferBig);
  }
  hinted_ = std::move(big);
}

void QuerySharesPlusNiceTranslator::Apply(const Schedule& schedule,
                                          OsAdapter& os) {
  for (const ScheduleEntry& entry : schedule.entries) {
    const std::string gid = "query-" + entry.entity.query_name;
    os.SetGroupShares(gid, query_shares_);
    os.MoveToGroup(entry.entity.thread, gid);
  }
  nice_.Apply(schedule, os);
}

}  // namespace lachesis::core
