// Control-plane executor abstraction (backend-agnostic main loop).
//
// Lachesis runs as a standalone middleware process that attaches to live
// queries (paper §4): the same control loop must tick on simulated time in
// experiments and on monotonic wall time when deployed against a real
// Linux host. The runner therefore talks only to this interface; the
// simulation backend wraps sim::Simulator (sim_executor.h) and the native
// backend runs a monotonic-clock sleep loop (src/osctl/native_executor.h).
#ifndef LACHESIS_CORE_EXECUTOR_H_
#define LACHESIS_CORE_EXECUTOR_H_

#include <functional>

#include "common/sim_time.h"

namespace lachesis::core {

// Read-only time source. SimTime is nanoseconds since the backend's epoch
// (simulation start or executor construction).
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime Now() const = 0;
};

// Deferred execution on the backend's timeline. Callbacks run on the
// backend's dispatch loop, strictly ordered by time (FIFO within a
// timestamp); `time` must be >= Now().
class ControlExecutor : public Clock {
 public:
  virtual void CallAt(SimTime time, std::function<void()> fn) = 0;

  void CallAfter(SimDuration delay, std::function<void()> fn) {
    CallAt(Now() + delay, std::move(fn));
  }
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_EXECUTOR_H_
