// Scheduling policies (paper Def 3.2, §5.1).
//
// A policy consumes metrics (through the metric provider) and outputs
// priorities for physical operators. Policies are SPE-agnostic: they see
// abstract entities and metric values only, so one implementation schedules
// operators of any engine with a driver (G1/G2).
#ifndef LACHESIS_CORE_POLICY_H_
#define LACHESIS_CORE_POLICY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "core/driver.h"
#include "core/metric_provider.h"
#include "core/schedule.h"

namespace lachesis::core {

struct PolicyContext {
  MetricProvider* provider;
  // Drivers this policy schedules; entity snapshots come from the provider.
  std::vector<SpeDriver*> drivers;
  // Optional entity filter (e.g. one policy per query, G3).
  std::function<bool(const EntityInfo&)> filter;
  SimTime now = 0;
  Rng* rng = nullptr;

  // Invokes `fn` for every scheduled (driver, entity) pair.
  void ForEachEntity(
      const std::function<void(SpeDriver&, const EntityInfo&)>& fn) const {
    for (SpeDriver* driver : drivers) {
      for (const EntityInfo& e : provider->EntitiesOf(*driver)) {
        if (!filter || filter(e)) fn(*driver, e);
      }
    }
  }
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  // Metrics to register with the provider (Algorithm 1 L1).
  [[nodiscard]] virtual std::vector<MetricId> RequiredMetrics() const = 0;
  virtual Schedule ComputeSchedule(const PolicyContext& ctx) = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_POLICY_H_
