#include "core/schedule_delta.h"

#include <cstdio>
#include <exception>

#include "obs/recorder.h"

namespace lachesis::core {

void ScheduleDeltaAdapter::Reset() {
  nice_.Clear();
  rt_.Clear();
  deadline_.Clear();
  affinity_.Clear();
  group_of_.Clear();
  shares_.Clear();
  quota_.Clear();
}

void ScheduleDeltaAdapter::ForgetThread(const ThreadHandle& thread) {
  const ThreadKey key = KeyOf(thread);
  nice_.Erase(key);
  rt_.Erase(key);
  deadline_.Erase(key);
  affinity_.Erase(key);
  group_of_.Erase(key);
  health_.ForgetTarget(HealthKeyOf(thread));
}

void ScheduleDeltaAdapter::ForgetGroup(const std::string& group) {
  const std::uint32_t gid = GroupIdOf(group);
  if (gid != kUnknownGroup) {
    shares_.Erase(gid);
    quota_.Erase(gid);
  }
  health_.ForgetTarget(HealthKeyOf(group));
}

std::size_t ScheduleDeltaAdapter::SeedFromSnapshot(
    const OsStateSnapshot& snapshot) {
  std::size_t seeded = 0;
  for (const OsStateSnapshot::ThreadState& ts : snapshot.threads) {
    const ThreadKey key = KeyOf(ts.thread);
    if (ts.nice) {
      nice_.Insert(key, *ts.nice);
      ++seeded;
    }
    if (ts.rt_priority && *ts.rt_priority > 0) {
      rt_.Insert(key, *ts.rt_priority);
      ++seeded;
    }
    if (ts.group) {
      group_of_.Insert(key, group_ids_.Intern(*ts.group));
      ++seeded;
    }
    if (ts.deadline && !ts.deadline->is_zero()) {
      deadline_.Insert(key, {ts.deadline->runtime, ts.deadline->deadline,
                             ts.deadline->period});
      ++seeded;
    }
  }
  for (const auto& [group, shares] : snapshot.group_shares) {
    shares_.Insert(group_ids_.Intern(group), shares);
    ++seeded;
  }
  for (const auto& [group, quota] : snapshot.group_quota) {
    quota_.Insert(group_ids_.Intern(group), quota);
    ++seeded;
  }
  // Groups the backend still holds from a previous incarnation count as
  // adopted whether or not the next schedule references them: their cached
  // state prevents both a redundant re-create and a fight over values.
  adopted_groups_ = snapshot.groups.size();
  return seeded;
}

std::size_t ScheduleDeltaAdapter::ReconcileFromBackend(
    const std::vector<ThreadHandle>& threads) {
  OsStateSnapshot snapshot;
  if (!next_->SnapshotState(threads, snapshot)) return 0;
  return SeedFromSnapshot(snapshot);
}

std::size_t ScheduleDeltaAdapter::rt_boosted_count() const {
  std::size_t count = 0;
  rt_.ForEach([&](const ThreadKey&, const int& priority) {
    if (priority > 0) ++count;
  });
  return count;
}

std::size_t ScheduleDeltaAdapter::dl_reserved_count() const {
  std::size_t count = 0;
  deadline_.ForEach([&](const ThreadKey&, const std::array<SimDuration, 3>& d) {
    if (d[0] != 0 || d[1] != 0 || d[2] != 0) ++count;
  });
  return count;
}

void ScheduleDeltaAdapter::RecordElided(OpClass cls,
                                        const std::string& health_key,
                                        std::int64_t value) {
  recorder_->Op(now_, obs::EventKind::kOpElided, static_cast<int>(cls),
                health_key, value);
}

void ScheduleDeltaAdapter::LogFailureOnce(OpClass cls,
                                          const std::string& target,
                                          const char* what) {
  // One line per (operation, target): a permanently broken target (e.g. an
  // unwritable cgroup root) must not flood the log every period.
  const std::uint32_t id = log_names_.Intern(target);
  if (logged_failures_[static_cast<int>(cls)].Insert(id)) {
    std::fprintf(stderr, "lachesis: %s(%s) failed: %s\n", OpClassName(cls),
                 target.c_str(), what);
  }
}

template <typename Fn>
bool ScheduleDeltaAdapter::Forward(OpClass cls, const std::string& health_key,
                                   const std::string& target,
                                   std::int64_t value,
                                   const std::string& detail, Fn&& fn) {
  if (!health_.AllowAttempt(cls, health_key, now_)) {
    ++tick_.suppressed;
    ++totals_.suppressed;
    if (recorder_ != nullptr) {
      recorder_->Op(now_, obs::EventKind::kOpSuppressed,
                    static_cast<int>(cls), health_key, value, detail);
    }
    return false;
  }
  try {
    fn();
  } catch (const OsOperationError& e) {
    health_.RecordFailure(cls, health_key, now_, e.severity());
    ++tick_.errors;
    ++totals_.errors;
    if (recorder_ != nullptr) {
      recorder_->Op(now_, obs::EventKind::kOpError, static_cast<int>(cls),
                    health_key, value, e.what());
    }
    LogFailureOnce(cls, target, e.what());
    return false;
  } catch (const std::exception& e) {
    health_.RecordFailure(cls, health_key, now_, ErrorSeverity::kTransient);
    ++tick_.errors;
    ++totals_.errors;
    if (recorder_ != nullptr) {
      recorder_->Op(now_, obs::EventKind::kOpError, static_cast<int>(cls),
                    health_key, value, e.what());
    }
    LogFailureOnce(cls, target, e.what());
    return false;
  }
  health_.RecordSuccess(cls, health_key, now_);
  ++tick_.applied;
  ++totals_.applied;
  if (recorder_ != nullptr) {
    recorder_->Op(now_, obs::EventKind::kOpApplied, static_cast<int>(cls),
                  health_key, value, detail);
  }
  return true;
}

void ScheduleDeltaAdapter::SetNice(const ThreadHandle& thread, int nice) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const int* cached = nice_.Find(key);
    if (cached != nullptr && *cached == nice) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetNice, HealthKeyOf(thread), nice);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetNice, HealthKeyOf(thread),
              std::to_string(thread.os_tid), nice, {},
              [&] { next_->SetNice(thread, nice); })) {
    nice_.Insert(key, nice);
  }
}

void ScheduleDeltaAdapter::SetGroupShares(const std::string& group,
                                          std::uint64_t shares) {
  const std::uint32_t gid = GroupIdOf(group);
  if (enabled_) {
    const std::uint64_t* cached =
        gid != kUnknownGroup ? shares_.Find(gid) : nullptr;
    if (cached != nullptr && *cached == shares) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetGroupShares, HealthKeyOf(group),
                     static_cast<std::int64_t>(shares));
      }
      return;
    }
  }
  if (Forward(OpClass::kSetGroupShares, HealthKeyOf(group), group,
              static_cast<std::int64_t>(shares), {},
              [&] { next_->SetGroupShares(group, shares); })) {
    shares_.Insert(group_ids_.Intern(group), shares);
  }
}

void ScheduleDeltaAdapter::MoveToGroup(const ThreadHandle& thread,
                                       const std::string& group) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const std::uint32_t* cached = group_of_.Find(key);
    const std::uint32_t gid = GroupIdOf(group);
    if (cached != nullptr && gid != kUnknownGroup && *cached == gid) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kMoveToGroup, HealthKeyOf(thread), 0);
      }
      return;
    }
  }
  if (Forward(OpClass::kMoveToGroup, HealthKeyOf(thread), group, 0, group,
              [&] { next_->MoveToGroup(thread, group); })) {
    group_of_.Insert(key, group_ids_.Intern(group));
  }
}

void ScheduleDeltaAdapter::SetRtPriority(const ThreadHandle& thread,
                                         int rt_priority) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const int* cached = rt_.Find(key);
    if (cached != nullptr && *cached == rt_priority) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetRtPriority, HealthKeyOf(thread),
                     rt_priority);
      }
      return;
    }
    // A demotion for a thread the delta layer never boosted is a no-op by
    // construction (fair class is the default state).
    if (cached == nullptr && rt_priority == 0) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetRtPriority, HealthKeyOf(thread), 0);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetRtPriority, HealthKeyOf(thread),
              std::to_string(thread.os_tid), rt_priority, {},
              [&] { next_->SetRtPriority(thread, rt_priority); })) {
    rt_.Insert(key, rt_priority);
  }
}

void ScheduleDeltaAdapter::SetGroupQuota(const std::string& group,
                                         SimDuration quota, SimDuration period) {
  const std::uint32_t gid = GroupIdOf(group);
  if (enabled_) {
    const std::pair<SimDuration, SimDuration>* cached =
        gid != kUnknownGroup ? quota_.Find(gid) : nullptr;
    if (cached != nullptr && *cached == std::make_pair(quota, period)) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetGroupQuota, HealthKeyOf(group), quota);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetGroupQuota, HealthKeyOf(group), group, quota,
              "period_ns=" + std::to_string(period),
              [&] { next_->SetGroupQuota(group, quota, period); })) {
    quota_.Insert(group_ids_.Intern(group), {quota, period});
  }
}

void ScheduleDeltaAdapter::SetDeadline(const ThreadHandle& thread,
                                       SimDuration runtime,
                                       SimDuration deadline,
                                       SimDuration period) {
  const ThreadKey key = KeyOf(thread);
  const std::array<SimDuration, 3> triple{runtime, deadline, period};
  const bool is_clear = runtime == 0 && deadline == 0 && period == 0;
  if (enabled_) {
    const std::array<SimDuration, 3>* cached = deadline_.Find(key);
    if (cached != nullptr && *cached == triple) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetDeadline, HealthKeyOf(thread), runtime);
      }
      return;
    }
    // Clearing a reservation the delta layer never applied is a no-op by
    // construction (no reservation is the default state).
    if (cached == nullptr && is_clear) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetDeadline, HealthKeyOf(thread), 0);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetDeadline, HealthKeyOf(thread),
              std::to_string(thread.os_tid), runtime,
              "deadline_ns=" + std::to_string(deadline) +
                  " period_ns=" + std::to_string(period),
              [&] { next_->SetDeadline(thread, runtime, deadline, period); })) {
    deadline_.Insert(key, triple);
  }
}

void ScheduleDeltaAdapter::SetCpuAffinity(const ThreadHandle& thread,
                                          CpuPreference pref) {
  const ThreadKey key = KeyOf(thread);
  const auto value = static_cast<std::uint8_t>(pref);
  if (enabled_) {
    const std::uint8_t* cached = affinity_.Find(key);
    if (cached != nullptr && *cached == value) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetAffinity, HealthKeyOf(thread), value);
      }
      return;
    }
    // Clearing a hint that was never set is a no-op by construction.
    if (cached == nullptr && pref == CpuPreference::kNone) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetAffinity, HealthKeyOf(thread), 0);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetAffinity, HealthKeyOf(thread),
              std::to_string(thread.os_tid), value, {},
              [&] { next_->SetCpuAffinity(thread, pref); })) {
    affinity_.Insert(key, value);
  }
}

}  // namespace lachesis::core
