#include "core/schedule_delta.h"

#include <cstdio>
#include <exception>

#include "obs/recorder.h"

namespace lachesis::core {

void ScheduleDeltaAdapter::Reset() {
  nice_.clear();
  rt_.clear();
  group_of_.clear();
  shares_.clear();
  quota_.clear();
}

void ScheduleDeltaAdapter::ForgetThread(const ThreadHandle& thread) {
  const ThreadKey key = KeyOf(thread);
  nice_.erase(key);
  rt_.erase(key);
  group_of_.erase(key);
  health_.ForgetTarget(HealthKeyOf(thread));
}

void ScheduleDeltaAdapter::ForgetGroup(const std::string& group) {
  shares_.erase(group);
  quota_.erase(group);
  health_.ForgetTarget(HealthKeyOf(group));
}

std::size_t ScheduleDeltaAdapter::SeedFromSnapshot(
    const OsStateSnapshot& snapshot) {
  std::size_t seeded = 0;
  for (const OsStateSnapshot::ThreadState& ts : snapshot.threads) {
    const ThreadKey key = KeyOf(ts.thread);
    if (ts.nice) {
      nice_[key] = *ts.nice;
      ++seeded;
    }
    if (ts.rt_priority && *ts.rt_priority > 0) {
      rt_[key] = *ts.rt_priority;
      ++seeded;
    }
    if (ts.group) {
      group_of_[key] = *ts.group;
      ++seeded;
    }
  }
  for (const auto& [group, shares] : snapshot.group_shares) {
    shares_[group] = shares;
    ++seeded;
  }
  for (const auto& [group, quota] : snapshot.group_quota) {
    quota_[group] = quota;
    ++seeded;
  }
  // Groups the backend still holds from a previous incarnation count as
  // adopted whether or not the next schedule references them: their cached
  // state prevents both a redundant re-create and a fight over values.
  adopted_groups_ = snapshot.groups.size();
  return seeded;
}

std::size_t ScheduleDeltaAdapter::ReconcileFromBackend(
    const std::vector<ThreadHandle>& threads) {
  OsStateSnapshot snapshot;
  if (!next_->SnapshotState(threads, snapshot)) return 0;
  return SeedFromSnapshot(snapshot);
}

std::size_t ScheduleDeltaAdapter::rt_boosted_count() const {
  std::size_t count = 0;
  for (const auto& [key, priority] : rt_) {
    if (priority > 0) ++count;
  }
  return count;
}

void ScheduleDeltaAdapter::RecordElided(OpClass cls,
                                        const std::string& health_key,
                                        std::int64_t value) {
  recorder_->Op(now_, obs::EventKind::kOpElided, static_cast<int>(cls),
                health_key, value);
}

template <typename Fn>
bool ScheduleDeltaAdapter::Forward(OpClass cls, const std::string& health_key,
                                   const std::string& target,
                                   std::int64_t value,
                                   const std::string& detail, Fn&& fn) {
  if (!health_.AllowAttempt(cls, health_key, now_)) {
    ++tick_.suppressed;
    ++totals_.suppressed;
    if (recorder_ != nullptr) {
      recorder_->Op(now_, obs::EventKind::kOpSuppressed,
                    static_cast<int>(cls), health_key, value, detail);
    }
    return false;
  }
  try {
    fn();
  } catch (const OsOperationError& e) {
    health_.RecordFailure(cls, health_key, now_, e.severity());
    ++tick_.errors;
    ++totals_.errors;
    if (recorder_ != nullptr) {
      recorder_->Op(now_, obs::EventKind::kOpError, static_cast<int>(cls),
                    health_key, value, e.what());
    }
    // One line per (operation, target): a permanently broken target (e.g.
    // an unwritable cgroup root) must not flood the log every period.
    const std::string key = std::string(OpClassName(cls)) + ":" + target;
    if (logged_failures_.insert(key).second) {
      std::fprintf(stderr, "lachesis: %s(%s) failed: %s\n", OpClassName(cls),
                   target.c_str(), e.what());
    }
    return false;
  } catch (const std::exception& e) {
    health_.RecordFailure(cls, health_key, now_, ErrorSeverity::kTransient);
    ++tick_.errors;
    ++totals_.errors;
    if (recorder_ != nullptr) {
      recorder_->Op(now_, obs::EventKind::kOpError, static_cast<int>(cls),
                    health_key, value, e.what());
    }
    const std::string key = std::string(OpClassName(cls)) + ":" + target;
    if (logged_failures_.insert(key).second) {
      std::fprintf(stderr, "lachesis: %s(%s) failed: %s\n", OpClassName(cls),
                   target.c_str(), e.what());
    }
    return false;
  }
  health_.RecordSuccess(cls, health_key, now_);
  ++tick_.applied;
  ++totals_.applied;
  if (recorder_ != nullptr) {
    recorder_->Op(now_, obs::EventKind::kOpApplied, static_cast<int>(cls),
                  health_key, value, detail);
  }
  return true;
}

void ScheduleDeltaAdapter::SetNice(const ThreadHandle& thread, int nice) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const auto it = nice_.find(key);
    if (it != nice_.end() && it->second == nice) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetNice, HealthKeyOf(thread), nice);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetNice, HealthKeyOf(thread),
              std::to_string(thread.os_tid), nice, {},
              [&] { next_->SetNice(thread, nice); })) {
    nice_[key] = nice;
  }
}

void ScheduleDeltaAdapter::SetGroupShares(const std::string& group,
                                          std::uint64_t shares) {
  if (enabled_) {
    const auto it = shares_.find(group);
    if (it != shares_.end() && it->second == shares) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetGroupShares, HealthKeyOf(group),
                     static_cast<std::int64_t>(shares));
      }
      return;
    }
  }
  if (Forward(OpClass::kSetGroupShares, HealthKeyOf(group), group,
              static_cast<std::int64_t>(shares), {},
              [&] { next_->SetGroupShares(group, shares); })) {
    shares_[group] = shares;
  }
}

void ScheduleDeltaAdapter::MoveToGroup(const ThreadHandle& thread,
                                       const std::string& group) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const auto it = group_of_.find(key);
    if (it != group_of_.end() && it->second == group) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kMoveToGroup, HealthKeyOf(thread), 0);
      }
      return;
    }
  }
  if (Forward(OpClass::kMoveToGroup, HealthKeyOf(thread), group, 0, group,
              [&] { next_->MoveToGroup(thread, group); })) {
    group_of_[key] = group;
  }
}

void ScheduleDeltaAdapter::SetRtPriority(const ThreadHandle& thread,
                                         int rt_priority) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const auto it = rt_.find(key);
    if (it != rt_.end() && it->second == rt_priority) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetRtPriority, HealthKeyOf(thread),
                     rt_priority);
      }
      return;
    }
    // A demotion for a thread the delta layer never boosted is a no-op by
    // construction (fair class is the default state).
    if (it == rt_.end() && rt_priority == 0) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetRtPriority, HealthKeyOf(thread), 0);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetRtPriority, HealthKeyOf(thread),
              std::to_string(thread.os_tid), rt_priority, {},
              [&] { next_->SetRtPriority(thread, rt_priority); })) {
    rt_[key] = rt_priority;
  }
}

void ScheduleDeltaAdapter::SetGroupQuota(const std::string& group,
                                         SimDuration quota, SimDuration period) {
  if (enabled_) {
    const auto it = quota_.find(group);
    if (it != quota_.end() && it->second == std::make_pair(quota, period)) {
      ++tick_.skipped;
      ++totals_.skipped;
      if (recorder_ != nullptr && recorder_->verbose()) {
        RecordElided(OpClass::kSetGroupQuota, HealthKeyOf(group), quota);
      }
      return;
    }
  }
  if (Forward(OpClass::kSetGroupQuota, HealthKeyOf(group), group, quota,
              "period_ns=" + std::to_string(period),
              [&] { next_->SetGroupQuota(group, quota, period); })) {
    quota_[group] = {quota, period};
  }
}

}  // namespace lachesis::core
