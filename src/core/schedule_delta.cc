#include "core/schedule_delta.h"

#include <cstdio>
#include <exception>

namespace lachesis::core {

void ScheduleDeltaAdapter::Reset() {
  nice_.clear();
  rt_.clear();
  group_of_.clear();
  shares_.clear();
  quota_.clear();
}

std::size_t ScheduleDeltaAdapter::rt_boosted_count() const {
  std::size_t count = 0;
  for (const auto& [key, priority] : rt_) {
    if (priority > 0) ++count;
  }
  return count;
}

template <typename Fn>
bool ScheduleDeltaAdapter::Forward(const char* what, const std::string& target,
                                   Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    ++tick_.errors;
    ++totals_.errors;
    // One line per (operation, target): a permanently broken target (e.g.
    // an unwritable cgroup root) must not flood the log every period.
    const std::string key = std::string(what) + ":" + target;
    if (logged_failures_.insert(key).second) {
      std::fprintf(stderr, "lachesis: %s(%s) failed: %s\n", what,
                   target.c_str(), e.what());
    }
    return false;
  }
  ++tick_.applied;
  ++totals_.applied;
  return true;
}

void ScheduleDeltaAdapter::SetNice(const ThreadHandle& thread, int nice) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const auto it = nice_.find(key);
    if (it != nice_.end() && it->second == nice) {
      ++tick_.skipped;
      ++totals_.skipped;
      return;
    }
  }
  if (Forward("SetNice", std::to_string(thread.os_tid), [&] {
        next_->SetNice(thread, nice);
      })) {
    nice_[key] = nice;
  }
}

void ScheduleDeltaAdapter::SetGroupShares(const std::string& group,
                                          std::uint64_t shares) {
  if (enabled_) {
    const auto it = shares_.find(group);
    if (it != shares_.end() && it->second == shares) {
      ++tick_.skipped;
      ++totals_.skipped;
      return;
    }
  }
  if (Forward("SetGroupShares", group,
              [&] { next_->SetGroupShares(group, shares); })) {
    shares_[group] = shares;
  }
}

void ScheduleDeltaAdapter::MoveToGroup(const ThreadHandle& thread,
                                       const std::string& group) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const auto it = group_of_.find(key);
    if (it != group_of_.end() && it->second == group) {
      ++tick_.skipped;
      ++totals_.skipped;
      return;
    }
  }
  if (Forward("MoveToGroup", group, [&] { next_->MoveToGroup(thread, group); })) {
    group_of_[key] = group;
  }
}

void ScheduleDeltaAdapter::SetRtPriority(const ThreadHandle& thread,
                                         int rt_priority) {
  const ThreadKey key = KeyOf(thread);
  if (enabled_) {
    const auto it = rt_.find(key);
    if (it != rt_.end() && it->second == rt_priority) {
      ++tick_.skipped;
      ++totals_.skipped;
      return;
    }
    // A demotion for a thread the delta layer never boosted is a no-op by
    // construction (fair class is the default state).
    if (it == rt_.end() && rt_priority == 0) {
      ++tick_.skipped;
      ++totals_.skipped;
      return;
    }
  }
  if (Forward("SetRtPriority", std::to_string(thread.os_tid), [&] {
        next_->SetRtPriority(thread, rt_priority);
      })) {
    rt_[key] = rt_priority;
  }
}

void ScheduleDeltaAdapter::SetGroupQuota(const std::string& group,
                                         SimDuration quota, SimDuration period) {
  if (enabled_) {
    const auto it = quota_.find(group);
    if (it != quota_.end() && it->second == std::make_pair(quota, period)) {
      ++tick_.skipped;
      ++totals_.skipped;
      return;
    }
  }
  if (Forward("SetGroupQuota", group,
              [&] { next_->SetGroupQuota(group, quota, period); })) {
    quota_[group] = {quota, period};
  }
}

}  // namespace lachesis::core
