#include "core/normalize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace lachesis::core {

namespace {
constexpr double kLog125 = 0.22314355131420976;  // log(1.25)

// Replaces non-finite policy outputs (a misbehaving metric source) with the
// nearest finite extreme so they cannot poison the normalization: NaN and
// -inf collapse to the finite minimum, +inf to the finite maximum.
std::vector<double> SanitizeFinite(const std::vector<double>& values) {
  double finite_min = std::numeric_limits<double>::infinity();
  double finite_max = -std::numeric_limits<double>::infinity();
  for (const double v : values) {
    if (std::isfinite(v)) {
      finite_min = std::min(finite_min, v);
      finite_max = std::max(finite_max, v);
    }
  }
  if (!std::isfinite(finite_min)) {  // nothing finite at all
    return std::vector<double>(values.size(), 0.0);
  }
  std::vector<double> result(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::isfinite(values[i])) {
      result[i] = values[i];
    } else if (values[i] > 0) {  // +inf
      result[i] = finite_max;
    } else {  // -inf or NaN
      result[i] = finite_min;
    }
  }
  return result;
}

// Smallest positive value in `values`, or fallback when none exists.
double SmallestPositive(const std::vector<double>& values, double fallback) {
  double smallest = std::numeric_limits<double>::infinity();
  for (const double v : values) {
    if (v > 0) smallest = std::min(smallest, v);
  }
  return std::isfinite(smallest) ? smallest : fallback;
}
}  // namespace

std::vector<double> MinMaxNormalize(const std::vector<double>& raw_values,
                                    double lo, double hi) {
  std::vector<double> result(raw_values.size());
  if (raw_values.empty()) return result;
  const std::vector<double> values = SanitizeFinite(raw_values);
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const double min = *min_it;
  const double max = *max_it;
  if (max - min <= 0) {
    std::fill(result.begin(), result.end(), (lo + hi) / 2);
    return result;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    result[i] = lo + (hi - lo) * (values[i] - min) / (max - min);
  }
  return result;
}

std::vector<double> LogMinMaxNormalize(const std::vector<double>& raw_values,
                                       double lo, double hi) {
  const std::vector<double> values = SanitizeFinite(raw_values);
  std::vector<double> logs(values.size());
  const double floor_value = SmallestPositive(values, 1.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    logs[i] = std::log(std::max(values[i], floor_value));
  }
  return MinMaxNormalize(logs, lo, hi);
}

std::vector<int> PrioritiesToNice(const std::vector<double>& raw_priorities,
                                  int nice_max) {
  std::vector<int> result(raw_priorities.size());
  if (raw_priorities.empty()) return result;
  const std::vector<double> priorities = SanitizeFinite(raw_priorities);
  const double floor_value = SmallestPositive(priorities, 1.0);
  double p_max = floor_value;
  for (const double p : priorities) p_max = std::max(p_max, p);

  // F(x) = n_max + (log(p_max) - log(x)) / log(1.25)
  std::vector<double> nices(priorities.size());
  double worst = static_cast<double>(nice_max);
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    const double x = std::max(priorities[i], floor_value);
    nices[i] = static_cast<double>(nice_max) +
               (std::log(p_max) - std::log(x)) / kLog125;
    worst = std::max(worst, nices[i]);
  }
  // If the ratio p_max/p_min does not fit in the nice range, compress with a
  // min-max pass (paper §5.3).
  if (worst > 19.0) {
    nices = MinMaxNormalize(nices, static_cast<double>(nice_max), 19.0);
  }
  for (std::size_t i = 0; i < nices.size(); ++i) {
    result[i] = std::clamp(static_cast<int>(std::lround(nices[i])), -20, 19);
  }
  return result;
}

std::vector<std::uint64_t> PrioritiesToShares(
    const std::vector<double>& normalized, std::uint64_t min_shares,
    std::uint64_t max_shares) {
  std::vector<std::uint64_t> result(normalized.size());
  const double log_min = std::log(static_cast<double>(min_shares));
  const double log_max = std::log(static_cast<double>(max_shares));
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    const double f =
        std::isfinite(normalized[i]) ? std::clamp(normalized[i], 0.0, 1.0) : 0.0;
    const double shares = std::exp(log_min + f * (log_max - log_min));
    result[i] = static_cast<std::uint64_t>(std::lround(
        std::clamp(shares, static_cast<double>(min_shares),
                   static_cast<double>(max_shares))));
  }
  return result;
}

}  // namespace lachesis::core
