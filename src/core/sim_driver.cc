#include "core/sim_driver.h"

#include <algorithm>
#include <cassert>

#include "tsdb/scraper.h"

namespace lachesis::core {

namespace {
std::string SeriesPath(const EntityInfo& e, spe::RawMetric m) {
  return e.path + "." + tsdb::RawMetricName(m);
}
}  // namespace

SimSpeDriver::SimSpeDriver(spe::SpeInstance& instance,
                           const tsdb::TimeSeriesStore& store,
                           SimDuration delta_window)
    : instance_(&instance),
      store_(&store),
      delta_window_(delta_window),
      name_(instance.name()) {}

std::vector<EntityInfo> SimSpeDriver::Entities() {
  std::vector<EntityInfo> result;
  for (const auto& query : instance_->queries()) {
    for (const spe::DeployedOp& d : query->ops) {
      EntityInfo e;
      e.id = d.id;
      e.path = d.op->config().name;
      e.query = query->id;
      e.query_name = query->name;
      e.logical_indices = d.logical_indices;
      e.replica = d.replica;
      e.is_ingress = d.op->config().role == spe::OperatorRole::kIngress;
      e.is_egress = d.op->config().role == spe::OperatorRole::kEgress;
      e.thread.machine =
          instance_->machines()[static_cast<std::size_t>(d.machine_index)];
      e.thread.sim_tid = d.thread;
      result.push_back(std::move(e));
    }
  }
  return result;
}

const LogicalTopology& SimSpeDriver::Topology(QueryId query) {
  if (const auto it = topologies_.find(query); it != topologies_.end()) {
    return it->second;
  }
  assert(query.value() < instance_->queries().size());
  const spe::DeployedQuery& deployed =
      *instance_->queries()[static_cast<std::size_t>(query.value())];
  LogicalTopology topo;
  for (int i = 0; i < static_cast<int>(deployed.logical.operators.size()); ++i) {
    const auto& op = deployed.logical.operators[static_cast<std::size_t>(i)];
    topo.names.push_back(op.name);
    topo.base_costs.push_back(static_cast<double>(op.cost));
    if (op.role == spe::OperatorRole::kIngress) topo.ingress_indices.push_back(i);
    if (op.role == spe::OperatorRole::kEgress) topo.egress_indices.push_back(i);
  }
  for (const auto& edge : deployed.logical.edges) {
    topo.edges.emplace_back(edge.from, edge.to);
  }
  return topologies_.emplace(query, std::move(topo)).first->second;
}

bool SimSpeDriver::Provides(MetricId metric) const {
  const auto& exposed = instance_->flavor().exposed_metrics;
  const auto has = [&](spe::RawMetric m) { return exposed.count(m) > 0; };
  switch (metric) {
    case MetricId::kTuplesInTotal:
      return has(spe::RawMetric::kTuplesIn);
    case MetricId::kTuplesOutTotal:
      return has(spe::RawMetric::kTuplesOut);
    case MetricId::kTuplesInDelta:
      return has(spe::RawMetric::kTuplesIn);
    case MetricId::kTuplesOutDelta:
      return has(spe::RawMetric::kTuplesOut);
    case MetricId::kBusyDeltaNs:
      return has(spe::RawMetric::kBusyTimeNs);
    case MetricId::kBufferUsage:
      return has(spe::RawMetric::kBufferUsage);
    case MetricId::kBufferCapacity:
      return has(spe::RawMetric::kBufferCapacity);
    case MetricId::kQueueSize:
      return has(spe::RawMetric::kQueueSize);
    case MetricId::kCost:
      // Liebre exposes cost directly; Storm's rolling execute latency is a
      // unit conversion away.
      return has(spe::RawMetric::kCost) || has(spe::RawMetric::kAvgExecLatencyUs);
    case MetricId::kSelectivity:
      return has(spe::RawMetric::kSelectivity);
    case MetricId::kHeadTupleAge:
      return has(spe::RawMetric::kHeadTupleAgeNs);
    case MetricId::kQueueHighWater:
      return has(spe::RawMetric::kQueueHighWater);
    case MetricId::kCpuPressure:
      // PSI-style pressure comes from the OS, not the SPE; available for
      // every engine.
      return true;
    case MetricId::kInputRate:
    case MetricId::kHighestRate:
      return false;  // always derived
  }
  return false;
}

double SimSpeDriver::Fetch(MetricId metric, const EntityInfo& entity) {
  const auto latest = [&](spe::RawMetric m) {
    const auto sample = store_->Latest(SeriesPath(entity, m));
    return sample ? sample->value : 0.0;
  };
  const auto delta = [&](spe::RawMetric m) {
    const auto d = store_->Delta(SeriesPath(entity, m), delta_window_);
    return d ? std::max(*d, 0.0) : 0.0;
  };
  const auto& exposed = instance_->flavor().exposed_metrics;
  switch (metric) {
    case MetricId::kTuplesInTotal:
      return latest(spe::RawMetric::kTuplesIn);
    case MetricId::kTuplesOutTotal:
      return latest(spe::RawMetric::kTuplesOut);
    case MetricId::kTuplesInDelta:
      return delta(spe::RawMetric::kTuplesIn);
    case MetricId::kTuplesOutDelta:
      return delta(spe::RawMetric::kTuplesOut);
    case MetricId::kBusyDeltaNs:
      return delta(spe::RawMetric::kBusyTimeNs);
    case MetricId::kBufferUsage:
      return latest(spe::RawMetric::kBufferUsage);
    case MetricId::kBufferCapacity:
      return latest(spe::RawMetric::kBufferCapacity);
    case MetricId::kQueueSize:
      return latest(spe::RawMetric::kQueueSize);
    case MetricId::kCost:
      if (exposed.count(spe::RawMetric::kCost) > 0) {
        return latest(spe::RawMetric::kCost);
      }
      return latest(spe::RawMetric::kAvgExecLatencyUs) * 1000.0;  // us -> ns
    case MetricId::kSelectivity:
      return latest(spe::RawMetric::kSelectivity);
    case MetricId::kHeadTupleAge:
      return latest(spe::RawMetric::kHeadTupleAgeNs);
    case MetricId::kQueueHighWater:
      return latest(spe::RawMetric::kQueueHighWater);
    case MetricId::kCpuPressure: {
      // Fresh read from the (simulated) kernel's per-task accounting.
      if (entity.thread.machine == nullptr) return 0.0;
      const auto total = static_cast<double>(
          entity.thread.machine->GetStats(entity.thread.sim_tid).wait_time);
      double& last = last_wait_ns_[entity.id];
      const double delta = std::max(total - last, 0.0);
      last = total;
      return delta;
    }
    case MetricId::kInputRate:
    case MetricId::kHighestRate:
      break;
  }
  assert(false && "Fetch called for non-provided metric");
  return 0.0;
}

}  // namespace lachesis::core
