#include "core/runner.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace lachesis::core {

LachesisRunner::LachesisRunner(sim::Simulator& sim, OsAdapter& os,
                               std::uint64_t seed)
    : sim_(&sim), os_(&os), rng_(seed) {}

std::size_t LachesisRunner::AddBinding(PolicyBinding binding) {
  assert(binding.policy && binding.translator);
  assert(binding.period > 0);
  assert(!binding.drivers.empty());
  bindings_.push_back(std::move(binding));
  enabled_.push_back(true);
  return bindings_.size() - 1;
}

void LachesisRunner::SetBindingEnabled(std::size_t index, bool enabled) {
  enabled_.at(index) = enabled;
}

SimDuration LachesisRunner::WakeInterval() const {
  SimDuration gcd = 0;
  for (const PolicyBinding& b : bindings_) {
    gcd = std::gcd(gcd, b.period);
  }
  return gcd > 0 ? gcd : Seconds(1);
}

void LachesisRunner::Start(SimTime until) {
  until_ = until;
  // Algorithm 1 L1: register the union of required metrics.
  for (const PolicyBinding& b : bindings_) {
    for (const MetricId m : b.policy->RequiredMetrics()) {
      provider_.Register(m);
    }
  }
  next_run_.assign(bindings_.size(), sim_->now() + WakeInterval());
  sim_->ScheduleAt(sim_->now() + WakeInterval(), [this] { Tick(); });
}

void LachesisRunner::Tick() {
  const SimTime now = sim_->now();
  bool any_due = false;
  for (std::size_t i = 0; i < bindings_.size(); ++i) {
    if (!enabled_[i]) {
      // Keep cadence while disabled so re-enabling resumes on period
      // boundaries instead of firing a burst of missed runs.
      if (next_run_[i] <= now) next_run_[i] = now + bindings_[i].period;
      continue;
    }
    if (next_run_[i] <= now) any_due = true;
  }
  if (any_due) {
    // Algorithm 1 L4: update metrics for all drivers of due policies.
    std::set<SpeDriver*> driver_set;
    SimDuration window = 0;
    for (std::size_t i = 0; i < bindings_.size(); ++i) {
      if (!enabled_[i] || next_run_[i] > now) continue;
      driver_set.insert(bindings_[i].drivers.begin(), bindings_[i].drivers.end());
      window = window == 0 ? bindings_[i].period
                           : std::min(window, bindings_[i].period);
    }
    provider_.Update({driver_set.begin(), driver_set.end()}, window);

    // L5-8: run each due policy and apply through its translator.
    for (std::size_t i = 0; i < bindings_.size(); ++i) {
      if (!enabled_[i] || next_run_[i] > now) continue;
      PolicyBinding& b = bindings_[i];
      PolicyContext ctx;
      ctx.provider = &provider_;
      ctx.drivers = b.drivers;
      ctx.filter = b.filter;
      ctx.now = now;
      ctx.rng = &rng_;
      const Schedule schedule = b.policy->ComputeSchedule(ctx);
      b.translator->Apply(schedule, *os_);
      ++schedules_applied_;
      next_run_[i] = now + b.period;
    }
  }
  // L9: sleep until the next check.
  const SimTime next = now + WakeInterval();
  if (next <= until_) sim_->ScheduleAt(next, [this] { Tick(); });
}

}  // namespace lachesis::core
