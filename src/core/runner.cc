#include "core/runner.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>

namespace lachesis::core {

LachesisRunner::LachesisRunner(ControlExecutor& executor, OsAdapter& os,
                               std::uint64_t seed)
    : executor_(&executor), delta_(os), rng_(seed) {
  // The runner is the daemon path, so fault tolerance (backoff + circuit
  // breaking, op_health.h) is on by default; a raw ScheduleDeltaAdapter
  // keeps it off to preserve plain retry-next-tick semantics. Jitter is
  // derived from the runner seed so chaos runs replay exactly.
  HealthConfig health;
  health.enabled = true;
  health.seed = seed;
  delta_.SetHealthConfig(health);
  // Provenance is on by default for the same reason: the runner IS the
  // daemon path, and the recorder's steady-state cost is two ring pushes
  // per tick. Layers below share the runner's ring.
  delta_.SetRecorder(&recorder_);
}

const char* LachesisRunner::OpClassNameForObs(int cls) {
  if (cls < 0 || cls >= kOpClassCount) return "?";
  return OpClassName(static_cast<OpClass>(cls));
}

obs::Explanation LachesisRunner::ExplainTarget(const std::string& health_key,
                                               SimTime at) const {
  return obs::ExplainTarget(recorder_, health_key, at, OpClassNameForObs);
}

obs::Explanation LachesisRunner::ExplainThread(const ThreadHandle& thread,
                                               SimTime at) const {
  return ExplainTarget(ScheduleDeltaAdapter::HealthKeyOf(thread), at);
}

void LachesisRunner::RegisterMetrics(const PolicyBinding& binding) {
  for (const MetricId m : binding.policy->RequiredMetrics()) {
    if (++metric_refs_[m] == 1) provider_.Register(m);
  }
}

void LachesisRunner::UnregisterMetrics(const PolicyBinding& binding) {
  for (const MetricId m : binding.policy->RequiredMetrics()) {
    const auto it = metric_refs_.find(m);
    assert(it != metric_refs_.end() && it->second > 0);
    if (--it->second == 0) {
      metric_refs_.erase(it);
      provider_.Unregister(m);
    }
  }
}

std::size_t LachesisRunner::AddQuery(PolicyBinding binding) {
  assert(binding.policy && binding.translator);
  assert(binding.period > 0);
  assert(!binding.drivers.empty());
  Bound bound;
  bound.binding = std::move(binding);
  bindings_.push_back(std::move(bound));
  const std::size_t index = bindings_.size() - 1;
  if (started_) {
    // Runtime attach (Algorithm 1 L1, incrementally): register the new
    // policy's metrics and re-derive the wakeup cadence. First run aligns
    // with the (possibly shrunk) wake interval, like Start does.
    RegisterMetrics(bindings_[index].binding);
    const SimTime now = executor_->Now();
    const SimDuration interval = WakeInterval();
    bindings_[index].next_run = now + interval;
    if (now + interval < next_wake_) ScheduleNext(now + interval);
  }
  recorder_.QueryAttached(executor_->Now(), static_cast<int>(index));
  return index;
}

void LachesisRunner::RemoveQuery(std::size_t index) {
  Bound& bound = bindings_.at(index);
  if (!bound.attached) return;
  bound.attached = false;
  if (started_) UnregisterMetrics(bound.binding);
  // Drop cached values AND pending health/backoff state for threads only
  // this binding could reach. A failed op against a detached query's
  // thread must not keep being retried (or hold tracker entries) forever;
  // threads still visible through another attached binding keep theirs.
  // The scratch sets are hash sets over the padding-free ThreadKey, so the
  // purge costs one O(1) probe per entity instead of an O(log n) tree walk.
  FlatSet<ThreadKey> still_visible;
  for (const Bound& other : bindings_) {
    if (!other.attached) continue;
    for (SpeDriver* driver : other.binding.drivers) {
      for (const EntityInfo& entity : driver->Entities()) {
        if (other.binding.filter && !other.binding.filter(entity)) continue;
        still_visible.Insert(ThreadKeyOf(entity.thread));
      }
    }
  }
  FlatSet<ThreadKey> forgotten;
  for (SpeDriver* driver : bound.binding.drivers) {
    for (const EntityInfo& entity : driver->Entities()) {
      if (bound.binding.filter && !bound.binding.filter(entity)) continue;
      const ThreadKey key = ThreadKeyOf(entity.thread);
      if (still_visible.Contains(key) || !forgotten.Insert(key)) continue;
      delta_.ForgetThread(entity.thread);
    }
  }
  // The wake interval may have grown; the loop naturally adopts it at the
  // next wakeup, so no reschedule is needed (a too-early wakeup is just an
  // idle tick).
  recorder_.QueryDetached(executor_->Now(), static_cast<int>(index));
}

void LachesisRunner::SetBindingEnabled(std::size_t index, bool enabled) {
  bindings_.at(index).enabled = enabled;
}

std::size_t LachesisRunner::ReconcileWithBackend() {
  FlatSet<ThreadKey> seen;
  std::vector<ThreadHandle> threads;
  for (const Bound& bound : bindings_) {
    if (!bound.attached) continue;
    for (SpeDriver* driver : bound.binding.drivers) {
      for (const EntityInfo& entity : driver->Entities()) {
        if (bound.binding.filter && !bound.binding.filter(entity)) continue;
        const ThreadHandle& t = entity.thread;
        if (seen.Insert(ThreadKeyOf(t))) threads.push_back(t);
      }
    }
  }
  const std::size_t seeded = delta_.ReconcileFromBackend(threads);
  last_reconcile_seeded_ = seeded;
  recorder_.Reconcile(executor_->Now(), static_cast<std::int64_t>(seeded),
                      static_cast<std::int64_t>(delta_.adopted_groups()));
  return seeded;
}

Translator* LachesisRunner::PickTranslator(std::size_t index, Bound& bound,
                                           SimTime now) {
  PolicyBinding& b = bound.binding;
  const std::size_t rungs = 1 + b.fallback_translators.size();
  const auto rung = [&](std::size_t i) -> Translator* {
    return i == 0 ? b.translator.get() : b.fallback_translators[i - 1].get();
  };
  const OpHealthTracker& health = delta_.health();
  std::size_t pick = rungs - 1;  // nothing healthy: apply the last resort
  for (std::size_t i = 0; i < rungs; ++i) {
    const std::uint32_t mask = rung(i)->required_op_classes();
    bool healthy = true;
    bool probe_due = false;
    for (int c = 0; c < kOpClassCount; ++c) {
      const OpClass cls = static_cast<OpClass>(c);
      if (!(mask & OpClassBit(cls))) continue;
      if (health.class_state(cls) == BreakerState::kClosed) continue;
      healthy = false;
      if (health.ProbeDue(cls, now)) probe_due = true;
    }
    // A rung is usable when every mechanism it needs is healthy -- or when
    // an open mechanism is due for its half-open probe: applying the
    // better translator IS the probe, and a success closes the breaker and
    // promotes the binding back automatically.
    if (healthy || probe_due) {
      pick = i;
      break;
    }
  }
  if (pick != bound.level) {
    recorder_.DegradationMove(now, static_cast<int>(index),
                              static_cast<int>(bound.level),
                              static_cast<int>(pick), rung(pick)->name());
  }
  bound.level = pick;
  return rung(pick);
}

SimDuration LachesisRunner::WakeInterval() const {
  SimDuration gcd = 0;
  for (const Bound& bound : bindings_) {
    if (!bound.attached) continue;
    gcd = std::gcd(gcd, bound.binding.period);
  }
  return gcd > 0 ? gcd : Seconds(1);
}

void LachesisRunner::Start(SimTime until) {
  until_ = until;
  started_ = true;
  // Algorithm 1 L1: register the union of required metrics.
  for (const Bound& bound : bindings_) {
    if (bound.attached) RegisterMetrics(bound.binding);
  }
  const SimTime first = executor_->Now() + WakeInterval();
  for (Bound& bound : bindings_) bound.next_run = first;
  ScheduleNext(first);
}

void LachesisRunner::ScheduleNext(SimTime at) {
  const std::uint64_t seq = ++tick_seq_;
  next_wake_ = at;
  executor_->CallAt(at, [this, seq] {
    if (seq == tick_seq_) Tick();
  });
}

void LachesisRunner::Tick() {
  const SimTime now = executor_->Now();
  // Cadence is anchored on the scheduled wake time: on the native backend
  // `now` is the (slightly late) dispatch time, and anchoring next_run on
  // it would let periods drift past their wakeups. In the simulator both
  // are equal.
  const SimTime anchor = next_wake_;  // == now in the simulator
  const auto due = [now](const Bound& bound) {
    return bound.attached && bound.enabled && bound.next_run <= now;
  };
  bool any_due = false;
  for (Bound& bound : bindings_) {
    if (!bound.attached) continue;
    if (!bound.enabled) {
      // Keep cadence while disabled so re-enabling resumes on period
      // boundaries instead of firing a burst of missed runs.
      if (bound.next_run <= now) bound.next_run = anchor + bound.binding.period;
      continue;
    }
    if (bound.next_run <= now) any_due = true;
  }
  delta_.BeginTick(now);
  recorder_.TickBegin(now, ticks_total_);
  ++ticks_total_;
  int policies_run = 0;
  if (any_due) {
    // Algorithm 1 L4: update metrics for all drivers of due policies. On
    // the native backend the drivers poll their engine first (re-scan
    // /proc, tail the metric file); the sim drivers read the scraped store
    // and poll nothing.
    std::set<SpeDriver*> driver_set;
    SimDuration window = 0;
    for (const Bound& bound : bindings_) {
      if (!due(bound)) continue;
      driver_set.insert(bound.binding.drivers.begin(),
                        bound.binding.drivers.end());
      window = window == 0 ? bound.binding.period
                           : std::min(window, bound.binding.period);
    }
    for (SpeDriver* driver : driver_set) driver->Poll(now);
    provider_.Update({driver_set.begin(), driver_set.end()}, window);
    if (recorder_.verbose()) {
      // Per-entity metric samples are provenance gold but O(entities) per
      // tick, so they ride behind the same verbose gate as elisions.
      for (SpeDriver* driver : driver_set) {
        for (const EntityInfo& entity : provider_.EntitiesOf(*driver)) {
          for (const MetricId metric : provider_.registered()) {
            recorder_.MetricSample(now, entity.path, MetricName(metric),
                                   provider_.Value(*driver, metric, entity.id));
          }
        }
      }
    }

    // L5-8: run each due policy and apply through its translator (which
    // issues only changed operations thanks to the delta layer).
    for (std::size_t index = 0; index < bindings_.size(); ++index) {
      Bound& bound = bindings_[index];
      if (!due(bound)) continue;
      PolicyBinding& b = bound.binding;
      PolicyContext ctx;
      ctx.provider = &provider_;
      ctx.drivers = b.drivers;
      ctx.filter = b.filter;
      ctx.now = now;
      ctx.rng = &rng_;
      const Schedule schedule = b.policy->ComputeSchedule(ctx);
      recorder_.ScheduleComputed(now, static_cast<int>(index),
                                 static_cast<int>(schedule.entries.size()),
                                 b.policy->name());
      Translator* translator = PickTranslator(index, bound, now);
      recorder_.TranslatorPicked(now, static_cast<int>(index),
                                 static_cast<int>(bound.level),
                                 translator->name());
      translator->Apply(schedule, delta_);
      ++schedules_applied_;
      ++policies_run;
      bound.next_run = anchor + b.period;
    }
  }
  policies_run_total_ += static_cast<std::uint64_t>(policies_run);
  if (policies_run == 0) ++idle_ticks_total_;
  RunnerTickInfo info;
  info.now = now;
  info.policies_run = policies_run;
  info.delta = delta_.tick_stats();
  info.open_breakers = delta_.health().open_breakers();
  for (const Bound& bound : bindings_) {
    if (bound.attached && bound.enabled && bound.level > 0) {
      ++info.degraded_bindings;
    }
  }
  obs::TickSummary summary;
  summary.policies_run = info.policies_run;
  summary.ops_applied = info.delta.applied;
  summary.ops_skipped = info.delta.skipped;
  summary.ops_errors = info.delta.errors;
  summary.ops_suppressed = info.delta.suppressed;
  summary.open_breakers = info.open_breakers;
  summary.degraded_bindings = info.degraded_bindings;
  recorder_.TickEnd(now, summary);
  if (observer_) observer_(info);
  // L9: sleep until the next check. Anchoring on the scheduled wake time
  // (not the dispatch time) keeps the native backend drift-free; in the
  // simulator the two are identical. If a tick overran a whole interval,
  // fall back to "now" instead of firing a catch-up burst.
  SimTime next = next_wake_ + WakeInterval();
  if (next <= now) next = now + WakeInterval();
  if (next <= until_) ScheduleNext(next);
}

obs::SelfMetricsSnapshot LachesisRunner::CollectSelfMetrics() const {
  const DeltaStats& totals = delta_.totals();
  const OpHealthTracker& health = delta_.health();
  std::uint64_t breaker_opens = 0;
  for (int c = 0; c < kOpClassCount; ++c) {
    breaker_opens += health.breaker_opens(static_cast<OpClass>(c));
  }
  double attached = 0, degraded = 0;
  for (const Bound& bound : bindings_) {
    if (!bound.attached || !bound.enabled) continue;
    ++attached;
    if (bound.level > 0) ++degraded;
  }
  // Must report every metric in obs::kSelfMetricCatalog exactly once: the
  // self-metrics test pins CatalogDiff(CollectSelfMetrics()) to empty.
  return {
      {"lachesis_ticks_total", static_cast<double>(ticks_total_)},
      {"lachesis_idle_ticks_total", static_cast<double>(idle_ticks_total_)},
      {"lachesis_policies_run_total",
       static_cast<double>(policies_run_total_)},
      {"lachesis_schedules_applied_total",
       static_cast<double>(schedules_applied_)},
      {"lachesis_ops_applied_total", static_cast<double>(totals.applied)},
      {"lachesis_ops_skipped_total", static_cast<double>(totals.skipped)},
      {"lachesis_ops_errors_total", static_cast<double>(totals.errors)},
      {"lachesis_ops_suppressed_total",
       static_cast<double>(totals.suppressed)},
      {"lachesis_open_breakers", static_cast<double>(health.open_breakers())},
      {"lachesis_breaker_opens_total", static_cast<double>(breaker_opens)},
      {"lachesis_degraded_bindings", degraded},
      {"lachesis_attached_queries", attached},
      {"lachesis_wake_interval_seconds",
       static_cast<double>(WakeInterval()) / 1e9},
      {"lachesis_tracked_backoff_targets",
       static_cast<double>(health.tracked_targets())},
      {"lachesis_reconcile_seeded_entries",
       static_cast<double>(last_reconcile_seeded_)},
      {"lachesis_adopted_cgroups",
       static_cast<double>(delta_.adopted_groups())},
      {"lachesis_obs_events_recorded_total",
       static_cast<double>(recorder_.total_recorded())},
      {"lachesis_obs_events_dropped_total",
       static_cast<double>(recorder_.dropped())},
  };
}

}  // namespace lachesis::core
