// Priority normalization (paper §5.3).
//
// Policies emit real-valued priorities; OS mechanisms expect discrete values
// in fixed ranges (nice in [-20,19], cpu.shares in [2, 262144]). The
// normalization functions here hide that mismatch from policies (G1).
#ifndef LACHESIS_CORE_NORMALIZE_H_
#define LACHESIS_CORE_NORMALIZE_H_

#include <cstdint>
#include <vector>

namespace lachesis::core {

// Min-max normalizes `values` into [lo, hi] (linear). Constant inputs map to
// the midpoint.
std::vector<double> MinMaxNormalize(const std::vector<double>& values,
                                    double lo, double hi);

// Min-max on the logarithms (for logarithmically spaced priorities, e.g.
// HR). Non-positive values are clamped to the smallest positive input (or 1)
// before taking logs.
std::vector<double> LogMinMaxNormalize(const std::vector<double>& values,
                                       double lo, double hi);

// The paper's nice mapping: given priorities p_i, anchors the maximum at
// nice n_max and spaces the rest by the kernel's 1.25x-per-step rule:
//   F(x) = n_max + (log(p_max) - log(x)) / log(1.25).
// When the resulting range exceeds the nice interval, an additional min-max
// pass compresses it into [n_max, 19].
std::vector<int> PrioritiesToNice(const std::vector<double>& priorities,
                                  int nice_max = -20);

// Maps normalized priorities to cpu.shares: priority 0 -> min_shares,
// priority 1 -> max_shares, geometric interpolation (shares are weights, so
// equal ratios mean equal relative boosts). The default 32:1 span is strong
// enough to redirect CPU to backlogged groups but does not starve
// unprioritized ones for a whole scheduling period (which would make
// second-stale priorities oscillate).
std::vector<std::uint64_t> PrioritiesToShares(
    const std::vector<double>& normalized, std::uint64_t min_shares = 256,
    std::uint64_t max_shares = 8192);

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_NORMALIZE_H_
