// ControlExecutor backed by the discrete-event simulator.
//
// Kept out of executor.h so the runner (and anything else that only needs
// the interface) has no compile-time dependency on sim::Simulator.
#ifndef LACHESIS_CORE_SIM_EXECUTOR_H_
#define LACHESIS_CORE_SIM_EXECUTOR_H_

#include <functional>
#include <utility>

#include "core/executor.h"
#include "sim/simulator.h"

namespace lachesis::core {

class SimControlExecutor final : public ControlExecutor {
 public:
  explicit SimControlExecutor(sim::Simulator& sim) : sim_(&sim) {}

  [[nodiscard]] SimTime Now() const override { return sim_->now(); }

  void CallAt(SimTime time, std::function<void()> fn) override {
    sim_->ScheduleAt(time, std::move(fn));
  }

 private:
  sim::Simulator* sim_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_SIM_EXECUTOR_H_
