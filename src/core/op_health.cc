#include "core/op_health.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "obs/recorder.h"

namespace lachesis::core {

namespace {
// Breaker transitions are recorded with the BreakerState's numeric value so
// obs (which cannot see this enum) renders them consistently.
int StateInt(BreakerState s) { return static_cast<int>(s); }
}  // namespace

const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kSetNice:
      return "SetNice";
    case OpClass::kSetGroupShares:
      return "SetGroupShares";
    case OpClass::kMoveToGroup:
      return "MoveToGroup";
    case OpClass::kSetRtPriority:
      return "SetRtPriority";
    case OpClass::kSetGroupQuota:
      return "SetGroupQuota";
    case OpClass::kSetDeadline:
      return "SetDeadline";
    case OpClass::kSetAffinity:
      return "SetAffinity";
  }
  return "?";
}

void HealthConfig::Validate() const {
  if (backoff_base <= 0) {
    throw std::invalid_argument("health: backoff_base must be positive");
  }
  if (backoff_cap < 0 || (backoff_cap > 0 && backoff_cap < backoff_base)) {
    throw std::invalid_argument(
        "health: backoff_cap must be 0 (uncapped) or >= backoff_base");
  }
  if (jitter_frac < 0.0 || jitter_frac >= 1.0) {
    throw std::invalid_argument("health: jitter_frac must be in [0, 1)");
  }
  if (breaker_threshold < 1) {
    throw std::invalid_argument("health: breaker_threshold must be >= 1");
  }
  if (probe_interval <= 0) {
    throw std::invalid_argument("health: probe_interval must be positive");
  }
}

OpHealthTracker::OpHealthTracker(HealthConfig config) {
  set_config(config);
}

void OpHealthTracker::set_config(const HealthConfig& config) {
  config.Validate();
  config_ = config;
}

SimDuration OpHealthTracker::BackoffDelay(const std::string& target,
                                          int failures) const {
  const SimDuration cap =
      config_.backoff_cap > 0
          ? std::min(config_.backoff_cap, kBackoffCeiling)
          : kBackoffCeiling;
  SimDuration delay = config_.backoff_base;
  for (int i = 1; i < failures && delay < cap; ++i) delay *= 2;
  delay = std::min(delay, cap);
  if (config_.jitter_frac > 0.0) {
    // Deterministic jitter: a SplitMix64 stream keyed by (seed, target,
    // attempt). Identical runs see identical delays; distinct targets
    // desynchronize so a cleared fault is not followed by a retry stampede
    // on one tick.
    std::uint64_t mix = config_.seed;
    for (const char c : target) {
      mix = mix * 1099511628211ULL + static_cast<unsigned char>(c);
    }
    mix ^= static_cast<std::uint64_t>(failures) * 0x9E3779B97F4A7C15ULL;
    const auto span =
        static_cast<std::uint64_t>(static_cast<double>(delay) *
                                   config_.jitter_frac);
    if (span > 0) {
      delay += static_cast<SimDuration>(SplitMix64(mix) % span);
    }
  }
  return delay;
}

std::uint32_t OpHealthTracker::IdOf(const std::string& target) const {
  const std::uint32_t id = target_ids_.Lookup(target);
  // Lookup reports both "never interned" and "" as 0; only the latter is a
  // real id (the interner's reserved slot).
  if (id == 0 && !target.empty()) return kAbsentTarget;
  return id;
}

bool OpHealthTracker::AllowAttempt(OpClass cls, const std::string& target,
                                   SimTime now) {
  if (!config_.enabled) return true;
  ClassHealth& ch = classes_[static_cast<int>(cls)];
  if (ch.state == BreakerState::kOpen) {
    if (now < ch.probe_at) return false;
    ch.state = BreakerState::kHalfOpen;  // this attempt is the probe
    if (recorder_ != nullptr) {
      recorder_->BreakerTransition(now, static_cast<int>(cls),
                                   StateInt(BreakerState::kOpen),
                                   StateInt(BreakerState::kHalfOpen));
    }
    return true;
  }
  if (ch.state == BreakerState::kHalfOpen) {
    // A probe is in flight (its outcome is recorded synchronously, so this
    // only triggers if a caller skipped Record*); stay conservative.
    return false;
  }
  const std::uint32_t id = IdOf(target);
  if (id == kAbsentTarget) return true;  // never failed: no backoff to check
  const TargetHealth* t = targets_[static_cast<int>(cls)].Find(id);
  return t == nullptr || now >= t->next_retry;
}

void OpHealthTracker::RecordSuccess(OpClass cls, const std::string& target,
                                    SimTime now) {
  if (!config_.enabled) return;
  auto& per_target = targets_[static_cast<int>(cls)];
  const std::uint32_t id = IdOf(target);
  if (id != kAbsentTarget) per_target.Erase(id);
  ClassHealth& ch = classes_[static_cast<int>(cls)];
  ch.consecutive_failures = 0;
  ch.probe_failures = 0;
  if (ch.state == BreakerState::kHalfOpen) {
    // The probe succeeded: the class-wide failure was environmental and has
    // ended. Close the breaker and clear every backoff of the class so the
    // next tick re-applies everything that was suppressed.
    ch.state = BreakerState::kClosed;
    per_target.Clear();
    if (recorder_ != nullptr) {
      recorder_->BreakerTransition(now, static_cast<int>(cls),
                                   StateInt(BreakerState::kHalfOpen),
                                   StateInt(BreakerState::kClosed));
    }
  }
}

void OpHealthTracker::RecordFailure(OpClass cls, const std::string& target,
                                    SimTime now, ErrorSeverity severity) {
  if (!config_.enabled) return;
  TargetHealth& t =
      *targets_[static_cast<int>(cls)].FindOrInsert(target_ids_.Intern(target));
  t.failures += severity == ErrorSeverity::kPermanent ? 2 : 1;
  t.next_retry = now + BackoffDelay(target, t.failures);
  if (recorder_ != nullptr) {
    recorder_->BackoffArmed(now, static_cast<int>(cls), target, t.failures,
                            t.next_retry);
  }

  ClassHealth& ch = classes_[static_cast<int>(cls)];
  if (ch.state == BreakerState::kHalfOpen) {
    // Probe failed: reopen, and double the probe interval (up to the
    // ceiling). A permanently dead class therefore costs O(log T) probes
    // over T ticks, not O(T / probe_interval); a fault that clears after a
    // few intervals is still picked up within a couple of probes.
    ch.state = BreakerState::kOpen;
    ++ch.probe_failures;
    SimDuration interval = config_.probe_interval;
    for (int i = 0; i < ch.probe_failures && interval < kBackoffCeiling; ++i) {
      interval *= 2;
    }
    ch.probe_at = now + std::min(interval, kBackoffCeiling);
    if (recorder_ != nullptr) {
      recorder_->BreakerTransition(now, static_cast<int>(cls),
                                   StateInt(BreakerState::kHalfOpen),
                                   StateInt(BreakerState::kOpen));
    }
    return;
  }
  if (severity == ErrorSeverity::kVanished) return;  // not a class signal
  if (++ch.consecutive_failures >= config_.breaker_threshold &&
      ch.state == BreakerState::kClosed) {
    ch.state = BreakerState::kOpen;
    ch.probe_failures = 0;
    ch.probe_at = now + config_.probe_interval;
    ++ch.times_opened;
    if (recorder_ != nullptr) {
      recorder_->BreakerTransition(now, static_cast<int>(cls),
                                   StateInt(BreakerState::kClosed),
                                   StateInt(BreakerState::kOpen));
    }
  }
}

void OpHealthTracker::ForgetTarget(const std::string& target) {
  const std::uint32_t id = IdOf(target);
  if (id == kAbsentTarget) return;
  for (auto& per_target : targets_) per_target.Erase(id);
}

void OpHealthTracker::Reset() {
  classes_ = {};
  // The interner is deliberately kept: ids are internal, stable, and
  // bounded by the set of distinct targets ever seen, so a Reset leaves a
  // warmed tracker allocation-free.
  for (auto& per_target : targets_) per_target.Clear();
}

int OpHealthTracker::open_breakers() const {
  int count = 0;
  for (const ClassHealth& ch : classes_) {
    if (ch.state != BreakerState::kClosed) ++count;
  }
  return count;
}

bool OpHealthTracker::ProbeDue(OpClass cls, SimTime now) const {
  const ClassHealth& ch = classes_[static_cast<int>(cls)];
  return ch.state == BreakerState::kOpen && now >= ch.probe_at;
}

std::size_t OpHealthTracker::tracked_targets() const {
  std::size_t count = 0;
  for (const auto& per_target : targets_) count += per_target.size();
  return count;
}

int OpHealthTracker::target_failures(OpClass cls,
                                     const std::string& target) const {
  const std::uint32_t id = IdOf(target);
  if (id == kAbsentTarget) return 0;
  const TargetHealth* t = targets_[static_cast<int>(cls)].Find(id);
  return t == nullptr ? 0 : t->failures;
}

SimTime OpHealthTracker::target_next_retry(OpClass cls,
                                           const std::string& target) const {
  const std::uint32_t id = IdOf(target);
  if (id == kAbsentTarget) return 0;
  const TargetHealth* t = targets_[static_cast<int>(cls)].Find(id);
  return t == nullptr ? 0 : t->next_retry;
}

}  // namespace lachesis::core
