#include "core/fault.h"

#include <algorithm>
#include <cerrno>
#include <cmath>

#include "common/rng.h"
#include "core/schedule_delta.h"
#include "obs/recorder.h"

namespace lachesis::core {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEperm: return "eperm";
    case FaultKind::kVanish: return "vanish";
    case FaultKind::kEbusy: return "ebusy";
    case FaultKind::kSlowCall: return "slow-call";
  }
  return "?";
}

namespace {

std::uint64_t HashString(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  }
  return h;
}

}  // namespace

bool FaultChance(std::uint64_t seed, std::uint64_t salt, double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  std::uint64_t mix = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  const double draw =
      static_cast<double>(SplitMix64(mix) >> 11) * 0x1.0p-53;
  return draw < probability;
}

bool FaultPlan::QuietAfter(SimTime time) const {
  for (const OsFaultRule& rule : os_rules) {
    if (rule.until > time) return false;
  }
  for (const DriverFaultRule& rule : driver_rules) {
    if (rule.until > time) return false;
  }
  return true;
}

void FaultInjectingOsAdapter::MaybeInject(OpClass cls,
                                          const std::string& target) {
  const SimTime now = clock_->Now();
  for (std::size_t i = 0; i < plan_.os_rules.size(); ++i) {
    const OsFaultRule& rule = plan_.os_rules[i];
    if (rule.op && *rule.op != cls) continue;
    if (now < rule.from || now >= rule.until) continue;
    if (!rule.target_substr.empty() &&
        target.find(rule.target_substr) == std::string::npos) {
      continue;
    }
    const std::uint64_t salt = HashString(
        (i + 1) * 0xD1B54A32D192ED03ULL + static_cast<std::uint64_t>(now),
        target);
    if (!FaultChance(plan_.seed, salt, rule.probability)) continue;
    ++injected_[static_cast<int>(rule.kind)];
    if (recorder_ != nullptr) {
      recorder_->FaultInjected(now, static_cast<int>(cls), target,
                               FaultKindName(rule.kind));
    }
    switch (rule.kind) {
      case FaultKind::kEperm:
        throw OsOperationError(
            std::string("injected EPERM: ") + OpClassName(cls) + "(" +
                target + ")",
            ErrorSeverity::kPermanent, EPERM);
      case FaultKind::kVanish:
        throw OsOperationError(
            std::string("injected vanish: ") + OpClassName(cls) + "(" +
                target + ")",
            ErrorSeverity::kVanished, ESRCH);
      case FaultKind::kEbusy:
        throw OsOperationError(
            std::string("injected EBUSY: ") + OpClassName(cls) + "(" +
                target + ")",
            ErrorSeverity::kTransient, EBUSY);
      case FaultKind::kSlowCall:
        injected_latency_ += rule.slow_latency;
        break;  // charged, not thrown: the call still goes through
    }
  }
}

std::uint64_t FaultInjectingOsAdapter::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected_) total += count;
  return total;
}

void FaultInjectingOsAdapter::SetNice(const ThreadHandle& thread, int nice) {
  MaybeInject(OpClass::kSetNice, std::to_string(thread.os_tid) + "/" +
                                     std::to_string(thread.sim_tid.value()));
  next_->SetNice(thread, nice);
}

void FaultInjectingOsAdapter::SetGroupShares(const std::string& group,
                                             std::uint64_t shares) {
  MaybeInject(OpClass::kSetGroupShares, group);
  next_->SetGroupShares(group, shares);
}

void FaultInjectingOsAdapter::MoveToGroup(const ThreadHandle& thread,
                                          const std::string& group) {
  MaybeInject(OpClass::kMoveToGroup, group);
  next_->MoveToGroup(thread, group);
}

void FaultInjectingOsAdapter::SetRtPriority(const ThreadHandle& thread,
                                            int rt_priority) {
  MaybeInject(OpClass::kSetRtPriority,
              std::to_string(thread.os_tid) + "/" +
                  std::to_string(thread.sim_tid.value()));
  next_->SetRtPriority(thread, rt_priority);
}

void FaultInjectingOsAdapter::SetGroupQuota(const std::string& group,
                                            SimDuration quota,
                                            SimDuration period) {
  MaybeInject(OpClass::kSetGroupQuota, group);
  next_->SetGroupQuota(group, quota, period);
}

std::vector<EntityInfo> FaultInjectingDriver::Entities() {
  std::vector<EntityInfo> entities = next_->Entities();
  for (std::size_t i = 0; i < plan_.driver_rules.size(); ++i) {
    const DriverFaultRule& rule = plan_.driver_rules[i];
    if (rule.kind != DriverFaultRule::Kind::kVanishEntity) continue;
    if (now_ < rule.from || now_ >= rule.until) continue;
    std::vector<EntityInfo> kept;
    kept.reserve(entities.size());
    for (EntityInfo& entity : entities) {
      const std::uint64_t salt =
          (i + 1) * 0xD1B54A32D192ED03ULL + entity.id.value() * 31 +
          static_cast<std::uint64_t>(now_);
      if (FaultChance(plan_.seed, salt, rule.probability)) {
        ++entities_vanished_;
        continue;
      }
      kept.push_back(std::move(entity));
    }
    entities = std::move(kept);
  }
  return entities;
}

double FaultInjectingDriver::Fetch(MetricId metric, const EntityInfo& entity) {
  for (std::size_t i = 0; i < plan_.driver_rules.size(); ++i) {
    const DriverFaultRule& rule = plan_.driver_rules[i];
    if (now_ < rule.from || now_ >= rule.until) continue;
    if (rule.metric && *rule.metric != metric) continue;
    const std::uint64_t salt =
        (i + 1) * 0xBF58476D1CE4E5B9ULL +
        static_cast<std::uint64_t>(metric) * 131 + entity.id.value() * 31 +
        static_cast<std::uint64_t>(now_);
    switch (rule.kind) {
      case DriverFaultRule::Kind::kNanMetric:
        if (FaultChance(plan_.seed, salt, rule.probability)) {
          ++nan_injected_;
          return std::numeric_limits<double>::quiet_NaN();
        }
        break;
      case DriverFaultRule::Kind::kStaleMetric:
        if (FaultChance(plan_.seed, salt, rule.probability)) {
          ++stale_served_;
          const auto it = last_real_.find({metric, entity.id});
          return it != last_real_.end() ? it->second : 0.0;
        }
        break;
      case DriverFaultRule::Kind::kVanishEntity:
        break;  // handled in Entities()
    }
  }
  const double value = next_->Fetch(metric, entity);
  last_real_[{metric, entity.id}] = value;
  return value;
}

// --------------------------------------------------------------------------
// Fleet fault director.

const char* FleetFaultKindName(FleetFaultKind kind) {
  switch (kind) {
    case FleetFaultKind::kMachineCrash: return "machine-crash";
    case FleetFaultKind::kSlowShard: return "slow-shard";
    case FleetFaultKind::kPartition: return "partition";
  }
  return "?";
}

namespace {

constexpr std::uint64_t kEpochMax = std::numeric_limits<std::uint64_t>::max();

std::uint64_t SaturatingAdd(std::uint64_t a, std::uint64_t b) {
  return a > kEpochMax - b ? kEpochMax : a + b;
}

// Pure per-epoch decision hash: rule index, entity key (machine or link),
// epoch. Independent of evaluation order and worker count.
std::uint64_t FleetSalt(std::size_t rule, std::uint64_t key,
                        std::uint64_t epoch) {
  return (rule + 1) * 0xA24BAED4963EE407ULL +
         (key + 1) * 0x9FB21C651E98DF25ULL + epoch * 0xD1B54A32D192ED03ULL;
}

}  // namespace

std::uint64_t FleetFaultPlan::QuietAfterEpoch() const {
  std::uint64_t quiet = 0;
  for (const FleetFaultRule& rule : rules) {
    if (rule.until_epoch == kEpochMax) return kEpochMax;
    std::uint64_t end = rule.until_epoch;
    if (rule.kind == FleetFaultKind::kMachineCrash) {
      if (rule.down_epochs == 0) return kEpochMax;  // dark forever
      // Last possible crash is at until_epoch - 1; the machine is revived
      // down_epochs later and its restart hook fires one epoch after that.
      end = SaturatingAdd(end, SaturatingAdd(rule.down_epochs, 2));
    }
    quiet = std::max(quiet, end);
  }
  return quiet;
}

FleetFaultDirector::FleetFaultDirector(sim::FleetSimulator& fleet,
                                       FleetFaultPlan plan, Hooks hooks)
    : fleet_(&fleet), plan_(std::move(plan)), hooks_(std::move(hooks)) {}

void FleetFaultDirector::Arm(SimTime until) {
  until_ = until;
  const SimTime start = fleet_->now();
  fleet_->CallAtBarrier(start, [this, start] { OnBarrier(start); });
}

bool FleetFaultDirector::AllClear() const {
  if (!down_until_.empty() || pending_restart_hooks_ != 0) return false;
  const std::size_t shards = fleet_->shard_count();
  for (std::size_t s = 0; s < shards; ++s) {
    if (fleet_->ShardDark(s) || fleet_->ShardSlow(s) != 0) return false;
    for (std::size_t d = 0; d < shards; ++d) {
      if (s != d && fleet_->LinkDown(s, d)) return false;
    }
  }
  return true;
}

SimTime FleetFaultDirector::QuietAfterTime() const {
  const std::uint64_t epochs = plan_.QuietAfterEpoch();
  const auto epoch = static_cast<std::uint64_t>(fleet_->epoch());
  const auto limit = static_cast<std::uint64_t>(
      std::numeric_limits<SimTime>::max());
  if (epochs != 0 && epochs > limit / epoch) {
    return std::numeric_limits<SimTime>::max();
  }
  return static_cast<SimTime>(epochs * epoch);
}

void FleetFaultDirector::OnBarrier(SimTime now) {
  const std::size_t shards = fleet_->shard_count();
  const auto epoch_len = static_cast<std::uint64_t>(fleet_->epoch());
  const std::uint64_t epoch = static_cast<std::uint64_t>(now) / epoch_len;

  // 1. Restarts due this epoch: revive the shard now (it catches up in the
  //    next step), deliver the control-plane hook one epoch later so the
  //    reboot schedules work in the shard's present, not its replayed past.
  for (auto it = down_until_.begin(); it != down_until_.end();) {
    if (it->second <= epoch) {
      const std::size_t machine = it->first;
      fleet_->SetShardDark(machine, false);
      rebooting_.insert(machine);
      ++pending_restart_hooks_;
      const SimTime hook_at = now + fleet_->epoch();
      fleet_->CallAtBarrier(hook_at, [this, machine, hook_at] {
        ++restarts_;
        --pending_restart_hooks_;
        rebooting_.erase(machine);
        if (hooks_.on_restart) hooks_.on_restart(machine, hook_at);
      });
      it = down_until_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. Crash decisions, per (rule, machine), pure hash of (seed, rule,
  //    machine, epoch). A machine already dark cannot crash again.
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FleetFaultRule& rule = plan_.rules[r];
    if (rule.kind != FleetFaultKind::kMachineCrash) continue;
    if (epoch < rule.from_epoch || epoch >= rule.until_epoch) continue;
    for (std::size_t m = 0; m < shards; ++m) {
      if (rule.machine >= 0 && static_cast<std::size_t>(rule.machine) != m) {
        continue;
      }
      if (fleet_->ShardDark(m) || rebooting_.count(m) != 0) continue;
      if (!FaultChance(plan_.seed, FleetSalt(r, m, epoch), rule.probability)) {
        continue;
      }
      fleet_->SetShardDark(m, true);
      down_until_[m] = rule.down_epochs == 0
                           ? kEpochMax
                           : SaturatingAdd(epoch, rule.down_epochs);
      ++crashes_;
      if (hooks_.on_crash) hooks_.on_crash(m, now);
    }
  }

  // 3. Partitions: desired state per directed link is recomputed from
  //    scratch each epoch (OR over matching rules), so links heal the
  //    moment no rule holds them down.
  for (std::size_t from = 0; from < shards; ++from) {
    for (std::size_t to = 0; to < shards; ++to) {
      if (from == to) continue;
      bool down = false;
      for (std::size_t r = 0; r < plan_.rules.size() && !down; ++r) {
        const FleetFaultRule& rule = plan_.rules[r];
        if (rule.kind != FleetFaultKind::kPartition) continue;
        if (epoch < rule.from_epoch || epoch >= rule.until_epoch) continue;
        if (rule.machine >= 0 &&
            static_cast<std::size_t>(rule.machine) != from) {
          continue;
        }
        if (rule.dest >= 0 && static_cast<std::size_t>(rule.dest) != to) {
          continue;
        }
        down = FaultChance(plan_.seed, FleetSalt(r, from * shards + to, epoch),
                           rule.probability);
      }
      if (fleet_->LinkDown(from, to) != down) {
        fleet_->SetLinkDown(from, to, down);
      }
      if (down) ++partition_epochs_;
    }
  }

  // 4. Slow shards: desired penalty is the max over matching rules.
  for (std::size_t m = 0; m < shards; ++m) {
    std::uint32_t penalty = 0;
    for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
      const FleetFaultRule& rule = plan_.rules[r];
      if (rule.kind != FleetFaultKind::kSlowShard) continue;
      if (epoch < rule.from_epoch || epoch >= rule.until_epoch) continue;
      if (rule.machine >= 0 && static_cast<std::size_t>(rule.machine) != m) {
        continue;
      }
      if (FaultChance(plan_.seed, FleetSalt(r, m, epoch), rule.probability)) {
        penalty = std::max(penalty, rule.slow_micros);
      }
    }
    if (fleet_->ShardSlow(m) != penalty) fleet_->SetShardSlow(m, penalty);
    if (penalty > 0) ++slow_epochs_;
  }

  const SimTime next = now + fleet_->epoch();
  if (next <= until_) {
    fleet_->CallAtBarrier(next, [this, next] { OnBarrier(next); });
  }
}

}  // namespace lachesis::core
