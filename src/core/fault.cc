#include "core/fault.h"

#include <cerrno>
#include <cmath>

#include "common/rng.h"
#include "core/schedule_delta.h"
#include "obs/recorder.h"

namespace lachesis::core {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEperm: return "eperm";
    case FaultKind::kVanish: return "vanish";
    case FaultKind::kEbusy: return "ebusy";
    case FaultKind::kSlowCall: return "slow-call";
  }
  return "?";
}

namespace {

std::uint64_t HashString(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  }
  return h;
}

}  // namespace

bool FaultChance(std::uint64_t seed, std::uint64_t salt, double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  std::uint64_t mix = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  const double draw =
      static_cast<double>(SplitMix64(mix) >> 11) * 0x1.0p-53;
  return draw < probability;
}

bool FaultPlan::QuietAfter(SimTime time) const {
  for (const OsFaultRule& rule : os_rules) {
    if (rule.until > time) return false;
  }
  for (const DriverFaultRule& rule : driver_rules) {
    if (rule.until > time) return false;
  }
  return true;
}

void FaultInjectingOsAdapter::MaybeInject(OpClass cls,
                                          const std::string& target) {
  const SimTime now = clock_->Now();
  for (std::size_t i = 0; i < plan_.os_rules.size(); ++i) {
    const OsFaultRule& rule = plan_.os_rules[i];
    if (rule.op && *rule.op != cls) continue;
    if (now < rule.from || now >= rule.until) continue;
    if (!rule.target_substr.empty() &&
        target.find(rule.target_substr) == std::string::npos) {
      continue;
    }
    const std::uint64_t salt = HashString(
        (i + 1) * 0xD1B54A32D192ED03ULL + static_cast<std::uint64_t>(now),
        target);
    if (!FaultChance(plan_.seed, salt, rule.probability)) continue;
    ++injected_[static_cast<int>(rule.kind)];
    if (recorder_ != nullptr) {
      recorder_->FaultInjected(now, static_cast<int>(cls), target,
                               FaultKindName(rule.kind));
    }
    switch (rule.kind) {
      case FaultKind::kEperm:
        throw OsOperationError(
            std::string("injected EPERM: ") + OpClassName(cls) + "(" +
                target + ")",
            ErrorSeverity::kPermanent, EPERM);
      case FaultKind::kVanish:
        throw OsOperationError(
            std::string("injected vanish: ") + OpClassName(cls) + "(" +
                target + ")",
            ErrorSeverity::kVanished, ESRCH);
      case FaultKind::kEbusy:
        throw OsOperationError(
            std::string("injected EBUSY: ") + OpClassName(cls) + "(" +
                target + ")",
            ErrorSeverity::kTransient, EBUSY);
      case FaultKind::kSlowCall:
        injected_latency_ += rule.slow_latency;
        break;  // charged, not thrown: the call still goes through
    }
  }
}

std::uint64_t FaultInjectingOsAdapter::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected_) total += count;
  return total;
}

void FaultInjectingOsAdapter::SetNice(const ThreadHandle& thread, int nice) {
  MaybeInject(OpClass::kSetNice, std::to_string(thread.os_tid) + "/" +
                                     std::to_string(thread.sim_tid.value()));
  next_->SetNice(thread, nice);
}

void FaultInjectingOsAdapter::SetGroupShares(const std::string& group,
                                             std::uint64_t shares) {
  MaybeInject(OpClass::kSetGroupShares, group);
  next_->SetGroupShares(group, shares);
}

void FaultInjectingOsAdapter::MoveToGroup(const ThreadHandle& thread,
                                          const std::string& group) {
  MaybeInject(OpClass::kMoveToGroup, group);
  next_->MoveToGroup(thread, group);
}

void FaultInjectingOsAdapter::SetRtPriority(const ThreadHandle& thread,
                                            int rt_priority) {
  MaybeInject(OpClass::kSetRtPriority,
              std::to_string(thread.os_tid) + "/" +
                  std::to_string(thread.sim_tid.value()));
  next_->SetRtPriority(thread, rt_priority);
}

void FaultInjectingOsAdapter::SetGroupQuota(const std::string& group,
                                            SimDuration quota,
                                            SimDuration period) {
  MaybeInject(OpClass::kSetGroupQuota, group);
  next_->SetGroupQuota(group, quota, period);
}

std::vector<EntityInfo> FaultInjectingDriver::Entities() {
  std::vector<EntityInfo> entities = next_->Entities();
  for (std::size_t i = 0; i < plan_.driver_rules.size(); ++i) {
    const DriverFaultRule& rule = plan_.driver_rules[i];
    if (rule.kind != DriverFaultRule::Kind::kVanishEntity) continue;
    if (now_ < rule.from || now_ >= rule.until) continue;
    std::vector<EntityInfo> kept;
    kept.reserve(entities.size());
    for (EntityInfo& entity : entities) {
      const std::uint64_t salt =
          (i + 1) * 0xD1B54A32D192ED03ULL + entity.id.value() * 31 +
          static_cast<std::uint64_t>(now_);
      if (FaultChance(plan_.seed, salt, rule.probability)) {
        ++entities_vanished_;
        continue;
      }
      kept.push_back(std::move(entity));
    }
    entities = std::move(kept);
  }
  return entities;
}

double FaultInjectingDriver::Fetch(MetricId metric, const EntityInfo& entity) {
  for (std::size_t i = 0; i < plan_.driver_rules.size(); ++i) {
    const DriverFaultRule& rule = plan_.driver_rules[i];
    if (now_ < rule.from || now_ >= rule.until) continue;
    if (rule.metric && *rule.metric != metric) continue;
    const std::uint64_t salt =
        (i + 1) * 0xBF58476D1CE4E5B9ULL +
        static_cast<std::uint64_t>(metric) * 131 + entity.id.value() * 31 +
        static_cast<std::uint64_t>(now_);
    switch (rule.kind) {
      case DriverFaultRule::Kind::kNanMetric:
        if (FaultChance(plan_.seed, salt, rule.probability)) {
          ++nan_injected_;
          return std::numeric_limits<double>::quiet_NaN();
        }
        break;
      case DriverFaultRule::Kind::kStaleMetric:
        if (FaultChance(plan_.seed, salt, rule.probability)) {
          ++stale_served_;
          const auto it = last_real_.find({metric, entity.id});
          return it != last_real_.end() ? it->second : 0.0;
        }
        break;
      case DriverFaultRule::Kind::kVanishEntity:
        break;  // handled in Entities()
    }
  }
  const double value = next_->Fetch(metric, entity);
  last_real_[{metric, entity.id}] = value;
  return value;
}

}  // namespace lachesis::core
