// Translators: schedule -> OS scheduling parameters (paper §4, §5.3).
//
// Orthogonal to policies: the same policy can be enforced through nice, or
// cgroup cpu.shares, or both. Each translator normalizes the policy's
// real-valued priorities into the mechanism's discrete range using the
// schedule's spacing hint.
#ifndef LACHESIS_CORE_TRANSLATORS_H_
#define LACHESIS_CORE_TRANSLATORS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/op_health.h"
#include "core/os_adapter.h"
#include "core/schedule.h"

namespace lachesis::core {

class Translator {
 public:
  virtual ~Translator() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  virtual void Apply(const Schedule& schedule, OsAdapter& os) = 0;

  // Bitmask (OpClassBit) of the OS mechanisms this translator needs to be
  // effective. The runner's capability degradation ladder demotes a binding
  // to a fallback translator while any required class's circuit breaker is
  // open, and promotes it back once a probe succeeds. The default (no
  // dependencies) means "never demote".
  [[nodiscard]] virtual std::uint32_t required_op_classes() const { return 0; }
};

// Single-priority schedules -> per-thread nice values. The highest priority
// is anchored at `nice_best`; linear priorities are min-max normalized over
// the nice interval, logarithmic ones use the paper's
// F(x) = n_max + (log p_max - log x)/log 1.25 mapping.
class NiceTranslator final : public Translator {
 public:
  // Linear priorities are min-max normalized into [nice_best, nice_worst]
  // (the paper's "min-max normalization ... to the required interval");
  // log-spaced ones anchor their max at nice_best via F(x).
  explicit NiceTranslator(int nice_best = -20, int nice_worst = 19)
      : nice_best_(nice_best), nice_worst_(nice_worst) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;
  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return OpClassBit(OpClass::kSetNice);
  }

 private:
  int nice_best_;
  int nice_worst_;
  std::string name_ = "nice";
};

// Grouping schedules -> cgroup cpu.shares. Entities are grouped by
// `group_of` (default: one cgroup per operator, as in the paper's
// multi-query experiment where 100 operators exceed nice's 40 levels);
// each group's priority is the max over members.
class CpuSharesTranslator final : public Translator {
 public:
  using GroupKeyFn = std::function<std::string(const EntityInfo&)>;

  explicit CpuSharesTranslator(GroupKeyFn group_of = nullptr);
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;

  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return OpClassBit(OpClass::kSetGroupShares) |
           OpClassBit(OpClass::kMoveToGroup);
  }

  // Builds the grouping schedule without applying it (exposed for tests).
  [[nodiscard]] GroupingSchedule BuildGroups(const Schedule& schedule) const;

 private:
  GroupKeyFn group_of_;
  std::string name_ = "cpu.shares";
};

// CFS-bandwidth translator (paper §8's "CPU quotas" mechanism): groups
// entities like CpuSharesTranslator but enforces priorities as HARD per-
// period CPU budgets instead of relative weights. Unlike shares, quotas are
// not work-conserving: a low-priority group stays capped even when the CPU
// is otherwise idle -- useful for strict multi-tenant isolation.
class QuotaTranslator final : public Translator {
 public:
  using GroupKeyFn = std::function<std::string(const EntityInfo&)>;

  // Normalized priority 0 maps to `min_cores`, 1 to `max_cores` worth of CPU
  // per `period`.
  explicit QuotaTranslator(double min_cores = 0.25, double max_cores = 4.0,
                           SimDuration period = Millis(100),
                           GroupKeyFn group_of = nullptr);
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;
  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return OpClassBit(OpClass::kSetGroupQuota) |
           OpClassBit(OpClass::kMoveToGroup);
  }

 private:
  double min_cores_;
  double max_cores_;
  SimDuration period_;
  CpuSharesTranslator grouping_helper_;  // reuses the grouping logic
  std::string name_ = "cpu.quota";
};

// Real-time boost translator (paper §8's "real-time threads" mechanism):
// promotes the single highest-priority operator to SCHED_FIFO (it preempts
// everything fair-class) and enforces the rest of the schedule with nice.
// Operators that lose the top spot are demoted back to the fair class --
// including operators that vanished from the schedule entirely (terminated
// or filtered out), which is why the boost set keeps the thread handles:
// reconciliation must be able to demote a thread it will never see again.
// Re-issued demotions/boosts are deduplicated by the delta layer.
class RtBoostTranslator final : public Translator {
 public:
  explicit RtBoostTranslator(int rt_priority = 10, int nice_best = -20)
      : rt_priority_(rt_priority), nice_(nice_best) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;
  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return OpClassBit(OpClass::kSetRtPriority) |
           OpClassBit(OpClass::kSetNice);
  }

 private:
  int rt_priority_;
  NiceTranslator nice_;
  // Entity path -> thread currently in the RT class (at most one entry).
  std::map<std::string, ThreadHandle> boosted_;
  std::string name_ = "rt+nice";
};

// SCHED_DEADLINE translator: gives latency-critical operators a hard CPU
// reservation (`runtime` every `period`, deadline == period) and enforces
// the rest of the schedule with nice. Critical operators are the entries
// tagged Criticality::kLatencyCritical; when none are tagged the single
// highest-priority entry is reserved (mirroring RtBoostTranslator).
//
// Unlike an RT boost, a reservation is admission-controlled: the backend
// may reject it (utilization over-commit), which surfaces as an op error
// the delta layer backs off on -- the nice enforcement below still applies,
// so a rejected reservation degrades to priority scheduling instead of
// nothing. Operators that leave the critical set (or the schedule) are
// cleared via the stored handle with the all-zero triple.
class DeadlineTranslator final : public Translator {
 public:
  explicit DeadlineTranslator(SimDuration runtime = Millis(4),
                              SimDuration period = Millis(10),
                              int nice_best = -20)
      : runtime_(runtime), period_(period), nice_(nice_best) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;
  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return OpClassBit(OpClass::kSetDeadline) | OpClassBit(OpClass::kSetNice);
  }

 private:
  SimDuration runtime_;
  SimDuration period_;
  NiceTranslator nice_;
  // Entity path -> thread currently holding a reservation.
  std::map<std::string, ThreadHandle> reserved_;
  std::string name_ = "deadline+nice";
};

// Capacity-hint decorator for heterogeneous machines: applies the wrapped
// translator unchanged, then steers the top `big_frac` fraction of entries
// (by priority; latency-critical entries always included) toward big cores
// with SetCpuAffinity(kPreferBig). Hints are best-effort -- they are NOT
// part of required_op_classes(), so a backend without affinity support
// degrades to the wrapped translator alone rather than down the ladder.
class CapacityHintTranslator final : public Translator {
 public:
  CapacityHintTranslator(std::unique_ptr<Translator> inner,
                         double big_frac = 0.25)
      : inner_(std::move(inner)),
        big_frac_(big_frac),
        name_(inner_->name() + "+affinity") {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;
  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return inner_->required_op_classes();
  }

 private:
  std::unique_ptr<Translator> inner_;
  double big_frac_;
  // Entity path -> thread currently hinted toward big cores.
  std::map<std::string, ThreadHandle> hinted_;
  std::string name_;
};

// The multi-dimensional scheme of §6.6 (Fig 18): each query is confined to
// its own cgroup with equal cpu.shares (fair inter-query split), while the
// policy's priorities are enforced WITHIN each query through nice. Possible
// because nice values only compete inside their cgroup (§2).
class QuerySharesPlusNiceTranslator final : public Translator {
 public:
  explicit QuerySharesPlusNiceTranslator(std::uint64_t query_shares = 1024,
                                         int nice_best = -20)
      : query_shares_(query_shares), nice_(nice_best) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  void Apply(const Schedule& schedule, OsAdapter& os) override;
  [[nodiscard]] std::uint32_t required_op_classes() const override {
    return OpClassBit(OpClass::kSetGroupShares) |
           OpClassBit(OpClass::kMoveToGroup) | OpClassBit(OpClass::kSetNice);
  }

 private:
  std::uint64_t query_shares_;
  NiceTranslator nice_;
  std::string name_ = "cpu.shares+nice";
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_TRANSLATORS_H_
