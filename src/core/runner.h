// Lachesis' main loop (paper §4, Algorithm 1).
//
// K policies, each with its own period, translator, driver set and optional
// entity filter, are evaluated at their periods: the metric provider is
// updated, each due policy computes a schedule, and its translator applies
// it through the OS adapter. The runner wakes at the GCD of the policy
// periods and only works when at least one policy is due (Algorithm 1 L9).
//
// Lachesis runs as a separate component: in the simulation it is a pure
// event-driven controller whose own (measured ~1% in the paper) CPU cost is
// not charged to the query machine; see DESIGN.md.
#ifndef LACHESIS_CORE_RUNNER_H_
#define LACHESIS_CORE_RUNNER_H_

#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "core/driver.h"
#include "core/metric_provider.h"
#include "core/policy.h"
#include "core/translators.h"
#include "sim/simulator.h"

namespace lachesis::core {

struct PolicyBinding {
  std::unique_ptr<SchedulingPolicy> policy;
  std::unique_ptr<Translator> translator;
  SimDuration period = Seconds(1);
  std::vector<SpeDriver*> drivers;  // non-owning
  std::function<bool(const EntityInfo&)> filter;  // optional (G3)
};

class LachesisRunner {
 public:
  LachesisRunner(sim::Simulator& sim, OsAdapter& os, std::uint64_t seed = 7);

  // Returns the binding's index, usable with SetBindingEnabled.
  std::size_t AddBinding(PolicyBinding binding);

  // Enables/disables a policy at runtime (paper §4: switching policies "by
  // enabling one policy and disabling another"). Disabled bindings are
  // skipped by the loop but keep their schedule cadence for re-enablement.
  void SetBindingEnabled(std::size_t index, bool enabled);
  [[nodiscard]] bool binding_enabled(std::size_t index) const {
    return enabled_.at(index);
  }

  // Registers required metrics (Algorithm 1 L1) and starts the loop.
  void Start(SimTime until);

  [[nodiscard]] MetricProvider& provider() { return provider_; }
  [[nodiscard]] std::uint64_t schedules_applied() const {
    return schedules_applied_;
  }

 private:
  void Tick();
  [[nodiscard]] SimDuration WakeInterval() const;

  sim::Simulator* sim_;
  OsAdapter* os_;
  MetricProvider provider_;
  Rng rng_;
  std::vector<PolicyBinding> bindings_;
  std::vector<bool> enabled_;
  std::vector<SimTime> next_run_;
  SimTime until_ = 0;
  std::uint64_t schedules_applied_ = 0;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_RUNNER_H_
