// Lachesis' main loop (paper §4, Algorithm 1).
//
// K policies, each with its own period, translator, driver set and optional
// entity filter, are evaluated at their periods: the metric provider is
// updated, each due policy computes a schedule, and its translator applies
// it through the schedule-delta layer onto the OS adapter. The runner wakes
// at the GCD of the policy periods and only works when at least one policy
// is due (Algorithm 1 L9).
//
// The runner is backend-agnostic: it talks only to a ControlExecutor
// (clock + deferred calls), an OsAdapter, and SpeDrivers. The identical
// loop therefore drives the discrete-event simulator (SimControlExecutor)
// and a live Linux host (osctl::NativeControlExecutor + LinuxOsAdapter),
// and queries can attach/detach while it runs (paper §6.5): AddQuery /
// RemoveQuery incrementally re-derive the GCD wake interval and the
// provider's required-metric registrations.
#ifndef LACHESIS_CORE_RUNNER_H_
#define LACHESIS_CORE_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "core/driver.h"
#include "core/executor.h"
#include "core/metric_provider.h"
#include "core/policy.h"
#include "core/schedule_delta.h"
#include "core/translators.h"
#include "obs/explain.h"
#include "obs/recorder.h"
#include "obs/self_metrics.h"

namespace lachesis::core {

struct PolicyBinding {
  std::unique_ptr<SchedulingPolicy> policy;
  std::unique_ptr<Translator> translator;
  // Capability degradation ladder: when a mechanism the active translator
  // requires is persistently failing (its circuit breaker is open), the
  // runner demotes the binding to the first fallback whose mechanisms are
  // healthy (e.g. rt+nice -> cpu.shares -> nice), and promotes it back
  // automatically once a half-open probe succeeds. Ordered best-first.
  std::vector<std::unique_ptr<Translator>> fallback_translators;
  SimDuration period = Seconds(1);
  std::vector<SpeDriver*> drivers;  // non-owning
  std::function<bool(const EntityInfo&)> filter;  // optional (G3)
};

// Per-wakeup summary handed to the optional tick observer (daemon logging,
// cadence tests).
struct RunnerTickInfo {
  SimTime now = 0;
  int policies_run = 0;   // bindings that were due and executed
  DeltaStats delta;       // delta-layer counters for this tick
  int open_breakers = 0;  // op classes whose circuit breaker is not closed
  int degraded_bindings = 0;  // bindings running below their primary
                              // translator (capability ladder)
};

class LachesisRunner {
 public:
  LachesisRunner(ControlExecutor& executor, OsAdapter& os,
                 std::uint64_t seed = 7);

  // Attaches a query binding (policy + translator + drivers). Works both
  // before Start and while the loop runs: a runtime attach registers the
  // policy's required metrics and re-derives the wake interval, scheduling
  // an earlier wakeup when the GCD shrank (paper §6.5, queries arriving
  // dynamically). Returns the binding's index, usable with
  // SetBindingEnabled / RemoveQuery.
  std::size_t AddQuery(PolicyBinding binding);
  // Historical name for AddQuery; kept because a "binding" and an attached
  // query are the same object to the runner.
  std::size_t AddBinding(PolicyBinding binding) {
    return AddQuery(std::move(binding));
  }

  // Detaches a binding: it stops running, and metrics no remaining
  // attached binding requires are unregistered from the provider. The
  // index stays valid (tombstoned) so other indices are unaffected.
  void RemoveQuery(std::size_t index);
  [[nodiscard]] bool query_attached(std::size_t index) const {
    return bindings_.at(index).attached;
  }

  // Enables/disables a policy at runtime (paper §4: switching policies "by
  // enabling one policy and disabling another"). Disabled bindings are
  // skipped by the loop but keep their schedule cadence for re-enablement.
  void SetBindingEnabled(std::size_t index, bool enabled);
  [[nodiscard]] bool binding_enabled(std::size_t index) const {
    return bindings_.at(index).enabled;
  }

  // Registers required metrics (Algorithm 1 L1) and starts the loop.
  void Start(SimTime until);

  // Kills the loop: pending wakeups become no-ops (the stale-wakeup guard
  // supersedes them) and the runner never ticks again. This models agent
  // death in fleet chaos runs -- it is NOT a pause: a stopped runner is not
  // restartable. A machine reboot builds a fresh runner over the same
  // backend and seeds it through ReconcileWithBackend, exactly like a
  // restarted lachesisd (docs/OPERATIONS.md, "Restart semantics").
  void Stop() {
    ++tick_seq_;
    started_ = false;
  }
  [[nodiscard]] bool started() const { return started_; }

  // Called once per wakeup, after due policies ran (also on idle wakeups,
  // with policies_run == 0).
  void SetTickObserver(std::function<void(const RunnerTickInfo&)> observer) {
    observer_ = std::move(observer);
  }

  // Disables the delta layer (every translator operation is forwarded to
  // the OS adapter); for measuring the delta win.
  void SetDeltaEnabled(bool enabled) { delta_.set_enabled(enabled); }

  // Overrides the fault-tolerance parameters (backoff, circuit breaker).
  // The runner enables health tracking by default with HealthConfig
  // defaults, seeded from its own seed; pass enabled=false to opt out.
  void SetHealthConfig(const HealthConfig& config) {
    delta_.SetHealthConfig(config);
  }

  // Restart reconciliation: snapshots actual kernel state for every thread
  // visible through the attached bindings' drivers and seeds the delta
  // cache from it, so a restarted daemon whose first computed schedule
  // matches the residual kernel state applies zero operations. Returns the
  // number of cache entries seeded (0 when the backend cannot observe
  // state). Call after the drivers' first Poll, before Start.
  std::size_t ReconcileWithBackend();

  // Current rung of the binding's capability ladder: 0 = primary
  // translator, i>0 = fallback_translators[i-1].
  [[nodiscard]] std::size_t binding_level(std::size_t index) const {
    return bindings_.at(index).level;
  }

  // Decision-provenance recorder (always on by default; disable or turn on
  // verbose per-elision/per-sample recording through it). Every layer below
  // the runner -- delta adapter, health tracker -- feeds the same ring.
  [[nodiscard]] obs::Recorder& recorder() { return recorder_; }
  [[nodiscard]] const obs::Recorder& recorder() const { return recorder_; }

  // "Why is thread T scheduled the way it is at time `at`?" -- replays the
  // provenance ring for the thread's health key ("t:<sim_tid>/<os_tid>").
  // ExplainTarget takes the raw key, so group targets ("g:<name>") work too.
  [[nodiscard]] obs::Explanation ExplainThread(const ThreadHandle& thread,
                                               SimTime at) const;
  [[nodiscard]] obs::Explanation ExplainTarget(const std::string& health_key,
                                               SimTime at) const;

  // Adapts core's OpClassName to the obs function-pointer shape; pass to
  // obs::ExplainTarget / RenderChromeTrace when calling them directly.
  [[nodiscard]] static const char* OpClassNameForObs(int cls);

  // Snapshot of the full self-metrics catalog (obs/self_metrics.h): one
  // MetricValue per cataloged metric, suitable for RenderPrometheusTextfile
  // or PublishSelfMetrics into a tsdb store.
  [[nodiscard]] obs::SelfMetricsSnapshot CollectSelfMetrics() const;

  [[nodiscard]] std::uint64_t ticks_total() const { return ticks_total_; }

  [[nodiscard]] MetricProvider& provider() { return provider_; }
  [[nodiscard]] std::uint64_t schedules_applied() const {
    return schedules_applied_;
  }
  [[nodiscard]] const DeltaStats& delta_totals() const {
    return delta_.totals();
  }
  [[nodiscard]] ScheduleDeltaAdapter& delta() { return delta_; }

  // Current GCD wake interval over attached bindings (Algorithm 1 L9);
  // re-derived as queries attach/detach.
  [[nodiscard]] SimDuration WakeInterval() const;

 private:
  struct Bound {
    PolicyBinding binding;
    bool enabled = true;
    bool attached = true;
    SimTime next_run = 0;
    // Active ladder rung (0 = primary translator).
    std::size_t level = 0;
  };

  void Tick();
  void ScheduleNext(SimTime at);
  void RegisterMetrics(const PolicyBinding& binding);
  void UnregisterMetrics(const PolicyBinding& binding);
  // Selects the ladder rung for this tick (stores it in bound.level) and
  // returns the translator to apply with. `index` labels the binding in
  // recorded degradation events.
  Translator* PickTranslator(std::size_t index, Bound& bound, SimTime now);

  ControlExecutor* executor_;
  ScheduleDeltaAdapter delta_;
  MetricProvider provider_;
  Rng rng_;
  std::vector<Bound> bindings_;
  std::map<MetricId, int> metric_refs_;
  bool started_ = false;
  SimTime until_ = 0;
  SimTime next_wake_ = 0;
  // Stale-wakeup guard: rescheduling (e.g. after a runtime AddQuery shrank
  // the GCD) bumps the sequence so superseded callbacks become no-ops.
  std::uint64_t tick_seq_ = 0;
  std::uint64_t schedules_applied_ = 0;
  std::uint64_t ticks_total_ = 0;
  std::uint64_t idle_ticks_total_ = 0;
  std::uint64_t policies_run_total_ = 0;
  std::size_t last_reconcile_seeded_ = 0;
  obs::Recorder recorder_;
  std::function<void(const RunnerTickInfo&)> observer_;
};

}  // namespace lachesis::core

#endif  // LACHESIS_CORE_RUNNER_H_
