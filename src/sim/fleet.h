// Fleet-scale parallel simulation: per-shard event queues stepped by a
// worker pool with deterministic epoch barriers.
//
// A FleetSimulator owns S independent Simulators ("shards"); each simulated
// machine (or machine group) is built against one shard and therefore has
// its own event queue, clock, and CFS state. Shards are stepped in fixed
// epochs: within an epoch every shard runs its own events with no shared
// state, so a pool of W worker threads can step them in parallel; at the
// epoch boundary all workers rendezvous (the barrier), cross-shard messages
// are merged, and barrier actions (metric scrape merges, coordinator ticks,
// query attach/detach) run single-threaded on the calling thread.
//
// Determinism: a shard's event stream depends only on its own initial state
// and the cross-shard messages it receives, never on which worker stepped
// it or in what order shards ran. Cross-shard messages are merged at the
// barrier in a fixed total order -- (deliver_at, sending shard, per-sender
// sequence) -- so the destination queue's contents are byte-identical for
// any worker count, including W=1 (the sequential reference the golden
// tests compare against). The paper's fleet scenario (§6.5) couples
// machines only through the 1 s metric scrape, so an epoch equal to the
// scrape period preserves bit-identical schedules; deployments with
// cross-machine dataflow need an epoch no longer than the network delay,
// which FleetSimulator enforces (a message that should have arrived
// mid-epoch throws instead of being silently reordered).
//
// Failure domain: the fleet can model machines and links misbehaving while
// staying deterministic. A DARK shard (machine crash) is frozen -- it is
// skipped by the epoch stepper, its clock stays at the crash barrier, and
// every cross message to or from it is dropped (counted). Its event queue
// is deliberately NOT cleared: dropping pending timers would corrupt the
// machine's CFS state forever. When the shard is un-darked it catches up in
// the next epoch, replaying its backlog at the original simulated
// timestamps (machine-local work is stall-then-replay; the network and any
// stopped control plane genuinely fail -- see docs/FAULT_TOLERANCE.md).
// Cross messages a catching-up shard emits may already be late for their
// destinations; those are dropped and counted instead of throwing, while a
// late message from a healthy sender is still the hard configuration error
// it always was. A DOWN link (partition) drops every message merged across
// that (sender, dest) pair; a SLOW shard inflates its epoch step in wall
// clock only (the barrier observes a straggler, simulated time is
// untouched). All toggles are barrier-lane-only and every drop is counted,
// so stats() can assert conservation: posted == delivered + dropped +
// still-in-flight, for any fault schedule and any worker count.
#ifndef LACHESIS_SIM_FLEET_H_
#define LACHESIS_SIM_FLEET_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace lachesis::sim {

class FleetSimulator {
 public:
  struct Stats {
    std::uint64_t epochs = 0;            // barriers crossed
    std::uint64_t cross_posted = 0;      // PostCross calls
    std::uint64_t cross_delivered = 0;   // messages merged into shards
    std::uint64_t barrier_actions = 0;   // CallAtBarrier callbacks run
    // Failure-domain accounting. Every posted message is eventually
    // delivered, dropped (exactly one of the three buckets), or still
    // sitting in an outbox; stats() asserts that conservation law.
    std::uint64_t cross_dropped_partition = 0;  // link down at merge time
    std::uint64_t cross_dropped_dark = 0;   // sender or dest dark at merge
    std::uint64_t cross_dropped_late = 0;   // late from a catching-up sender
    std::uint64_t cross_in_flight = 0;      // still in outboxes (computed)
    std::uint64_t dark_epochs = 0;   // shard-epochs skipped while dark
    std::uint64_t slow_steps = 0;    // shard-epochs stepped with a penalty
  };

  // `shards` independent event queues stepped by `workers` threads per
  // epoch of length `epoch`. workers is clamped to [1, shards]; 1 steps
  // shards inline on the calling thread (no pool, the sequential
  // reference). Throws std::invalid_argument for non-positive sizes.
  FleetSimulator(int shards, int workers, SimDuration epoch);
  ~FleetSimulator();
  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] int worker_count() const { return workers_; }
  [[nodiscard]] SimDuration epoch() const { return epoch_; }
  // Fleet time: the last epoch boundary every shard has reached.
  [[nodiscard]] SimTime now() const { return now_; }
  // Snapshot of the counters. cross_posted is summed from per-shard
  // single-writer counters, so call this from the barrier lane (or between
  // RunUntil calls), not from a shard event mid-epoch. Throws
  // std::logic_error if message conservation is violated (posted !=
  // delivered + dropped + in-flight) -- the mailbox-hygiene invariant: a
  // shard failure must never leave a partially merged mailbox.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] Simulator& shard(std::size_t index) {
    return *shards_.at(index)->sim;
  }

  // Posts `fn` for execution on shard `to` at simulated time `deliver_at`.
  // Safe to call from the worker thread currently stepping shard `from`
  // (the only thread touching that shard mid-epoch) and from barrier
  // actions. The delivery must not land inside an epoch the destination
  // already executed: the barrier merge throws std::logic_error when
  // deliver_at lies before the destination clock, i.e. when the
  // source-to-destination latency is shorter than the epoch.
  void PostCross(std::size_t from, std::size_t to, SimTime deliver_at,
                 std::function<void()> fn);

  // Runs `fn` single-threaded at the first barrier whose time is >= `time`
  // (actions due at or before now() run before the next epoch starts).
  // Actions fire in (time, registration) order and may themselves call
  // CallAtBarrier and PostCross. This is the fleet's control lane: scrape
  // merges, coordinator ticks, and attach/detach reconfiguration run here,
  // while all shards are quiescent.
  //
  // Unlike PostCross, this must NOT be called from a shard event mid-epoch:
  // the action map is shared across shards, so registration is only legal
  // from the barrier lane (or before/between RunUntil calls). A shard event
  // that wants coordinator attention posts itself a cross message instead.
  // Mid-epoch calls throw std::logic_error rather than silently racing.
  void CallAtBarrier(SimTime time, std::function<void()> fn);

  // --- Failure-domain toggles -------------------------------------------
  // All of these are barrier-lane-only, exactly like CallAtBarrier: they
  // mutate state shared with the worker handshake, so calling them from a
  // shard event mid-epoch throws std::logic_error. Register a barrier
  // action (or drive them between RunUntil calls) instead.

  // Darkens (crashes) or revives shard `index`. While dark the shard is
  // not stepped -- its clock freezes at the current barrier -- and every
  // cross message to or from it is dropped. Reviving does not clear its
  // event queue: the next epoch steps it across the whole gap, replaying
  // the backlog at the original simulated timestamps (catch-up replay).
  void SetShardDark(std::size_t index, bool dark);
  [[nodiscard]] bool ShardDark(std::size_t index) const;

  // Partitions (or heals) the directed link from -> to: messages merged
  // across a down link are dropped and counted, never delivered.
  void SetLinkDown(std::size_t from, std::size_t to, bool down);
  [[nodiscard]] bool LinkDown(std::size_t from, std::size_t to) const;

  // Inflates shard `index`'s epoch step by `penalty_micros` of wall-clock
  // sleep (0 clears it). Simulated time is untouched -- this makes the
  // barrier observe a straggler without perturbing determinism.
  void SetShardSlow(std::size_t index, std::uint32_t penalty_micros);
  [[nodiscard]] std::uint32_t ShardSlow(std::size_t index) const;

  // Steps every shard to `end` epoch by epoch. Epoch boundaries are
  // aligned to multiples of epoch() from time zero, so periodic barrier
  // work (a 1 s scrape cadence with a 1 s epoch) always observes shards at
  // exactly its own timestamps. Re-entrant across calls: RunUntil(warmup)
  // then RunUntil(end) continues seamlessly. Exceptions thrown by shard
  // events are rethrown here (lowest shard index first) after the pool
  // has quiesced.
  void RunUntil(SimTime end);

  // Sum of dispatched() over all shards (diagnostic).
  [[nodiscard]] std::uint64_t TotalDispatched() const;

 private:
  struct CrossMessage {
    SimTime at = 0;
    std::uint32_t from = 0;
    std::uint64_t seq = 0;  // per-sending-shard monotonic
    std::function<void()> fn;
  };

  struct Shard {
    std::unique_ptr<Simulator> sim;
    // Outboxes, one per destination shard; written only by the worker
    // stepping this shard (or the main thread at a barrier), drained only
    // at barriers. No locking needed: the epoch handshake orders accesses.
    std::vector<std::vector<CrossMessage>> outbox;
    std::uint64_t next_seq = 0;
    // PostCross count for this shard. Single-writer like next_seq: only the
    // worker stepping this shard (or the barrier lane) touches it, so the
    // fleet-wide total is summed in stats() instead of bumping a shared
    // counter from concurrent workers.
    std::uint64_t cross_posted = 0;
    std::exception_ptr error;
    // Failure-domain state. Written only from the barrier lane (dark,
    // slow_micros) or by the thread driving StepShardsTo before dispatch
    // (catching_up), read by workers after the handshake's acquire edge.
    bool dark = false;
    // True for the epoch in which a revived shard replays its backlog:
    // its clock is behind the target by more than one epoch, so cross
    // messages it emits may be late for destinations that kept running.
    bool catching_up = false;
    std::uint32_t slow_micros = 0;
    std::uint64_t slow_steps = 0;  // single-writer, summed in stats()
  };

  void StepShardsTo(SimTime target);
  void WorkerLoop();
  void StepOneShard(Shard& shard, SimTime target);
  void DrainMailboxes();
  void RunBarrierActionsUpTo(SimTime time);
  void RethrowShardErrors();
  void RequireBarrierLane(const char* what) const;

  SimDuration epoch_;
  SimTime now_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::multimap<SimTime, std::function<void()>> barrier_actions_;
  Stats stats_;
  // Directed link state, link_down_[from * shards + to]. Barrier-lane
  // writes only; read during the (single-threaded) mailbox merge.
  std::vector<char> link_down_;

  // Worker pool (empty when workers_ == 1). Dispatch is generation-based:
  // the main thread publishes (generation, target) under the mutex and
  // workers claim shards through an atomic-free shared index also guarded
  // by the mutex handshake at epoch start/end. The mutex/condvar pair
  // provides the happens-before edges that make shard state written during
  // an epoch visible to the barrier (and vice versa) -- this is what keeps
  // the stepper clean under ThreadSanitizer.
  int workers_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  SimTime target_ = 0;
  std::size_t next_shard_ = 0;
  std::size_t busy_workers_ = 0;
  bool stop_ = false;
  // True while StepShardsTo has shards in flight; guards CallAtBarrier
  // against mid-epoch registration. Written only by the thread driving
  // RunUntil, before workers start and after they quiesce (the epoch
  // handshake orders the accesses), so a plain bool suffices.
  bool stepping_ = false;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_FLEET_H_
