// Fleet-scale parallel simulation: per-shard event queues stepped by a
// worker pool with deterministic epoch barriers.
//
// A FleetSimulator owns S independent Simulators ("shards"); each simulated
// machine (or machine group) is built against one shard and therefore has
// its own event queue, clock, and CFS state. Shards are stepped in fixed
// epochs: within an epoch every shard runs its own events with no shared
// state, so a pool of W worker threads can step them in parallel; at the
// epoch boundary all workers rendezvous (the barrier), cross-shard messages
// are merged, and barrier actions (metric scrape merges, coordinator ticks,
// query attach/detach) run single-threaded on the calling thread.
//
// Determinism: a shard's event stream depends only on its own initial state
// and the cross-shard messages it receives, never on which worker stepped
// it or in what order shards ran. Cross-shard messages are merged at the
// barrier in a fixed total order -- (deliver_at, sending shard, per-sender
// sequence) -- so the destination queue's contents are byte-identical for
// any worker count, including W=1 (the sequential reference the golden
// tests compare against). The paper's fleet scenario (§6.5) couples
// machines only through the 1 s metric scrape, so an epoch equal to the
// scrape period preserves bit-identical schedules; deployments with
// cross-machine dataflow need an epoch no longer than the network delay,
// which FleetSimulator enforces (a message that should have arrived
// mid-epoch throws instead of being silently reordered).
#ifndef LACHESIS_SIM_FLEET_H_
#define LACHESIS_SIM_FLEET_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace lachesis::sim {

class FleetSimulator {
 public:
  struct Stats {
    std::uint64_t epochs = 0;            // barriers crossed
    std::uint64_t cross_posted = 0;      // PostCross calls
    std::uint64_t cross_delivered = 0;   // messages merged into shards
    std::uint64_t barrier_actions = 0;   // CallAtBarrier callbacks run
  };

  // `shards` independent event queues stepped by `workers` threads per
  // epoch of length `epoch`. workers is clamped to [1, shards]; 1 steps
  // shards inline on the calling thread (no pool, the sequential
  // reference). Throws std::invalid_argument for non-positive sizes.
  FleetSimulator(int shards, int workers, SimDuration epoch);
  ~FleetSimulator();
  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] int worker_count() const { return workers_; }
  [[nodiscard]] SimDuration epoch() const { return epoch_; }
  // Fleet time: the last epoch boundary every shard has reached.
  [[nodiscard]] SimTime now() const { return now_; }
  // Snapshot of the counters. cross_posted is summed from per-shard
  // single-writer counters, so call this from the barrier lane (or between
  // RunUntil calls), not from a shard event mid-epoch.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] Simulator& shard(std::size_t index) {
    return *shards_.at(index)->sim;
  }

  // Posts `fn` for execution on shard `to` at simulated time `deliver_at`.
  // Safe to call from the worker thread currently stepping shard `from`
  // (the only thread touching that shard mid-epoch) and from barrier
  // actions. The delivery must not land inside an epoch the destination
  // already executed: the barrier merge throws std::logic_error when
  // deliver_at lies before the destination clock, i.e. when the
  // source-to-destination latency is shorter than the epoch.
  void PostCross(std::size_t from, std::size_t to, SimTime deliver_at,
                 std::function<void()> fn);

  // Runs `fn` single-threaded at the first barrier whose time is >= `time`
  // (actions due at or before now() run before the next epoch starts).
  // Actions fire in (time, registration) order and may themselves call
  // CallAtBarrier and PostCross. This is the fleet's control lane: scrape
  // merges, coordinator ticks, and attach/detach reconfiguration run here,
  // while all shards are quiescent.
  //
  // Unlike PostCross, this must NOT be called from a shard event mid-epoch:
  // the action map is shared across shards, so registration is only legal
  // from the barrier lane (or before/between RunUntil calls). A shard event
  // that wants coordinator attention posts itself a cross message instead.
  // Mid-epoch calls throw std::logic_error rather than silently racing.
  void CallAtBarrier(SimTime time, std::function<void()> fn);

  // Steps every shard to `end` epoch by epoch. Epoch boundaries are
  // aligned to multiples of epoch() from time zero, so periodic barrier
  // work (a 1 s scrape cadence with a 1 s epoch) always observes shards at
  // exactly its own timestamps. Re-entrant across calls: RunUntil(warmup)
  // then RunUntil(end) continues seamlessly. Exceptions thrown by shard
  // events are rethrown here (lowest shard index first) after the pool
  // has quiesced.
  void RunUntil(SimTime end);

  // Sum of dispatched() over all shards (diagnostic).
  [[nodiscard]] std::uint64_t TotalDispatched() const;

 private:
  struct CrossMessage {
    SimTime at = 0;
    std::uint32_t from = 0;
    std::uint64_t seq = 0;  // per-sending-shard monotonic
    std::function<void()> fn;
  };

  struct Shard {
    std::unique_ptr<Simulator> sim;
    // Outboxes, one per destination shard; written only by the worker
    // stepping this shard (or the main thread at a barrier), drained only
    // at barriers. No locking needed: the epoch handshake orders accesses.
    std::vector<std::vector<CrossMessage>> outbox;
    std::uint64_t next_seq = 0;
    // PostCross count for this shard. Single-writer like next_seq: only the
    // worker stepping this shard (or the barrier lane) touches it, so the
    // fleet-wide total is summed in stats() instead of bumping a shared
    // counter from concurrent workers.
    std::uint64_t cross_posted = 0;
    std::exception_ptr error;
  };

  void StepShardsTo(SimTime target);
  void WorkerLoop();
  void DrainMailboxes();
  void RunBarrierActionsUpTo(SimTime time);
  void RethrowShardErrors();

  SimDuration epoch_;
  SimTime now_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::multimap<SimTime, std::function<void()>> barrier_actions_;
  Stats stats_;

  // Worker pool (empty when workers_ == 1). Dispatch is generation-based:
  // the main thread publishes (generation, target) under the mutex and
  // workers claim shards through an atomic-free shared index also guarded
  // by the mutex handshake at epoch start/end. The mutex/condvar pair
  // provides the happens-before edges that make shard state written during
  // an epoch visible to the barrier (and vice versa) -- this is what keeps
  // the stepper clean under ThreadSanitizer.
  int workers_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  SimTime target_ = 0;
  std::size_t next_shard_ = 0;
  std::size_t busy_workers_ = 0;
  bool stop_ = false;
  // True while StepShardsTo has shards in flight; guards CallAtBarrier
  // against mid-epoch registration. Written only by the thread driving
  // RunUntil, before workers start and after they quiesce (the epoch
  // handshake orders the accesses), so a plain bool suffices.
  bool stepping_ = false;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_FLEET_H_
