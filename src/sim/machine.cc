#include "sim/machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lachesis::sim {

void WaitChannel::NotifyOne() { machine_->NotifyChannel(*this, 1); }
void WaitChannel::NotifyAll() {
  machine_->NotifyChannel(*this, std::numeric_limits<std::size_t>::max());
}

Machine::Machine(Simulator& sim, int num_cores, CfsParams params,
                 std::string name)
    : sim_(&sim), params_(params), name_(std::move(name)) {
  if (num_cores <= 0) {
    throw std::invalid_argument("Machine: core count must be positive, got " +
                                std::to_string(num_cores));
  }
  params_.Validate();
  cores_.resize(static_cast<std::size_t>(num_cores));
  if (!params_.core_capacities.empty()) {
    ValidateCoreCapacities(params_.core_capacities, num_cores);
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      const auto cap = static_cast<std::uint32_t>(
          std::lround(params_.core_capacities[c] *
                      static_cast<double>(kFullCapacity)));
      cores_[c].capacity = std::clamp<std::uint32_t>(cap, 1, kFullCapacity);
      if (cores_[c].capacity < kFullCapacity) hetero_ = true;
    }
  }
  core_order_.resize(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    core_order_[c] = static_cast<int>(c);
  }
  // Capacity-blind machines keep the index order: placement must not see
  // the asymmetry (that is the whole point of the control arm).
  if (params_.capacity_aware) {
    std::stable_sort(core_order_.begin(), core_order_.end(),
                     [this](int lhs, int rhs) {
                       return cores_[static_cast<std::size_t>(lhs)].capacity >
                              cores_[static_cast<std::size_t>(rhs)].capacity;
                     });
  }
  CgroupNode& root = cgroups_.Get(cgroups_.Alloc());
  root.name = "/";
  root.is_root = true;
  root.ent.is_group = true;
  root.ent.id = 0;
}

Machine::~Machine() = default;

// --- cgroups ----------------------------------------------------------------

CgroupId Machine::CreateCgroup(std::string name, CgroupId parent,
                               std::uint64_t shares) {
  assert(parent.value() < cgroups_.size());
#ifndef NDEBUG
  std::size_t depth = 1;
  for (std::uint64_t g = parent.value(); g != 0; g = Group(g).ent.parent) {
    ++depth;
  }
  assert(depth <= kMaxCgroupDepth && "cgroup hierarchy too deep");
#endif
  const PoolHandle handle = cgroups_.Alloc();
  CgroupNode& node = cgroups_.Get(handle);
  node.name = std::move(name);
  node.ent.is_group = true;
  node.ent.id = handle.index;  // dense: slot index == creation order
  node.ent.weight = ClampShares(shares);
  node.ent.parent = parent.value();
  // Start at the parent's current pace so a fresh group neither starves
  // others nor is starved.
  node.ent.vruntime = Group(parent.value()).min_vruntime;
  node.min_vruntime = node.ent.vruntime;
  // Cached thread paths stay valid: creating a leaf group never changes an
  // existing entity's ancestor chain (groups are never reparented).
  return CgroupId(handle.index);
}

void Machine::SetShares(CgroupId group, std::uint64_t shares) {
  assert(group.value() != 0 && group.value() < cgroups_.size());
  CgroupNode& g = Group(group.value());
  const std::uint64_t new_weight = ClampShares(shares);
  if (g.ent.queued) {
    CgroupNode& parent = Group(g.ent.parent);
    assert(parent.total_queued_weight >= g.ent.weight);
    parent.total_queued_weight -= g.ent.weight;
    parent.total_queued_weight += new_weight;
  }
  g.ent.weight = new_weight;
}

std::uint64_t Machine::GetShares(CgroupId group) const {
  return Group(group.value()).ent.weight;
}

const std::string& Machine::CgroupName(CgroupId group) const {
  return Group(group.value()).name;
}

std::uint64_t Machine::QueuedWeight(CgroupId group) const {
  assert(group.value() < cgroups_.size());
  return Group(group.value()).total_queued_weight;
}

SimDuration Machine::TimesliceFor(ThreadId tid) const {
  return SliceFor(Thread(tid.value()));
}

void Machine::SetQuota(CgroupId group, SimDuration quota, SimDuration period) {
  assert(group.value() != 0 && group.value() < cgroups_.size());
  CgroupNode& g = Group(group.value());
  ++g.quota_version;  // cancel any previous refill chain
  g.quota = quota;
  g.quota_period = period;
  g.quota_used = 0;
  if (g.throttled) {
    // Unthrottle immediately under the new configuration.
    g.throttled = false;
    if (!g.rq.empty() && !g.ent.queued && !Group(g.ent.parent).throttled) {
      EnqueueEntity(g.ent, /*sleeper_clamp=*/true);
    }
  }
  if (quota > 0) {
    assert(period > 0);
    sim_->ScheduleAfter(period, this, kQuotaRefill, group.value(),
                        g.quota_version);
  }
}

void Machine::ThrottleGroup(std::uint64_t group_idx) {
  CgroupNode& g = Group(group_idx);
  if (g.throttled) return;
  g.throttled = true;
  if (g.ent.queued) DequeueEntity(g.ent);
  // Deschedule CFS threads currently running under this group at the next
  // scheduling point.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (cores_[c].running < 0) continue;
    const ThreadNode& runner =
        Thread(static_cast<std::uint64_t>(cores_[c].running));
    if (runner.rt_priority > 0) continue;  // RT exempt from CFS bandwidth
    for (std::uint32_t i = 0; i < runner.path_depth; ++i) {
      if (runner.path[i] == group_idx) {
        TruncateCore(static_cast<int>(c));
        break;
      }
    }
  }
}

void Machine::OnQuotaRefill(std::uint64_t group_idx, std::uint64_t version) {
  CgroupNode& g = Group(group_idx);
  if (version != g.quota_version || g.quota <= 0) return;  // stale / disabled
  g.quota_used = 0;
  if (g.throttled) {
    g.throttled = false;
    if (!g.rq.empty() && !g.ent.queued && !Group(g.ent.parent).throttled) {
      EnqueueEntity(g.ent, /*sleeper_clamp=*/true);
      for (const int c : core_order_) {
        if (cores_[static_cast<std::size_t>(c)].running < 0) PickNext(c);
      }
    }
  }
  sim_->ScheduleAfter(g.quota_period, this, kQuotaRefill, group_idx, version);
}

bool Machine::PathThrottled(const ThreadNode& t) const {
  if (t.rt_priority > 0 || t.is_deadline) return false;
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    if (Group(t.path[i]).throttled) return true;
  }
  return false;
}

// --- threads ----------------------------------------------------------------

void Machine::BuildPath(ThreadNode& t) {
  std::uint32_t depth = 0;
  for (std::uint64_t g = t.ent.parent; g != 0; g = Group(g).ent.parent) {
    assert(depth < kMaxCgroupDepth);
    t.path[depth++] = static_cast<std::uint32_t>(g);
  }
  t.path_depth = depth;
}

ThreadId Machine::CreateThread(std::string name,
                               std::unique_ptr<ThreadBody> body, CgroupId group,
                               int nice) {
  assert(group.value() < cgroups_.size());
  const PoolHandle handle = threads_.Alloc();
  ThreadNode& node = threads_.Get(handle);
  node.name = std::move(name);
  node.body = std::move(body);
  node.nice = std::clamp(nice, kMinNice, kMaxNice);
  node.ent.is_group = false;
  node.ent.id = handle.index;  // dense: slot index == creation order
  node.ent.weight = NiceToWeight(node.nice);
  node.ent.parent = group.value();
  node.ent.vruntime = Group(group.value()).min_vruntime;
  BuildPath(node);
  const std::uint64_t idx = handle.index;
  WakeThread(idx, params_.wakeup_check_cost);
  return ThreadId(idx);
}

void Machine::SetNice(ThreadId tid, int nice) {
  ThreadNode& t = Thread(tid.value());
  nice = std::clamp(nice, kMinNice, kMaxNice);
  if (nice == t.nice) return;
  t.nice = nice;
  const std::uint64_t new_weight = NiceToWeight(nice);
  if (t.ent.queued) {
    CgroupNode& parent = Group(t.ent.parent);
    assert(parent.total_queued_weight >= t.ent.weight);
    parent.total_queued_weight -= t.ent.weight;
    parent.total_queued_weight += new_weight;
  }
  t.ent.weight = new_weight;
}

int Machine::GetNice(ThreadId tid) const { return Thread(tid.value()).nice; }

void Machine::SetRtPriority(ThreadId tid, int rt_priority) {
  rt_priority = std::clamp(rt_priority, 0, 99);
  ThreadNode& t = Thread(tid.value());
  if (rt_priority == t.rt_priority) return;
  if (t.is_deadline) {
    // The deadline class dominates; the new rt priority takes effect when
    // the reservation is cleared.
    t.rt_priority = rt_priority;
    return;
  }
  const int old_priority = t.rt_priority;
  // Remove from whichever queue currently holds the thread.
  if (t.rt_queued) {
    rt_queues_.Erase(old_priority, tid.value());
    t.rt_queued = false;
  } else if (t.ent.queued) {
    DequeueEntity(t.ent);
  }
  t.rt_priority = rt_priority;
  if (t.state == ThreadState::kRunnable) {
    RequeueRunnable(t, /*preempted=*/false);
    TryDispatchWake(tid.value());
  } else if (t.state == ThreadState::kRunning) {
    // Class change takes effect at the next scheduling point.
    TruncateCore(t.core);
  }
}

int Machine::GetRtPriority(ThreadId tid) const {
  return Thread(tid.value()).rt_priority;
}

bool Machine::SetDeadline(ThreadId tid, DeadlineParams dl) {
  ThreadNode& t = Thread(tid.value());
  if (dl.is_zero()) {
    if (!t.is_deadline) return true;
    dl_admitted_util_ = std::max(0.0, dl_admitted_util_ - t.dl.utilization());
    ++t.dl_version;  // cancels the replenishment chain
    if (t.dl_queued) {
      dl_queue_.Erase(tid.value());
      t.dl_queued = false;
    }
    t.is_deadline = false;
    t.dl_throttled = false;
    t.dl = {};
    t.dl_budget = 0;
    t.dl_deadline_at = 0;
    if (t.state == ThreadState::kRunnable) {
      RequeueRunnable(t, /*preempted=*/false);
      TryDispatchWake(tid.value());
    } else if (t.state == ThreadState::kRunning) {
      // Class change takes effect at the next scheduling point.
      TruncateCore(t.core);
    }
    return true;
  }
  dl.Validate();
  const double prior =
      dl_admitted_util_ - (t.is_deadline ? t.dl.utilization() : 0.0);
  if (prior + dl.utilization() > DlUtilizationBound() + 1e-9) {
    return false;  // admission control: would over-commit the machine
  }
  // Leave whichever queue the previous class holds the thread in.
  if (t.dl_queued) {
    dl_queue_.Erase(tid.value());
    t.dl_queued = false;
  } else if (t.rt_queued) {
    rt_queues_.Erase(t.rt_priority, tid.value());
    t.rt_queued = false;
  } else if (t.ent.queued) {
    DequeueEntity(t.ent);
  }
  dl_admitted_util_ = prior + dl.utilization();
  t.is_deadline = true;
  t.dl = dl;
  t.dl_throttled = false;
  t.dl_budget = dl.runtime;
  t.dl_deadline_at = now() + dl.deadline;
  ++t.dl_version;
  sim_->ScheduleAfter(dl.period, this, kDlReplenish, tid.value(),
                      t.dl_version);
  if (t.state == ThreadState::kRunnable) {
    RequeueRunnable(t, /*preempted=*/false);
    TryDispatchWake(tid.value());
  } else if (t.state == ThreadState::kRunning) {
    TruncateCore(t.core);
  }
  return true;
}

DeadlineParams Machine::GetDeadline(ThreadId tid) const {
  return Thread(tid.value()).dl;
}

bool Machine::IsDeadline(ThreadId tid) const {
  return Thread(tid.value()).is_deadline;
}

void Machine::OnDlReplenish(std::uint64_t thread_idx, std::uint64_t version) {
  ThreadNode& t = Thread(thread_idx);
  if (!t.is_deadline || version != t.dl_version) return;  // stale
  if (t.state == ThreadState::kExited) return;  // let the chain die
  const bool was_parked =
      t.dl_throttled && t.state == ThreadState::kRunnable;
  t.dl_throttled = false;
  t.dl_budget = t.dl.runtime;
  t.dl_deadline_at = now() + t.dl.deadline;
  sim_->ScheduleAfter(t.dl.period, this, kDlReplenish, thread_idx, version);
  if (t.dl_queued) {
    // Reposition under the new absolute deadline.
    dl_queue_.Erase(thread_idx);
    dl_queue_.Push(thread_idx, t.dl_deadline_at);
  } else if (was_parked) {
    RequeueRunnable(t, /*preempted=*/false);
    TryDispatchWake(thread_idx);
  } else if (t.state == ThreadState::kRunning) {
    // Fresh budget: re-evaluate the slice at the next scheduling point.
    TruncateCore(t.core);
  }
}

void Machine::MoveToCgroup(ThreadId tid, CgroupId group) {
  ThreadNode& t = Thread(tid.value());
  const std::uint64_t new_parent = group.value();
  assert(new_parent < cgroups_.size());
  if (t.ent.parent == new_parent) return;
  const bool was_queued = t.ent.queued;
  if (was_queued) DequeueEntity(t.ent);
  if (t.state == ThreadState::kRunning) {
    for (std::uint32_t i = 0; i < t.path_depth; ++i) {
      --Group(t.path[i]).running_children;
    }
  }
  // Re-normalize vruntime into the destination group's frame (migration).
  t.ent.vruntime += Group(new_parent).min_vruntime - Group(t.ent.parent).min_vruntime;
  t.ent.parent = new_parent;
  BuildPath(t);
  if (t.state == ThreadState::kRunning) {
    for (std::uint32_t i = 0; i < t.path_depth; ++i) {
      ++Group(t.path[i]).running_children;
    }
  }
  if (was_queued) EnqueueEntity(t.ent, /*sleeper_clamp=*/false);
}

CgroupId Machine::GetCgroup(ThreadId tid) const {
  return CgroupId(Thread(tid.value()).ent.parent);
}

ThreadState Machine::GetState(ThreadId tid) const {
  return Thread(tid.value()).state;
}

const ThreadStats& Machine::GetStats(ThreadId tid) const {
  return Thread(tid.value()).stats;
}

const std::string& Machine::ThreadName(ThreadId tid) const {
  return Thread(tid.value()).name;
}

int Machine::IdleCoreCount() const {
  int idle = 0;
  for (const Core& core : cores_) {
    if (core.running < 0) ++idle;
  }
  return idle;
}

int Machine::UnthrottledRunnableCount() const {
  int runnable = 0;
  threads_.ForEach([&](std::uint32_t, const ThreadNode& t) {
    if (t.state == ThreadState::kRunnable && !PathThrottled(t) &&
        !(t.is_deadline && t.dl_throttled)) {
      ++runnable;
    }
  });
  return runnable;
}

double Machine::TotalCapacity() const {
  double total = 0.0;
  for (const Core& core : cores_) {
    total += static_cast<double>(core.capacity) /
             static_cast<double>(kFullCapacity);
  }
  return total;
}

SimDuration Machine::RemainingWorkNow(const ThreadNode& t) const {
  assert(t.core >= 0);
  const std::uint32_t cap = cores_[static_cast<std::size_t>(t.core)].capacity;
  const SimDuration consumed = WorkFor(now() - t.run_start, cap);
  const SimDuration left = t.pending_overhead + t.remaining_compute - consumed;
  return std::max<SimDuration>(left, 0);
}

int Machine::MisfitRunnerCount() const {
  if (!hetero_ || !params_.capacity_aware) return 0;
  int misfits = 0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (cores_[c].running < 0) continue;
    const ThreadNode& t = Thread(static_cast<std::uint64_t>(cores_[c].running));
    if (t.rt_priority > 0 || t.is_deadline) continue;
    const std::uint32_t cap = cores_[c].capacity;
    if (WallFor(RemainingWorkNow(t), cap) <= params_.sched_latency) continue;
    for (std::size_t d = 0; d < cores_.size(); ++d) {
      if (cores_[d].running < 0 && cores_[d].capacity > cap) {
        ++misfits;
        break;
      }
    }
  }
  return misfits;
}

SimDuration Machine::total_busy_time() const {
  SimDuration total = 0;
  for (const Core& core : cores_) {
    total += core.busy;
    if (core.running >= 0) {
      total += now() - Thread(static_cast<std::uint64_t>(core.running)).run_start;
    }
  }
  return total;
}

// --- runqueue maintenance -----------------------------------------------------

void Machine::EnqueueEntity(SchedEntity& ent, bool sleeper_clamp) {
  assert(!ent.queued);
  CgroupNode& group = Group(ent.parent);
  if (sleeper_clamp) {
    ent.vruntime = std::max(
        ent.vruntime,
        group.min_vruntime - static_cast<double>(params_.sleeper_bonus));
  }
  const bool was_empty = group.rq.empty();
  group.rq.Insert(ent);
  group.total_queued_weight += ent.weight;
  ent.queued = true;
  // A throttled group stays off its parent's runqueue until the refill.
  if (was_empty && !group.is_root && !group.ent.queued && !group.throttled) {
    EnqueueEntity(group.ent, group.running_children == 0);
  }
}

void Machine::DequeueEntity(SchedEntity& ent) {
  assert(ent.queued);
  CgroupNode& group = Group(ent.parent);
  group.rq.Erase(ent);
  assert(group.total_queued_weight >= ent.weight);
  group.total_queued_weight -= ent.weight;
  ent.queued = false;
  if (group.rq.empty() && !group.is_root && group.ent.queued) {
    DequeueEntity(group.ent);
  }
}

void Machine::ReinsertQueued(SchedEntity& ent, double new_vruntime) {
  Group(ent.parent).rq.Update(ent, new_vruntime);
}

void Machine::UpdateMinVruntime(CgroupNode& group, double candidate) {
  double m = candidate;
  if (!group.rq.empty()) m = std::min(m, group.rq.MinVruntime());
  group.min_vruntime = std::max(group.min_vruntime, m);
}

void Machine::ChargeRunning(ThreadNode& t, SimDuration delta) {
  if (delta <= 0) return;
  assert(t.core >= 0);
  // Work retired scales with the core's capacity; vruntime, quota and CPU
  // statistics stay in wall-clock time (weighted fairness is a wall-time
  // property, as in the kernel).
  const SimDuration work =
      WorkFor(delta, cores_[static_cast<std::size_t>(t.core)].capacity);
  const SimDuration overhead = std::min(work, t.pending_overhead);
  t.pending_overhead -= overhead;
  t.remaining_compute -= work - overhead;
  // Events never fire past compute_end and WorkFor/WallFor round-trip
  // exactly, so work is never over-charged.
  assert(t.remaining_compute + t.pending_overhead >= 0);
  t.stats.cpu_time += delta;
  cores_[static_cast<std::size_t>(t.core)].busy += delta;
  if (t.is_deadline) {
    // The CBS budget is wall-clock service time.
    t.dl_budget -= delta;
  }

  // CFS bandwidth: charge the quota of every limited ancestor (RT and
  // deadline threads are exempt, as in the kernel).
  if (t.rt_priority == 0 && !t.is_deadline) {
    for (std::uint32_t i = 0; i < t.path_depth; ++i) {
      CgroupNode& group = Group(t.path[i]);
      if (group.quota <= 0) continue;
      group.quota_used += delta;
      if (group.quota_used >= group.quota) ThrottleGroup(t.path[i]);
    }
  }

  const auto d = static_cast<double>(delta);
  t.ent.vruntime +=
      d * static_cast<double>(kNice0Weight) / static_cast<double>(t.ent.weight);
  UpdateMinVruntime(Group(t.ent.parent), t.ent.vruntime);
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    CgroupNode& group = Group(t.path[i]);
    const double new_vr = group.ent.vruntime +
                          d * static_cast<double>(kNice0Weight) /
                              static_cast<double>(group.ent.weight);
    if (group.ent.queued) {
      ReinsertQueued(group.ent, new_vr);
    } else {
      group.ent.vruntime = new_vr;
    }
    UpdateMinVruntime(Group(group.ent.parent), group.ent.vruntime);
  }
}

SimDuration Machine::SliceFor(const ThreadNode& t) const {
  const CgroupNode& group = Group(t.ent.parent);
  const std::uint64_t total = group.total_queued_weight + t.ent.weight;
  const double share = static_cast<double>(t.ent.weight) / static_cast<double>(total);
  const auto slice = static_cast<SimDuration>(
      static_cast<double>(params_.sched_latency) * share);
  return std::clamp(slice, params_.min_granularity, params_.sched_latency);
}

void Machine::ScheduleCoreEvent(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  assert(core.running >= 0);
  const ThreadNode& t = Thread(static_cast<std::uint64_t>(core.running));
  const SimTime compute_end =
      now() + WallFor(t.pending_overhead + t.remaining_compute, core.capacity);
  const SimTime when = std::min(core.slice_end, compute_end);
  sim_->ScheduleAt(std::max(when, now()), this, kCoreEvent,
                   static_cast<std::uint64_t>(core_idx), core.version);
}

// --- dispatch ----------------------------------------------------------------

void Machine::Dispatch(int core_idx, std::uint64_t thread_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  ThreadNode& t = Thread(thread_idx);
  assert(core.running < 0);
  assert(t.state == ThreadState::kRunnable);
  t.state = ThreadState::kRunning;
  t.core = core_idx;
  if (t.last_core >= 0 && t.last_core != core_idx) ++t.stats.nr_migrations;
  t.last_core = core_idx;
  t.run_start = now();
  if (core.last_thread != static_cast<std::int64_t>(thread_idx)) {
    t.pending_overhead = std::max(t.pending_overhead, params_.context_switch_cost);
    ++t.stats.nr_switches;
  }
  if (t.enqueued_at > 0) {
    t.stats.wait_time += now() - t.enqueued_at;
    t.enqueued_at = 0;
  }
  core.running = static_cast<std::int64_t>(thread_idx);
  core.last_thread = static_cast<std::int64_t>(thread_idx);
  ++core.version;
  // Deadline threads run on their CBS budget; RT threads have no timeslice
  // (SCHED_FIFO): they run until they block, exit, or a higher-priority RT
  // thread preempts them.
  if (t.is_deadline) {
    core.slice_end = now() + std::max<SimDuration>(t.dl_budget, 0);
  } else if (t.rt_priority > 0) {
    core.slice_end = std::numeric_limits<SimTime>::max() / 4;
  } else {
    core.slice_end = now() + SliceFor(t);
  }
  Trace(SchedTransition::kDispatch, thread_idx);
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    ++Group(t.path[i]).running_children;
  }
  ScheduleCoreEvent(core_idx);
}

void Machine::PickNext(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  assert(core.running < 0);
  // Deadline class above everything: earliest absolute deadline (EDF).
  if (!dl_queue_.empty()) {
    // Capacity-aware EDF (the kernel 5.x capacity-aware SCHED_DEADLINE
    // rule adapted to a shared queue): the CBS budget is wall-clock, so a
    // reservation whose bandwidth exceeds this core's capacity share would
    // throttle every period without retiring the promised work. A small
    // core therefore serves only reservations that fit and leaves the
    // rest for bigger cores whenever one is bound to re-pick soon.
    if (hetero_ && params_.capacity_aware) {
      const DlRunQueue::Entry* fit =
          dl_queue_.EarliestWhere([&](const DlRunQueue::Entry& e) {
            return DlFits(Thread(e.tid), core.capacity);
          });
      if (fit != nullptr) {
        const std::uint64_t thread_idx = fit->tid;
        dl_queue_.Erase(thread_idx);
        Thread(thread_idx).dl_queued = false;
        Dispatch(core_idx, thread_idx);
        return;
      }
      const int bigger = IdleBiggerCore(core_idx);
      if (bigger >= 0) {
        ++core.version;  // stay idle; cancel any stale events
        PickNext(bigger);
        return;
      }
      if (!BiggerCoreReleasesSoon(core_idx)) {
        // No bigger core will free up within a bounded slice: serve the
        // earliest reservation slowly rather than starve it.
        const std::uint64_t thread_idx = dl_queue_.PopEarliest();
        Thread(thread_idx).dl_queued = false;
        Dispatch(core_idx, thread_idx);
        return;
      }
      // Misfit reservations stay queued for a bigger core; fall through
      // to the RT/CFS classes so this small core still does useful work.
    } else {
      const std::uint64_t thread_idx = dl_queue_.PopEarliest();
      Thread(thread_idx).dl_queued = false;
      Dispatch(core_idx, thread_idx);
      return;
    }
  }
  // RT class next: highest priority, FIFO within a level.
  const int rt_priority = rt_queues_.HighestPriority();
  if (rt_priority > 0) {
    const std::uint64_t thread_idx = rt_queues_.PopFront(rt_priority);
    Thread(thread_idx).rt_queued = false;
    Dispatch(core_idx, thread_idx);
    return;
  }
  // Capacity-aware dispatch filter (the kernel's fits_capacity rule adapted
  // to a shared runqueue): a small core skips CFS threads whose pending
  // burst would exceed a latency period of wall time on it, as long as a
  // bigger core is guaranteed to pick them up soon -- one is idle right now
  // (we hand over below) or one is running a slice/budget-bounded thread.
  // Without that guarantee the small core takes the work anyway: slow
  // progress beats starvation.
  const bool filter_misfits =
      hetero_ && params_.capacity_aware &&
      core.capacity <
          cores_[static_cast<std::size_t>(core_order_.front())].capacity;
  CgroupNode* current = &Group(0);
  while (true) {
    if (current->rq.empty()) {
      if (current->is_root && hetero_ && params_.capacity_aware &&
          TryMisfitSteal(core_idx)) {
        return;
      }
      ++core.version;  // stay idle; cancel any stale events
      return;
    }
    const CfsRunQueue::Entry* pick = nullptr;
    if (filter_misfits) {
      pick = current->rq.MinWhere([&](const CfsRunQueue::Entry& e) {
        if (e.ent->is_group) return true;  // contents unknown; descend
        const ThreadNode& t = Thread(e.ent->id);
        return WallFor(t.pending_overhead + t.remaining_compute,
                       core.capacity) <= params_.sched_latency;
      });
      if (pick == nullptr) {
        // Only misfit work here. Hand it to an idle bigger core, or stay
        // idle while a bigger core is due to re-pick within a bounded
        // slice; otherwise run it slowly rather than starve it.
        const int bigger = IdleBiggerCore(core_idx);
        if (bigger >= 0) {
          ++core.version;  // stay idle; cancel any stale events
          PickNext(bigger);
          return;
        }
        if (BiggerCoreReleasesSoon(core_idx)) {
          ++core.version;
          return;
        }
        pick = &current->rq.Min();
      }
    } else {
      pick = &current->rq.Min();
    }
    SchedEntity& ent = *pick->ent;
    if (ent.is_group) {
      current = &Group(ent.id);
      continue;
    }
    DequeueEntity(ent);
    Dispatch(core_idx, ent.id);
    return;
  }
}

int Machine::IdleBiggerCore(int core_idx) const {
  const std::uint32_t cap = cores_[static_cast<std::size_t>(core_idx)].capacity;
  // core_order_ is capacity-descending whenever this is called (the filter
  // only runs in capacity-aware mode), so stop at the first core that is
  // not strictly bigger.
  for (const int c : core_order_) {
    const Core& other = cores_[static_cast<std::size_t>(c)];
    if (other.capacity <= cap) break;
    if (other.running < 0) return c;
  }
  return -1;
}

bool Machine::BiggerCoreReleasesSoon(int core_idx) const {
  const std::uint32_t cap = cores_[static_cast<std::size_t>(core_idx)].capacity;
  for (const int c : core_order_) {
    const Core& other = cores_[static_cast<std::size_t>(c)];
    if (other.capacity <= cap) break;
    if (other.running < 0) continue;
    const ThreadNode& runner =
        Thread(static_cast<std::uint64_t>(other.running));
    if (runner.rt_priority == 0 || runner.is_deadline) return true;
  }
  return false;
}

bool Machine::DlFits(const ThreadNode& t, std::uint32_t capacity) const {
  // runtime / period <= capacity / kFullCapacity, in exact integer math.
  return t.dl.runtime * static_cast<SimDuration>(kFullCapacity) <=
         t.dl.period * static_cast<SimDuration>(capacity);
}

bool Machine::TryMisfitSteal(int core_idx) {
  const Core& self = cores_[static_cast<std::size_t>(core_idx)];
  // Victim: the busy core with the smallest capacity strictly below ours
  // whose CFS runner still has more than a latency period of work ahead of
  // it (the misfit rule). Strictness means symmetric machines never steal
  // and little cores cannot steal back (no ping-pong).
  int victim_core = -1;
  std::uint32_t victim_cap = self.capacity;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const Core& other = cores_[c];
    if (static_cast<int>(c) == core_idx || other.running < 0) continue;
    if (other.capacity >= victim_cap) continue;
    // Never migrate the thread whose body is currently executing: its call
    // stack is live on its core.
    if (other.running == current_thread_) continue;
    const ThreadNode& runner =
        Thread(static_cast<std::uint64_t>(other.running));
    if (runner.rt_priority > 0 || runner.is_deadline) continue;
    if (PathThrottled(runner)) continue;
    if (WallFor(RemainingWorkNow(runner), other.capacity) <=
        params_.sched_latency) {
      continue;
    }
    victim_core = static_cast<int>(c);
    victim_cap = other.capacity;
  }
  if (victim_core < 0) return false;
  const auto victim_idx = static_cast<std::uint64_t>(
      cores_[static_cast<std::size_t>(victim_core)].running);
  ThreadNode& victim = Thread(victim_idx);
  ChargeRunning(victim, now() - victim.run_start);
  victim.state = ThreadState::kRunnable;
  ++victim.stats.nr_preemptions;
  Trace(SchedTransition::kPreempt, victim_idx);
  StopRunning(victim_core);
  if (PathThrottled(victim)) {
    // Charging just exhausted an ancestor's quota: the thread must wait for
    // the refill instead of migrating.
    RequeueRunnable(victim, /*preempted=*/true);
    PickNext(victim_core);
    return false;
  }
  Dispatch(core_idx, victim_idx);
  // Refill the smaller core (which may in turn steal from an even smaller
  // one; capacities strictly decrease along the chain, so this terminates).
  PickNext(victim_core);
  return true;
}

bool Machine::TryMisfitUpgrade(int core_idx, std::uint64_t thread_idx) {
  if (!hetero_ || !params_.capacity_aware) return false;
  ThreadNode& t = Thread(thread_idx);
  if (t.rt_priority > 0 || t.is_deadline) return false;
  const std::uint32_t cap = cores_[static_cast<std::size_t>(core_idx)].capacity;
  if (cap == kFullCapacity) return false;
  if (WallFor(t.pending_overhead + t.remaining_compute, cap) <=
      params_.sched_latency) {
    return false;
  }
  int target = -1;
  for (const int c : core_order_) {
    if (cores_[static_cast<std::size_t>(c)].capacity <= cap) break;
    if (cores_[static_cast<std::size_t>(c)].running < 0) {
      target = c;
      break;
    }
  }
  if (target < 0) return false;
  t.state = ThreadState::kRunnable;
  ++t.stats.nr_preemptions;
  Trace(SchedTransition::kPreempt, thread_idx);
  StopRunning(core_idx);
  Dispatch(target, thread_idx);
  PickNext(core_idx);
  return true;
}

void Machine::StopRunning(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  assert(core.running >= 0);
  ThreadNode& t = Thread(static_cast<std::uint64_t>(core.running));
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    --Group(t.path[i]).running_children;
  }
  t.core = -1;
  core.running = -1;
  ++core.version;
}

void Machine::AdvanceBody(int core_idx, std::uint64_t thread_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  ThreadNode& t = Thread(thread_idx);
  // Bodies must eventually compute, block, or exit; this guards against a
  // buggy body spinning at one instant of simulated time.
  for (int guard = 0; guard < 1'000'000; ++guard) {
    current_thread_ = static_cast<std::int64_t>(thread_idx);
    const Action action = t.body->Next(*this);
    current_thread_ = -1;
    switch (action.kind) {
      case Action::Kind::kCompute: {
        if (action.duration <= 0) continue;  // free action, ask again
        t.remaining_compute = action.duration;
        if (t.is_deadline && t.dl_budget <= 0) {
          // CBS budget exhausted: park off-CPU until the replenishment.
          t.dl_throttled = true;
          ++t.stats.nr_dl_throttles;
          t.state = ThreadState::kRunnable;
          ++t.stats.nr_preemptions;
          Trace(SchedTransition::kPreempt, thread_idx);
          StopRunning(core_idx);
          PickNext(core_idx);
          return;
        }
        if (TryMisfitUpgrade(core_idx, thread_idx)) return;
        // The burst the body just revealed is misfit for this small core
        // and no bigger core is idle (the upgrade above would have taken
        // it). Requeue instead of serving it slowly whenever a bigger core
        // is bound to re-pick within a bounded slice: the dispatch filter
        // in PickNext routes it there.
                if (hetero_ && params_.capacity_aware && t.rt_priority == 0 &&
            !t.is_deadline &&
            core.capacity <
                cores_[static_cast<std::size_t>(core_order_.front())]
                    .capacity &&
            WallFor(t.pending_overhead + t.remaining_compute,
                    core.capacity) > params_.sched_latency &&
            BiggerCoreReleasesSoon(core_idx)) {
          t.state = ThreadState::kRunnable;
          ++t.stats.nr_preemptions;
          Trace(SchedTransition::kPreempt, thread_idx);
          StopRunning(core_idx);
          RequeueRunnable(t, /*preempted=*/true);
          PickNext(core_idx);
          return;
        }
        if (now() >= core.slice_end) {
          if (!Group(0).rq.empty() || !rt_queues_.empty() ||
              !dl_queue_.empty() || PathThrottled(t)) {
            // Slice exhausted and there is competition: involuntary switch.
            t.state = ThreadState::kRunnable;
            ++t.stats.nr_preemptions;
            Trace(SchedTransition::kPreempt, thread_idx);
            StopRunning(core_idx);
            RequeueRunnable(t, /*preempted=*/true);
            PickNext(core_idx);
            return;
          }
          core.slice_end =
              now() + (t.is_deadline ? t.dl_budget : SliceFor(t));
        }
        ScheduleCoreEvent(core_idx);
        return;
      }
      case Action::Kind::kWait: {
        assert(action.channel != nullptr);
        action.channel->waiters_.push_back(ThreadId(thread_idx));
        t.waiting = action.channel;
        t.state = ThreadState::kBlocked;
        ++t.version;
        Trace(SchedTransition::kBlock, thread_idx);
        StopRunning(core_idx);
        PickNext(core_idx);
        return;
      }
      case Action::Kind::kSleep: {
        t.state = ThreadState::kSleeping;
        ++t.version;
        Trace(SchedTransition::kSleep, thread_idx);
        sim_->ScheduleAfter(std::max<SimDuration>(action.duration, 0), this,
                            kTimerWake, thread_idx, t.version);
        StopRunning(core_idx);
        PickNext(core_idx);
        return;
      }
      case Action::Kind::kExit: {
        t.state = ThreadState::kExited;
        ++t.version;
        Trace(SchedTransition::kExit, thread_idx);
        StopRunning(core_idx);
        PickNext(core_idx);
        return;
      }
    }
  }
  assert(false && "ThreadBody spun without consuming simulated time");
}

// --- wakeups -----------------------------------------------------------------

void Machine::RequeueRunnable(ThreadNode& t, bool preempted) {
  t.enqueued_at = now();
  if (t.is_deadline) {
    // A budget-exhausted reservation stays parked off-queue until its
    // replenishment event; everything else queues EDF.
    if (t.dl_throttled) return;
    assert(!t.dl_queued);
    dl_queue_.Push(t.ent.id, t.dl_deadline_at);
    t.dl_queued = true;
    return;
  }
  if (t.rt_priority > 0) {
    assert(!t.rt_queued);
    // A preempted RT thread resumes ahead of its FIFO peers (SCHED_FIFO).
    if (preempted) {
      rt_queues_.PushFront(t.rt_priority, t.ent.id);
    } else {
      rt_queues_.PushBack(t.rt_priority, t.ent.id);
    }
    t.rt_queued = true;
    return;
  }
  EnqueueEntity(t.ent, /*sleeper_clamp=*/!preempted);
}

void Machine::TruncateCore(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  if (core.running < 0 || core.slice_end <= now()) return;
  core.slice_end = now();
  ++core.version;
  ScheduleCoreEvent(core_idx);
}

std::int64_t Machine::PeekRt() const {
  const int priority = rt_queues_.HighestPriority();
  if (priority < 0) return -1;
  return static_cast<std::int64_t>(rt_queues_.Front(priority));
}

void Machine::WakeThread(std::uint64_t thread_idx, SimDuration startup_cost) {
  ThreadNode& t = Thread(thread_idx);
  assert(t.state == ThreadState::kNew || t.state == ThreadState::kBlocked ||
         t.state == ThreadState::kSleeping);
  ++t.stats.nr_wakeups;
  t.state = ThreadState::kRunnable;
  Trace(SchedTransition::kWake, thread_idx);
  t.remaining_compute += startup_cost;
  RequeueRunnable(t, /*preempted=*/false);
  TryDispatchWake(thread_idx);
}

double Machine::PreemptMargin(const ThreadNode& wakee, const ThreadNode& runner) {
  // Root-first (group, vruntime, weight) paths for both threads; the
  // runner's entities are projected forward by its uncharged runtime. The
  // cached ancestor chains bound the depth, so both paths live in inline
  // arrays -- no allocation on the wakeup path.
  struct Level {
    std::uint64_t group;
    double vruntime;
    std::uint64_t weight;
  };
  using Path = std::array<Level, kMaxCgroupDepth + 1>;
  // Fills `out` root-first and returns the level count: ancestor groups
  // from the top-level group down, then the thread itself.
  auto build = [&](const ThreadNode& t, double extra_runtime, Path& out) {
    const std::uint32_t depth = t.path_depth;
    for (std::uint32_t i = 0; i < depth; ++i) {
      const CgroupNode& group = Group(t.path[depth - 1 - i]);
      out[i] = {group.ent.parent,
                group.ent.vruntime +
                    extra_runtime * static_cast<double>(kNice0Weight) /
                        static_cast<double>(group.ent.weight),
                group.ent.weight};
    }
    out[depth] = {t.ent.parent,
                  t.ent.vruntime + extra_runtime *
                                       static_cast<double>(kNice0Weight) /
                                       static_cast<double>(t.ent.weight),
                  t.ent.weight};
    return static_cast<std::size_t>(depth) + 1;
  };
  const auto delta = static_cast<double>(now() - runner.run_start);
  Path wakee_path, runner_path;
  const std::size_t wakee_levels = build(wakee, 0.0, wakee_path);
  const std::size_t runner_levels = build(runner, delta, runner_path);
  // Find the deepest level where both paths share the containing group.
  std::size_t level = 0;
  const std::size_t max_level = std::min(wakee_levels, runner_levels);
  while (level + 1 < max_level &&
         wakee_path[level + 1].group == runner_path[level + 1].group) {
    ++level;
  }
  if (wakee_path[level].group != runner_path[level].group) return 0.0;
  const double gran = static_cast<double>(params_.wakeup_granularity) *
                      static_cast<double>(kNice0Weight) /
                      static_cast<double>(wakee_path[level].weight);
  return runner_path[level].vruntime - wakee_path[level].vruntime - gran;
}

bool Machine::PreemptForDeadline(std::uint64_t thread_idx, bool fit_only) {
  // Preempt the weakest runner -- prefer any CFS thread, else the
  // lowest-priority RT thread, else the deadline runner with the latest
  // absolute deadline strictly after the wakee's (EDF semantics).
  const ThreadNode& wakee = Thread(thread_idx);
  int cfs_core = -1;
  int rt_core = -1;
  int rt_priority = 100;
  int dl_core = -1;
  SimTime dl_latest = wakee.dl_deadline_at;  // must be strictly later
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (cores_[c].running < 0) continue;
    if (fit_only && !DlFits(wakee, cores_[c].capacity)) continue;
    const ThreadNode& runner =
        Thread(static_cast<std::uint64_t>(cores_[c].running));
    if (runner.is_deadline) {
      if (runner.dl_deadline_at > dl_latest) {
        dl_latest = runner.dl_deadline_at;
        dl_core = static_cast<int>(c);
      }
    } else if (runner.rt_priority > 0) {
      if (runner.rt_priority < rt_priority) {
        rt_priority = runner.rt_priority;
        rt_core = static_cast<int>(c);
      }
    } else if (cfs_core < 0) {
      cfs_core = static_cast<int>(c);
    }
  }
  const int target = cfs_core >= 0 ? cfs_core : (rt_core >= 0 ? rt_core : dl_core);
  if (target >= 0) {
    TruncateCore(target);
    return true;
  }
  return false;
}

void Machine::TryDispatchWake(std::uint64_t thread_idx) {
  if (Thread(thread_idx).is_deadline && Thread(thread_idx).dl_throttled) {
    return;  // parked until replenishment; nothing to dispatch
  }
  // Capacity-aware SCHED_DEADLINE placement: a wall-clock CBS budget on a
  // core below the reservation's bandwidth throttles every period, so a
  // deadline wakee on a heterogeneous machine first tries idle cores whose
  // capacity fits, then preempts the weakest runner on a fitting core, and
  // only then falls back to any idle core or any runner at all.
  if (Thread(thread_idx).is_deadline && hetero_ && params_.capacity_aware) {
    const ThreadNode& wakee = Thread(thread_idx);
    int fallback_idle = -1;
    for (const int c : core_order_) {
      if (cores_[static_cast<std::size_t>(c)].running >= 0) continue;
      if (DlFits(wakee, cores_[static_cast<std::size_t>(c)].capacity)) {
        PickNext(c);
        return;
      }
      if (fallback_idle < 0) fallback_idle = c;
    }
    if (PreemptForDeadline(thread_idx, /*fit_only=*/true)) return;
    if (fallback_idle >= 0) {
      PickNext(fallback_idle);
      return;
    }
    PreemptForDeadline(thread_idx, /*fit_only=*/false);
    return;
  }
  // Idle cores are tried biggest-first (core_order_ is the identity on
  // symmetric machines), so misfit-prone work starts on big cores.
  for (const int c : core_order_) {
    if (cores_[static_cast<std::size_t>(c)].running < 0) {
      PickNext(c);
      return;
    }
  }
  if (Thread(thread_idx).is_deadline) {
    PreemptForDeadline(thread_idx, /*fit_only=*/false);
    return;
  }
  // RT wakee: preempt the weakest runner -- prefer any CFS thread, else the
  // lowest-priority RT thread below the wakee (strict priority semantics).
  if (Thread(thread_idx).rt_priority > 0) {
    const int wakee_priority = Thread(thread_idx).rt_priority;
    int best_core = -1;
    int best_priority = wakee_priority;  // must be strictly below wakee
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      const ThreadNode& runner =
          Thread(static_cast<std::uint64_t>(cores_[c].running));
      if (runner.is_deadline) continue;  // RT never preempts deadline
      if (runner.rt_priority < best_priority) {
        best_priority = runner.rt_priority;
        best_core = static_cast<int>(c);
      }
    }
    if (best_core >= 0) TruncateCore(best_core);
    return;
  }
  // No idle core: wakeup preemption. As in the kernel, the wakee contests
  // only its target CPU rather than the globally most-preemptable core:
  // for synchronous wakeups (a producer pushing to its consumer) that is
  // the WAKER's CPU (wake affinity, WF_SYNC) -- the source of the classic
  // pipeline ping-pong -- and otherwise the core the wakee last ran on.
  // A positive margin truncates that core's slice (need_resched); the
  // switch happens at the next scheduling point, picking the fairest
  // queued entity.
  const ThreadNode& wakee = Thread(thread_idx);
  int target = wakee.last_core >= 0
                   ? wakee.last_core
                   : static_cast<int>(thread_idx % cores_.size());
  if (current_thread_ >= 0 &&
      Thread(static_cast<std::uint64_t>(current_thread_)).core >= 0) {
    target = Thread(static_cast<std::uint64_t>(current_thread_)).core;
  }
  Core& core = cores_[static_cast<std::size_t>(target)];
  const ThreadNode& runner = Thread(static_cast<std::uint64_t>(core.running));
  if (runner.is_deadline) return;      // CFS never preempts deadline
  if (runner.rt_priority > 0) return;  // CFS never preempts RT
  if (PreemptMargin(wakee, runner) > 0 && core.slice_end > now()) {
    core.slice_end = now();
    ++core.version;
    ScheduleCoreEvent(target);
  }
}

void Machine::NotifyChannel(WaitChannel& channel, std::size_t max_wakeups) {
  while (max_wakeups > 0 && !channel.waiters_.empty()) {
    const ThreadId tid = channel.waiters_.front();
    channel.waiters_.pop_front();
    ThreadNode& t = Thread(tid.value());
    assert(t.state == ThreadState::kBlocked && t.waiting == &channel);
    t.waiting = nullptr;
    WakeThread(tid.value(), params_.wakeup_check_cost);
    --max_wakeups;
  }
}

// --- event handling ------------------------------------------------------------

void Machine::HandleEvent(std::int32_t code, std::uint64_t a, std::uint64_t b) {
  switch (code) {
    case kCoreEvent:
      OnCoreEvent(a, b);
      break;
    case kTimerWake:
      OnTimerWake(a, b);
      break;
    case kQuotaRefill:
      OnQuotaRefill(a, b);
      break;
    case kDlReplenish:
      OnDlReplenish(a, b);
      break;
    default:
      assert(false && "unknown event code");
  }
}

void Machine::OnCoreEvent(std::uint64_t core_idx, std::uint64_t version) {
  Core& core = cores_[core_idx];
  if (version != core.version || core.running < 0) return;  // stale
  const auto thread_idx = static_cast<std::uint64_t>(core.running);
  ThreadNode& t = Thread(thread_idx);
  ChargeRunning(t, now() - t.run_start);
  t.run_start = now();

  if (t.is_deadline && t.dl_budget <= 0 &&
      (t.pending_overhead > 0 || t.remaining_compute > 0)) {
    // CBS budget exhausted mid-action: park off-CPU until replenishment.
    t.dl_throttled = true;
    ++t.stats.nr_dl_throttles;
    t.state = ThreadState::kRunnable;
    ++t.stats.nr_preemptions;
    Trace(SchedTransition::kPreempt, thread_idx);
    StopRunning(static_cast<int>(core_idx));
    PickNext(static_cast<int>(core_idx));
    return;
  }
  if (t.pending_overhead <= 0 && t.remaining_compute <= 0) {
    AdvanceBody(static_cast<int>(core_idx), thread_idx);
    return;
  }
  if (now() >= core.slice_end) {
    const bool contested = !Group(0).rq.empty() || !rt_queues_.empty() ||
                           !dl_queue_.empty() || PathThrottled(t);
    if (!contested) {
      if (TryMisfitUpgrade(static_cast<int>(core_idx), thread_idx)) return;
      // Nothing else runnable: extend the slice.
      core.slice_end =
          now() + (t.is_deadline ? t.dl_budget : SliceFor(t));
      ++core.version;
      ScheduleCoreEvent(static_cast<int>(core_idx));
      return;
    }
    t.state = ThreadState::kRunnable;
    ++t.stats.nr_preemptions;
    Trace(SchedTransition::kPreempt, thread_idx);
    StopRunning(static_cast<int>(core_idx));
    RequeueRunnable(t, /*preempted=*/true);
    PickNext(static_cast<int>(core_idx));
    return;
  }
  // Spurious wakeup of the core event (e.g. slice extended); rearm.
  ++core.version;
  ScheduleCoreEvent(static_cast<int>(core_idx));
}

void Machine::OnTimerWake(std::uint64_t thread_idx, std::uint64_t version) {
  ThreadNode& t = Thread(thread_idx);
  if (version != t.version || t.state != ThreadState::kSleeping) return;
  WakeThread(thread_idx, params_.wakeup_check_cost);
}

}  // namespace lachesis::sim
