#include "sim/machine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace lachesis::sim {

void WaitChannel::NotifyOne() { machine_->NotifyChannel(*this, 1); }
void WaitChannel::NotifyAll() {
  machine_->NotifyChannel(*this, std::numeric_limits<std::size_t>::max());
}

Machine::Machine(Simulator& sim, int num_cores, CfsParams params,
                 std::string name)
    : sim_(&sim), params_(params), name_(std::move(name)) {
  if (num_cores <= 0) {
    throw std::invalid_argument("Machine: core count must be positive, got " +
                                std::to_string(num_cores));
  }
  params_.Validate();
  cores_.resize(static_cast<std::size_t>(num_cores));
  CgroupNode& root = cgroups_.Get(cgroups_.Alloc());
  root.name = "/";
  root.is_root = true;
  root.ent.is_group = true;
  root.ent.id = 0;
}

Machine::~Machine() = default;

// --- cgroups ----------------------------------------------------------------

CgroupId Machine::CreateCgroup(std::string name, CgroupId parent,
                               std::uint64_t shares) {
  assert(parent.value() < cgroups_.size());
#ifndef NDEBUG
  std::size_t depth = 1;
  for (std::uint64_t g = parent.value(); g != 0; g = Group(g).ent.parent) {
    ++depth;
  }
  assert(depth <= kMaxCgroupDepth && "cgroup hierarchy too deep");
#endif
  const PoolHandle handle = cgroups_.Alloc();
  CgroupNode& node = cgroups_.Get(handle);
  node.name = std::move(name);
  node.ent.is_group = true;
  node.ent.id = handle.index;  // dense: slot index == creation order
  node.ent.weight = ClampShares(shares);
  node.ent.parent = parent.value();
  // Start at the parent's current pace so a fresh group neither starves
  // others nor is starved.
  node.ent.vruntime = Group(parent.value()).min_vruntime;
  node.min_vruntime = node.ent.vruntime;
  // Cached thread paths stay valid: creating a leaf group never changes an
  // existing entity's ancestor chain (groups are never reparented).
  return CgroupId(handle.index);
}

void Machine::SetShares(CgroupId group, std::uint64_t shares) {
  assert(group.value() != 0 && group.value() < cgroups_.size());
  CgroupNode& g = Group(group.value());
  const std::uint64_t new_weight = ClampShares(shares);
  if (g.ent.queued) {
    CgroupNode& parent = Group(g.ent.parent);
    assert(parent.total_queued_weight >= g.ent.weight);
    parent.total_queued_weight -= g.ent.weight;
    parent.total_queued_weight += new_weight;
  }
  g.ent.weight = new_weight;
}

std::uint64_t Machine::GetShares(CgroupId group) const {
  return Group(group.value()).ent.weight;
}

const std::string& Machine::CgroupName(CgroupId group) const {
  return Group(group.value()).name;
}

std::uint64_t Machine::QueuedWeight(CgroupId group) const {
  assert(group.value() < cgroups_.size());
  return Group(group.value()).total_queued_weight;
}

SimDuration Machine::TimesliceFor(ThreadId tid) const {
  return SliceFor(Thread(tid.value()));
}

void Machine::SetQuota(CgroupId group, SimDuration quota, SimDuration period) {
  assert(group.value() != 0 && group.value() < cgroups_.size());
  CgroupNode& g = Group(group.value());
  ++g.quota_version;  // cancel any previous refill chain
  g.quota = quota;
  g.quota_period = period;
  g.quota_used = 0;
  if (g.throttled) {
    // Unthrottle immediately under the new configuration.
    g.throttled = false;
    if (!g.rq.empty() && !g.ent.queued && !Group(g.ent.parent).throttled) {
      EnqueueEntity(g.ent, /*sleeper_clamp=*/true);
    }
  }
  if (quota > 0) {
    assert(period > 0);
    sim_->ScheduleAfter(period, this, kQuotaRefill, group.value(),
                        g.quota_version);
  }
}

void Machine::ThrottleGroup(std::uint64_t group_idx) {
  CgroupNode& g = Group(group_idx);
  if (g.throttled) return;
  g.throttled = true;
  if (g.ent.queued) DequeueEntity(g.ent);
  // Deschedule CFS threads currently running under this group at the next
  // scheduling point.
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (cores_[c].running < 0) continue;
    const ThreadNode& runner =
        Thread(static_cast<std::uint64_t>(cores_[c].running));
    if (runner.rt_priority > 0) continue;  // RT exempt from CFS bandwidth
    for (std::uint32_t i = 0; i < runner.path_depth; ++i) {
      if (runner.path[i] == group_idx) {
        TruncateCore(static_cast<int>(c));
        break;
      }
    }
  }
}

void Machine::OnQuotaRefill(std::uint64_t group_idx, std::uint64_t version) {
  CgroupNode& g = Group(group_idx);
  if (version != g.quota_version || g.quota <= 0) return;  // stale / disabled
  g.quota_used = 0;
  if (g.throttled) {
    g.throttled = false;
    if (!g.rq.empty() && !g.ent.queued && !Group(g.ent.parent).throttled) {
      EnqueueEntity(g.ent, /*sleeper_clamp=*/true);
      for (std::size_t c = 0; c < cores_.size(); ++c) {
        if (cores_[c].running < 0) PickNext(static_cast<int>(c));
      }
    }
  }
  sim_->ScheduleAfter(g.quota_period, this, kQuotaRefill, group_idx, version);
}

bool Machine::PathThrottled(const ThreadNode& t) const {
  if (t.rt_priority > 0) return false;
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    if (Group(t.path[i]).throttled) return true;
  }
  return false;
}

// --- threads ----------------------------------------------------------------

void Machine::BuildPath(ThreadNode& t) {
  std::uint32_t depth = 0;
  for (std::uint64_t g = t.ent.parent; g != 0; g = Group(g).ent.parent) {
    assert(depth < kMaxCgroupDepth);
    t.path[depth++] = static_cast<std::uint32_t>(g);
  }
  t.path_depth = depth;
}

ThreadId Machine::CreateThread(std::string name,
                               std::unique_ptr<ThreadBody> body, CgroupId group,
                               int nice) {
  assert(group.value() < cgroups_.size());
  const PoolHandle handle = threads_.Alloc();
  ThreadNode& node = threads_.Get(handle);
  node.name = std::move(name);
  node.body = std::move(body);
  node.nice = std::clamp(nice, kMinNice, kMaxNice);
  node.ent.is_group = false;
  node.ent.id = handle.index;  // dense: slot index == creation order
  node.ent.weight = NiceToWeight(node.nice);
  node.ent.parent = group.value();
  node.ent.vruntime = Group(group.value()).min_vruntime;
  BuildPath(node);
  const std::uint64_t idx = handle.index;
  WakeThread(idx, params_.wakeup_check_cost);
  return ThreadId(idx);
}

void Machine::SetNice(ThreadId tid, int nice) {
  ThreadNode& t = Thread(tid.value());
  nice = std::clamp(nice, kMinNice, kMaxNice);
  if (nice == t.nice) return;
  t.nice = nice;
  const std::uint64_t new_weight = NiceToWeight(nice);
  if (t.ent.queued) {
    CgroupNode& parent = Group(t.ent.parent);
    assert(parent.total_queued_weight >= t.ent.weight);
    parent.total_queued_weight -= t.ent.weight;
    parent.total_queued_weight += new_weight;
  }
  t.ent.weight = new_weight;
}

int Machine::GetNice(ThreadId tid) const { return Thread(tid.value()).nice; }

void Machine::SetRtPriority(ThreadId tid, int rt_priority) {
  rt_priority = std::clamp(rt_priority, 0, 99);
  ThreadNode& t = Thread(tid.value());
  if (rt_priority == t.rt_priority) return;
  const int old_priority = t.rt_priority;
  // Remove from whichever queue currently holds the thread.
  if (t.rt_queued) {
    rt_queues_.Erase(old_priority, tid.value());
    t.rt_queued = false;
  } else if (t.ent.queued) {
    DequeueEntity(t.ent);
  }
  t.rt_priority = rt_priority;
  if (t.state == ThreadState::kRunnable) {
    RequeueRunnable(t, /*preempted=*/false);
    TryDispatchWake(tid.value());
  } else if (t.state == ThreadState::kRunning) {
    // Class change takes effect at the next scheduling point.
    TruncateCore(t.core);
  }
}

int Machine::GetRtPriority(ThreadId tid) const {
  return Thread(tid.value()).rt_priority;
}

void Machine::MoveToCgroup(ThreadId tid, CgroupId group) {
  ThreadNode& t = Thread(tid.value());
  const std::uint64_t new_parent = group.value();
  assert(new_parent < cgroups_.size());
  if (t.ent.parent == new_parent) return;
  const bool was_queued = t.ent.queued;
  if (was_queued) DequeueEntity(t.ent);
  if (t.state == ThreadState::kRunning) {
    for (std::uint32_t i = 0; i < t.path_depth; ++i) {
      --Group(t.path[i]).running_children;
    }
  }
  // Re-normalize vruntime into the destination group's frame (migration).
  t.ent.vruntime += Group(new_parent).min_vruntime - Group(t.ent.parent).min_vruntime;
  t.ent.parent = new_parent;
  BuildPath(t);
  if (t.state == ThreadState::kRunning) {
    for (std::uint32_t i = 0; i < t.path_depth; ++i) {
      ++Group(t.path[i]).running_children;
    }
  }
  if (was_queued) EnqueueEntity(t.ent, /*sleeper_clamp=*/false);
}

CgroupId Machine::GetCgroup(ThreadId tid) const {
  return CgroupId(Thread(tid.value()).ent.parent);
}

ThreadState Machine::GetState(ThreadId tid) const {
  return Thread(tid.value()).state;
}

const ThreadStats& Machine::GetStats(ThreadId tid) const {
  return Thread(tid.value()).stats;
}

const std::string& Machine::ThreadName(ThreadId tid) const {
  return Thread(tid.value()).name;
}

int Machine::IdleCoreCount() const {
  int idle = 0;
  for (const Core& core : cores_) {
    if (core.running < 0) ++idle;
  }
  return idle;
}

int Machine::UnthrottledRunnableCount() const {
  int runnable = 0;
  threads_.ForEach([&](std::uint32_t, const ThreadNode& t) {
    if (t.state == ThreadState::kRunnable && !PathThrottled(t)) ++runnable;
  });
  return runnable;
}

SimDuration Machine::total_busy_time() const {
  SimDuration total = 0;
  for (const Core& core : cores_) {
    total += core.busy;
    if (core.running >= 0) {
      total += now() - Thread(static_cast<std::uint64_t>(core.running)).run_start;
    }
  }
  return total;
}

// --- runqueue maintenance -----------------------------------------------------

void Machine::EnqueueEntity(SchedEntity& ent, bool sleeper_clamp) {
  assert(!ent.queued);
  CgroupNode& group = Group(ent.parent);
  if (sleeper_clamp) {
    ent.vruntime = std::max(
        ent.vruntime,
        group.min_vruntime - static_cast<double>(params_.sleeper_bonus));
  }
  const bool was_empty = group.rq.empty();
  group.rq.Insert(ent);
  group.total_queued_weight += ent.weight;
  ent.queued = true;
  // A throttled group stays off its parent's runqueue until the refill.
  if (was_empty && !group.is_root && !group.ent.queued && !group.throttled) {
    EnqueueEntity(group.ent, group.running_children == 0);
  }
}

void Machine::DequeueEntity(SchedEntity& ent) {
  assert(ent.queued);
  CgroupNode& group = Group(ent.parent);
  group.rq.Erase(ent);
  assert(group.total_queued_weight >= ent.weight);
  group.total_queued_weight -= ent.weight;
  ent.queued = false;
  if (group.rq.empty() && !group.is_root && group.ent.queued) {
    DequeueEntity(group.ent);
  }
}

void Machine::ReinsertQueued(SchedEntity& ent, double new_vruntime) {
  Group(ent.parent).rq.Update(ent, new_vruntime);
}

void Machine::UpdateMinVruntime(CgroupNode& group, double candidate) {
  double m = candidate;
  if (!group.rq.empty()) m = std::min(m, group.rq.MinVruntime());
  group.min_vruntime = std::max(group.min_vruntime, m);
}

void Machine::ChargeRunning(ThreadNode& t, SimDuration delta) {
  if (delta <= 0) return;
  const SimDuration overhead = std::min(delta, t.pending_overhead);
  t.pending_overhead -= overhead;
  t.remaining_compute -= delta - overhead;
  // Events never fire past compute_end, so work is never over-charged.
  assert(t.remaining_compute + t.pending_overhead >= 0);
  t.stats.cpu_time += delta;
  assert(t.core >= 0);
  cores_[static_cast<std::size_t>(t.core)].busy += delta;

  // CFS bandwidth: charge the quota of every limited ancestor (RT threads
  // are exempt, as in the kernel).
  if (t.rt_priority == 0) {
    for (std::uint32_t i = 0; i < t.path_depth; ++i) {
      CgroupNode& group = Group(t.path[i]);
      if (group.quota <= 0) continue;
      group.quota_used += delta;
      if (group.quota_used >= group.quota) ThrottleGroup(t.path[i]);
    }
  }

  const auto d = static_cast<double>(delta);
  t.ent.vruntime +=
      d * static_cast<double>(kNice0Weight) / static_cast<double>(t.ent.weight);
  UpdateMinVruntime(Group(t.ent.parent), t.ent.vruntime);
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    CgroupNode& group = Group(t.path[i]);
    const double new_vr = group.ent.vruntime +
                          d * static_cast<double>(kNice0Weight) /
                              static_cast<double>(group.ent.weight);
    if (group.ent.queued) {
      ReinsertQueued(group.ent, new_vr);
    } else {
      group.ent.vruntime = new_vr;
    }
    UpdateMinVruntime(Group(group.ent.parent), group.ent.vruntime);
  }
}

SimDuration Machine::SliceFor(const ThreadNode& t) const {
  const CgroupNode& group = Group(t.ent.parent);
  const std::uint64_t total = group.total_queued_weight + t.ent.weight;
  const double share = static_cast<double>(t.ent.weight) / static_cast<double>(total);
  const auto slice = static_cast<SimDuration>(
      static_cast<double>(params_.sched_latency) * share);
  return std::clamp(slice, params_.min_granularity, params_.sched_latency);
}

void Machine::ScheduleCoreEvent(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  assert(core.running >= 0);
  const ThreadNode& t = Thread(static_cast<std::uint64_t>(core.running));
  const SimTime compute_end = now() + t.pending_overhead + t.remaining_compute;
  const SimTime when = std::min(core.slice_end, compute_end);
  sim_->ScheduleAt(std::max(when, now()), this, kCoreEvent,
                   static_cast<std::uint64_t>(core_idx), core.version);
}

// --- dispatch ----------------------------------------------------------------

void Machine::Dispatch(int core_idx, std::uint64_t thread_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  ThreadNode& t = Thread(thread_idx);
  assert(core.running < 0);
  assert(t.state == ThreadState::kRunnable);
  t.state = ThreadState::kRunning;
  t.core = core_idx;
  t.last_core = core_idx;
  t.run_start = now();
  if (core.last_thread != static_cast<std::int64_t>(thread_idx)) {
    t.pending_overhead = std::max(t.pending_overhead, params_.context_switch_cost);
    ++t.stats.nr_switches;
  }
  if (t.enqueued_at > 0) {
    t.stats.wait_time += now() - t.enqueued_at;
    t.enqueued_at = 0;
  }
  core.running = static_cast<std::int64_t>(thread_idx);
  core.last_thread = static_cast<std::int64_t>(thread_idx);
  ++core.version;
  // RT threads have no timeslice (SCHED_FIFO): they run until they block,
  // exit, or a higher-priority RT thread preempts them.
  core.slice_end = t.rt_priority > 0
                       ? std::numeric_limits<SimTime>::max() / 4
                       : now() + SliceFor(t);
  Trace(SchedTransition::kDispatch, thread_idx);
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    ++Group(t.path[i]).running_children;
  }
  ScheduleCoreEvent(core_idx);
}

void Machine::PickNext(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  assert(core.running < 0);
  // RT class first: highest priority, FIFO within a level.
  const int rt_priority = rt_queues_.HighestPriority();
  if (rt_priority > 0) {
    const std::uint64_t thread_idx = rt_queues_.PopFront(rt_priority);
    Thread(thread_idx).rt_queued = false;
    Dispatch(core_idx, thread_idx);
    return;
  }
  CgroupNode* current = &Group(0);
  while (true) {
    if (current->rq.empty()) {
      ++core.version;  // stay idle; cancel any stale events
      return;
    }
    SchedEntity& ent = *current->rq.Min().ent;
    if (ent.is_group) {
      current = &Group(ent.id);
      continue;
    }
    DequeueEntity(ent);
    Dispatch(core_idx, ent.id);
    return;
  }
}

void Machine::StopRunning(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  assert(core.running >= 0);
  ThreadNode& t = Thread(static_cast<std::uint64_t>(core.running));
  for (std::uint32_t i = 0; i < t.path_depth; ++i) {
    --Group(t.path[i]).running_children;
  }
  t.core = -1;
  core.running = -1;
  ++core.version;
}

void Machine::AdvanceBody(int core_idx, std::uint64_t thread_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  ThreadNode& t = Thread(thread_idx);
  // Bodies must eventually compute, block, or exit; this guards against a
  // buggy body spinning at one instant of simulated time.
  for (int guard = 0; guard < 1'000'000; ++guard) {
    current_thread_ = static_cast<std::int64_t>(thread_idx);
    const Action action = t.body->Next(*this);
    current_thread_ = -1;
    switch (action.kind) {
      case Action::Kind::kCompute: {
        if (action.duration <= 0) continue;  // free action, ask again
        t.remaining_compute = action.duration;
        if (now() >= core.slice_end) {
          if (!Group(0).rq.empty() || !rt_queues_.empty() ||
              PathThrottled(t)) {
            // Slice exhausted and there is competition: involuntary switch.
            t.state = ThreadState::kRunnable;
            ++t.stats.nr_preemptions;
            Trace(SchedTransition::kPreempt, thread_idx);
            StopRunning(core_idx);
            RequeueRunnable(t, /*preempted=*/true);
            PickNext(core_idx);
            return;
          }
          core.slice_end = now() + SliceFor(t);
        }
        ScheduleCoreEvent(core_idx);
        return;
      }
      case Action::Kind::kWait: {
        assert(action.channel != nullptr);
        action.channel->waiters_.push_back(ThreadId(thread_idx));
        t.waiting = action.channel;
        t.state = ThreadState::kBlocked;
        ++t.version;
        Trace(SchedTransition::kBlock, thread_idx);
        StopRunning(core_idx);
        PickNext(core_idx);
        return;
      }
      case Action::Kind::kSleep: {
        t.state = ThreadState::kSleeping;
        ++t.version;
        Trace(SchedTransition::kSleep, thread_idx);
        sim_->ScheduleAfter(std::max<SimDuration>(action.duration, 0), this,
                            kTimerWake, thread_idx, t.version);
        StopRunning(core_idx);
        PickNext(core_idx);
        return;
      }
      case Action::Kind::kExit: {
        t.state = ThreadState::kExited;
        ++t.version;
        Trace(SchedTransition::kExit, thread_idx);
        StopRunning(core_idx);
        PickNext(core_idx);
        return;
      }
    }
  }
  assert(false && "ThreadBody spun without consuming simulated time");
}

// --- wakeups -----------------------------------------------------------------

void Machine::RequeueRunnable(ThreadNode& t, bool preempted) {
  t.enqueued_at = now();
  if (t.rt_priority > 0) {
    assert(!t.rt_queued);
    // A preempted RT thread resumes ahead of its FIFO peers (SCHED_FIFO).
    if (preempted) {
      rt_queues_.PushFront(t.rt_priority, t.ent.id);
    } else {
      rt_queues_.PushBack(t.rt_priority, t.ent.id);
    }
    t.rt_queued = true;
    return;
  }
  EnqueueEntity(t.ent, /*sleeper_clamp=*/!preempted);
}

void Machine::TruncateCore(int core_idx) {
  Core& core = cores_[static_cast<std::size_t>(core_idx)];
  if (core.running < 0 || core.slice_end <= now()) return;
  core.slice_end = now();
  ++core.version;
  ScheduleCoreEvent(core_idx);
}

std::int64_t Machine::PeekRt() const {
  const int priority = rt_queues_.HighestPriority();
  if (priority < 0) return -1;
  return static_cast<std::int64_t>(rt_queues_.Front(priority));
}

void Machine::WakeThread(std::uint64_t thread_idx, SimDuration startup_cost) {
  ThreadNode& t = Thread(thread_idx);
  assert(t.state == ThreadState::kNew || t.state == ThreadState::kBlocked ||
         t.state == ThreadState::kSleeping);
  ++t.stats.nr_wakeups;
  t.state = ThreadState::kRunnable;
  Trace(SchedTransition::kWake, thread_idx);
  t.remaining_compute += startup_cost;
  RequeueRunnable(t, /*preempted=*/false);
  TryDispatchWake(thread_idx);
}

double Machine::PreemptMargin(const ThreadNode& wakee, const ThreadNode& runner) {
  // Root-first (group, vruntime, weight) paths for both threads; the
  // runner's entities are projected forward by its uncharged runtime. The
  // cached ancestor chains bound the depth, so both paths live in inline
  // arrays -- no allocation on the wakeup path.
  struct Level {
    std::uint64_t group;
    double vruntime;
    std::uint64_t weight;
  };
  using Path = std::array<Level, kMaxCgroupDepth + 1>;
  // Fills `out` root-first and returns the level count: ancestor groups
  // from the top-level group down, then the thread itself.
  auto build = [&](const ThreadNode& t, double extra_runtime, Path& out) {
    const std::uint32_t depth = t.path_depth;
    for (std::uint32_t i = 0; i < depth; ++i) {
      const CgroupNode& group = Group(t.path[depth - 1 - i]);
      out[i] = {group.ent.parent,
                group.ent.vruntime +
                    extra_runtime * static_cast<double>(kNice0Weight) /
                        static_cast<double>(group.ent.weight),
                group.ent.weight};
    }
    out[depth] = {t.ent.parent,
                  t.ent.vruntime + extra_runtime *
                                       static_cast<double>(kNice0Weight) /
                                       static_cast<double>(t.ent.weight),
                  t.ent.weight};
    return static_cast<std::size_t>(depth) + 1;
  };
  const auto delta = static_cast<double>(now() - runner.run_start);
  Path wakee_path, runner_path;
  const std::size_t wakee_levels = build(wakee, 0.0, wakee_path);
  const std::size_t runner_levels = build(runner, delta, runner_path);
  // Find the deepest level where both paths share the containing group.
  std::size_t level = 0;
  const std::size_t max_level = std::min(wakee_levels, runner_levels);
  while (level + 1 < max_level &&
         wakee_path[level + 1].group == runner_path[level + 1].group) {
    ++level;
  }
  if (wakee_path[level].group != runner_path[level].group) return 0.0;
  const double gran = static_cast<double>(params_.wakeup_granularity) *
                      static_cast<double>(kNice0Weight) /
                      static_cast<double>(wakee_path[level].weight);
  return runner_path[level].vruntime - wakee_path[level].vruntime - gran;
}

void Machine::TryDispatchWake(std::uint64_t thread_idx) {
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (cores_[c].running < 0) {
      PickNext(static_cast<int>(c));
      return;
    }
  }
  // RT wakee: preempt the weakest runner -- prefer any CFS thread, else the
  // lowest-priority RT thread below the wakee (strict priority semantics).
  if (Thread(thread_idx).rt_priority > 0) {
    const int wakee_priority = Thread(thread_idx).rt_priority;
    int best_core = -1;
    int best_priority = wakee_priority;  // must be strictly below wakee
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      const ThreadNode& runner =
          Thread(static_cast<std::uint64_t>(cores_[c].running));
      if (runner.rt_priority < best_priority) {
        best_priority = runner.rt_priority;
        best_core = static_cast<int>(c);
      }
    }
    if (best_core >= 0) TruncateCore(best_core);
    return;
  }
  // No idle core: wakeup preemption. As in the kernel, the wakee contests
  // only its target CPU rather than the globally most-preemptable core:
  // for synchronous wakeups (a producer pushing to its consumer) that is
  // the WAKER's CPU (wake affinity, WF_SYNC) -- the source of the classic
  // pipeline ping-pong -- and otherwise the core the wakee last ran on.
  // A positive margin truncates that core's slice (need_resched); the
  // switch happens at the next scheduling point, picking the fairest
  // queued entity.
  const ThreadNode& wakee = Thread(thread_idx);
  int target = wakee.last_core >= 0
                   ? wakee.last_core
                   : static_cast<int>(thread_idx % cores_.size());
  if (current_thread_ >= 0 &&
      Thread(static_cast<std::uint64_t>(current_thread_)).core >= 0) {
    target = Thread(static_cast<std::uint64_t>(current_thread_)).core;
  }
  Core& core = cores_[static_cast<std::size_t>(target)];
  const ThreadNode& runner = Thread(static_cast<std::uint64_t>(core.running));
  if (runner.rt_priority > 0) return;  // CFS never preempts RT
  if (PreemptMargin(wakee, runner) > 0 && core.slice_end > now()) {
    core.slice_end = now();
    ++core.version;
    ScheduleCoreEvent(target);
  }
}

void Machine::NotifyChannel(WaitChannel& channel, std::size_t max_wakeups) {
  while (max_wakeups > 0 && !channel.waiters_.empty()) {
    const ThreadId tid = channel.waiters_.front();
    channel.waiters_.pop_front();
    ThreadNode& t = Thread(tid.value());
    assert(t.state == ThreadState::kBlocked && t.waiting == &channel);
    t.waiting = nullptr;
    WakeThread(tid.value(), params_.wakeup_check_cost);
    --max_wakeups;
  }
}

// --- event handling ------------------------------------------------------------

void Machine::HandleEvent(std::int32_t code, std::uint64_t a, std::uint64_t b) {
  switch (code) {
    case kCoreEvent:
      OnCoreEvent(a, b);
      break;
    case kTimerWake:
      OnTimerWake(a, b);
      break;
    case kQuotaRefill:
      OnQuotaRefill(a, b);
      break;
    default:
      assert(false && "unknown event code");
  }
}

void Machine::OnCoreEvent(std::uint64_t core_idx, std::uint64_t version) {
  Core& core = cores_[core_idx];
  if (version != core.version || core.running < 0) return;  // stale
  const auto thread_idx = static_cast<std::uint64_t>(core.running);
  ThreadNode& t = Thread(thread_idx);
  ChargeRunning(t, now() - t.run_start);
  t.run_start = now();

  if (t.pending_overhead <= 0 && t.remaining_compute <= 0) {
    AdvanceBody(static_cast<int>(core_idx), thread_idx);
    return;
  }
  if (now() >= core.slice_end) {
    const bool contested = !Group(0).rq.empty() || !rt_queues_.empty() ||
                           PathThrottled(t);
    if (!contested) {
      // Nothing else runnable: extend the slice.
      core.slice_end = now() + SliceFor(t);
      ++core.version;
      ScheduleCoreEvent(static_cast<int>(core_idx));
      return;
    }
    t.state = ThreadState::kRunnable;
    ++t.stats.nr_preemptions;
    Trace(SchedTransition::kPreempt, thread_idx);
    StopRunning(static_cast<int>(core_idx));
    RequeueRunnable(t, /*preempted=*/true);
    PickNext(static_cast<int>(core_idx));
    return;
  }
  // Spurious wakeup of the core event (e.g. slice extended); rearm.
  ++core.version;
  ScheduleCoreEvent(static_cast<int>(core_idx));
}

void Machine::OnTimerWake(std::uint64_t thread_idx, std::uint64_t version) {
  ThreadNode& t = Thread(thread_idx);
  if (version != t.version || t.state != ThreadState::kSleeping) return;
  WakeThread(thread_idx, params_.wakeup_check_cost);
}

}  // namespace lachesis::sim
