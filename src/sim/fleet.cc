#include "sim/fleet.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace lachesis::sim {

FleetSimulator::FleetSimulator(int shards, int workers, SimDuration epoch)
    : epoch_(epoch) {
  if (shards <= 0) throw std::invalid_argument("FleetSimulator: shards <= 0");
  if (workers <= 0) throw std::invalid_argument("FleetSimulator: workers <= 0");
  if (epoch <= 0) throw std::invalid_argument("FleetSimulator: epoch <= 0");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->sim = std::make_unique<Simulator>();
    shard->sim->SetFleetContext(this, static_cast<std::size_t>(s));
    shard->outbox.resize(static_cast<std::size_t>(shards));
    shards_.push_back(std::move(shard));
  }
  link_down_.assign(
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards), 0);
  workers_ = std::min(workers, shards);
  if (workers_ > 1) {
    pool_.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
      pool_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

FleetSimulator::~FleetSimulator() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
  }
}

void FleetSimulator::PostCross(std::size_t from, std::size_t to,
                               SimTime deliver_at, std::function<void()> fn) {
  Shard& src = *shards_.at(from);
  if (to >= shards_.size()) {
    throw std::out_of_range("FleetSimulator::PostCross: bad destination");
  }
  if (to == from) {
    // Same shard: no barrier needed, this is an ordinary local event.
    src.sim->ScheduleAt(deliver_at, std::move(fn));
    return;
  }
  src.outbox[to].push_back(
      CrossMessage{deliver_at, static_cast<std::uint32_t>(from),
                   src.next_seq++, std::move(fn)});
  ++src.cross_posted;
}

FleetSimulator::Stats FleetSimulator::stats() const {
  Stats totals = stats_;
  for (const auto& shard : shards_) {
    totals.cross_posted += shard->cross_posted;
    totals.slow_steps += shard->slow_steps;
    for (const auto& box : shard->outbox) {
      totals.cross_in_flight += box.size();
    }
  }
  // Mailbox-hygiene invariant: every posted message is delivered, dropped
  // (counted in exactly one bucket), or still waiting in an outbox. A shard
  // throwing mid-epoch aborts RunUntil BEFORE the mailbox merge, so its
  // epoch's messages must all still be in flight here -- a partial merge
  // would break this identity.
  const std::uint64_t accounted =
      totals.cross_delivered + totals.cross_dropped_partition +
      totals.cross_dropped_dark + totals.cross_dropped_late +
      totals.cross_in_flight;
  if (totals.cross_posted != accounted) {
    throw std::logic_error(
        "FleetSimulator::stats: cross-message conservation violated: posted " +
        std::to_string(totals.cross_posted) + " != accounted " +
        std::to_string(accounted) + " (delivered " +
        std::to_string(totals.cross_delivered) + " + dropped " +
        std::to_string(totals.cross_dropped_partition + totals.cross_dropped_dark +
                       totals.cross_dropped_late) +
        " + in-flight " + std::to_string(totals.cross_in_flight) + ")");
  }
  return totals;
}

void FleetSimulator::RequireBarrierLane(const char* what) const {
  if (stepping_) {
    throw std::logic_error(std::string("FleetSimulator::") + what +
                           " called from a shard event mid-epoch; failure "
                           "toggles are barrier-lane-only -- register a "
                           "barrier action instead");
  }
}

void FleetSimulator::SetShardDark(std::size_t index, bool dark) {
  RequireBarrierLane("SetShardDark");
  shards_.at(index)->dark = dark;
}

bool FleetSimulator::ShardDark(std::size_t index) const {
  return shards_.at(index)->dark;
}

void FleetSimulator::SetLinkDown(std::size_t from, std::size_t to, bool down) {
  RequireBarrierLane("SetLinkDown");
  if (from >= shards_.size() || to >= shards_.size()) {
    throw std::out_of_range("FleetSimulator::SetLinkDown: bad shard index");
  }
  link_down_[from * shards_.size() + to] = down ? 1 : 0;
}

bool FleetSimulator::LinkDown(std::size_t from, std::size_t to) const {
  if (from >= shards_.size() || to >= shards_.size()) {
    throw std::out_of_range("FleetSimulator::LinkDown: bad shard index");
  }
  return link_down_[from * shards_.size() + to] != 0;
}

void FleetSimulator::SetShardSlow(std::size_t index,
                                  std::uint32_t penalty_micros) {
  RequireBarrierLane("SetShardSlow");
  shards_.at(index)->slow_micros = penalty_micros;
}

std::uint32_t FleetSimulator::ShardSlow(std::size_t index) const {
  return shards_.at(index)->slow_micros;
}

void FleetSimulator::CallAtBarrier(SimTime time, std::function<void()> fn) {
  if (stepping_) {
    throw std::logic_error(
        "FleetSimulator::CallAtBarrier called from a shard event mid-epoch; "
        "the action map is barrier-lane-only -- use PostCross from shard "
        "events instead");
  }
  barrier_actions_.emplace(time, std::move(fn));
}

void FleetSimulator::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    const SimTime target = target_;
    while (next_shard_ < shards_.size()) {
      const std::size_t index = next_shard_++;
      Shard& shard = *shards_[index];
      if (shard.dark) continue;  // frozen: skip without releasing the lock
      lock.unlock();
      try {
        StepOneShard(shard, target);
      } catch (...) {
        shard.error = std::current_exception();
      }
      lock.lock();
    }
    if (--busy_workers_ == 0) done_cv_.notify_one();
  }
}

void FleetSimulator::StepOneShard(Shard& shard, SimTime target) {
  shard.sim->RunUntil(target);
  if (shard.slow_micros > 0) {
    // Straggler model: wall-clock only, so the barrier genuinely waits on
    // this shard while simulated time stays deterministic.
    std::this_thread::sleep_for(std::chrono::microseconds(shard.slow_micros));
    ++shard.slow_steps;
  }
}

void FleetSimulator::StepShardsTo(SimTime target) {
  // Pre-dispatch bookkeeping on the driving thread, before any worker can
  // observe the new generation: a revived shard whose clock trails the
  // target by more than one epoch is catching up (its backlog replays at
  // original timestamps, so messages it emits may be late -- dropped, not
  // fatal); dark shards are counted but never stepped.
  for (auto& shard : shards_) {
    if (shard->dark) {
      shard->catching_up = false;
      ++stats_.dark_epochs;
    } else {
      shard->catching_up = shard->sim->now() + epoch_ < target;
    }
  }
  stepping_ = true;
  if (pool_.empty()) {
    for (auto& shard : shards_) {
      if (shard->dark) continue;
      try {
        StepOneShard(*shard, target);
      } catch (...) {
        shard->error = std::current_exception();
      }
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      target_ = target;
      next_shard_ = 0;
      busy_workers_ = pool_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  }
  stepping_ = false;
  RethrowShardErrors();
}

void FleetSimulator::RethrowShardErrors() {
  for (auto& shard : shards_) {
    if (shard->error != nullptr) {
      std::exception_ptr error = shard->error;
      shard->error = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void FleetSimulator::DrainMailboxes() {
  // Deterministic merge: per destination, gather messages from senders in
  // shard-index order, then stable-sort by delivery time only -- equal
  // times keep (sender, per-sender seq) order. The resulting insertion
  // order into the destination queue is therefore a pure function of the
  // message set, independent of worker count and scheduling.
  for (std::size_t to = 0; to < shards_.size(); ++to) {
    Simulator& dest = *shards_[to]->sim;
    std::vector<CrossMessage> inbound;
    for (std::size_t from = 0; from < shards_.size(); ++from) {
      auto& box = shards_[from]->outbox[to];
      for (CrossMessage& m : box) inbound.push_back(std::move(m));
      box.clear();
    }
    if (inbound.empty()) continue;
    std::stable_sort(inbound.begin(), inbound.end(),
                     [](const CrossMessage& a, const CrossMessage& b) {
                       return a.at < b.at;
                     });
    const bool dest_dark = shards_[to]->dark;
    for (CrossMessage& m : inbound) {
      const Shard& sender = *shards_[m.from];
      // Failure-domain drops, checked in a fixed order so counters are
      // deterministic: a dark endpoint swallows the message (the machine
      // is off), then a partitioned link, then lateness from a
      // catching-up sender (its replayed backlog targets timestamps the
      // destination already executed past). Each drop lands in exactly
      // one bucket -- stats() asserts conservation over them.
      if (dest_dark || sender.dark) {
        ++stats_.cross_dropped_dark;
        continue;
      }
      if (link_down_[static_cast<std::size_t>(m.from) * shards_.size() + to] !=
          0) {
        ++stats_.cross_dropped_partition;
        continue;
      }
      if (m.at < dest.now()) {
        if (sender.catching_up) {
          ++stats_.cross_dropped_late;
          continue;
        }
        throw std::logic_error(
            "FleetSimulator: cross-shard message from shard " +
            std::to_string(m.from) + " due at " + std::to_string(m.at) +
            " ns arrived after destination shard " + std::to_string(to) +
            " reached " + std::to_string(dest.now()) +
            " ns; the cross-shard latency must be >= the epoch (" +
            std::to_string(epoch_) + " ns)");
      }
      dest.ScheduleAt(m.at, std::move(m.fn));
      ++stats_.cross_delivered;
    }
  }
}

void FleetSimulator::RunBarrierActionsUpTo(SimTime time) {
  // Actions may register further actions (<= time) and post cross-shard
  // messages; loop to a fixpoint, then merge whatever they posted.
  while (!barrier_actions_.empty() && barrier_actions_.begin()->first <= time) {
    auto it = barrier_actions_.begin();
    std::function<void()> fn = std::move(it->second);
    barrier_actions_.erase(it);
    fn();
    ++stats_.barrier_actions;
  }
  DrainMailboxes();
}

void FleetSimulator::RunUntil(SimTime end) {
  // Actions due before stepping begins (e.g. time-zero setup).
  RunBarrierActionsUpTo(now_);
  while (now_ < end) {
    const SimTime aligned = (now_ / epoch_ + 1) * epoch_;
    const SimTime target = std::min(end, aligned);
    StepShardsTo(target);
    now_ = target;
    DrainMailboxes();
    RunBarrierActionsUpTo(now_);
    ++stats_.epochs;
  }
}

std::uint64_t FleetSimulator::TotalDispatched() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim->dispatched();
  return total;
}

}  // namespace lachesis::sim
