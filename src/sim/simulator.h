// Simulation driver: global clock plus event dispatch loop.
//
// Multiple Machines (simulated hosts) can share one Simulator, which models
// NTP-synchronized clocks in distributed deployments (paper §3.2).
#ifndef LACHESIS_SIM_SIMULATOR_H_
#define LACHESIS_SIM_SIMULATOR_H_

#include <cassert>
#include <functional>
#include <utility>

#include "common/sim_time.h"
#include "sim/event_queue.h"

namespace lachesis::sim {

class FleetSimulator;

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  // Pre-sizes the event queue's lanes so steady-state runs never reallocate.
  void ReserveEvents(std::size_t hot_events, std::size_t cold_events = 0) {
    queue_.Reserve(hot_events, cold_events);
  }

  void ScheduleAt(SimTime time, EventSink* sink, std::int32_t code,
                  std::uint64_t a, std::uint64_t b) {
    assert(time >= now_);
    queue_.Push(time, sink, code, a, b);
  }

  void ScheduleAfter(SimDuration delay, EventSink* sink, std::int32_t code,
                     std::uint64_t a, std::uint64_t b) {
    ScheduleAt(now_ + delay, sink, code, a, b);
  }

  void ScheduleAt(SimTime time, std::function<void()> fn) {
    assert(time >= now_);
    queue_.Push(time, std::move(fn));
  }

  void ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs events until the queue is exhausted or the clock passes `end`.
  // Events at exactly `end` are executed. The clock is left at `end` (or at
  // the last event if the queue drained first).
  void RunUntil(SimTime end) {
    while (!queue_.empty() && queue_.next_time() <= end) {
      // The clock must advance before dispatch so handlers see the event's
      // own timestamp via now().
      now_ = queue_.next_time();
      queue_.PopAndDispatch();
      ++dispatched_;
    }
    if (now_ < end) now_ = end;
  }

  // Runs until no events remain. Only safe for workloads that terminate.
  void RunToCompletion() {
    while (!queue_.empty()) {
      now_ = queue_.next_time();
      queue_.PopAndDispatch();
      ++dispatched_;
    }
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  // Total events dispatched; useful for performance diagnostics.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  // --- fleet context ---------------------------------------------------------
  // Set by FleetSimulator when this queue is one shard of a parallel fleet
  // (sim/fleet.h). Code that may run in either mode (e.g. the SPE's remote
  // tuple push) routes cross-simulator interactions through the fleet's
  // mailboxes when `fleet()` is non-null; machines sharing one Simulator
  // are unaffected.
  void SetFleetContext(FleetSimulator* fleet, std::size_t shard_index) {
    fleet_ = fleet;
    shard_index_ = shard_index;
  }
  [[nodiscard]] FleetSimulator* fleet() const { return fleet_; }
  [[nodiscard]] std::size_t shard_index() const { return shard_index_; }

 private:
  SimTime now_ = 0;
  std::uint64_t dispatched_ = 0;
  EventQueue queue_;
  FleetSimulator* fleet_ = nullptr;
  std::size_t shard_index_ = 0;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_SIMULATOR_H_
