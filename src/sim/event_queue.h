// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence) so that simultaneous
// events fire in a platform-independent order. The queue is split into two
// lanes sharing one sequence counter:
//
//  - a HOT lane of small trivially-copyable events (an EventSink pointer
//    plus integer payloads) in a flat binary heap -- pushing and popping
//    allocates nothing once the backing vector has grown to the working-set
//    size (or was Reserve()d up front);
//  - a COLD lane for events carrying an arbitrary closure, kept in its own
//    flat heap so the std::function payload is never dragged through the
//    hot lane's sift operations.
//
// The lanes are merged at pop time by comparing (time, seq) heads, which
// reproduces exactly the order a single combined heap would produce. Both
// heaps expose PopInto(): the minimum is moved out *before* the invariant
// is restored, so no moved-from element ever sits inside a heap.
#ifndef LACHESIS_SIM_EVENT_QUEUE_H_
#define LACHESIS_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace lachesis::sim {

// Receiver of hot-path events. `code` discriminates event kinds within the
// sink; `a` and `b` are sink-defined payloads (ids, versions).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void HandleEvent(std::int32_t code, std::uint64_t a, std::uint64_t b) = 0;
};

namespace internal {

// Flat binary min-heap ordered by the event's (time, seq). Elements move by
// hole-sifting: at most one element is in flight at any moment and it never
// re-enters comparisons while moved-from. Storage is retained across
// Clear(), so a reused heap reaches a steady state with zero allocations.
template <typename Event>
class FlatEventHeap {
 public:
  void Reserve(std::size_t capacity) { slots_.reserve(capacity); }
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const Event& top() const {
    assert(!slots_.empty());
    return slots_.front();
  }

  void Push(Event ev) {
    // Hole-sift up: the new element's final slot is found by shifting
    // later-ordered ancestors down, then it is moved in exactly once.
    std::size_t hole = slots_.size();
    slots_.emplace_back();
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (!Earlier(ev, slots_[parent])) break;
      slots_[hole] = std::move(slots_[parent]);
      hole = parent;
    }
    slots_[hole] = std::move(ev);
  }

  // Moves the minimum into `out`, then restores the heap invariant.
  void PopInto(Event& out) {
    assert(!slots_.empty());
    out = std::move(slots_.front());
    Event last = std::move(slots_.back());
    slots_.pop_back();
    if (slots_.empty()) return;
    // Hole-sift down from the root, placing `last` at its final slot.
    std::size_t hole = 0;
    const std::size_t n = slots_.size();
    while (true) {
      std::size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && Earlier(slots_[child + 1], slots_[child])) ++child;
      if (!Earlier(slots_[child], last)) break;
      slots_[hole] = std::move(slots_[child]);
      hole = child;
    }
    slots_[hole] = std::move(last);
  }

  // Drops all elements but keeps the backing storage.
  void Clear() { slots_.clear(); }

 private:
  static bool Earlier(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) return lhs.time < rhs.time;
    return lhs.seq < rhs.seq;
  }

  std::vector<Event> slots_;
};

}  // namespace internal

class EventQueue {
 public:
  // Pre-sizes the lanes so steady-state operation never reallocates.
  void Reserve(std::size_t hot_events, std::size_t cold_events = 0) {
    hot_.Reserve(hot_events);
    cold_.Reserve(cold_events);
  }

  void Push(SimTime time, EventSink* sink, std::int32_t code, std::uint64_t a,
            std::uint64_t b) {
    assert(sink != nullptr);
    hot_.Push(HotEvent{time, next_seq_++, sink, code, a, b});
  }

  void Push(SimTime time, std::function<void()> fn) {
    cold_.Push(ColdEvent{time, next_seq_++, std::move(fn)});
  }

  [[nodiscard]] bool empty() const { return hot_.empty() && cold_.empty(); }
  [[nodiscard]] std::size_t size() const { return hot_.size() + cold_.size(); }

  // Earliest event time over both lanes. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const {
    if (cold_.empty()) return hot_.top().time;
    if (hot_.empty()) return cold_.top().time;
    return HotIsNext() ? hot_.top().time : cold_.top().time;
  }

  // Pops and dispatches the earliest event. Precondition: !empty().
  // The caller must advance its clock to next_time() BEFORE calling, so that
  // the handler observes the event's own timestamp.
  void PopAndDispatch() {
    if (cold_.empty() || (!hot_.empty() && HotIsNext())) {
      HotEvent ev;
      hot_.PopInto(ev);
      ev.sink->HandleEvent(ev.code, ev.a, ev.b);
    } else {
      ColdEvent ev;
      cold_.PopInto(ev);
      ev.fn();
    }
  }

  // Drops all pending events but keeps both lanes' storage, so a queue (or
  // its Simulator) can be reused across runs without re-growing.
  void Clear() {
    hot_.Clear();
    cold_.Clear();
  }

 private:
  struct HotEvent {
    SimTime time;
    std::uint64_t seq;
    EventSink* sink;
    std::int32_t code;
    std::uint64_t a, b;
  };
  static_assert(std::is_trivially_copyable_v<HotEvent>);

  struct ColdEvent {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  // True if the hot head precedes the cold head in the global (time, seq)
  // order. Both lanes draw seq from one counter, so this merge reproduces
  // the order of a single combined heap. Preconditions: neither lane empty.
  [[nodiscard]] bool HotIsNext() const {
    const HotEvent& h = hot_.top();
    const ColdEvent& c = cold_.top();
    if (h.time != c.time) return h.time < c.time;
    return h.seq < c.seq;
  }

  internal::FlatEventHeap<HotEvent> hot_;
  internal::FlatEventHeap<ColdEvent> cold_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_EVENT_QUEUE_H_
