// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence) so that simultaneous
// events fire in a platform-independent order. Hot-path events (scheduler
// bookkeeping, compute completions) carry an EventSink pointer plus small
// integer payloads and allocate nothing; cold-path events may carry an
// arbitrary closure.
#ifndef LACHESIS_SIM_EVENT_QUEUE_H_
#define LACHESIS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace lachesis::sim {

// Receiver of hot-path events. `code` discriminates event kinds within the
// sink; `a` and `b` are sink-defined payloads (ids, versions).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void HandleEvent(std::int32_t code, std::uint64_t a, std::uint64_t b) = 0;
};

class EventQueue {
 public:
  void Push(SimTime time, EventSink* sink, std::int32_t code, std::uint64_t a,
            std::uint64_t b) {
    heap_.push(Event{time, next_seq_++, sink, code, a, b, {}});
  }

  void Push(SimTime time, std::function<void()> fn) {
    heap_.push(Event{time, next_seq_++, nullptr, 0, 0, 0, std::move(fn)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] SimTime next_time() const { return heap_.top().time; }

  // Pops and dispatches the earliest event. Precondition: !empty().
  // The caller must advance its clock to next_time() BEFORE calling, so that
  // the handler observes the event's own timestamp.
  void PopAndDispatch() {
    // Moving the top out is safe: the element is removed before dispatch,
    // and the heap's sift operations only read time/seq, which the move
    // leaves intact.
    auto& top = const_cast<Event&>(heap_.top());
    const Event ev = std::move(top);
    heap_.pop();
    if (ev.sink != nullptr) {
      ev.sink->HandleEvent(ev.code, ev.a, ev.b);
    } else if (ev.fn) {
      ev.fn();
    }
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventSink* sink;
    std::int32_t code;
    std::uint64_t a, b;
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Event& lhs, const Event& rhs) const {
      if (lhs.time != rhs.time) return lhs.time > rhs.time;
      return lhs.seq > rhs.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_EVENT_QUEUE_H_
