// Tunables of the simulated CFS scheduler.
//
// Defaults follow the Linux defaults on small-core machines (sched_latency
// 6 ms, min granularity 0.75 ms, wakeup granularity 1 ms). The context-switch
// cost models the direct plus cache-refill cost of a switch on Odroid-class
// ARM cores; it is the main inefficiency that priority-driven batching (the
// paper's Lachesis configurations) avoids relative to fair ping-ponging.
#ifndef LACHESIS_SIM_CFS_PARAMS_H_
#define LACHESIS_SIM_CFS_PARAMS_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace lachesis::sim {

// A SCHED_DEADLINE-style reservation: `runtime` of CPU service every
// `period`, due within `deadline` of each activation. The kernel's
// sched_setattr constraint 0 < runtime <= deadline <= period applies.
struct DeadlineParams {
  SimDuration runtime = 0;
  SimDuration deadline = 0;
  SimDuration period = 0;

  // The all-zero triple clears a reservation instead of setting one.
  [[nodiscard]] bool is_zero() const {
    return runtime == 0 && deadline == 0 && period == 0;
  }
  // Bandwidth claimed from the admission budget.
  [[nodiscard]] double utilization() const {
    return period > 0 ? static_cast<double>(runtime) /
                            static_cast<double>(period)
                      : 0.0;
  }

  // Throws std::invalid_argument on triples the CBS math cannot serve.
  void Validate() const {
    const auto reject = [](const std::string& what) {
      throw std::invalid_argument("DeadlineParams: " + what);
    };
    if (runtime <= 0) {
      reject("runtime must be positive, got " + std::to_string(runtime) +
             "ns");
    }
    if (deadline < runtime) {
      reject("deadline (" + std::to_string(deadline) +
             "ns) must be >= runtime (" + std::to_string(runtime) + "ns)");
    }
    if (period < deadline) {
      reject("period (" + std::to_string(period) +
             "ns) must be >= deadline (" + std::to_string(deadline) + "ns)");
    }
  }

  friend bool operator==(const DeadlineParams&,
                         const DeadlineParams&) = default;
};

// Validates an explicit per-core capacity vector for a machine with
// `num_cores` cores: non-empty, one entry per core, every entry in (0, 1].
// Machine construction applies this whenever CfsParams::core_capacities is
// set; throws std::invalid_argument with the offending entry.
inline void ValidateCoreCapacities(const std::vector<double>& capacities,
                                   int num_cores) {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("CfsParams: " + what);
  };
  if (capacities.empty()) {
    reject("core capacity vector must not be empty");
  }
  if (static_cast<int>(capacities.size()) != num_cores) {
    reject("core capacity vector has " + std::to_string(capacities.size()) +
           " entries for " + std::to_string(num_cores) + " cores");
  }
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const double c = capacities[i];
    if (!(c > 0.0) || c > 1.0) {
      reject("core capacity [" + std::to_string(i) + "] must be in (0, 1], " +
             "got " + std::to_string(c));
    }
  }
}

struct CfsParams {
  // Base sysctl values are 6 ms / 0.75 ms / 1 ms, but the kernel multiplies
  // them at boot by (1 + ilog2(ncpus)) -- x3 on a 4-core Odroid big
  // cluster. The defaults here are those effective (scaled) values; they
  // are what suppresses per-tuple wakeup-preemption ping-pong in pipelines.
  //
  // Target period over which all runnable entities should run once.
  SimDuration sched_latency = Millis(18);
  // Lower bound on a timeslice.
  SimDuration min_granularity = Micros(2250);
  // A waking entity preempts the running one only if it lags by more than
  // this (scaled by the wakee's weight, as in the kernel).
  SimDuration wakeup_granularity = Millis(3);
  // Sleeper-fairness credit: a waking entity's vruntime is clamped to
  // min_vruntime minus half the sched latency.
  SimDuration sleeper_bonus = Millis(9);
  // Cost charged when a core switches between distinct threads: the direct
  // switch plus the cache/TLB refill of bringing the next operator's working
  // set back (dominant on Odroid-class cores with small caches; the same
  // charge applies when a user-level scheduler's worker hops between
  // operators, src/ulss/).
  SimDuration context_switch_cost = Micros(50);
  // CPU consumed by a woken thread re-checking its wait predicate before the
  // body resumes useful work (futex wake path, queue recheck).
  SimDuration wakeup_check_cost = Micros(5);
  // Per-core relative compute capacity in (0, 1]: entry i scales how much
  // work core i retires per wall-clock nanosecond (the kernel's
  // SCHED_CAPACITY_SCALE view of big.LITTLE topologies, quantized to 1024
  // steps at machine construction). Empty means every core runs at full
  // capacity -- the symmetric-SMP behaviour, bit-identical to the
  // pre-heterogeneity scheduler. When set, the size must equal the
  // machine's core count (ValidateCoreCapacities, checked at construction).
  std::vector<double> core_capacities;
  // When false, wakeup placement, idle balancing and misfit migration
  // ignore core capacities (capacity-blind): the control arm of the
  // heterogeneity benches. No effect on symmetric machines.
  bool capacity_aware = true;
  // Fraction of total machine capacity SCHED_DEADLINE reservations may
  // claim; admission control rejects reservations that would push the
  // summed runtime/period utilization above capacity * this. Mirrors the
  // kernel's 95% default (sched_rt_runtime_us / sched_rt_period_us).
  double dl_admission_frac = 0.95;

  // Rejects configurations the scheduling math cannot handle (zero-length
  // target periods would yield zero timeslices and a livelocked core loop;
  // negative overheads would run time backwards). Machine calls this on
  // construction so a bad config fails with a clear message instead of
  // downstream UB.
  void Validate() const {
    const auto reject = [](const std::string& what) {
      throw std::invalid_argument("CfsParams: " + what);
    };
    if (sched_latency <= 0) {
      reject("sched_latency must be positive, got " +
             std::to_string(sched_latency) + "ns");
    }
    if (min_granularity <= 0) {
      reject("min_granularity must be positive, got " +
             std::to_string(min_granularity) + "ns");
    }
    if (min_granularity > sched_latency) {
      reject("min_granularity (" + std::to_string(min_granularity) +
             "ns) must not exceed sched_latency (" +
             std::to_string(sched_latency) + "ns)");
    }
    if (wakeup_granularity < 0) reject("wakeup_granularity must be >= 0");
    if (sleeper_bonus < 0) reject("sleeper_bonus must be >= 0");
    if (context_switch_cost < 0) reject("context_switch_cost must be >= 0");
    if (wakeup_check_cost < 0) reject("wakeup_check_cost must be >= 0");
    for (std::size_t i = 0; i < core_capacities.size(); ++i) {
      const double c = core_capacities[i];
      if (!(c > 0.0) || c > 1.0) {
        reject("core capacity [" + std::to_string(i) +
               "] must be in (0, 1], got " + std::to_string(c));
      }
    }
    if (!(dl_admission_frac > 0.0) || dl_admission_frac > 1.0) {
      reject("dl_admission_frac must be in (0, 1], got " +
             std::to_string(dl_admission_frac));
    }
  }
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_CFS_PARAMS_H_
