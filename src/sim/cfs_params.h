// Tunables of the simulated CFS scheduler.
//
// Defaults follow the Linux defaults on small-core machines (sched_latency
// 6 ms, min granularity 0.75 ms, wakeup granularity 1 ms). The context-switch
// cost models the direct plus cache-refill cost of a switch on Odroid-class
// ARM cores; it is the main inefficiency that priority-driven batching (the
// paper's Lachesis configurations) avoids relative to fair ping-ponging.
#ifndef LACHESIS_SIM_CFS_PARAMS_H_
#define LACHESIS_SIM_CFS_PARAMS_H_

#include <stdexcept>
#include <string>

#include "common/sim_time.h"

namespace lachesis::sim {

struct CfsParams {
  // Base sysctl values are 6 ms / 0.75 ms / 1 ms, but the kernel multiplies
  // them at boot by (1 + ilog2(ncpus)) -- x3 on a 4-core Odroid big
  // cluster. The defaults here are those effective (scaled) values; they
  // are what suppresses per-tuple wakeup-preemption ping-pong in pipelines.
  //
  // Target period over which all runnable entities should run once.
  SimDuration sched_latency = Millis(18);
  // Lower bound on a timeslice.
  SimDuration min_granularity = Micros(2250);
  // A waking entity preempts the running one only if it lags by more than
  // this (scaled by the wakee's weight, as in the kernel).
  SimDuration wakeup_granularity = Millis(3);
  // Sleeper-fairness credit: a waking entity's vruntime is clamped to
  // min_vruntime minus half the sched latency.
  SimDuration sleeper_bonus = Millis(9);
  // Cost charged when a core switches between distinct threads: the direct
  // switch plus the cache/TLB refill of bringing the next operator's working
  // set back (dominant on Odroid-class cores with small caches; the same
  // charge applies when a user-level scheduler's worker hops between
  // operators, src/ulss/).
  SimDuration context_switch_cost = Micros(50);
  // CPU consumed by a woken thread re-checking its wait predicate before the
  // body resumes useful work (futex wake path, queue recheck).
  SimDuration wakeup_check_cost = Micros(5);

  // Rejects configurations the scheduling math cannot handle (zero-length
  // target periods would yield zero timeslices and a livelocked core loop;
  // negative overheads would run time backwards). Machine calls this on
  // construction so a bad config fails with a clear message instead of
  // downstream UB.
  void Validate() const {
    const auto reject = [](const std::string& what) {
      throw std::invalid_argument("CfsParams: " + what);
    };
    if (sched_latency <= 0) {
      reject("sched_latency must be positive, got " +
             std::to_string(sched_latency) + "ns");
    }
    if (min_granularity <= 0) {
      reject("min_granularity must be positive, got " +
             std::to_string(min_granularity) + "ns");
    }
    if (min_granularity > sched_latency) {
      reject("min_granularity (" + std::to_string(min_granularity) +
             "ns) must not exceed sched_latency (" +
             std::to_string(sched_latency) + "ns)");
    }
    if (wakeup_granularity < 0) reject("wakeup_granularity must be >= 0");
    if (sleeper_bonus < 0) reject("sleeper_bonus must be >= 0");
    if (context_switch_cost < 0) reject("context_switch_cost must be >= 0");
    if (wakeup_check_cost < 0) reject("wakeup_check_cost must be >= 0");
  }
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_CFS_PARAMS_H_
