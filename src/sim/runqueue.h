// Allocation-free runqueues for the simulated CFS/RT scheduler.
//
// CfsRunQueue replaces the per-cgroup std::set<pair<vruntime, key>> of the
// seed implementation: an index-based flat binary min-heap over scheduling
// entities, ordered by (vruntime, key). Each entity carries its current
// heap position (SchedEntity::rq_pos), so erase and reposition are O(log n)
// with no per-node allocation. Because the (vruntime, key) order is a total
// order (keys are unique), the heap minimum is the exact element std::set's
// begin() produced -- scheduling decisions are bit-identical.
//
// RtRunQueue mirrors the kernel's RT runqueue: a fixed 100-level array of
// FIFO rings plus a two-word priority bitmap for O(1) highest-priority
// lookup. Rings grow once to the working-set size and are then reused.
#ifndef LACHESIS_SIM_RUNQUEUE_H_
#define LACHESIS_SIM_RUNQUEUE_H_

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/weights.h"

namespace lachesis::sim {

// Maximum supported depth of the cgroup hierarchy (number of non-root
// ancestors of any entity). The paper's translators create at most
// query-group -> operator-group nests; 16 leaves ample headroom and lets
// per-thread ancestor paths live in fixed inline arrays.
inline constexpr std::size_t kMaxCgroupDepth = 16;

// Scheduling entity: a thread or a cgroup inside its parent's runqueue.
struct SchedEntity {
  bool is_group = false;
  std::uint64_t id = 0;  // thread index or cgroup index
  std::uint64_t weight = kNice0Weight;
  double vruntime = 0.0;
  std::uint64_t parent = 0;   // cgroup index of the containing group
  bool queued = false;
  std::int32_t rq_pos = -1;   // heap slot while queued, -1 otherwise
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(is_group) << 63) | id;
  }
};

// Flat min-heap of queued children of one cgroup, ordered by
// (vruntime, key). Entries cache the entity pointer so the scheduler can go
// from heap minimum to entity without an index lookup.
class CfsRunQueue {
 public:
  struct Entry {
    double vruntime;
    std::uint64_t key;
    SchedEntity* ent;
  };

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // The queued child with the smallest (vruntime, key). Precondition:
  // !empty().
  [[nodiscard]] const Entry& Min() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  [[nodiscard]] double MinVruntime() const { return Min().vruntime; }

  // Smallest (vruntime, key) entry satisfying `fits`, or nullptr when none
  // does. Linear scan over the heap array -- used only by the
  // capacity-aware dispatch filter on the small cores of heterogeneous
  // machines, where runqueues hold at most a few dozen entities.
  template <typename Pred>
  [[nodiscard]] const Entry* MinWhere(Pred&& fits) const {
    const Entry* best = nullptr;
    for (const Entry& e : heap_) {
      if (!fits(e)) continue;
      if (best == nullptr || Less(e, *best)) best = &e;
    }
    return best;
  }

  void Insert(SchedEntity& ent) {
    assert(ent.rq_pos < 0);
    heap_.push_back(Entry{ent.vruntime, ent.key(), &ent});
    SiftUp(heap_.size() - 1);
  }

  void Erase(SchedEntity& ent) {
    assert(ent.rq_pos >= 0 &&
           static_cast<std::size_t>(ent.rq_pos) < heap_.size());
    const auto hole = static_cast<std::size_t>(ent.rq_pos);
    ent.rq_pos = -1;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (hole == heap_.size()) return;  // removed the tail slot
    heap_[hole] = last;
    heap_[hole].ent->rq_pos = static_cast<std::int32_t>(hole);
    Resift(hole);
  }

  // Repositions a queued entity after its vruntime changed.
  void Update(SchedEntity& ent, double new_vruntime) {
    assert(ent.rq_pos >= 0 &&
           static_cast<std::size_t>(ent.rq_pos) < heap_.size());
    ent.vruntime = new_vruntime;
    const auto pos = static_cast<std::size_t>(ent.rq_pos);
    heap_[pos].vruntime = new_vruntime;
    Resift(pos);
  }

 private:
  static bool Less(const Entry& lhs, const Entry& rhs) {
    if (lhs.vruntime != rhs.vruntime) return lhs.vruntime < rhs.vruntime;
    return lhs.key < rhs.key;
  }

  void Place(std::size_t pos, const Entry& entry) {
    heap_[pos] = entry;
    entry.ent->rq_pos = static_cast<std::int32_t>(pos);
  }

  void SiftUp(std::size_t hole) {
    const Entry entry = heap_[hole];
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (!Less(entry, heap_[parent])) break;
      Place(hole, heap_[parent]);
      hole = parent;
    }
    Place(hole, entry);
  }

  void SiftDown(std::size_t hole) {
    const Entry entry = heap_[hole];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && Less(heap_[child + 1], heap_[child])) ++child;
      if (!Less(heap_[child], entry)) break;
      Place(hole, heap_[child]);
      hole = child;
    }
    Place(hole, entry);
  }

  void Resift(std::size_t pos) {
    if (pos > 0 && Less(heap_[pos], heap_[(pos - 1) / 2])) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  std::vector<Entry> heap_;
};

// 100-level SCHED_FIFO runqueue with a priority bitmap, as in the kernel.
// Each level is a ring buffer supporting push-front (preempted threads
// resume ahead of their FIFO peers) without allocation in steady state.
class RtRunQueue {
 public:
  static constexpr int kLevels = 100;  // priorities 0..99; 0 unused (CFS)

  [[nodiscard]] bool empty() const { return bitmap_[0] == 0 && bitmap_[1] == 0; }

  // Highest non-empty priority, or -1 when the queue is empty.
  [[nodiscard]] int HighestPriority() const {
    if (bitmap_[1] != 0) {
      return 64 + 63 - std::countl_zero(bitmap_[1]);
    }
    if (bitmap_[0] != 0) {
      return 63 - std::countl_zero(bitmap_[0]);
    }
    return -1;
  }

  void PushBack(int priority, std::uint64_t tid) {
    Level(priority).PushBack(tid);
    MarkNonEmpty(priority);
  }

  void PushFront(int priority, std::uint64_t tid) {
    Level(priority).PushFront(tid);
    MarkNonEmpty(priority);
  }

  [[nodiscard]] std::uint64_t Front(int priority) const {
    return levels_[static_cast<std::size_t>(priority)].Front();
  }

  std::uint64_t PopFront(int priority) {
    Fifo& fifo = Level(priority);
    const std::uint64_t tid = fifo.PopFront();
    if (fifo.empty()) MarkEmpty(priority);
    return tid;
  }

  // Removes `tid` from wherever it sits in `priority`'s FIFO (priority
  // changes of queued threads; rare, O(level size)).
  void Erase(int priority, std::uint64_t tid) {
    Fifo& fifo = Level(priority);
    fifo.Erase(tid);
    if (fifo.empty()) MarkEmpty(priority);
  }

 private:
  // Power-of-two ring buffer of thread indices.
  class Fifo {
   public:
    [[nodiscard]] bool empty() const { return count_ == 0; }

    [[nodiscard]] std::uint64_t Front() const {
      assert(count_ > 0);
      return ring_[head_];
    }

    void PushBack(std::uint64_t tid) {
      GrowIfFull();
      ring_[(head_ + count_) & (ring_.size() - 1)] = tid;
      ++count_;
    }

    void PushFront(std::uint64_t tid) {
      GrowIfFull();
      head_ = (head_ + ring_.size() - 1) & (ring_.size() - 1);
      ring_[head_] = tid;
      ++count_;
    }

    std::uint64_t PopFront() {
      assert(count_ > 0);
      const std::uint64_t tid = ring_[head_];
      head_ = (head_ + 1) & (ring_.size() - 1);
      --count_;
      return tid;
    }

    void Erase(std::uint64_t tid) {
      for (std::size_t i = 0; i < count_; ++i) {
        const std::size_t slot = (head_ + i) & (ring_.size() - 1);
        if (ring_[slot] != tid) continue;
        // Shift the tail segment forward one slot, preserving FIFO order.
        for (std::size_t j = i + 1; j < count_; ++j) {
          const std::size_t from = (head_ + j) & (ring_.size() - 1);
          const std::size_t to = (head_ + j - 1) & (ring_.size() - 1);
          ring_[to] = ring_[from];
        }
        --count_;
        return;
      }
      assert(false && "thread not on this RT level");
    }

   private:
    void GrowIfFull() {
      if (count_ < ring_.size()) return;
      std::vector<std::uint64_t> grown(ring_.empty() ? 8 : ring_.size() * 2);
      for (std::size_t i = 0; i < count_; ++i) {
        grown[i] = ring_[(head_ + i) & (ring_.size() - 1)];
      }
      ring_ = std::move(grown);
      head_ = 0;
    }

    std::vector<std::uint64_t> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  Fifo& Level(int priority) {
    assert(priority > 0 && priority < kLevels);
    return levels_[static_cast<std::size_t>(priority)];
  }

  void MarkNonEmpty(int priority) {
    bitmap_[priority / 64] |= 1ULL << (priority % 64);
  }

  void MarkEmpty(int priority) {
    bitmap_[priority / 64] &= ~(1ULL << (priority % 64));
  }

  std::array<Fifo, kLevels> levels_;
  std::uint64_t bitmap_[2] = {0, 0};
};

// EDF runqueue for SCHED_DEADLINE threads: earliest absolute deadline
// first, thread index breaking ties deterministically. Utilization-based
// admission control bounds the number of deadline threads to a handful, so
// a flat vector with linear scans beats a heap on both code size and
// constant factor.
class DlRunQueue {
 public:
  struct Entry {
    std::int64_t deadline;  // absolute deadline (SimTime)
    std::uint64_t tid;
  };

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  void Push(std::uint64_t tid, std::int64_t deadline) {
    entries_.push_back(Entry{deadline, tid});
  }

  // The queued thread with the smallest (deadline, tid). Precondition:
  // !empty().
  [[nodiscard]] const Entry& Earliest() const {
    return entries_[EarliestPos()];
  }

  // Smallest (deadline, tid) entry satisfying `fits`, or nullptr when none
  // does -- the capacity-aware EDF pick on heterogeneous machines.
  template <typename Pred>
  [[nodiscard]] const Entry* EarliestWhere(Pred&& fits) const {
    const Entry* best = nullptr;
    for (const Entry& e : entries_) {
      if (!fits(e)) continue;
      if (best == nullptr || e.deadline < best->deadline ||
          (e.deadline == best->deadline && e.tid < best->tid)) {
        best = &e;
      }
    }
    return best;
  }

  std::uint64_t PopEarliest() {
    const std::size_t pos = EarliestPos();
    const std::uint64_t tid = entries_[pos].tid;
    entries_[pos] = entries_.back();
    entries_.pop_back();
    return tid;
  }

  // Removes `tid` wherever it sits (reservation changes of queued threads).
  void Erase(std::uint64_t tid) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].tid != tid) continue;
      entries_[i] = entries_.back();
      entries_.pop_back();
      return;
    }
    assert(false && "thread not on the deadline runqueue");
  }

 private:
  [[nodiscard]] std::size_t EarliestPos() const {
    assert(!entries_.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const Entry& b = entries_[best];
      if (e.deadline < b.deadline ||
          (e.deadline == b.deadline && e.tid < b.tid)) {
        best = i;
      }
    }
    return best;
  }

  std::vector<Entry> entries_;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_RUNQUEUE_H_
