// Linux CFS nice-to-weight mapping.
//
// This is the kernel's own prio_to_weight table (kernel/sched/core.c): each
// nice step changes the weight by ~1.25x, with nice 0 anchored at 1024 — the
// same constant used by cgroup cpu.shares. The paper's translator math
// (§5.3, F(x) = n_max + (log p_max - log x)/log 1.25) assumes exactly this
// geometry.
#ifndef LACHESIS_SIM_WEIGHTS_H_
#define LACHESIS_SIM_WEIGHTS_H_

#include <cstdint>

namespace lachesis::sim {

inline constexpr int kMinNice = -20;
inline constexpr int kMaxNice = 19;
inline constexpr std::uint64_t kNice0Weight = 1024;

// Weight for a nice value; out-of-range values are clamped.
constexpr std::uint64_t NiceToWeight(int nice) {
  constexpr std::uint64_t kTable[40] = {
      // -20 .. -11
      88761, 71755, 56483, 46273, 36291, 29154, 23254, 18705, 14949, 11916,
      // -10 .. -1
      9548, 7620, 6100, 4904, 3906, 3121, 2501, 1991, 1586, 1277,
      // 0 .. 9
      1024, 820, 655, 526, 423, 335, 272, 215, 172, 137,
      // 10 .. 19
      110, 87, 70, 56, 45, 36, 29, 23, 18, 15};
  if (nice < kMinNice) nice = kMinNice;
  if (nice > kMaxNice) nice = kMaxNice;
  return kTable[nice - kMinNice];
}

// cgroup-v1 cpu.shares bounds (kernel: 2 .. 2^18).
inline constexpr std::uint64_t kMinShares = 2;
inline constexpr std::uint64_t kMaxShares = 262144;

constexpr std::uint64_t ClampShares(std::uint64_t shares) {
  if (shares < kMinShares) return kMinShares;
  if (shares > kMaxShares) return kMaxShares;
  return shares;
}

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_WEIGHTS_H_
