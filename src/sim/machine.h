// A simulated multi-core host running a CFS-like scheduler.
//
// The Machine models exactly the knobs Lachesis turns (paper §2):
//  - per-thread nice values mapped through the kernel's weight table,
//  - a cgroup hierarchy whose cpu.shares act as group-entity weights,
//  - vruntime-ordered fair scheduling with timeslices derived from
//    sched_latency/min_granularity and weight-scaled wakeup preemption.
//
// Idealizations vs. the kernel (documented in DESIGN.md): a single global
// hierarchical runqueue feeds all cores (no per-CPU balancing), and group
// entities are charged the summed runtime of concurrently running children.
// Both preserve the weighted-fairness semantics the paper relies on.
#ifndef LACHESIS_SIM_MACHINE_H_
#define LACHESIS_SIM_MACHINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/stable_pool.h"
#include "sim/cfs_params.h"
#include "sim/event_queue.h"
#include "sim/runqueue.h"
#include "sim/simulator.h"
#include "sim/thread.h"
#include "sim/weights.h"

namespace lachesis::sim {

class Machine;

// Scheduler state transitions observable through SchedTraceObserver. The
// numeric values are part of the golden-trace digest format; do not reorder.
enum class SchedTransition : std::int32_t {
  kWake = 0,      // blocked/sleeping/new -> runnable
  kDispatch = 1,  // runnable -> running on a core
  kPreempt = 2,   // involuntarily descheduled (slice end / need_resched)
  kBlock = 3,     // running -> blocked on a WaitChannel
  kSleep = 4,     // running -> timed sleep
  kExit = 5,      // running -> exited
};

// Observer of scheduler transitions, used by the golden-trace determinism
// tests and schedule debugging. Callbacks fire synchronously on the
// scheduler's hot path; implementations must not mutate the machine.
class SchedTraceObserver {
 public:
  virtual ~SchedTraceObserver() = default;
  virtual void OnSchedTransition(SimTime time, ThreadId tid,
                                 SchedTransition kind) = 0;
};

// Condition-variable-like wakeup channel. Bodies block on it via
// Action::Wait and producers wake them with NotifyOne/NotifyAll; a woken
// body must re-check its predicate.
class WaitChannel {
 public:
  explicit WaitChannel(Machine& machine) : machine_(&machine) {}
  WaitChannel(const WaitChannel&) = delete;
  WaitChannel& operator=(const WaitChannel&) = delete;

  void NotifyOne();
  void NotifyAll();
  [[nodiscard]] bool has_waiters() const { return !waiters_.empty(); }

 private:
  friend class Machine;
  Machine* machine_;
  std::deque<ThreadId> waiters_;
};

class Machine final : public EventSink {
 public:
  // Throws std::invalid_argument for a non-positive core count or CfsParams
  // that fail CfsParams::Validate().
  Machine(Simulator& sim, int num_cores, CfsParams params = {},
          std::string name = "node0");
  ~Machine() override;
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- cgroups -------------------------------------------------------------
  [[nodiscard]] CgroupId root_cgroup() const { return CgroupId(0); }
  CgroupId CreateCgroup(std::string name, CgroupId parent,
                        std::uint64_t shares = kNice0Weight);
  void SetShares(CgroupId group, std::uint64_t shares);
  [[nodiscard]] std::uint64_t GetShares(CgroupId group) const;
  [[nodiscard]] const std::string& CgroupName(CgroupId group) const;

  // Sets a CFS-bandwidth quota: the group's CFS threads may consume at most
  // `quota` CPU time per `period` (summed over cores); when exhausted the
  // group is throttled until the next refill. quota = 0 disables. Models the
  // kernel's cpu.cfs_quota_us/cpu.cfs_period_us (cpu.max in v2), the
  // additional mechanism the paper's §8 names.
  void SetQuota(CgroupId group, SimDuration quota, SimDuration period);

  // --- threads -------------------------------------------------------------
  // Creates and immediately starts a thread. The machine owns the body.
  ThreadId CreateThread(std::string name, std::unique_ptr<ThreadBody> body,
                        CgroupId group, int nice = 0);
  void SetNice(ThreadId tid, int nice);
  [[nodiscard]] int GetNice(ThreadId tid) const;
  // Real-time scheduling (SCHED_FIFO-like): priority 1..99 preempts all CFS
  // threads; higher beats lower; FIFO within a level; no timeslice. 0
  // returns the thread to CFS. RT threads are exempt from cgroup CPU
  // quotas, as in the kernel.
  void SetRtPriority(ThreadId tid, int rt_priority);
  [[nodiscard]] int GetRtPriority(ThreadId tid) const;
  // SCHED_DEADLINE-like reservation (EDF above RT and CFS, with a CBS-style
  // budget): the thread receives `runtime` of CPU every `period`, replenished
  // periodically, and is throttled off-CPU when the budget is exhausted.
  // Throws std::invalid_argument for a malformed triple; returns false when
  // utilization-based admission control rejects the reservation (the thread
  // keeps its previous scheduling class). A zero triple clears the
  // reservation and returns the thread to its rt_priority/CFS class.
  bool SetDeadline(ThreadId tid, DeadlineParams dl);
  [[nodiscard]] DeadlineParams GetDeadline(ThreadId tid) const;
  [[nodiscard]] bool IsDeadline(ThreadId tid) const;
  void MoveToCgroup(ThreadId tid, CgroupId group);
  [[nodiscard]] CgroupId GetCgroup(ThreadId tid) const;
  [[nodiscard]] ThreadState GetState(ThreadId tid) const;
  [[nodiscard]] const ThreadStats& GetStats(ThreadId tid) const;
  [[nodiscard]] const std::string& ThreadName(ThreadId tid) const;
  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  // Sum of the weights currently queued in `group`'s runqueue (diagnostic;
  // the denominator of SliceFor for that group's children).
  [[nodiscard]] std::uint64_t QueuedWeight(CgroupId group) const;
  // The CFS timeslice the thread would receive if dispatched now.
  [[nodiscard]] SimDuration TimesliceFor(ThreadId tid) const;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] SimTime now() const { return sim_->now(); }
  [[nodiscard]] Simulator& simulator() { return *sim_; }
  [[nodiscard]] int num_cores() const { return static_cast<int>(cores_.size()); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CfsParams& params() const { return params_; }
  // Aggregate busy time over all cores since simulation start.
  [[nodiscard]] SimDuration total_busy_time() const;
  // Scheduler-state introspection for the conformance harness
  // (src/conformance/): raw vruntimes and occupancy counts that invariant
  // checkers sample while a scenario runs. Diagnostic only -- values are in
  // the simulator's internal weighted-nanosecond frame.
  [[nodiscard]] std::size_t cgroup_count() const { return cgroups_.size(); }
  [[nodiscard]] double ThreadVruntime(ThreadId tid) const {
    return Thread(tid.value()).ent.vruntime;
  }
  [[nodiscard]] double GroupMinVruntime(CgroupId group) const {
    return Group(group.value()).min_vruntime;
  }
  // Cores with no thread dispatched right now.
  [[nodiscard]] int IdleCoreCount() const;
  // Threads that are runnable (queued, not running) and not blocked behind a
  // quota-throttled ancestor or an exhausted deadline budget; with
  // work-conserving scheduling this must be 0 whenever IdleCoreCount() > 0.
  [[nodiscard]] int UnthrottledRunnableCount() const;

  // --- heterogeneous capacity ----------------------------------------------
  // The kernel's SCHED_CAPACITY_SCALE: a full-capacity core in the integer
  // capacity frame all work accounting uses.
  static constexpr std::uint32_t kFullCapacity = 1024;
  // Per-core capacity in kFullCapacity units (1024 = full-speed core).
  [[nodiscard]] std::uint32_t CoreCapacity(int core) const {
    return cores_[static_cast<std::size_t>(core)].capacity;
  }
  // Work retired by `wall` nanoseconds on a core of `capacity`, and the
  // wall-clock a core needs to retire `work` (ceiling). The full-capacity
  // fast paths are exact identities, which keeps symmetric machines
  // bit-identical to the pre-heterogeneity scheduler; for smaller cores the
  // pair round-trips exactly (WorkFor(WallFor(w)) == w), so compute never
  // over- or under-runs its scheduled end.
  [[nodiscard]] static SimDuration WorkFor(SimDuration wall,
                                           std::uint32_t capacity) {
    return capacity == kFullCapacity ? wall : wall * capacity / kFullCapacity;
  }
  [[nodiscard]] static SimDuration WallFor(SimDuration work,
                                           std::uint32_t capacity) {
    return capacity == kFullCapacity
               ? work
               : (work * kFullCapacity + capacity - 1) / capacity;
  }
  // Sum of core capacities in full-core units (4.0 for 4 symmetric cores).
  [[nodiscard]] double TotalCapacity() const;
  // Running CFS threads whose remaining work would overrun a latency period
  // on their current core while a strictly bigger core sits idle. With
  // capacity-aware migration this is 0 at every quiescent point; the
  // conformance fuzzer probes it (persistent nonzero = lost misfit task).
  [[nodiscard]] int MisfitRunnerCount() const;

  // --- SCHED_DEADLINE admission introspection ------------------------------
  // Summed runtime/period utilization of admitted reservations, and the
  // bound admission control enforces (dl_admission_frac * TotalCapacity()).
  [[nodiscard]] double DlAdmittedUtilization() const {
    return dl_admitted_util_;
  }
  [[nodiscard]] double DlUtilizationBound() const {
    return params_.dl_admission_frac * TotalCapacity();
  }

  // Installs (or clears, with nullptr) the transition observer.
  void set_trace_observer(SchedTraceObserver* observer) {
    trace_observer_ = observer;
  }

  // EventSink:
  void HandleEvent(std::int32_t code, std::uint64_t a, std::uint64_t b) override;

 private:
  friend class WaitChannel;

  struct CgroupNode {
    std::string name;
    SchedEntity ent;
    // Queued children ordered by (vruntime, key).
    CfsRunQueue rq;
    std::uint64_t total_queued_weight = 0;
    double min_vruntime = 0.0;
    int running_children = 0;  // running threads whose path crosses this group
    bool is_root = false;
    // CFS bandwidth control (0 = no quota).
    SimDuration quota = 0;
    SimDuration quota_period = 0;
    SimDuration quota_used = 0;
    bool throttled = false;
    std::uint64_t quota_version = 0;  // invalidates refill chains
  };

  struct ThreadNode {
    std::string name;
    std::unique_ptr<ThreadBody> body;
    ThreadState state = ThreadState::kNew;
    int nice = 0;
    int rt_priority = 0;        // 0 = CFS, 1..99 = SCHED_FIFO-like
    bool rt_queued = false;     // on an RT runqueue
    // SCHED_DEADLINE state. While is_deadline, the EDF class overrides
    // rt_priority/CFS; dl_budget is the wall-clock service remaining this
    // period and dl_throttled parks the thread (runnable but off-queue)
    // until the next replenishment.
    bool is_deadline = false;
    bool dl_queued = false;     // on the machine's EDF runqueue
    bool dl_throttled = false;  // budget exhausted, awaiting replenishment
    DeadlineParams dl;
    SimDuration dl_budget = 0;
    SimTime dl_deadline_at = 0;    // current absolute deadline
    std::uint64_t dl_version = 0;  // invalidates stale replenish events
    SimTime enqueued_at = 0;    // for runnable-wait (PSI-like) accounting
    SchedEntity ent;
    SimDuration remaining_compute = 0;
    SimDuration pending_overhead = 0;
    int core = -1;       // valid iff state == kRunning
    int last_core = -1;  // for wake affinity (preemption targets this core)
    SimTime run_start = 0;
    std::uint64_t version = 0;  // invalidates stale timer events
    WaitChannel* waiting = nullptr;
    ThreadStats stats;
    // Cached ancestor cgroup chain, deepest (the direct parent) first and
    // excluding the root. Rebuilt eagerly by CreateThread/MoveToCgroup --
    // the only operations that change a thread's containing chain, since
    // cgroups are never reparented. ChargeRunning, PathThrottled, and the
    // running_children walks iterate this instead of chasing parent links.
    std::array<std::uint32_t, kMaxCgroupDepth> path{};
    std::uint32_t path_depth = 0;
  };

  struct Core {
    std::int64_t running = -1;      // thread index, -1 when idle
    std::int64_t last_thread = -1;  // to skip switch cost on re-pick
    SimTime slice_end = 0;
    std::uint64_t version = 0;  // invalidates stale core events
    SimDuration busy = 0;
    std::uint32_t capacity = kFullCapacity;
  };

  // Event codes.
  static constexpr std::int32_t kCoreEvent = 1;
  static constexpr std::int32_t kTimerWake = 2;
  static constexpr std::int32_t kQuotaRefill = 3;
  static constexpr std::int32_t kDlReplenish = 4;

  void Trace(SchedTransition kind, std::uint64_t thread_idx) {
    if (trace_observer_ != nullptr) {
      trace_observer_->OnSchedTransition(now(), ThreadId(thread_idx), kind);
    }
  }

  // Rebuilds t.path from the current cgroup hierarchy.
  void BuildPath(ThreadNode& t);

  CgroupNode& Group(std::uint64_t idx) {
    return cgroups_.at(static_cast<std::uint32_t>(idx));
  }
  const CgroupNode& Group(std::uint64_t idx) const {
    return cgroups_.at(static_cast<std::uint32_t>(idx));
  }
  ThreadNode& Thread(std::uint64_t idx) {
    return threads_.at(static_cast<std::uint32_t>(idx));
  }
  const ThreadNode& Thread(std::uint64_t idx) const {
    return threads_.at(static_cast<std::uint32_t>(idx));
  }

  void EnqueueEntity(SchedEntity& ent, bool sleeper_clamp);
  void DequeueEntity(SchedEntity& ent);
  void ReinsertQueued(SchedEntity& ent, double new_vruntime);
  void UpdateMinVruntime(CgroupNode& group, double candidate);

  void ChargeRunning(ThreadNode& t, SimDuration delta);
  SimDuration SliceFor(const ThreadNode& t) const;
  void ScheduleCoreEvent(int core_idx);

  void Dispatch(int core_idx, std::uint64_t thread_idx);
  void PickNext(int core_idx);
  // Deschedules the running thread of `core_idx` after charging; does not
  // change the thread's state (caller decides requeue/block).
  void StopRunning(int core_idx);
  void AdvanceBody(int core_idx, std::uint64_t thread_idx);

  void WakeThread(std::uint64_t thread_idx, SimDuration startup_cost);
  void TryDispatchWake(std::uint64_t thread_idx);
  // Remaining work (pending overhead + compute) of a running thread after
  // accounting for the wall time consumed since run_start.
  [[nodiscard]] SimDuration RemainingWorkNow(const ThreadNode& t) const;
  // Misfit upgrade: moves the CFS runner of `core_idx` to a strictly bigger
  // idle core when its remaining work would overrun a latency period on the
  // current core. Returns true if it migrated (core_idx was refilled).
  bool TryMisfitUpgrade(int core_idx, std::uint64_t thread_idx);
  // Misfit pull: an idle core steals a long-running CFS task from a
  // strictly smaller core (called by PickNext when the runqueue is empty).
  // Returns true when it stole and dispatched.
  bool TryMisfitSteal(int core_idx);
  // Capacity-aware dispatch filter helpers (PickNext on small cores):
  // the first idle core strictly bigger than `core_idx`, or -1.
  [[nodiscard]] int IdleBiggerCore(int core_idx) const;
  // True when some strictly bigger core runs a slice- or budget-bounded
  // thread (CFS or deadline) and is therefore guaranteed to re-pick from
  // the shared runqueue soon. SCHED_FIFO runners give no such bound.
  [[nodiscard]] bool BiggerCoreReleasesSoon(int core_idx) const;
  // Capacity-aware SCHED_DEADLINE placement: true when `capacity` can
  // serve the reservation's bandwidth (runtime/period <= capacity share).
  // The CBS budget is wall-clock, so a core below this bound throttles the
  // reservation every period without retiring the promised work.
  [[nodiscard]] bool DlFits(const ThreadNode& t, std::uint32_t capacity) const;
  // Preempts the weakest runner for a deadline wakee (CFS first, then the
  // lowest-priority RT runner, then the deadline runner with the latest
  // absolute deadline strictly after the wakee's). With `fit_only`, only
  // cores whose capacity fits the wakee's bandwidth are considered.
  // Returns true when a target core was marked for rescheduling.
  bool PreemptForDeadline(std::uint64_t thread_idx, bool fit_only);
  // Requeues a runnable thread: RT threads to the front of their FIFO level
  // (they were preempted), CFS threads into their group's tree.
  void RequeueRunnable(ThreadNode& t, bool preempted);
  // Marks a core for rescheduling at the current instant (need_resched).
  void TruncateCore(int core_idx);
  // True if any cgroup on the thread's path is quota-throttled.
  [[nodiscard]] bool PathThrottled(const ThreadNode& t) const;
  void ThrottleGroup(std::uint64_t group_idx);
  void OnQuotaRefill(std::uint64_t group_idx, std::uint64_t version);
  // > 0 if `wakee` should preempt `runner` (LCA vruntime comparison with
  // weight-scaled wakeup granularity); value is the margin.
  double PreemptMargin(const ThreadNode& wakee, const ThreadNode& runner);

  void OnCoreEvent(std::uint64_t core_idx, std::uint64_t version);
  void OnTimerWake(std::uint64_t thread_idx, std::uint64_t version);
  void OnDlReplenish(std::uint64_t thread_idx, std::uint64_t version);

  // Highest-priority waiting RT thread, or -1.
  [[nodiscard]] std::int64_t PeekRt() const;

  void NotifyChannel(WaitChannel& channel, std::size_t max_wakeups);

  Simulator* sim_;
  CfsParams params_;
  std::string name_;
  // Thread whose body is currently executing (the "waker" during wakeups
  // it triggers); -1 outside body callbacks.
  std::int64_t current_thread_ = -1;
  std::vector<Core> cores_;
  // Entity tables: append-only slot pools (the sim never removes entities),
  // so node addresses are stable across growth, slot indices are dense and
  // equal creation order (== ThreadId/CgroupId values, exactly like the
  // vector-of-unique_ptr these replace), and creating an entity costs one
  // chunked-pool slot instead of a per-node heap allocation.
  StablePool<CgroupNode> cgroups_;
  StablePool<ThreadNode> threads_;
  // RT runqueues: fixed priority levels plus bitmap (SCHED_FIFO).
  RtRunQueue rt_queues_;
  // EDF runqueue (SCHED_DEADLINE class, above RT).
  DlRunQueue dl_queue_;
  double dl_admitted_util_ = 0.0;
  // True when any core runs below full capacity; every heterogeneity-only
  // code path is gated on it so symmetric machines take the exact
  // pre-heterogeneity branches.
  bool hetero_ = false;
  // Core indices ordered by (capacity descending, index ascending): the
  // preference order for idle-core placement. The identity permutation on
  // symmetric machines.
  std::vector<int> core_order_;
  SchedTraceObserver* trace_observer_ = nullptr;
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_MACHINE_H_
