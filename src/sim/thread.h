// Simulated thread bodies.
//
// A simulated kernel thread executes a ThreadBody: a resumable state machine
// that, each time it is asked, returns the next Action the thread performs
// (burn CPU, wait on a channel, sleep, exit). This inverts control relative
// to real threads but models the same scheduler-visible behaviour: threads
// consume CPU while Running, leave the runqueue while Blocked/Sleeping, and
// pay a context-switch cost when a core switches to them.
#ifndef LACHESIS_SIM_THREAD_H_
#define LACHESIS_SIM_THREAD_H_

#include <cstdint>
#include <string>

#include "common/ids.h"
#include "common/sim_time.h"

namespace lachesis::sim {

class WaitChannel;
class Machine;

// What a thread does next. Returned by ThreadBody::Next.
struct Action {
  enum class Kind : std::uint8_t {
    kCompute,  // burn `duration` of CPU time, then ask again
    kWait,     // block until `channel` is notified, then ask again
    kSleep,    // leave the CPU for `duration` (timed block / blocking I/O)
    kExit,     // terminate the thread
  };

  static Action Compute(SimDuration d) { return {Kind::kCompute, d, nullptr}; }
  static Action Wait(WaitChannel& ch) { return {Kind::kWait, 0, &ch}; }
  static Action Sleep(SimDuration d) { return {Kind::kSleep, d, nullptr}; }
  static Action Exit() { return {Kind::kExit, 0, nullptr}; }

  Kind kind = Kind::kExit;
  SimDuration duration = 0;
  WaitChannel* channel = nullptr;
};

// The logic run by a simulated thread. Next() is invoked when the previous
// action has completed (compute consumed, wait notified, sleep elapsed).
// Wait semantics are those of a condition variable: a woken body must
// re-check its predicate and may wait again.
class ThreadBody {
 public:
  virtual ~ThreadBody() = default;
  virtual Action Next(Machine& machine) = 0;
};

enum class ThreadState : std::uint8_t {
  kNew,       // created, not yet started
  kRunnable,  // on a runqueue
  kRunning,   // on a core
  kBlocked,   // waiting on a WaitChannel
  kSleeping,  // timed sleep
  kExited,
};

// Per-thread statistics exposed to drivers and experiment reports.
struct ThreadStats {
  SimDuration cpu_time = 0;            // total CPU consumed (incl. overheads)
  SimDuration wait_time = 0;           // time spent runnable-but-not-running
                                       // (the per-task view of PSI "some" CPU
                                       // pressure, paper S8 future work)
  std::uint64_t nr_switches = 0;       // context switches paid
  std::uint64_t nr_wakeups = 0;        // transitions blocked/sleeping -> runnable
  std::uint64_t nr_preemptions = 0;    // involuntary descheduling
  std::uint64_t nr_dl_throttles = 0;   // SCHED_DEADLINE budget exhaustions
                                       // (CBS throttles until replenishment)
  std::uint64_t nr_migrations = 0;     // dispatches onto a different core than
                                       // the last one (wake moves, misfit
                                       // pulls/upgrades on hetero machines)
};

}  // namespace lachesis::sim

#endif  // LACHESIS_SIM_THREAD_H_
