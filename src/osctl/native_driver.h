// SpeDriver for a real, unmodified engine process on this host.
//
// Mirrors what the paper's drivers do against Storm/Flink/Liebre:
//  - the ENTITY GRAPH comes from public OS surfaces: the engine's threads
//    are enumerated via /proc and matched to operators by thread-name
//    patterns (engines name their executor threads after components);
//  - RAW METRICS come from the metric store the engine already reports to.
//    Here that is a Graphite-plaintext file ("<series> <value> <timestamp>"
//    lines, the graphite line protocol) that a scraper/exporter appends to;
//    Refresh() tails it into an in-memory TimeSeriesStore.
//
// The driver is configured with a NativeSpeConfig describing the queries:
// logical topology, per-operator thread-name patterns and metric series
// names. Nothing about the engine is modified (goal G2).
#ifndef LACHESIS_OSCTL_NATIVE_DRIVER_H_
#define LACHESIS_OSCTL_NATIVE_DRIVER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/driver.h"
#include "tsdb/tsdb.h"

namespace lachesis::osctl {

struct NativeOperatorConfig {
  std::string name;            // logical operator name
  std::string thread_pattern;  // substring matched against /proc comm values
  // Series prefix in the metric file; "<prefix>.<metric>" is looked up with
  // the MetricName() suffixes (queue_size, tuples_in_delta, ...).
  std::string series_prefix;
  bool is_ingress = false;
  bool is_egress = false;
};

struct NativeQueryConfig {
  std::string name;
  long pid = -1;  // engine process
  std::vector<NativeOperatorConfig> operators;
  std::vector<std::pair<int, int>> edges;  // logical DAG
};

struct NativeSpeConfig {
  std::string name = "native";
  std::string proc_root = "/proc";
  std::string metrics_file;  // graphite line-protocol file
  // Metrics the engine's exporter actually publishes (drives Provides()).
  std::set<core::MetricId> provided;
  std::vector<NativeQueryConfig> queries;
};

class NativeSpeDriver final : public core::SpeDriver {
 public:
  explicit NativeSpeDriver(NativeSpeConfig config);

  // Re-scans /proc and ingests new lines of the metrics file. Call once per
  // scheduling period; the runner does this automatically through Poll().
  void Refresh(SimTime now);

  // SpeDriver refresh hook: the control loop polls the live engine at the
  // start of every period this driver participates in.
  void Poll(SimTime now) override { Refresh(now); }

  [[nodiscard]] const std::string& name() const override { return name_; }
  std::vector<core::EntityInfo> Entities() override;
  const core::LogicalTopology& Topology(QueryId query) override;
  [[nodiscard]] bool Provides(core::MetricId metric) const override;
  double Fetch(core::MetricId metric, const core::EntityInfo& entity) override;

  [[nodiscard]] const tsdb::TimeSeriesStore& store() const { return store_; }

 private:
  NativeSpeConfig config_;
  std::string name_;
  std::vector<core::LogicalTopology> topologies_;
  tsdb::TimeSeriesStore store_;
  std::streamoff metrics_offset_ = 0;
  // (query idx, operator idx) -> resolved tid (-1 while unresolved).
  std::map<std::pair<std::size_t, std::size_t>, long> tids_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_NATIVE_DRIVER_H_
