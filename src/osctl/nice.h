// Per-thread nice control on real Linux.
//
// The syscall surface is behind an interface so higher layers (and tests)
// can run against a recording fake; the real implementation uses
// setpriority/getpriority with PRIO_PROCESS ids, which on Linux address a
// single thread.
#ifndef LACHESIS_OSCTL_NICE_H_
#define LACHESIS_OSCTL_NICE_H_

#include <map>
#include <optional>

namespace lachesis::osctl {

class NiceController {
 public:
  virtual ~NiceController() = default;
  // Returns false (and leaves errno set, for the real impl) on failure.
  virtual bool SetNice(long tid, int nice) = 0;
  virtual std::optional<int> GetNice(long tid) = 0;
};

// Real syscalls.
class LinuxNiceController final : public NiceController {
 public:
  bool SetNice(long tid, int nice) override;
  std::optional<int> GetNice(long tid) override;
};

// SCHED_FIFO control (paper §8's "real-time threads" mechanism).
class RtController {
 public:
  virtual ~RtController() = default;
  // priority 1..99 = SCHED_FIFO; 0 = back to SCHED_OTHER.
  virtual bool SetRtPriority(long tid, int priority) = 0;
  // Current SCHED_FIFO/RR priority (0 = fair class); nullopt when the
  // thread is gone or the controller cannot observe it. Used by restart
  // reconciliation.
  virtual std::optional<int> GetRtPriority(long tid) {
    (void)tid;
    return std::nullopt;
  }
};

class LinuxRtController final : public RtController {
 public:
  bool SetRtPriority(long tid, int priority) override;
  std::optional<int> GetRtPriority(long tid) override;
};

class FakeRtController final : public RtController {
 public:
  bool SetRtPriority(long tid, int priority) override {
    priorities_[tid] = priority;
    return true;
  }
  std::optional<int> GetRtPriority(long tid) override {
    const auto it = priorities_.find(tid);
    if (it == priorities_.end()) return 0;
    return it->second;
  }
  [[nodiscard]] const std::map<long, int>& priorities() const {
    return priorities_;
  }

 private:
  std::map<long, int> priorities_;
};

// Recording fake for tests and --dry-run tooling.
class FakeNiceController final : public NiceController {
 public:
  bool SetNice(long tid, int nice) override {
    nices_[tid] = nice;
    return true;
  }
  std::optional<int> GetNice(long tid) override {
    const auto it = nices_.find(tid);
    if (it == nices_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] const std::map<long, int>& nices() const { return nices_; }

 private:
  std::map<long, int> nices_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_NICE_H_
