// Per-thread nice control on real Linux.
//
// The syscall surface is behind an interface so higher layers (and tests)
// can run against a recording fake; the real implementation uses
// setpriority/getpriority with PRIO_PROCESS ids, which on Linux address a
// single thread.
#ifndef LACHESIS_OSCTL_NICE_H_
#define LACHESIS_OSCTL_NICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace lachesis::osctl {

class NiceController {
 public:
  virtual ~NiceController() = default;
  // Returns false (and leaves errno set, for the real impl) on failure.
  virtual bool SetNice(long tid, int nice) = 0;
  virtual std::optional<int> GetNice(long tid) = 0;
};

// Real syscalls.
class LinuxNiceController final : public NiceController {
 public:
  bool SetNice(long tid, int nice) override;
  std::optional<int> GetNice(long tid) override;
};

// SCHED_FIFO control (paper §8's "real-time threads" mechanism).
class RtController {
 public:
  virtual ~RtController() = default;
  // priority 1..99 = SCHED_FIFO; 0 = back to SCHED_OTHER.
  virtual bool SetRtPriority(long tid, int priority) = 0;
  // Current SCHED_FIFO/RR priority (0 = fair class); nullopt when the
  // thread is gone or the controller cannot observe it. Used by restart
  // reconciliation.
  virtual std::optional<int> GetRtPriority(long tid) {
    (void)tid;
    return std::nullopt;
  }
};

class LinuxRtController final : public RtController {
 public:
  bool SetRtPriority(long tid, int priority) override;
  std::optional<int> GetRtPriority(long tid) override;
};

class FakeRtController final : public RtController {
 public:
  bool SetRtPriority(long tid, int priority) override {
    priorities_[tid] = priority;
    return true;
  }
  std::optional<int> GetRtPriority(long tid) override {
    const auto it = priorities_.find(tid);
    if (it == priorities_.end()) return 0;
    return it->second;
  }
  [[nodiscard]] const std::map<long, int>& priorities() const {
    return priorities_;
  }

 private:
  std::map<long, int> priorities_;
};

// SCHED_DEADLINE control (sched_setattr). The all-zero triple returns the
// thread to SCHED_OTHER. Kernel-side admission control may reject a
// reservation (EBUSY) and unprivileged callers get EPERM; callers must
// treat a false return as "mechanism unavailable or over-committed" and
// degrade (the daemon's ladder falls back to rt/nice).
struct DeadlineTriple {
  std::uint64_t runtime_ns = 0;
  std::uint64_t deadline_ns = 0;
  std::uint64_t period_ns = 0;
};

class DeadlineController {
 public:
  virtual ~DeadlineController() = default;
  // Returns false (errno set, for the real impl) on failure.
  virtual bool SetDeadline(long tid, std::uint64_t runtime_ns,
                           std::uint64_t deadline_ns,
                           std::uint64_t period_ns) = 0;
  // Current reservation (all-zero = not SCHED_DEADLINE); nullopt when the
  // thread is gone or unobservable. Used by restart reconciliation.
  virtual std::optional<DeadlineTriple> GetDeadline(long tid) {
    (void)tid;
    return std::nullopt;
  }
};

// Real sched_setattr/sched_getattr syscalls; compiled to a graceful
// errno=ENOSYS failure on kernels/libcs without the syscall numbers.
class LinuxDeadlineController final : public DeadlineController {
 public:
  bool SetDeadline(long tid, std::uint64_t runtime_ns,
                   std::uint64_t deadline_ns,
                   std::uint64_t period_ns) override;
  std::optional<DeadlineTriple> GetDeadline(long tid) override;
};

class FakeDeadlineController final : public DeadlineController {
 public:
  bool SetDeadline(long tid, std::uint64_t runtime_ns,
                   std::uint64_t deadline_ns,
                   std::uint64_t period_ns) override {
    deadlines_[tid] = {runtime_ns, deadline_ns, period_ns};
    return true;
  }
  std::optional<DeadlineTriple> GetDeadline(long tid) override {
    const auto it = deadlines_.find(tid);
    if (it == deadlines_.end()) return DeadlineTriple{};
    return it->second;
  }
  [[nodiscard]] const std::map<long, DeadlineTriple>& deadlines() const {
    return deadlines_;
  }

 private:
  std::map<long, DeadlineTriple> deadlines_;
};

// CPU-set placement control (sched_setaffinity): binds a thread to an
// explicit core list. An empty list restores the full affinity mask. Used
// to steer latency-critical threads onto big cores on big.LITTLE hosts.
class AffinityController {
 public:
  virtual ~AffinityController() = default;
  virtual bool SetAffinity(long tid, const std::vector<int>& cpus) = 0;
};

class LinuxAffinityController final : public AffinityController {
 public:
  bool SetAffinity(long tid, const std::vector<int>& cpus) override;
};

class FakeAffinityController final : public AffinityController {
 public:
  bool SetAffinity(long tid, const std::vector<int>& cpus) override {
    affinities_[tid] = cpus;
    return true;
  }
  [[nodiscard]] const std::map<long, std::vector<int>>& affinities() const {
    return affinities_;
  }

 private:
  std::map<long, std::vector<int>> affinities_;
};

// Recording fake for tests and --dry-run tooling.
class FakeNiceController final : public NiceController {
 public:
  bool SetNice(long tid, int nice) override {
    nices_[tid] = nice;
    return true;
  }
  std::optional<int> GetNice(long tid) override {
    const auto it = nices_.find(tid);
    if (it == nices_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] const std::map<long, int>& nices() const { return nices_; }

 private:
  std::map<long, int> nices_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_NICE_H_
