#include "osctl/daemon_config.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace lachesis::osctl {

namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void Fail(int line, const std::string& message) {
  throw std::runtime_error("config line " + std::to_string(line) + ": " +
                           message);
}

long ParseLong(const std::string& value, int line, const std::string& key) {
  std::size_t consumed = 0;
  long parsed = 0;
  try {
    parsed = std::stol(value, &consumed);
  } catch (const std::exception&) {
    Fail(line, key + " must be an integer, got '" + value + "'");
  }
  if (consumed != value.size()) {
    Fail(line, key + " must be an integer, got '" + value + "'");
  }
  return parsed;
}

bool ParseBool(const std::string& value, int line, const std::string& key) {
  if (value == "true" || value == "1" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "off" || value == "no") {
    return false;
  }
  Fail(line, key + " must be a boolean (true/false), got '" + value + "'");
}

// Space-separated core id list, e.g. "4 5 6 7".
std::vector<int> ParseCoreList(const std::string& value, int line,
                               const std::string& key) {
  std::vector<int> cores;
  std::istringstream in(value);
  std::string token;
  while (in >> token) {
    const long core = ParseLong(token, line, key);
    if (core < 0) Fail(line, key + " core ids must be >= 0");
    cores.push_back(static_cast<int>(core));
  }
  return cores;
}

double ParseDouble(const std::string& value, int line, const std::string& key) {
  std::size_t consumed = 0;
  double parsed = 0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    Fail(line, key + " must be a number, got '" + value + "'");
  }
  if (consumed != value.size()) {
    Fail(line, key + " must be a number, got '" + value + "'");
  }
  return parsed;
}

core::MetricId MetricFromName(const std::string& name, int line) {
  static const std::map<std::string, core::MetricId> kNames = {
      {"tuples_in_total", core::MetricId::kTuplesInTotal},
      {"tuples_out_total", core::MetricId::kTuplesOutTotal},
      {"tuples_in_delta", core::MetricId::kTuplesInDelta},
      {"tuples_out_delta", core::MetricId::kTuplesOutDelta},
      {"busy_delta_ns", core::MetricId::kBusyDeltaNs},
      {"buffer_usage", core::MetricId::kBufferUsage},
      {"buffer_capacity", core::MetricId::kBufferCapacity},
      {"queue_size", core::MetricId::kQueueSize},
      {"cost", core::MetricId::kCost},
      {"selectivity", core::MetricId::kSelectivity},
      {"head_tuple_age", core::MetricId::kHeadTupleAge},
      {"queue_high_water", core::MetricId::kQueueHighWater},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end()) Fail(line, "unknown metric '" + name + "'");
  return it->second;
}

}  // namespace

DaemonConfig ParseDaemonConfig(const std::string& text) {
  DaemonConfig config;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  NativeQueryConfig* current_query = nullptr;
  NativeChainConfig* current_chain = nullptr;
  std::map<std::string, int> operator_index;  // within current query
  bool in_lachesis_section = false;

  while (std::getline(in, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') Fail(line_number, "unterminated section header");
      const std::string header = Trim(line.substr(1, line.size() - 2));
      if (header == "lachesis") {
        in_lachesis_section = true;
        current_query = nullptr;
        current_chain = nullptr;
      } else if (header.rfind("native-query", 0) == 0) {
        in_lachesis_section = false;
        current_query = nullptr;
        NativeChainConfig chain;
        chain.name = Trim(header.substr(12));
        if (chain.name.empty()) {
          Fail(line_number, "native-query section needs a name");
        }
        config.native_queries.push_back(std::move(chain));
        current_chain = &config.native_queries.back();
      } else if (header.rfind("query", 0) == 0) {
        in_lachesis_section = false;
        current_chain = nullptr;
        NativeQueryConfig query;
        query.name = Trim(header.substr(5));
        if (query.name.empty()) Fail(line_number, "query section needs a name");
        config.spe.queries.push_back(std::move(query));
        current_query = &config.spe.queries.back();
        operator_index.clear();
      } else {
        Fail(line_number, "unknown section '" + header + "'");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) Fail(line_number, "expected key = value");
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));

    if (in_lachesis_section) {
      if (key == "period_ms") {
        config.period_ms = ParseLong(value, line_number, key);
        if (config.period_ms <= 0) Fail(line_number, "period must be positive");
      } else if (key == "backoff_base_ms") {
        config.backoff_base_ms = ParseLong(value, line_number, key);
        if (config.backoff_base_ms <= 0) {
          Fail(line_number, "backoff_base_ms must be positive");
        }
      } else if (key == "backoff_cap_ms") {
        config.backoff_cap_ms = ParseLong(value, line_number, key);
        if (config.backoff_cap_ms < 0) {
          Fail(line_number, "backoff_cap_ms must be >= 0 (0 = uncapped)");
        }
      } else if (key == "breaker_threshold") {
        config.breaker_threshold = ParseLong(value, line_number, key);
        if (config.breaker_threshold < 1) {
          Fail(line_number, "breaker_threshold must be >= 1");
        }
      } else if (key == "breaker_probe_ms") {
        config.breaker_probe_ms = ParseLong(value, line_number, key);
        if (config.breaker_probe_ms <= 0) {
          Fail(line_number, "breaker_probe_ms must be positive");
        }
      } else if (key == "degradation") {
        config.degradation = ParseBool(value, line_number, key);
      } else if (key == "reconcile") {
        config.reconcile = ParseBool(value, line_number, key);
      } else if (key == "dl_runtime_ms") {
        config.dl_runtime_ms = ParseLong(value, line_number, key);
        if (config.dl_runtime_ms <= 0) {
          Fail(line_number, "dl_runtime_ms must be positive");
        }
      } else if (key == "dl_period_ms") {
        config.dl_period_ms = ParseLong(value, line_number, key);
        if (config.dl_period_ms <= 0) {
          Fail(line_number, "dl_period_ms must be positive");
        }
      } else if (key == "critical_queries") {
        std::istringstream names(value);
        std::string name;
        config.critical_queries.clear();
        while (names >> name) config.critical_queries.push_back(name);
      } else if (key == "native_pin_cores") {
        config.native_pin_cores = ParseCoreList(value, line_number, key);
      } else if (key == "big_cores") {
        config.big_cores = ParseCoreList(value, line_number, key);
      } else if (key == "little_cores") {
        config.little_cores = ParseCoreList(value, line_number, key);
      } else if (key == "trace_file") {
        config.trace_file = value;
      } else if (key == "trace_every_ticks") {
        config.trace_every_ticks = ParseLong(value, line_number, key);
        if (config.trace_every_ticks < 0) {
          Fail(line_number, "trace_every_ticks must be >= 0 (0 = on demand)");
        }
      } else if (key == "metrics_textfile") {
        config.metrics_textfile = value;
      } else if (key == "metrics_every_ticks") {
        config.metrics_every_ticks = ParseLong(value, line_number, key);
        if (config.metrics_every_ticks < 1) {
          Fail(line_number, "metrics_every_ticks must be >= 1");
        }
      } else if (key == "obs_ring_capacity") {
        config.obs_ring_capacity = ParseLong(value, line_number, key);
        if (config.obs_ring_capacity < 1) {
          Fail(line_number, "obs_ring_capacity must be >= 1");
        }
      } else if (key == "obs_verbose") {
        config.obs_verbose = ParseBool(value, line_number, key);
      } else if (key == "policy") {
        config.policy = value;
      } else if (key == "translator") {
        config.translator = value;
      } else if (key == "metrics_file") {
        config.spe.metrics_file = value;
      } else if (key == "cgroup_root") {
        config.cgroup_root = value;
      } else if (key == "proc_root") {
        config.spe.proc_root = value;
      } else if (key == "name") {
        config.spe.name = value;
      } else {
        Fail(line_number, "unknown key '" + key + "'");
      }
      continue;
    }

    if (current_chain != nullptr) {
      if (key == "rate_tps") {
        current_chain->rate_tps = ParseDouble(value, line_number, key);
        if (current_chain->rate_tps <= 0) {
          Fail(line_number, "rate_tps must be positive");
        }
      } else if (key == "queue_capacity") {
        current_chain->queue_capacity = ParseLong(value, line_number, key);
        if (current_chain->queue_capacity < 2) {
          Fail(line_number, "queue_capacity must be >= 2");
        }
      } else if (key == "source_channel") {
        current_chain->source_channel = ParseLong(value, line_number, key);
        if (current_chain->source_channel < 2) {
          Fail(line_number, "source_channel must be >= 2");
        }
      } else if (key == "operators") {
        std::istringstream fields(value);
        std::string token;
        while (fields >> token) {
          const auto colon = token.find(':');
          if (colon == std::string::npos || colon == 0 ||
              colon == token.size() - 1) {
            Fail(line_number, "operators entries must be '<name>:<cost_us>'");
          }
          NativeChainOp op;
          op.name = token.substr(0, colon);
          op.cost_us =
              ParseLong(token.substr(colon + 1), line_number, "cost_us");
          if (op.cost_us < 0) Fail(line_number, "cost_us must be >= 0");
          for (const NativeChainOp& existing : current_chain->operators) {
            if (existing.name == op.name) {
              Fail(line_number,
                   "duplicate operator '" + op.name + "' in chain");
            }
          }
          current_chain->operators.push_back(std::move(op));
        }
      } else {
        Fail(line_number, "unknown key '" + key + "'");
      }
      continue;
    }

    if (current_query == nullptr) {
      Fail(line_number, "key outside of any section");
    }
    if (key == "pid") {
      current_query->pid = std::stol(value);
    } else if (key.rfind("operator ", 0) == 0) {
      const std::string op_name = Trim(key.substr(9));
      std::istringstream fields(value);
      NativeOperatorConfig op;
      op.name = op_name;
      std::string role;
      if (!(fields >> op.thread_pattern >> op.series_prefix)) {
        Fail(line_number, "operator needs '<thread-pattern> <series-prefix>'");
      }
      if (fields >> role) {
        if (role == "ingress") {
          op.is_ingress = true;
        } else if (role == "egress") {
          op.is_egress = true;
        } else {
          Fail(line_number, "role must be 'ingress' or 'egress'");
        }
      }
      operator_index[op_name] =
          static_cast<int>(current_query->operators.size());
      current_query->operators.push_back(std::move(op));
    } else if (key == "edge") {
      std::istringstream fields(value);
      std::string from;
      std::string to;
      if (!(fields >> from >> to)) Fail(line_number, "edge needs two names");
      const auto from_it = operator_index.find(from);
      const auto to_it = operator_index.find(to);
      if (from_it == operator_index.end() || to_it == operator_index.end()) {
        Fail(line_number, "edge references unknown operator");
      }
      current_query->edges.emplace_back(from_it->second, to_it->second);
    } else if (key == "provides") {
      std::istringstream fields(value);
      std::string metric;
      while (fields >> metric) {
        config.spe.provided.insert(MetricFromName(metric, line_number));
      }
    } else {
      Fail(line_number, "unknown key '" + key + "'");
    }
  }
  if (config.spe.queries.empty() && config.native_queries.empty()) {
    throw std::runtime_error(
        "config declares no [query ...] or [native-query ...] sections");
  }
  for (const NativeChainConfig& chain : config.native_queries) {
    if (chain.operators.size() < 2) {
      throw std::runtime_error("native-query '" + chain.name +
                               "' needs at least 2 operators "
                               "(ingress + egress)");
    }
    for (const NativeChainConfig& other : config.native_queries) {
      if (&chain != &other && chain.name == other.name) {
        throw std::runtime_error("duplicate native-query '" + chain.name + "'");
      }
    }
  }
  if (config.backoff_cap_ms > 0 &&
      config.backoff_cap_ms < config.backoff_base_ms) {
    throw std::runtime_error(
        "backoff_cap_ms must be >= backoff_base_ms when set");
  }
  if (config.dl_period_ms < config.dl_runtime_ms) {
    throw std::runtime_error("dl_period_ms must be >= dl_runtime_ms");
  }
  for (const int core : config.big_cores) {
    for (const int little : config.little_cores) {
      if (core == little) {
        throw std::runtime_error("core " + std::to_string(core) +
                                 " listed in both big_cores and little_cores");
      }
    }
  }
  return config;
}

DaemonConfig LoadDaemonConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read config file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseDaemonConfig(text.str());
}

}  // namespace lachesis::osctl
