// SpeDriver for the in-process native SPE executor (spe/native_runtime.h).
//
// Where NativeSpeDriver bridges an *external* engine process (thread
// discovery via /proc, metrics via a graphite file), this driver hosts the
// executor in-process: Poll() live-scrapes the runtime's raw-metric
// registry (NativeRuntime::ForEachRawMetric) into an owned TimeSeriesStore
// -- the same reporting pipeline shape as the sim's tsdb::Scraper -- and
// Entities() hands the control plane ThreadHandles carrying the real
// kernel tids of the operator threads. The runner/policies/translators are
// untouched: they see one more SpeDriver whose nice/cgroup decisions a
// LinuxOsAdapter applies to live threads.
#ifndef LACHESIS_OSCTL_NATIVE_RUNTIME_DRIVER_H_
#define LACHESIS_OSCTL_NATIVE_RUNTIME_DRIVER_H_

#include <map>
#include <string>
#include <vector>

#include "core/driver.h"
#include "spe/native_runtime.h"
#include "tsdb/tsdb.h"

namespace lachesis::osctl {

class NativeRuntimeDriver final : public core::SpeDriver {
 public:
  explicit NativeRuntimeDriver(spe::NativeRuntime& runtime,
                               SimDuration delta_window = Seconds(1));

  [[nodiscard]] const std::string& name() const override { return name_; }

  // Scrapes every operator's raw metrics into the store at `now`. The
  // control loop calls this at the start of every period, so Lachesis'
  // view is as stale as the scheduling period -- matching the paper's
  // scrape-resolution staleness (§6.1).
  void Poll(SimTime now) override;

  std::vector<core::EntityInfo> Entities() override;
  const core::LogicalTopology& Topology(QueryId query) override;
  [[nodiscard]] bool Provides(core::MetricId metric) const override;
  double Fetch(core::MetricId metric, const core::EntityInfo& entity) override;

  [[nodiscard]] const tsdb::TimeSeriesStore& store() const { return store_; }

  // Series prefix for one operator: "<query>.<op>" (names are only unique
  // per query).
  [[nodiscard]] static std::string SeriesPrefix(
      const spe::NativeRuntime& runtime, const spe::NativeOperator& op);

 private:
  spe::NativeRuntime* runtime_;
  SimDuration delta_window_;
  std::string name_;
  tsdb::TimeSeriesStore store_;
  std::map<QueryId, core::LogicalTopology> topologies_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_NATIVE_RUNTIME_DRIVER_H_
