// /proc scanning: enumerate the threads of a running SPE process.
//
// Real deployments attach Lachesis to unmodified engines; drivers map
// operator names to kernel threads by matching the thread names (comm) the
// engines set (e.g. Storm executor threads are named after their
// component). The proc root is injectable for hermetic tests.
#ifndef LACHESIS_OSCTL_PROCFS_H_
#define LACHESIS_OSCTL_PROCFS_H_

#include <string>
#include <vector>

namespace lachesis::osctl {

struct OsThreadInfo {
  long tid = -1;
  std::string comm;  // thread name, /proc/<pid>/task/<tid>/comm
};

// Threads of process `pid`; empty when the process does not exist.
std::vector<OsThreadInfo> ListThreads(long pid,
                                      const std::string& proc_root = "/proc");

// Threads whose comm contains `needle`.
std::vector<OsThreadInfo> FindThreadsByName(
    long pid, const std::string& needle,
    const std::string& proc_root = "/proc");

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_PROCFS_H_
