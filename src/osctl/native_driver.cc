#include "osctl/native_driver.h"

#include <fstream>
#include <sstream>

#include "osctl/procfs.h"

namespace lachesis::osctl {

NativeSpeDriver::NativeSpeDriver(NativeSpeConfig config)
    : config_(std::move(config)), name_(config_.name) {
  for (const NativeQueryConfig& query : config_.queries) {
    core::LogicalTopology topo;
    for (int i = 0; i < static_cast<int>(query.operators.size()); ++i) {
      const auto& op = query.operators[static_cast<std::size_t>(i)];
      topo.names.push_back(op.name);
      topo.base_costs.push_back(0);
      if (op.is_ingress) topo.ingress_indices.push_back(i);
      if (op.is_egress) topo.egress_indices.push_back(i);
    }
    topo.edges = query.edges;
    topologies_.push_back(std::move(topo));
  }
}

void NativeSpeDriver::Refresh(SimTime now) {
  // 1. Resolve operator threads via /proc (tolerates engine restarts: a
  //    vanished tid is re-resolved on the next refresh).
  for (std::size_t q = 0; q < config_.queries.size(); ++q) {
    const NativeQueryConfig& query = config_.queries[q];
    if (query.pid < 0) continue;
    const auto threads = ListThreads(query.pid, config_.proc_root);
    for (std::size_t o = 0; o < query.operators.size(); ++o) {
      const auto& pattern = query.operators[o].thread_pattern;
      long resolved = -1;
      for (const OsThreadInfo& info : threads) {
        if (info.comm.find(pattern) != std::string::npos) {
          resolved = info.tid;
          break;
        }
      }
      tids_[{q, o}] = resolved;
    }
  }

  // 2. Tail the graphite-plaintext metrics file into the store.
  if (config_.metrics_file.empty()) return;
  std::ifstream in(config_.metrics_file);
  if (!in) return;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < metrics_offset_) metrics_offset_ = 0;  // file was rotated
  in.seekg(metrics_offset_);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string series;
    double value = 0;
    double timestamp = 0;
    if (fields >> series >> value) {
      // Timestamp column is optional; default to "now".
      SimTime when = now;
      if (fields >> timestamp) {
        when = static_cast<SimTime>(timestamp * static_cast<double>(kSecond));
      }
      store_.Append(series, when, value);
    }
  }
  in.clear();
  metrics_offset_ =
      in.tellg() == std::streampos(-1) ? size : std::streamoff(in.tellg());
}

std::vector<core::EntityInfo> NativeSpeDriver::Entities() {
  std::vector<core::EntityInfo> result;
  std::uint64_t next_id = 0;
  for (std::size_t q = 0; q < config_.queries.size(); ++q) {
    const NativeQueryConfig& query = config_.queries[q];
    for (std::size_t o = 0; o < query.operators.size(); ++o) {
      const NativeOperatorConfig& op = query.operators[o];
      core::EntityInfo e;
      e.id = OperatorId(next_id++);
      e.path = op.series_prefix;
      e.query = QueryId(q);
      e.query_name = query.name;
      e.logical_indices = {static_cast<int>(o)};
      e.is_ingress = op.is_ingress;
      e.is_egress = op.is_egress;
      const auto it = tids_.find({q, o});
      e.thread.os_tid = it != tids_.end() ? it->second : -1;
      result.push_back(std::move(e));
    }
  }
  return result;
}

const core::LogicalTopology& NativeSpeDriver::Topology(QueryId query) {
  return topologies_.at(query.value());
}

bool NativeSpeDriver::Provides(core::MetricId metric) const {
  return config_.provided.count(metric) > 0;
}

double NativeSpeDriver::Fetch(core::MetricId metric,
                              const core::EntityInfo& entity) {
  const std::string series =
      entity.path + "." + core::MetricName(metric);
  switch (metric) {
    // Windowed metrics come from counter deltas over the last second.
    case core::MetricId::kTuplesInDelta:
    case core::MetricId::kTuplesOutDelta:
    case core::MetricId::kBusyDeltaNs: {
      const std::string counter_series =
          entity.path + "." +
          core::MetricName(metric == core::MetricId::kTuplesInDelta
                               ? core::MetricId::kTuplesInTotal
                           : metric == core::MetricId::kTuplesOutDelta
                               ? core::MetricId::kTuplesOutTotal
                               : core::MetricId::kBusyDeltaNs);
      const auto delta = store_.Delta(counter_series, Seconds(1));
      return delta ? std::max(*delta, 0.0) : 0.0;
    }
    default: {
      const auto sample = store_.Latest(series);
      return sample ? sample->value : 0.0;
    }
  }
}

}  // namespace lachesis::osctl
