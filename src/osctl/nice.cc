#include "osctl/nice.h"

#include <cerrno>
#include <cstring>
#include <sched.h>
#include <sys/resource.h>
#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace lachesis::osctl {

bool LinuxNiceController::SetNice(long tid, int nice) {
  return setpriority(PRIO_PROCESS, static_cast<id_t>(tid), nice) == 0;
}

std::optional<int> LinuxNiceController::GetNice(long tid) {
  errno = 0;
  const int value = getpriority(PRIO_PROCESS, static_cast<id_t>(tid));
  if (value == -1 && errno != 0) return std::nullopt;
  return value;
}

bool LinuxRtController::SetRtPriority(long tid, int priority) {
  sched_param param{};
  param.sched_priority = priority;
  const int policy = priority > 0 ? SCHED_FIFO : SCHED_OTHER;
  return sched_setscheduler(static_cast<pid_t>(tid), policy, &param) == 0;
}

std::optional<int> LinuxRtController::GetRtPriority(long tid) {
  const int policy = sched_getscheduler(static_cast<pid_t>(tid));
  if (policy < 0) return std::nullopt;
  if (policy != SCHED_FIFO && policy != SCHED_RR) return 0;
  sched_param param{};
  if (sched_getparam(static_cast<pid_t>(tid), &param) != 0) return std::nullopt;
  return param.sched_priority;
}

#if defined(__linux__) && defined(SYS_sched_setattr) && \
    defined(SYS_sched_getattr)
namespace {
// glibc exposes no wrapper or struct for sched_setattr; this mirrors the
// kernel's uapi layout (linux/sched/types.h).
struct KernelSchedAttr {
  std::uint32_t size;
  std::uint32_t sched_policy;
  std::uint64_t sched_flags;
  std::int32_t sched_nice;
  std::uint32_t sched_priority;
  std::uint64_t sched_runtime;
  std::uint64_t sched_deadline;
  std::uint64_t sched_period;
};
constexpr std::uint32_t kSchedDeadlinePolicy = 6;  // SCHED_DEADLINE
constexpr std::uint32_t kSchedOtherPolicy = 0;     // SCHED_OTHER
}  // namespace

bool LinuxDeadlineController::SetDeadline(long tid, std::uint64_t runtime_ns,
                                          std::uint64_t deadline_ns,
                                          std::uint64_t period_ns) {
  KernelSchedAttr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  if (runtime_ns == 0 && deadline_ns == 0 && period_ns == 0) {
    attr.sched_policy = kSchedOtherPolicy;  // clear: back to the fair class
  } else {
    attr.sched_policy = kSchedDeadlinePolicy;
    attr.sched_runtime = runtime_ns;
    attr.sched_deadline = deadline_ns;
    attr.sched_period = period_ns;
  }
  return syscall(SYS_sched_setattr, static_cast<pid_t>(tid), &attr, 0u) == 0;
}

std::optional<DeadlineTriple> LinuxDeadlineController::GetDeadline(long tid) {
  KernelSchedAttr attr;
  std::memset(&attr, 0, sizeof(attr));
  if (syscall(SYS_sched_getattr, static_cast<pid_t>(tid), &attr,
              static_cast<unsigned>(sizeof(attr)), 0u) != 0) {
    return std::nullopt;
  }
  if (attr.sched_policy != kSchedDeadlinePolicy) return DeadlineTriple{};
  return DeadlineTriple{attr.sched_runtime, attr.sched_deadline,
                        attr.sched_period};
}
#else
bool LinuxDeadlineController::SetDeadline(long, std::uint64_t, std::uint64_t,
                                          std::uint64_t) {
  errno = ENOSYS;
  return false;
}

std::optional<DeadlineTriple> LinuxDeadlineController::GetDeadline(long) {
  return std::nullopt;
}
#endif

#if defined(__linux__)
bool LinuxAffinityController::SetAffinity(long tid,
                                          const std::vector<int>& cpus) {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (cpus.empty()) {
    // Restore the full mask: every CPU the set type can express. The kernel
    // silently intersects with the online mask.
    const long ncpu = sysconf(_SC_NPROCESSORS_CONF);
    for (long c = 0; c < ncpu && c < CPU_SETSIZE; ++c) {
      CPU_SET(static_cast<int>(c), &set);
    }
  } else {
    for (const int c : cpus) {
      if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
    }
  }
  return sched_setaffinity(static_cast<pid_t>(tid), sizeof(set), &set) == 0;
}
#else
bool LinuxAffinityController::SetAffinity(long, const std::vector<int>&) {
  errno = ENOSYS;
  return false;
}
#endif

}  // namespace lachesis::osctl
