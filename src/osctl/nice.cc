#include "osctl/nice.h"

#include <cerrno>
#include <sched.h>
#include <sys/resource.h>

namespace lachesis::osctl {

bool LinuxNiceController::SetNice(long tid, int nice) {
  return setpriority(PRIO_PROCESS, static_cast<id_t>(tid), nice) == 0;
}

std::optional<int> LinuxNiceController::GetNice(long tid) {
  errno = 0;
  const int value = getpriority(PRIO_PROCESS, static_cast<id_t>(tid));
  if (value == -1 && errno != 0) return std::nullopt;
  return value;
}

bool LinuxRtController::SetRtPriority(long tid, int priority) {
  sched_param param{};
  param.sched_priority = priority;
  const int policy = priority > 0 ? SCHED_FIFO : SCHED_OTHER;
  return sched_setscheduler(static_cast<pid_t>(tid), policy, &param) == 0;
}

std::optional<int> LinuxRtController::GetRtPriority(long tid) {
  const int policy = sched_getscheduler(static_cast<pid_t>(tid));
  if (policy < 0) return std::nullopt;
  if (policy != SCHED_FIFO && policy != SCHED_RR) return 0;
  sched_param param{};
  if (sched_getparam(static_cast<pid_t>(tid), &param) != 0) return std::nullopt;
  return param.sched_priority;
}

}  // namespace lachesis::osctl
