// Configuration for lachesisd, the standalone middleware daemon.
//
// A small INI-like format (sections + key=value, '#' comments) keeps the
// daemon dependency-free:
//
//   [lachesis]
//   period_ms   = 1000
//   policy      = queue-size        # queue-size|fcfs|highest-rate|random|min-memory
//   translator  = nice              # nice|cpu.shares|quota|rt
//   metrics_file = /var/lib/engine/graphite.log
//   cgroup_root  = /sys/fs/cgroup/cpu/lachesis
//
// Every knob is documented with defaults, ranges and tuning guidance in
// docs/OPERATIONS.md.
//
//   [query my-topology]
//   pid = 12345
//   # operator <name> = <thread-pattern> <series-prefix> [ingress|egress]
//   operator spout = exec-spout storm.my.spout ingress
//   operator parse = exec-parse storm.my.parse
//   operator sink  = exec-sink  storm.my.sink  egress
//   edge = spout parse
//   edge = parse sink
//   provides = queue_size tuples_in_total
//
// In-process native executor queries (spe/native_runtime.h) are linear
// operator chains the daemon itself serves; first operator is the ingress,
// last is the egress:
//
//   [native-query chain]
//   rate_tps = 2000
//   queue_capacity = 1024
//   # operators = <name>:<cost_us> ...
//   operators = in:20 work:150 out:10
#ifndef LACHESIS_OSCTL_DAEMON_CONFIG_H_
#define LACHESIS_OSCTL_DAEMON_CONFIG_H_

#include <string>
#include <vector>

#include "osctl/native_driver.h"

namespace lachesis::osctl {

// One operator of an in-process native chain: name plus emulated per-tuple
// CPU cost in microseconds.
struct NativeChainOp {
  std::string name;
  long cost_us = 0;
};

// One [native-query <name>] section: a linear operator chain served by the
// daemon's in-process native SPE executor. The first operator runs as the
// ingress (fed by a rate-controlled source thread), the last as the egress.
struct NativeChainConfig {
  std::string name;
  double rate_tps = 1000.0;      // offered load of the source thread
  long queue_capacity = 1024;    // inter-operator ring capacity
  long source_channel = 8192;    // ingress channel ("Kafka lag" buffer)
  std::vector<NativeChainOp> operators;
};

struct DaemonConfig {
  long period_ms = 1000;
  std::string policy = "queue-size";
  std::string translator = "nice";
  std::string cgroup_root;  // empty: cgroup mechanisms unavailable
  // Fault-tolerance knobs (mapped onto core::HealthConfig; see
  // src/core/op_health.h for the semantics of each).
  long backoff_base_ms = 500;    // first retry delay for a failing target (>0)
  long backoff_cap_ms = 0;       // backoff ceiling; 0 = uncapped doubling
  long breaker_threshold = 5;    // consecutive failures that open a breaker
  long breaker_probe_ms = 2000;  // half-open probe interval (>0)
  bool degradation = true;       // capability degradation ladder
  bool reconcile = true;         // seed delta cache from kernel state at boot
  // SCHED_DEADLINE knobs (translator = deadline): each latency-critical
  // operator gets a reservation of dl_runtime_ms CPU every dl_period_ms
  // (deadline == period). Requires root or CAP_SYS_NICE; when the kernel
  // rejects (EPERM/ENOSYS/EBUSY) the ladder degrades to rt, then shares,
  // then nice.
  long dl_runtime_ms = 4;   // must be positive
  long dl_period_ms = 10;   // must be >= dl_runtime_ms
  // Queries whose operators are tagged latency-critical (deadline/RT
  // guarantees, big-core placement). Space-separated query names.
  std::vector<std::string> critical_queries;
  // big.LITTLE topology for the affinity hints: explicit core id lists.
  // Both empty (default) disables capacity-aware placement.
  std::vector<int> big_cores;
  std::vector<int> little_cores;
  // Observability knobs (src/obs/): Chrome-trace dumps, Prometheus
  // textfile self-metrics, and provenance-ring tuning.
  std::string trace_file;      // empty: no trace dumps (SIGUSR1 still logs)
  long trace_every_ticks = 0;  // also dump every N ticks; 0 = exit/signal only
  std::string metrics_textfile;  // empty: no textfile export
  long metrics_every_ticks = 1;  // textfile refresh cadence in ticks (>= 1)
  long obs_ring_capacity = 8192;  // provenance ring size in events (>= 1)
  bool obs_verbose = false;  // record per-elision + per-sample events too
  NativeSpeConfig spe;
  // In-process native executor ([native-query ...] sections). May coexist
  // with external [query ...] engines; at least one of the two must be
  // configured.
  std::vector<NativeChainConfig> native_queries;
  // Pin executor threads round-robin over these CPUs (operator + source
  // threads). Empty: leave placement to the kernel.
  std::vector<int> native_pin_cores;
};

// Parses the INI-like text; throws std::runtime_error with a line-numbered
// message on malformed input.
DaemonConfig ParseDaemonConfig(const std::string& text);

// Convenience: reads and parses a file.
DaemonConfig LoadDaemonConfig(const std::string& path);

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_DAEMON_CONFIG_H_
