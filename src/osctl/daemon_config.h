// Configuration for lachesisd, the standalone middleware daemon.
//
// A small INI-like format (sections + key=value, '#' comments) keeps the
// daemon dependency-free:
//
//   [lachesis]
//   period_ms   = 1000
//   policy      = queue-size        # queue-size|fcfs|highest-rate|pressure-stall|random
//   translator  = nice              # nice|cpu.shares|quota|rt
//   metrics_file = /var/lib/engine/graphite.log
//   cgroup_root  = /sys/fs/cgroup/cpu/lachesis
//
//   [query my-topology]
//   pid = 12345
//   # operator <name> = <thread-pattern> <series-prefix> [ingress|egress]
//   operator spout = exec-spout storm.my.spout ingress
//   operator parse = exec-parse storm.my.parse
//   operator sink  = exec-sink  storm.my.sink  egress
//   edge = spout parse
//   edge = parse sink
//   provides = queue_size tuples_in_total
#ifndef LACHESIS_OSCTL_DAEMON_CONFIG_H_
#define LACHESIS_OSCTL_DAEMON_CONFIG_H_

#include <string>
#include <vector>

#include "osctl/native_driver.h"

namespace lachesis::osctl {

struct DaemonConfig {
  long period_ms = 1000;
  std::string policy = "queue-size";
  std::string translator = "nice";
  std::string cgroup_root;  // empty: cgroup mechanisms unavailable
  // Fault-tolerance knobs (mapped onto core::HealthConfig; see
  // src/core/op_health.h for the semantics of each).
  long backoff_base_ms = 500;    // first retry delay for a failing target (>0)
  long backoff_cap_ms = 0;       // backoff ceiling; 0 = uncapped doubling
  long breaker_threshold = 5;    // consecutive failures that open a breaker
  long breaker_probe_ms = 2000;  // half-open probe interval (>0)
  bool degradation = true;       // capability degradation ladder
  bool reconcile = true;         // seed delta cache from kernel state at boot
  NativeSpeConfig spe;
};

// Parses the INI-like text; throws std::runtime_error with a line-numbered
// message on malformed input.
DaemonConfig ParseDaemonConfig(const std::string& text);

// Convenience: reads and parses a file.
DaemonConfig LoadDaemonConfig(const std::string& path);

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_DAEMON_CONFIG_H_
