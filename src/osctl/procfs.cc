#include "osctl/procfs.h"

#include <filesystem>
#include <fstream>

namespace lachesis::osctl {

std::vector<OsThreadInfo> ListThreads(long pid, const std::string& proc_root) {
  namespace fs = std::filesystem;
  std::vector<OsThreadInfo> result;
  const fs::path task_dir = fs::path(proc_root) / std::to_string(pid) / "task";
  std::error_code ec;
  if (!fs::is_directory(task_dir, ec)) return result;
  for (const auto& entry : fs::directory_iterator(task_dir, ec)) {
    if (ec) break;
    OsThreadInfo info;
    try {
      info.tid = std::stol(entry.path().filename().string());
    } catch (...) {
      continue;
    }
    std::ifstream comm(entry.path() / "comm");
    if (comm) {
      std::getline(comm, info.comm);
    }
    result.push_back(std::move(info));
  }
  return result;
}

std::vector<OsThreadInfo> FindThreadsByName(long pid, const std::string& needle,
                                            const std::string& proc_root) {
  std::vector<OsThreadInfo> result;
  for (OsThreadInfo& info : ListThreads(pid, proc_root)) {
    if (info.comm.find(needle) != std::string::npos) {
      result.push_back(std::move(info));
    }
  }
  return result;
}

}  // namespace lachesis::osctl
