// ControlExecutor on real, monotonic time.
//
// Runs the identical LachesisRunner loop that the simulator drives, but
// against the host clock: callbacks are kept in a (time, insertion order)
// min-heap and dispatched from Run(), which sleeps on a condition variable
// between deadlines (the portable equivalent of a timerfd wait; the wait
// is interruptible so Stop() takes effect immediately). Time is
// SimTime-shaped: nanoseconds since construction of the executor, so
// control-plane code is oblivious to which backend it runs on.
//
// Threading: CallAt may be called from the dispatch thread (the runner
// rescheduling itself) or from other threads (dynamic attach, Stop); both
// are protected by the internal mutex. Callbacks run on the thread that
// called Run(), never concurrently.
#ifndef LACHESIS_OSCTL_NATIVE_EXECUTOR_H_
#define LACHESIS_OSCTL_NATIVE_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "core/executor.h"

namespace lachesis::osctl {

class NativeControlExecutor final : public core::ControlExecutor {
 public:
  NativeControlExecutor();

  // Nanoseconds of monotonic time since construction.
  [[nodiscard]] SimTime Now() const override;

  void CallAt(SimTime time, std::function<void()> fn) override;

  // Dispatches callbacks in (time, insertion) order until the pending queue
  // is empty, the next deadline lies past `until`, or Stop() is called.
  // Returns the number of callbacks dispatched.
  std::uint64_t Run(SimTime until);
  std::uint64_t RunFor(SimDuration duration) { return Run(Now() + duration); }

  // Makes Run() return promptly (callable from another thread or a
  // callback). A later Run() call resumes dispatching.
  void Stop();

  [[nodiscard]] std::size_t pending() const;

 private:
  struct Pending {
    SimTime time;
    std::uint64_t seq;  // FIFO tiebreak within a timestamp
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::priority_queue<Pending, std::vector<Pending>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  bool stop_ = false;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_NATIVE_EXECUTOR_H_
