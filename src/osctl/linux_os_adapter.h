// core::OsAdapter backed by real Linux mechanisms.
//
// Lets the exact policy/translator stack that runs against the simulator
// drive a live system: nice via setpriority, groups via cgroupfs. Entities
// must carry os_tid (e.g. resolved through osctl::FindThreadsByName against
// the SPE's process).
//
// Failures (thread exited between discovery and apply, unwritable cgroup
// root, missing CAP_SYS_NICE) throw core::OsOperationError. The runner's
// schedule-delta layer absorbs the exception, counts it, and moves on to
// the next operation, so a vanished operator never aborts a scheduling
// tick. Entities that were never resolved (os_tid < 0) are skipped
// silently: that is the steady state until the driver matches the thread.
#ifndef LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_
#define LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_

#include <string>

#include "core/os_adapter.h"
#include "core/schedule_delta.h"
#include "osctl/cgroupfs.h"
#include "osctl/nice.h"

namespace lachesis::osctl {

class LinuxOsAdapter final : public core::OsAdapter {
 public:
  LinuxOsAdapter(NiceController& nice, CgroupController& cgroups,
                 RtController* rt = nullptr)
      : nice_(&nice), cgroups_(&cgroups), rt_(rt) {}

  void SetNice(const core::ThreadHandle& thread, int nice) override {
    if (thread.os_tid < 0) return;
    if (!nice_->SetNice(thread.os_tid, nice)) {
      throw core::OsOperationError("setpriority(" +
                                   std::to_string(thread.os_tid) + ", " +
                                   std::to_string(nice) + ")");
    }
  }

  void SetGroupShares(const std::string& group, std::uint64_t shares) override {
    if (!cgroups_->SetShares(group, shares)) {
      throw core::OsOperationError("cgroup shares write failed: " + group);
    }
  }

  void MoveToGroup(const core::ThreadHandle& thread,
                   const std::string& group) override {
    if (thread.os_tid < 0) return;
    if (!cgroups_->MoveThread(group, thread.os_tid)) {
      throw core::OsOperationError("cgroup move failed: tid " +
                                   std::to_string(thread.os_tid) + " -> " +
                                   group);
    }
  }

  void SetRtPriority(const core::ThreadHandle& thread,
                     int rt_priority) override {
    if (rt_ == nullptr || thread.os_tid < 0) return;
    if (!rt_->SetRtPriority(thread.os_tid, rt_priority)) {
      throw core::OsOperationError("sched_setscheduler(" +
                                   std::to_string(thread.os_tid) + ", " +
                                   std::to_string(rt_priority) + ")");
    }
  }

  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override {
    if (!cgroups_->SetQuota(group, static_cast<long>(quota / kMicrosecond),
                            static_cast<long>(period / kMicrosecond))) {
      throw core::OsOperationError("cgroup quota write failed: " + group);
    }
  }

 private:
  NiceController* nice_;
  CgroupController* cgroups_;
  RtController* rt_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_
