// core::OsAdapter backed by real Linux mechanisms.
//
// Lets the exact policy/translator stack that runs against the simulator
// drive a live system: nice via setpriority, groups via cgroupfs. Entities
// must carry os_tid (e.g. resolved through osctl::FindThreadsByName against
// the SPE's process).
//
// Failures (thread exited between discovery and apply, unwritable cgroup
// root, missing CAP_SYS_NICE) throw core::OsOperationError carrying the
// errno-derived severity: EPERM/EACCES are permanent (capabilities don't
// appear by retrying), ESRCH/ENOENT mean the target vanished, everything
// else is transient. The runner's schedule-delta layer absorbs the
// exception, feeds the severity into its backoff/circuit-breaker state,
// and moves on to the next operation, so a vanished operator never aborts
// a scheduling tick. Entities that were never resolved (os_tid < 0) are
// skipped silently: that is the steady state until the driver matches the
// thread.
#ifndef LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_
#define LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_

#include <cerrno>
#include <map>
#include <string>
#include <vector>

#include "core/os_adapter.h"
#include "core/schedule_delta.h"
#include "osctl/cgroupfs.h"
#include "osctl/nice.h"

namespace lachesis::osctl {

// errno -> retry strategy for the delta layer's health tracker.
inline core::ErrorSeverity SeverityFromErrno(int err) {
  switch (err) {
    case EPERM:
    case EACCES:
      return core::ErrorSeverity::kPermanent;
    case ESRCH:
    case ENOENT:
      return core::ErrorSeverity::kVanished;
    default:
      return core::ErrorSeverity::kTransient;
  }
}

class LinuxOsAdapter final : public core::OsAdapter {
 public:
  LinuxOsAdapter(NiceController& nice, CgroupController& cgroups,
                 RtController* rt = nullptr,
                 DeadlineController* deadline = nullptr,
                 AffinityController* affinity = nullptr)
      : nice_(&nice), cgroups_(&cgroups), rt_(rt), deadline_(deadline),
        affinity_(affinity) {}

  // Explicit core lists behind the CpuPreference hints (big.LITTLE
  // topology, e.g. from DaemonConfig). Empty lists leave the hint a no-op.
  void SetCoreClasses(std::vector<int> big_cores,
                      std::vector<int> little_cores) {
    big_cores_ = std::move(big_cores);
    little_cores_ = std::move(little_cores);
  }

  void SetNice(const core::ThreadHandle& thread, int nice) override {
    if (thread.os_tid < 0) return;
    errno = 0;
    if (!nice_->SetNice(thread.os_tid, nice)) {
      const int err = errno;
      throw core::OsOperationError(
          "setpriority(" + std::to_string(thread.os_tid) + ", " +
              std::to_string(nice) + ")",
          SeverityFromErrno(err), err);
    }
  }

  void SetGroupShares(const std::string& group, std::uint64_t shares) override {
    errno = 0;
    if (!cgroups_->SetShares(group, shares)) {
      const int err = errno;
      throw core::OsOperationError("cgroup shares write failed: " + group,
                                   SeverityFromErrno(err), err);
    }
  }

  void MoveToGroup(const core::ThreadHandle& thread,
                   const std::string& group) override {
    if (thread.os_tid < 0) return;
    errno = 0;
    if (!cgroups_->MoveThread(group, thread.os_tid)) {
      const int err = errno;
      throw core::OsOperationError(
          "cgroup move failed: tid " + std::to_string(thread.os_tid) + " -> " +
              group,
          SeverityFromErrno(err), err);
    }
  }

  void SetRtPriority(const core::ThreadHandle& thread,
                     int rt_priority) override {
    if (rt_ == nullptr || thread.os_tid < 0) return;
    errno = 0;
    if (!rt_->SetRtPriority(thread.os_tid, rt_priority)) {
      const int err = errno;
      throw core::OsOperationError(
          "sched_setscheduler(" + std::to_string(thread.os_tid) + ", " +
              std::to_string(rt_priority) + ")",
          SeverityFromErrno(err), err);
    }
  }

  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override {
    errno = 0;
    if (!cgroups_->SetQuota(group, static_cast<long>(quota / kMicrosecond),
                            static_cast<long>(period / kMicrosecond))) {
      const int err = errno;
      throw core::OsOperationError("cgroup quota write failed: " + group,
                                   SeverityFromErrno(err), err);
    }
  }

  void SetDeadline(const core::ThreadHandle& thread, SimDuration runtime,
                   SimDuration deadline, SimDuration period) override {
    if (deadline_ == nullptr || thread.os_tid < 0) return;
    errno = 0;
    if (!deadline_->SetDeadline(thread.os_tid,
                                static_cast<std::uint64_t>(runtime),
                                static_cast<std::uint64_t>(deadline),
                                static_cast<std::uint64_t>(period))) {
      const int err = errno;
      // EBUSY is the kernel's admission-control rejection: transient by
      // errno classification, which is right -- capacity may free up.
      throw core::OsOperationError(
          "sched_setattr(" + std::to_string(thread.os_tid) + ", " +
              std::to_string(runtime) + "/" + std::to_string(deadline) + "/" +
              std::to_string(period) + ")",
          SeverityFromErrno(err), err);
    }
  }

  void SetCpuAffinity(const core::ThreadHandle& thread,
                      core::CpuPreference pref) override {
    if (affinity_ == nullptr || thread.os_tid < 0) return;
    const std::vector<int>* cpus = nullptr;
    static const std::vector<int> kAll;
    switch (pref) {
      case core::CpuPreference::kPreferBig:
        cpus = &big_cores_;
        break;
      case core::CpuPreference::kPreferLittle:
        cpus = &little_cores_;
        break;
      case core::CpuPreference::kNone:
        cpus = &kAll;
        break;
    }
    if (pref != core::CpuPreference::kNone && cpus->empty()) {
      return;  // topology not configured: the hint is a no-op
    }
    errno = 0;
    if (!affinity_->SetAffinity(thread.os_tid, *cpus)) {
      const int err = errno;
      throw core::OsOperationError(
          "sched_setaffinity(" + std::to_string(thread.os_tid) + ")",
          SeverityFromErrno(err), err);
    }
  }

  // Restart reconciliation: nice via getpriority, RT via sched_getscheduler
  // (when an RT controller is wired), group membership / shares / quota by
  // enumerating the Lachesis cgroup root. Groups found there from a
  // previous incarnation are reported for adoption.
  bool SnapshotState(const std::vector<core::ThreadHandle>& threads,
                     core::OsStateSnapshot& out) override {
    out = {};
    std::map<long, std::string> group_of;
    for (const std::string& group : cgroups_->ListGroups()) {
      out.groups.push_back(group);
      if (const auto shares = cgroups_->ReadShares(group)) {
        out.group_shares[group] = *shares;
      }
      if (const auto quota = cgroups_->ReadQuota(group)) {
        if (quota->first > 0) {
          out.group_quota[group] = {quota->first * kMicrosecond,
                                    quota->second * kMicrosecond};
        }
      }
      for (const long tid : cgroups_->ThreadsOf(group)) {
        group_of[tid] = group;
      }
    }
    for (const core::ThreadHandle& thread : threads) {
      if (thread.os_tid < 0) continue;
      core::OsStateSnapshot::ThreadState state;
      state.thread = thread;
      state.nice = nice_->GetNice(thread.os_tid);
      if (rt_ != nullptr) {
        state.rt_priority = rt_->GetRtPriority(thread.os_tid);
      }
      if (deadline_ != nullptr) {
        if (const auto dl = deadline_->GetDeadline(thread.os_tid)) {
          state.deadline = sim::DeadlineParams{
              static_cast<SimDuration>(dl->runtime_ns),
              static_cast<SimDuration>(dl->deadline_ns),
              static_cast<SimDuration>(dl->period_ns)};
        }
      }
      if (const auto it = group_of.find(thread.os_tid);
          it != group_of.end()) {
        state.group = it->second;
      }
      out.threads.push_back(std::move(state));
    }
    return true;
  }

 private:
  NiceController* nice_;
  CgroupController* cgroups_;
  RtController* rt_;
  DeadlineController* deadline_;
  AffinityController* affinity_;
  std::vector<int> big_cores_;
  std::vector<int> little_cores_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_
