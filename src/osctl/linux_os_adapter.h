// core::OsAdapter backed by real Linux mechanisms.
//
// Lets the exact policy/translator stack that runs against the simulator
// drive a live system: nice via setpriority, groups via cgroupfs. Entities
// must carry os_tid (e.g. resolved through osctl::FindThreadsByName against
// the SPE's process).
#ifndef LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_
#define LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_

#include "core/os_adapter.h"
#include "osctl/cgroupfs.h"
#include "osctl/nice.h"

namespace lachesis::osctl {

class LinuxOsAdapter final : public core::OsAdapter {
 public:
  LinuxOsAdapter(NiceController& nice, CgroupController& cgroups,
                 RtController* rt = nullptr)
      : nice_(&nice), cgroups_(&cgroups), rt_(rt) {}

  void SetNice(const core::ThreadHandle& thread, int nice) override {
    if (thread.os_tid >= 0) nice_->SetNice(thread.os_tid, nice);
  }

  void SetGroupShares(const std::string& group, std::uint64_t shares) override {
    cgroups_->SetShares(group, shares);
  }

  void MoveToGroup(const core::ThreadHandle& thread,
                   const std::string& group) override {
    if (thread.os_tid >= 0) cgroups_->MoveThread(group, thread.os_tid);
  }

  void SetRtPriority(const core::ThreadHandle& thread,
                     int rt_priority) override {
    if (rt_ != nullptr && thread.os_tid >= 0) {
      rt_->SetRtPriority(thread.os_tid, rt_priority);
    }
  }

  void SetGroupQuota(const std::string& group, SimDuration quota,
                     SimDuration period) override {
    cgroups_->SetQuota(group, static_cast<long>(quota / kMicrosecond),
                       static_cast<long>(period / kMicrosecond));
  }

 private:
  NiceController* nice_;
  CgroupController* cgroups_;
  RtController* rt_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_LINUX_OS_ADAPTER_H_
