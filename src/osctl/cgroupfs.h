// cgroup CPU control through the cgroup filesystem.
//
// Supports both hierarchies the paper-era kernels offer:
//  - v1: <root>/<group>/cpu.shares (2..262144) and <root>/<group>/tasks
//  - v2: <root>/<group>/cpu.weight (1..10000)  and <root>/<group>/cgroup.threads
// The filesystem root is injectable so tests run against a temp directory;
// production use points it at e.g. /sys/fs/cgroup/cpu/lachesis (v1) or a
// delegated /sys/fs/cgroup/lachesis (v2, with cpu controller enabled and
// threaded mode for thread-granular moves).
#ifndef LACHESIS_OSCTL_CGROUPFS_H_
#define LACHESIS_OSCTL_CGROUPFS_H_

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace lachesis::osctl {

enum class CgroupVersion { kV1, kV2 };

// Kernel formula mapping v1 cpu.shares to v2 cpu.weight.
constexpr std::uint64_t SharesToWeight(std::uint64_t shares) {
  if (shares < 2) shares = 2;
  if (shares > 262144) shares = 262144;
  return 1 + ((shares - 2) * 9999) / 262142;
}

// Approximate inverse (weight quantizes shares, so round-tripping is lossy;
// restart reconciliation tolerates that with at most one redundant write).
constexpr std::uint64_t WeightToShares(std::uint64_t weight) {
  if (weight < 1) weight = 1;
  if (weight > 10000) weight = 10000;
  return 2 + ((weight - 1) * 262142) / 9999;
}

class CgroupController {
 public:
  CgroupController(std::filesystem::path root, CgroupVersion version);

  // Creates the group directory if missing (and, for v2, enables threaded
  // mode). Returns false on I/O errors.
  bool EnsureGroup(const std::string& group);
  // Writes cpu.shares (v1) or the converted cpu.weight (v2).
  bool SetShares(const std::string& group, std::uint64_t shares);
  // Appends the tid to tasks (v1) / cgroup.threads (v2).
  bool MoveThread(const std::string& group, long tid);
  // CFS bandwidth: cpu.cfs_quota_us + cpu.cfs_period_us (v1) or cpu.max
  // (v2). quota_us <= 0 removes the limit ("-1" / "max").
  bool SetQuota(const std::string& group, long quota_us, long period_us);

  // --- read side (restart reconciliation) ---------------------------------
  // Group directories directly under the root (a previous daemon's groups
  // survive its exit: cgroups are kernel objects, not process state).
  [[nodiscard]] std::vector<std::string> ListGroups() const;
  // Current shares (v1: cpu.shares verbatim; v2: cpu.weight mapped back
  // through the approximate inverse). nullopt when unreadable.
  [[nodiscard]] std::optional<std::uint64_t> ReadShares(
      const std::string& group) const;
  // Current bandwidth as (quota_us, period_us); quota_us <= 0 = unlimited.
  [[nodiscard]] std::optional<std::pair<long, long>> ReadQuota(
      const std::string& group) const;
  // Tids currently in the group (tasks / cgroup.threads).
  [[nodiscard]] std::vector<long> ThreadsOf(const std::string& group) const;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] CgroupVersion version() const { return version_; }

  // Detects the mounted hierarchy under /sys/fs/cgroup; v2 when
  // cgroup.controllers exists at the top.
  static CgroupVersion DetectVersion(
      const std::filesystem::path& sysfs = "/sys/fs/cgroup");

 private:
  [[nodiscard]] std::filesystem::path GroupDir(const std::string& group) const;
  static bool WriteFile(const std::filesystem::path& path,
                        const std::string& value, bool append);

  std::filesystem::path root_;
  CgroupVersion version_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_CGROUPFS_H_
