// cgroup CPU control through the cgroup filesystem.
//
// Supports both hierarchies the paper-era kernels offer:
//  - v1: <root>/<group>/cpu.shares (2..262144) and <root>/<group>/tasks
//  - v2: <root>/<group>/cpu.weight (1..10000)  and <root>/<group>/cgroup.threads
// The filesystem root is injectable so tests run against a temp directory;
// production use points it at e.g. /sys/fs/cgroup/cpu/lachesis (v1) or a
// delegated /sys/fs/cgroup/lachesis (v2, with cpu controller enabled and
// threaded mode for thread-granular moves).
#ifndef LACHESIS_OSCTL_CGROUPFS_H_
#define LACHESIS_OSCTL_CGROUPFS_H_

#include <cstdint>
#include <filesystem>
#include <string>

namespace lachesis::osctl {

enum class CgroupVersion { kV1, kV2 };

// Kernel formula mapping v1 cpu.shares to v2 cpu.weight.
constexpr std::uint64_t SharesToWeight(std::uint64_t shares) {
  if (shares < 2) shares = 2;
  if (shares > 262144) shares = 262144;
  return 1 + ((shares - 2) * 9999) / 262142;
}

class CgroupController {
 public:
  CgroupController(std::filesystem::path root, CgroupVersion version);

  // Creates the group directory if missing (and, for v2, enables threaded
  // mode). Returns false on I/O errors.
  bool EnsureGroup(const std::string& group);
  // Writes cpu.shares (v1) or the converted cpu.weight (v2).
  bool SetShares(const std::string& group, std::uint64_t shares);
  // Appends the tid to tasks (v1) / cgroup.threads (v2).
  bool MoveThread(const std::string& group, long tid);
  // CFS bandwidth: cpu.cfs_quota_us + cpu.cfs_period_us (v1) or cpu.max
  // (v2). quota_us <= 0 removes the limit ("-1" / "max").
  bool SetQuota(const std::string& group, long quota_us, long period_us);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] CgroupVersion version() const { return version_; }

  // Detects the mounted hierarchy under /sys/fs/cgroup; v2 when
  // cgroup.controllers exists at the top.
  static CgroupVersion DetectVersion(
      const std::filesystem::path& sysfs = "/sys/fs/cgroup");

 private:
  [[nodiscard]] std::filesystem::path GroupDir(const std::string& group) const;
  static bool WriteFile(const std::filesystem::path& path,
                        const std::string& value, bool append);

  std::filesystem::path root_;
  CgroupVersion version_;
};

}  // namespace lachesis::osctl

#endif  // LACHESIS_OSCTL_CGROUPFS_H_
