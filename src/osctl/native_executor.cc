#include "osctl/native_executor.h"

#include <utility>

namespace lachesis::osctl {

NativeControlExecutor::NativeControlExecutor()
    : epoch_(std::chrono::steady_clock::now()) {}

SimTime NativeControlExecutor::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void NativeControlExecutor::CallAt(SimTime time, std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(Pending{time, next_seq_++, std::move(fn)});
  }
  // A new earlier deadline must cut any in-progress sleep short.
  wake_.notify_all();
}

std::uint64_t NativeControlExecutor::Run(SimTime until) {
  std::uint64_t dispatched = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  stop_ = false;
  while (!stop_) {
    if (queue_.empty() || queue_.top().time > until) break;
    const SimTime next = queue_.top().time;
    if (next > Now()) {
      // Sleep to the deadline; wakes early on Stop() or a new CallAt.
      wake_.wait_until(lock, epoch_ + std::chrono::nanoseconds(next));
      continue;  // re-evaluate: head/stop may have changed
    }
    // const_cast: priority_queue::top() is const, but we are about to pop;
    // moving the callback out avoids copying captured state.
    auto fn = std::move(const_cast<Pending&>(queue_.top()).fn);
    queue_.pop();
    ++dispatched;
    lock.unlock();  // callbacks may CallAt / Stop
    fn();
    lock.lock();
  }
  return dispatched;
}

void NativeControlExecutor::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
}

std::size_t NativeControlExecutor::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace lachesis::osctl
