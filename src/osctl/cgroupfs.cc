#include "osctl/cgroupfs.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace lachesis::osctl {

namespace fs = std::filesystem;

namespace {

std::optional<std::string> ReadFirstLine(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  return line;
}

}  // namespace

CgroupController::CgroupController(fs::path root, CgroupVersion version)
    : root_(std::move(root)), version_(version) {}

fs::path CgroupController::GroupDir(const std::string& group) const {
  return root_ / group;
}

bool CgroupController::WriteFile(const fs::path& path, const std::string& value,
                                 bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) return false;
  out << value << "\n";
  return static_cast<bool>(out);
}

bool CgroupController::EnsureGroup(const std::string& group) {
  std::error_code ec;
  const fs::path dir = GroupDir(group);
  if (!fs::exists(dir, ec)) {
    if (!fs::create_directories(dir, ec) || ec) return false;
  }
  if (version_ == CgroupVersion::kV2) {
    // Thread-granular scheduling requires the threaded cgroup type; the
    // write is idempotent. Best effort: a fake root in tests has no kernel
    // semantics, the file simply records the request.
    WriteFile(dir / "cgroup.type", "threaded", /*append=*/false);
  }
  return true;
}

bool CgroupController::SetShares(const std::string& group,
                                 std::uint64_t shares) {
  if (!EnsureGroup(group)) return false;
  if (version_ == CgroupVersion::kV1) {
    return WriteFile(GroupDir(group) / "cpu.shares", std::to_string(shares),
                     /*append=*/false);
  }
  return WriteFile(GroupDir(group) / "cpu.weight",
                   std::to_string(SharesToWeight(shares)), /*append=*/false);
}

bool CgroupController::MoveThread(const std::string& group, long tid) {
  if (!EnsureGroup(group)) return false;
  const char* file = version_ == CgroupVersion::kV1 ? "tasks" : "cgroup.threads";
  return WriteFile(GroupDir(group) / file, std::to_string(tid),
                   /*append=*/true);
}

bool CgroupController::SetQuota(const std::string& group, long quota_us,
                                long period_us) {
  if (!EnsureGroup(group)) return false;
  if (version_ == CgroupVersion::kV1) {
    const bool quota_ok =
        WriteFile(GroupDir(group) / "cpu.cfs_quota_us",
                  std::to_string(quota_us > 0 ? quota_us : -1),
                  /*append=*/false);
    const bool period_ok =
        period_us <= 0 ||
        WriteFile(GroupDir(group) / "cpu.cfs_period_us",
                  std::to_string(period_us), /*append=*/false);
    return quota_ok && period_ok;
  }
  const std::string value =
      quota_us > 0 ? std::to_string(quota_us) + " " + std::to_string(period_us)
                   : std::string("max");
  return WriteFile(GroupDir(group) / "cpu.max", value, /*append=*/false);
}

std::vector<std::string> CgroupController::ListGroups() const {
  std::vector<std::string> groups;
  std::error_code ec;
  fs::directory_iterator it(root_, ec);
  if (ec) return groups;
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (entry.is_directory(entry_ec) && !entry_ec) {
      groups.push_back(entry.path().filename().string());
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

std::optional<std::uint64_t> CgroupController::ReadShares(
    const std::string& group) const {
  const char* file = version_ == CgroupVersion::kV1 ? "cpu.shares" : "cpu.weight";
  const auto line = ReadFirstLine(GroupDir(group) / file);
  if (!line) return std::nullopt;
  try {
    const std::uint64_t value = std::stoull(*line);
    return version_ == CgroupVersion::kV1 ? value : WeightToShares(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::pair<long, long>> CgroupController::ReadQuota(
    const std::string& group) const {
  try {
    if (version_ == CgroupVersion::kV1) {
      const auto quota = ReadFirstLine(GroupDir(group) / "cpu.cfs_quota_us");
      if (!quota) return std::nullopt;
      const auto period = ReadFirstLine(GroupDir(group) / "cpu.cfs_period_us");
      return std::make_pair(std::stol(*quota),
                            period ? std::stol(*period) : 100000L);
    }
    const auto line = ReadFirstLine(GroupDir(group) / "cpu.max");
    if (!line) return std::nullopt;
    std::istringstream in(*line);
    std::string quota_str;
    long period = 100000;
    in >> quota_str;
    if (!(in >> period)) period = 100000;
    const long quota = quota_str == "max" ? -1 : std::stol(quota_str);
    return std::make_pair(quota, period);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<long> CgroupController::ThreadsOf(const std::string& group) const {
  std::vector<long> tids;
  const char* file = version_ == CgroupVersion::kV1 ? "tasks" : "cgroup.threads";
  std::ifstream in(GroupDir(group) / file);
  std::string line;
  while (std::getline(in, line)) {
    try {
      if (!line.empty()) tids.push_back(std::stol(line));
    } catch (const std::exception&) {
      // Skip malformed lines (a fake root is just a text file).
    }
  }
  return tids;
}

CgroupVersion CgroupController::DetectVersion(const fs::path& sysfs) {
  std::error_code ec;
  if (fs::exists(sysfs / "cgroup.controllers", ec)) return CgroupVersion::kV2;
  return CgroupVersion::kV1;
}

}  // namespace lachesis::osctl
