#include "osctl/cgroupfs.h"

#include <fstream>
#include <utility>

namespace lachesis::osctl {

namespace fs = std::filesystem;

CgroupController::CgroupController(fs::path root, CgroupVersion version)
    : root_(std::move(root)), version_(version) {}

fs::path CgroupController::GroupDir(const std::string& group) const {
  return root_ / group;
}

bool CgroupController::WriteFile(const fs::path& path, const std::string& value,
                                 bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) return false;
  out << value << "\n";
  return static_cast<bool>(out);
}

bool CgroupController::EnsureGroup(const std::string& group) {
  std::error_code ec;
  const fs::path dir = GroupDir(group);
  if (!fs::exists(dir, ec)) {
    if (!fs::create_directories(dir, ec) || ec) return false;
  }
  if (version_ == CgroupVersion::kV2) {
    // Thread-granular scheduling requires the threaded cgroup type; the
    // write is idempotent. Best effort: a fake root in tests has no kernel
    // semantics, the file simply records the request.
    WriteFile(dir / "cgroup.type", "threaded", /*append=*/false);
  }
  return true;
}

bool CgroupController::SetShares(const std::string& group,
                                 std::uint64_t shares) {
  if (!EnsureGroup(group)) return false;
  if (version_ == CgroupVersion::kV1) {
    return WriteFile(GroupDir(group) / "cpu.shares", std::to_string(shares),
                     /*append=*/false);
  }
  return WriteFile(GroupDir(group) / "cpu.weight",
                   std::to_string(SharesToWeight(shares)), /*append=*/false);
}

bool CgroupController::MoveThread(const std::string& group, long tid) {
  if (!EnsureGroup(group)) return false;
  const char* file = version_ == CgroupVersion::kV1 ? "tasks" : "cgroup.threads";
  return WriteFile(GroupDir(group) / file, std::to_string(tid),
                   /*append=*/true);
}

bool CgroupController::SetQuota(const std::string& group, long quota_us,
                                long period_us) {
  if (!EnsureGroup(group)) return false;
  if (version_ == CgroupVersion::kV1) {
    const bool quota_ok =
        WriteFile(GroupDir(group) / "cpu.cfs_quota_us",
                  std::to_string(quota_us > 0 ? quota_us : -1),
                  /*append=*/false);
    const bool period_ok =
        period_us <= 0 ||
        WriteFile(GroupDir(group) / "cpu.cfs_period_us",
                  std::to_string(period_us), /*append=*/false);
    return quota_ok && period_ok;
  }
  const std::string value =
      quota_us > 0 ? std::to_string(quota_us) + " " + std::to_string(period_us)
                   : std::string("max");
  return WriteFile(GroupDir(group) / "cpu.max", value, /*append=*/false);
}

CgroupVersion CgroupController::DetectVersion(const fs::path& sysfs) {
  std::error_code ec;
  if (fs::exists(sysfs / "cgroup.controllers", ec)) return CgroupVersion::kV2;
  return CgroupVersion::kV1;
}

}  // namespace lachesis::osctl
