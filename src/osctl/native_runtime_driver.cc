#include "osctl/native_runtime_driver.h"

#include <algorithm>

#include "tsdb/scraper.h"

namespace lachesis::osctl {

NativeRuntimeDriver::NativeRuntimeDriver(spe::NativeRuntime& runtime,
                                         SimDuration delta_window)
    : runtime_(&runtime),
      delta_window_(delta_window),
      name_(runtime.name()) {}

std::string NativeRuntimeDriver::SeriesPrefix(
    const spe::NativeRuntime& runtime, const spe::NativeOperator& op) {
  return runtime.query_name(static_cast<std::size_t>(op.query_index())) + "." +
         op.name();
}

void NativeRuntimeDriver::Poll(SimTime now) {
  runtime_->ForEachRawMetric([this, now](const spe::NativeOperator& op,
                                         spe::RawMetric metric, double value) {
    store_.Append(SeriesPrefix(*runtime_, op) + "." +
                      tsdb::RawMetricName(metric),
                  now, value);
  });
}

std::vector<core::EntityInfo> NativeRuntimeDriver::Entities() {
  std::vector<core::EntityInfo> result;
  std::uint64_t id = 0;
  for (const auto& op_ptr : runtime_->ops()) {
    const spe::NativeOperator& op = *op_ptr;
    core::EntityInfo e;
    e.id = OperatorId(id++);
    e.path = SeriesPrefix(*runtime_, op);
    e.query = QueryId(static_cast<std::uint64_t>(op.query_index()));
    e.query_name =
        runtime_->query_name(static_cast<std::size_t>(op.query_index()));
    e.logical_indices = {op.logical_index()};
    e.replica = 0;  // native surface: one replica per logical operator
    e.is_ingress = op.role() == spe::OperatorRole::kIngress;
    e.is_egress = op.role() == spe::OperatorRole::kEgress;
    e.thread.os_tid = op.tid();
    result.push_back(std::move(e));
  }
  return result;
}

const core::LogicalTopology& NativeRuntimeDriver::Topology(QueryId query) {
  if (const auto it = topologies_.find(query); it != topologies_.end()) {
    return it->second;
  }
  const spe::LogicalQuery& logical =
      runtime_->query(static_cast<std::size_t>(query.value()));
  core::LogicalTopology topo;
  for (int i = 0; i < static_cast<int>(logical.operators.size()); ++i) {
    const auto& op = logical.operators[static_cast<std::size_t>(i)];
    topo.names.push_back(op.name);
    topo.base_costs.push_back(static_cast<double>(op.cost));
    if (op.role == spe::OperatorRole::kIngress) {
      topo.ingress_indices.push_back(i);
    }
    if (op.role == spe::OperatorRole::kEgress) topo.egress_indices.push_back(i);
  }
  for (const auto& edge : logical.edges) {
    topo.edges.emplace_back(edge.from, edge.to);
  }
  return topologies_.emplace(query, std::move(topo)).first->second;
}

bool NativeRuntimeDriver::Provides(core::MetricId metric) const {
  const auto& exposed = spe::NativeRuntime::ExposedMetrics();
  const auto has = [&](spe::RawMetric m) { return exposed.count(m) > 0; };
  switch (metric) {
    case core::MetricId::kTuplesInTotal:
    case core::MetricId::kTuplesInDelta:
      return has(spe::RawMetric::kTuplesIn);
    case core::MetricId::kTuplesOutTotal:
    case core::MetricId::kTuplesOutDelta:
      return has(spe::RawMetric::kTuplesOut);
    case core::MetricId::kBusyDeltaNs:
      return has(spe::RawMetric::kBusyTimeNs);
    case core::MetricId::kBufferUsage:
      return has(spe::RawMetric::kBufferUsage);
    case core::MetricId::kBufferCapacity:
      return has(spe::RawMetric::kBufferCapacity);
    case core::MetricId::kQueueSize:
      return has(spe::RawMetric::kQueueSize);
    case core::MetricId::kCost:
      return has(spe::RawMetric::kCost) ||
             has(spe::RawMetric::kAvgExecLatencyUs);
    case core::MetricId::kSelectivity:
      return has(spe::RawMetric::kSelectivity);
    case core::MetricId::kHeadTupleAge:
      return has(spe::RawMetric::kHeadTupleAgeNs);
    case core::MetricId::kQueueHighWater:
      return has(spe::RawMetric::kQueueHighWater);
    case core::MetricId::kCpuPressure:
    case core::MetricId::kInputRate:
    case core::MetricId::kHighestRate:
      return false;  // derived (rates) or OS-side (pressure)
  }
  return false;
}

double NativeRuntimeDriver::Fetch(core::MetricId metric,
                                  const core::EntityInfo& entity) {
  const auto latest = [&](spe::RawMetric m) {
    const auto sample =
        store_.Latest(entity.path + "." + tsdb::RawMetricName(m));
    return sample ? sample->value : 0.0;
  };
  const auto delta = [&](spe::RawMetric m) {
    const auto d =
        store_.Delta(entity.path + "." + tsdb::RawMetricName(m), delta_window_);
    return d ? std::max(*d, 0.0) : 0.0;
  };
  switch (metric) {
    case core::MetricId::kTuplesInTotal:
      return latest(spe::RawMetric::kTuplesIn);
    case core::MetricId::kTuplesOutTotal:
      return latest(spe::RawMetric::kTuplesOut);
    case core::MetricId::kTuplesInDelta:
      return delta(spe::RawMetric::kTuplesIn);
    case core::MetricId::kTuplesOutDelta:
      return delta(spe::RawMetric::kTuplesOut);
    case core::MetricId::kBusyDeltaNs:
      return delta(spe::RawMetric::kBusyTimeNs);
    case core::MetricId::kBufferUsage:
      return latest(spe::RawMetric::kBufferUsage);
    case core::MetricId::kBufferCapacity:
      return latest(spe::RawMetric::kBufferCapacity);
    case core::MetricId::kQueueSize:
      return latest(spe::RawMetric::kQueueSize);
    case core::MetricId::kCost:
      return latest(spe::RawMetric::kCost);
    case core::MetricId::kSelectivity:
      return latest(spe::RawMetric::kSelectivity);
    case core::MetricId::kHeadTupleAge:
      return latest(spe::RawMetric::kHeadTupleAgeNs);
    case core::MetricId::kQueueHighWater:
      return latest(spe::RawMetric::kQueueHighWater);
    case core::MetricId::kCpuPressure:
    case core::MetricId::kInputRate:
    case core::MetricId::kHighestRate:
      break;
  }
  return 0.0;
}

}  // namespace lachesis::osctl
