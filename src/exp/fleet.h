// Fleet experiment harness: the paper's §6.5 scale-out regime on the
// parallel FleetSimulator.
//
// One shard per simulated machine: each machine gets its own event queue,
// CFS state, SPE instance, metric store + scraper, and (under the Lachesis
// scheduler) its own control plane -- SimOsAdapter, SimControlExecutor,
// SimSpeDriver and LachesisRunner -- all built on the shard's Simulator, so
// a worker pool can step machines concurrently between epoch barriers. A
// core::FleetCoordinator on the barrier lane merges tick totals and
// self-metrics at the scrape cadence and places the optional churn query.
//
// Determinism: for a fixed spec (including seed), FleetResult is identical
// for every worker count -- including the per-machine scheduler-trace
// digest, which hashes every CFS transition of every machine. The golden
// fleet test pins this; bench_fleet measures the wall-clock side.
#ifndef LACHESIS_EXP_FLEET_H_
#define LACHESIS_EXP_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "core/fault.h"
#include "core/fleet_coordinator.h"
#include "core/schedule_delta.h"
#include "exp/scenario.h"
#include "queries/synthetic.h"

namespace lachesis::exp {

struct FleetSpec {
  std::string label = "fleet";
  int machines = 8;           // one shard (event queue) per machine
  int cores = 4;              // per machine
  int workers = 1;            // stepper threads; 1 = sequential reference
  int queries_per_machine = 4;
  double rate_tps = 500;      // offered load per query
  spe::SpeFlavor flavor = spe::StormFlavor();
  // kOsDefault or kLachesis (UL-SS baselines are single-node by design).
  SchedulerSpec scheduler;
  SimDuration warmup = Seconds(5);
  SimDuration measure = Seconds(15);
  SimDuration scrape_period = Seconds(1);
  // Barrier epoch; 0 derives it from scrape_period (machines couple only
  // through the scrape, so that is the coarsest bit-identical choice).
  SimDuration epoch = 0;
  std::uint64_t seed = 1;
  // Hash every machine's scheduler transitions (golden determinism tests).
  // Costs memory proportional to transition count; benches turn it off.
  bool collect_digest = true;
  // When > 0, an extra churn query per machine is deployed and its control
  // binding is attached/detached through the coordinator every period --
  // exercising cross-machine placement on the barrier lane.
  SimDuration churn_period = 0;
  // Shape of the synthetic workloads (num_queries is ignored;
  // queries_per_machine governs).
  queries::SyntheticConfig synthetic;
  // Fleet chaos: machine crash/restart, slow shards and mailbox partitions,
  // driven from the barrier lane by a FleetFaultDirector. Empty (the
  // default) builds no director and changes nothing -- fault-free results
  // and digests are bit-identical to a spec without the field. A crashed
  // machine's agent is killed (runner Stop()); its reboot builds a fresh
  // runner seeded through ReconcileWithBackend, and the coordinator
  // re-places coordinator-managed queries per `failover`.
  core::FleetFaultPlan fleet_faults;
  core::FleetFailoverConfig failover;
};

struct FleetNodeResult {
  std::string name;
  double throughput_tps = 0;
  double offered_tps = 0;
  double avg_latency_ms = 0;
  double cpu_utilization = 0;
  std::uint64_t sched_transitions = 0;
};

struct FleetResult {
  // Aggregates over all machines.
  double throughput_tps = 0;
  double offered_tps = 0;
  double avg_latency_ms = 0;
  double cpu_utilization = 0;
  double min_node_throughput_tps = 0;
  double max_node_throughput_tps = 0;
  std::vector<FleetNodeResult> nodes;

  // Control plane (zero under kOsDefault).
  std::uint64_t ticks_total = 0;
  std::uint64_t schedules_applied = 0;
  core::DeltaStats delta;
  std::uint64_t coordinator_merges = 0;  // barrier-lane aggregation rounds
  std::uint64_t queries_attached = 0;    // via the coordinator (churn)
  std::uint64_t queries_detached = 0;

  // Fleet mechanics.
  std::uint64_t epochs = 0;
  std::uint64_t cross_messages = 0;   // posted through shard mailboxes
  std::uint64_t barrier_actions = 0;
  std::uint64_t events_dispatched = 0;

  // Failure domain (all zero for an empty fault plan).
  std::uint64_t machine_crashes = 0;
  std::uint64_t machine_restarts = 0;
  std::uint64_t partition_epochs = 0;  // directed link-epochs spent down
  std::uint64_t slow_epochs = 0;       // shard-epochs spent slowed
  std::uint64_t cross_dropped = 0;     // partition + dark + late drops
  std::uint64_t shard_deaths = 0;      // coordinator liveness transitions
  std::uint64_t queries_replaced = 0;  // failover re-placements
  std::uint64_t queries_abandoned = 0;
  std::uint64_t reconcile_seeded = 0;  // delta entries seeded by reboots
  // Ops issued to a dark machine's adapter; the conformance invariant is
  // that this stays 0 (a dead agent issues nothing).
  std::uint64_t dark_ops = 0;

  // FNV-1a over every machine's serialized scheduler trace, folded in
  // machine order; 0 when collect_digest is off. Equal digests mean
  // bit-identical schedules on every machine.
  std::uint64_t trace_digest = 0;

  int worker_count = 0;
  double wall_seconds = 0;  // host time inside the two RunUntil windows
};

// Runs one fleet scenario once.
FleetResult RunFleet(const FleetSpec& spec);

}  // namespace lachesis::exp

#endif  // LACHESIS_EXP_FLEET_H_
