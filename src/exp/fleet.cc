#include "exp/fleet.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/stats.h"
#include "core/fault.h"
#include "core/fleet_coordinator.h"
#include "core/os_adapter.h"
#include "core/sim_driver.h"
#include "core/sim_executor.h"
#include "sim/fleet.h"
#include "sim/machine.h"
#include "spe/source.h"
#include "spe/trace.h"
#include "tsdb/scraper.h"

namespace lachesis::exp {

namespace {

// Records every scheduler transition of one machine; the fleet digest
// serializes all machines' records (in machine order) through the on-disk
// trace format and FNV-1a hashes the bytes -- the same construction as the
// single-machine golden-trace test, so mismatches debug the same way.
class DigestObserver final : public sim::SchedTraceObserver {
 public:
  void OnSchedTransition(SimTime time, ThreadId tid,
                         sim::SchedTransition kind) override {
    records_.push_back({time, static_cast<std::int64_t>(tid.value()), 0.0,
                        static_cast<std::uint32_t>(kind)});
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<spe::TraceRecord>& records() const {
    return records_;
  }

 private:
  std::vector<spe::TraceRecord> records_;
};

std::uint64_t FoldFnv(std::uint64_t hash, const std::string& bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Pass-through adapter between a machine's runner and its SimOsAdapter that
// knows whether the machine is dark. It never blocks an op -- it counts ops
// observed while dark, which must be zero: a crashed machine's agent is
// Stop()ped, so nothing should reach the adapter until the reboot. This is
// the "no op issued to a dead machine" conformance surface.
class DarkGuardAdapter final : public core::OsAdapter {
 public:
  explicit DarkGuardAdapter(core::OsAdapter& next) : next_(&next) {}

  void set_dark(bool dark) { dark_ = dark; }
  [[nodiscard]] std::uint64_t dark_ops() const { return dark_ops_; }

  void SetNice(const core::ThreadHandle& t, int nice) override {
    Note();
    next_->SetNice(t, nice);
  }
  void SetGroupShares(const std::string& g, std::uint64_t s) override {
    Note();
    next_->SetGroupShares(g, s);
  }
  void MoveToGroup(const core::ThreadHandle& t,
                   const std::string& g) override {
    Note();
    next_->MoveToGroup(t, g);
  }
  void SetRtPriority(const core::ThreadHandle& t, int rt) override {
    Note();
    next_->SetRtPriority(t, rt);
  }
  void SetGroupQuota(const std::string& g, SimDuration quota,
                     SimDuration period) override {
    Note();
    next_->SetGroupQuota(g, quota, period);
  }
  void SetDeadline(const core::ThreadHandle& t, SimDuration runtime,
                   SimDuration deadline, SimDuration period) override {
    Note();
    next_->SetDeadline(t, runtime, deadline, period);
  }
  void SetCpuAffinity(const core::ThreadHandle& t,
                      core::CpuPreference pref) override {
    Note();
    next_->SetCpuAffinity(t, pref);
  }
  bool SnapshotState(const std::vector<core::ThreadHandle>& threads,
                     core::OsStateSnapshot& out) override {
    return next_->SnapshotState(threads, out);
  }

 private:
  void Note() {
    if (dark_) ++dark_ops_;
  }

  core::OsAdapter* next_;
  bool dark_ = false;
  std::uint64_t dark_ops_ = 0;
};

// Everything owned by one machine's shard. Declaration order is destruction
// order in reverse: runner before driver before instance before machine.
struct NodeContext {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<DigestObserver> digest;
  std::unique_ptr<spe::SpeInstance> instance;
  std::vector<spe::DeployedQuery*> queries;
  std::vector<std::unique_ptr<spe::ExternalSource>> sources;
  std::string churn_query_name;  // empty when churn is off
  std::unique_ptr<tsdb::TimeSeriesStore> store;
  std::unique_ptr<tsdb::Scraper> scraper;
  std::unique_ptr<core::SimOsAdapter> os;
  std::unique_ptr<DarkGuardAdapter> guard;
  std::unique_ptr<core::SimControlExecutor> executor;
  std::unique_ptr<core::SimSpeDriver> driver;
  // Runners of previous agent incarnations, kept alive until the executor
  // drains: their stale tick closures (made no-ops by Stop()'s sequence
  // bump) still capture `this`.
  std::vector<std::unique_ptr<core::LachesisRunner>> retired_runners;
  std::unique_ptr<core::LachesisRunner> runner;
  std::vector<std::uint64_t> ingested_base;
  SimDuration busy_base = 0;
  std::uint64_t emitted_base = 0;
};

}  // namespace

FleetResult RunFleet(const FleetSpec& spec) {
  if (spec.machines <= 0) throw std::invalid_argument("fleet: machines <= 0");
  if (spec.scheduler.kind != SchedulerKind::kOsDefault &&
      spec.scheduler.kind != SchedulerKind::kLachesis) {
    throw std::invalid_argument(
        "fleet: UL-SS baselines are single-node; use kOsDefault or kLachesis");
  }
  const bool lachesis = spec.scheduler.kind == SchedulerKind::kLachesis;
  if (spec.churn_period > 0 && !lachesis) {
    throw std::invalid_argument("fleet: churn requires the Lachesis scheduler");
  }
  const SimDuration epoch =
      spec.epoch > 0 ? spec.epoch : spec.scrape_period;
  const SimTime end = spec.warmup + spec.measure;

  sim::FleetSimulator fleet(spec.machines, spec.workers, epoch);
  core::FleetCoordinator coordinator;
  coordinator.SetFailoverConfig(spec.failover);
  std::vector<NodeContext> nodes(static_cast<std::size_t>(spec.machines));

  // --- per-machine build (machine, SPE, sources, control plane) ---------------
  for (int m = 0; m < spec.machines; ++m) {
    NodeContext& node = nodes[static_cast<std::size_t>(m)];
    sim::Simulator& shard = fleet.shard(static_cast<std::size_t>(m));
    shard.ReserveEvents(/*hot_events=*/4096, /*cold_events=*/256);

    node.machine = std::make_unique<sim::Machine>(
        shard, spec.cores, sim::CfsParams{}, "node" + std::to_string(m));
    if (spec.collect_digest) {
      node.digest = std::make_unique<DigestObserver>();
      node.machine->set_trace_observer(node.digest.get());
    }
    node.instance = std::make_unique<spe::SpeInstance>(
        spec.flavor, std::vector<sim::Machine*>{node.machine.get()},
        "spe" + std::to_string(m));

    queries::SyntheticConfig synthetic = spec.synthetic;
    synthetic.num_queries =
        spec.queries_per_machine + (spec.churn_period > 0 ? 1 : 0);
    synthetic.seed = spec.synthetic.seed + static_cast<std::uint64_t>(m) * 9973;
    const std::vector<queries::Workload> workloads =
        queries::MakeSynthetic(synthetic);

    for (std::size_t q = 0; q < workloads.size(); ++q) {
      spe::DeployOptions options;
      options.seed = spec.seed * 7919 + static_cast<std::uint64_t>(m) * 131 +
                     q * 17;
      spe::DeployedQuery& dq =
          node.instance->Deploy(workloads[q].query, options);
      node.queries.push_back(&dq);
      node.sources.push_back(std::make_unique<spe::ExternalSource>(
          shard, dq.source_channels(), workloads[q].generator,
          spec.seed * 104729 + static_cast<std::uint64_t>(m) * 1009 + q * 17));
      node.sources.back()->Start(spec.rate_tps, end);
    }
    if (spec.churn_period > 0) {
      node.churn_query_name = node.queries.back()->name;
    }

    if (lachesis) {
      node.store = std::make_unique<tsdb::TimeSeriesStore>();
      node.scraper = std::make_unique<tsdb::Scraper>(shard, *node.store,
                                                     spec.scrape_period);
      // The instance spans exactly this machine, but pass the explicit
      // machine filter anyway: it is the fleet-safety contract.
      node.scraper->AddInstance(*node.instance, /*machine_index=*/0);
      node.scraper->Start(end);

      node.os = std::make_unique<core::SimOsAdapter>();
      node.guard = std::make_unique<DarkGuardAdapter>(*node.os);
      node.executor = std::make_unique<core::SimControlExecutor>(shard);
      node.driver = std::make_unique<core::SimSpeDriver>(
          *node.instance, *node.store, spec.scheduler.period);
      node.runner = std::make_unique<core::LachesisRunner>(
          *node.executor, *node.guard,
          spec.seed + 3 + static_cast<std::uint64_t>(m));

      // Base binding: every steady query on this machine (the churn query
      // is managed through the coordinator instead).
      core::PolicyBinding binding;
      binding.policy = MakePolicy(spec.scheduler.policy);
      binding.translator = MakeTranslator(spec.scheduler.translator);
      binding.period = spec.scheduler.period;
      binding.drivers = {node.driver.get()};
      if (!node.churn_query_name.empty()) {
        const std::string churn_name = node.churn_query_name;
        binding.filter = [churn_name](const core::EntityInfo& e) {
          return e.query_name != churn_name;
        };
      }
      node.runner->AddQuery(std::move(binding));
      node.runner->Start(end);
      coordinator.AddShard(*node.runner, node.machine->name(),
                           /*initial_queries=*/1);
    }
  }

  // Recurring barrier-lane callbacks. Owned by this frame rather than by the
  // closures registered in the fleet (a shared_ptr there would self-capture
  // and leak); every re-registration is guarded by `next <= end`, so each
  // continuation -- and its reference to these locals -- is consumed before
  // the final RunUntil(end) returns.
  std::uint64_t merges = 0;
  std::function<void(SimTime)> merge_tick;
  std::function<void(SimTime)> churn;
  std::vector<core::FleetQueryHandle> churn_live;

  // --- barrier lane: coordinator merge at the scrape cadence ------------------
  if (lachesis) {
    merge_tick = [&coordinator, &merges, &fleet, &merge_tick, end,
                  period = spec.scrape_period](SimTime t) {
      coordinator.NoteBarrier(t);  // liveness + failover before aggregation
      (void)coordinator.MergeTickTotals();
      ++merges;
      const SimTime next = t + period;
      if (next <= end) {
        fleet.CallAtBarrier(next, [&merge_tick, next] { merge_tick(next); });
      }
    };
    fleet.CallAtBarrier(spec.scrape_period,
                        [&merge_tick, t = spec.scrape_period] {
                          merge_tick(t);
                        });
  }

  // --- barrier lane: churn (coordinator-placed attach/detach) -----------------
  if (spec.churn_period > 0) {
    churn = [&coordinator, &nodes, &fleet, &spec, &churn, &churn_live,
             end](SimTime t) {
      if (churn_live.empty()) {
        try {
          const core::FleetQueryHandle handle = coordinator.AttachQuery(
              "churn", [&nodes, &spec](std::size_t shard,
                                       core::LachesisRunner& runner) {
                NodeContext& node = nodes[shard];
                core::PolicyBinding binding;
                binding.policy = MakePolicy(spec.scheduler.policy);
                binding.translator = MakeTranslator(spec.scheduler.translator);
                binding.period = spec.scheduler.period;
                binding.drivers = {node.driver.get()};
                const std::string name = node.churn_query_name;
                binding.filter = [name](const core::EntityInfo& e) {
                  return e.query_name == name;
                };
                return runner.AddQuery(std::move(binding));
              });
          churn_live.push_back(handle);
        } catch (const core::FleetPlacementError&) {
          // Every machine dark this cycle; skip and retry next period.
        }
      } else {
        try {
          coordinator.DetachQuery(churn_live.back());
        } catch (const core::FleetPlacementError& e) {
          if (e.code() != core::FleetErrorCode::kMachineDead) throw;
          // The owning machine died and failover has not re-placed the
          // query yet: the detach intent wins -- drop the record.
          coordinator.AbandonQuery(churn_live.back());
        }
        churn_live.pop_back();
      }
      const SimTime next = t + spec.churn_period;
      if (next <= end) {
        fleet.CallAtBarrier(next, [&churn, next] { churn(next); });
      }
    };
    fleet.CallAtBarrier(spec.churn_period,
                        [&churn, t = spec.churn_period] { churn(t); });
  }

  // --- barrier lane: fleet fault director (chaos runs only) -------------------
  std::uint64_t reconcile_seeded = 0;
  std::unique_ptr<core::FleetFaultDirector> director;
  if (!spec.fleet_faults.empty()) {
    core::FleetFaultDirector::Hooks hooks;
    if (lachesis) {
      // Crash = agent death: the runner stops ticking (pending wakeups are
      // superseded) and the guard starts counting any op that would still
      // reach the machine.
      hooks.on_crash = [&nodes](std::size_t shard, SimTime) {
        NodeContext& node = nodes[shard];
        node.runner->Stop();
        node.guard->set_dark(true);
      };
      // Reboot, one epoch after the shard caught its backlog up: a fresh
      // runner over the same backend, seeded from the machine's residual
      // kernel state exactly like a restarted lachesisd, then re-announced
      // to the coordinator with a fresh liveness grace period.
      hooks.on_restart = [&nodes, &coordinator, &spec, &reconcile_seeded,
                          end](std::size_t shard, SimTime now) {
        NodeContext& node = nodes[shard];
        node.guard->set_dark(false);
        node.retired_runners.push_back(std::move(node.runner));
        node.runner = std::make_unique<core::LachesisRunner>(
            *node.executor, *node.guard,
            spec.seed + 3 + static_cast<std::uint64_t>(shard));
        core::PolicyBinding binding;
        binding.policy = MakePolicy(spec.scheduler.policy);
        binding.translator = MakeTranslator(spec.scheduler.translator);
        binding.period = spec.scheduler.period;
        binding.drivers = {node.driver.get()};
        if (!node.churn_query_name.empty()) {
          const std::string churn_name = node.churn_query_name;
          binding.filter = [churn_name](const core::EntityInfo& e) {
            return e.query_name != churn_name;
          };
        }
        node.runner->AddQuery(std::move(binding));
        node.driver->Poll(now);
        reconcile_seeded += node.runner->ReconcileWithBackend();
        node.runner->Start(end);
        coordinator.ReattachShardRunner(shard, *node.runner, now,
                                        /*initial_queries=*/1);
      };
    } else {
      // OS-default fleets have no agent; crashes only freeze the machine.
      hooks.on_crash = [&nodes](std::size_t shard, SimTime) {
        if (nodes[shard].guard) nodes[shard].guard->set_dark(true);
      };
      hooks.on_restart = [&nodes](std::size_t shard, SimTime) {
        if (nodes[shard].guard) nodes[shard].guard->set_dark(false);
      };
    }
    director = std::make_unique<core::FleetFaultDirector>(
        fleet, spec.fleet_faults, std::move(hooks));
    director->Arm(end);
  }

  // --- warmup -----------------------------------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  fleet.RunUntil(spec.warmup);
  for (NodeContext& node : nodes) {
    node.busy_base = node.machine->total_busy_time();
    for (spe::DeployedQuery* q : node.queries) {
      q->ResetMeasurements();
      node.ingested_base.push_back(q->TotalIngested());
    }
    for (const auto& s : node.sources) node.emitted_base += s->emitted();
  }

  // --- measurement ------------------------------------------------------------
  fleet.RunUntil(end);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  FleetResult result;
  const double measure_s = ToSeconds(spec.measure);
  RunningStat all_latency;
  std::uint64_t digest = 14695981039346656037ULL;  // FNV-1a 64 basis
  for (std::size_t m = 0; m < nodes.size(); ++m) {
    NodeContext& node = nodes[m];
    FleetNodeResult nr;
    nr.name = node.machine->name();
    std::uint64_t emitted = 0;
    for (const auto& s : node.sources) emitted += s->emitted();
    nr.offered_tps =
        static_cast<double>(emitted - node.emitted_base) / measure_s;
    RunningStat latency;
    for (std::size_t q = 0; q < node.queries.size(); ++q) {
      nr.throughput_tps +=
          static_cast<double>(node.queries[q]->TotalIngested() -
                              node.ingested_base[q]) /
          measure_s;
      for (spe::EgressMeasurements* egress : node.queries[q]->Egresses()) {
        latency.Merge(egress->latency);
      }
    }
    nr.avg_latency_ms = latency.mean() / 1e6;
    all_latency.Merge(latency);
    nr.cpu_utilization =
        static_cast<double>(node.machine->total_busy_time() - node.busy_base) /
        (static_cast<double>(spec.cores) * static_cast<double>(spec.measure));
    if (node.digest) {
      nr.sched_transitions = node.digest->size();
      std::ostringstream out;
      spe::WriteTrace(out, node.digest->records());
      digest = FoldFnv(digest, out.str());
    }
    result.throughput_tps += nr.throughput_tps;
    result.offered_tps += nr.offered_tps;
    result.nodes.push_back(std::move(nr));
  }
  result.avg_latency_ms = all_latency.mean() / 1e6;
  result.min_node_throughput_tps = result.nodes.front().throughput_tps;
  result.max_node_throughput_tps = result.nodes.front().throughput_tps;
  double utilization = 0;
  for (const FleetNodeResult& nr : result.nodes) {
    result.min_node_throughput_tps =
        std::min(result.min_node_throughput_tps, nr.throughput_tps);
    result.max_node_throughput_tps =
        std::max(result.max_node_throughput_tps, nr.throughput_tps);
    utilization += nr.cpu_utilization;
  }
  result.cpu_utilization = utilization / static_cast<double>(nodes.size());

  if (lachesis) {
    const core::FleetTickTotals totals = coordinator.MergeTickTotals();
    result.ticks_total = totals.ticks_total;
    result.schedules_applied = totals.schedules_applied;
    result.delta = totals.delta;
    result.queries_attached = coordinator.attach_count();
    result.queries_detached = coordinator.detach_count();
    result.shard_deaths = coordinator.shard_deaths();
    result.queries_replaced = coordinator.queries_replaced();
    result.queries_abandoned = coordinator.queries_abandoned();
  }
  if (director) {
    result.machine_crashes = director->crashes();
    result.machine_restarts = director->restarts();
    result.partition_epochs = director->partition_epochs();
    result.slow_epochs = director->slow_epochs();
  }
  result.reconcile_seeded = reconcile_seeded;
  for (const NodeContext& node : nodes) {
    if (node.guard) result.dark_ops += node.guard->dark_ops();
  }
  result.coordinator_merges = merges;
  const sim::FleetSimulator::Stats fleet_stats = fleet.stats();
  result.epochs = fleet_stats.epochs;
  result.cross_messages = fleet_stats.cross_posted;
  result.barrier_actions = fleet_stats.barrier_actions;
  result.cross_dropped = fleet_stats.cross_dropped_partition +
                         fleet_stats.cross_dropped_dark +
                         fleet_stats.cross_dropped_late;
  result.events_dispatched = fleet.TotalDispatched();
  result.trace_digest = spec.collect_digest ? digest : 0;
  result.worker_count = fleet.worker_count();
  result.wall_seconds = wall_seconds;
  return result;
}

}  // namespace lachesis::exp
