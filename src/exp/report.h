// Reporting helpers for the bench harnesses: fixed-width tables with
// mean +/- 95% CI cells, letter-value summaries (Fig 13), and quick/full
// mode selection via LACHESIS_BENCH_MODE.
#ifndef LACHESIS_EXP_REPORT_H_
#define LACHESIS_EXP_REPORT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "exp/scenario.h"

namespace lachesis::exp {

// Benchmark sizing knobs, from the environment:
//   LACHESIS_BENCH_MODE=quick (default) | full
//   LACHESIS_BENCH_WORKERS=<n>  stepper threads for fleet-mode benches
//                               (default 1 = sequential; clamped to >= 1)
struct BenchMode {
  int repetitions;
  SimDuration warmup;
  SimDuration measure;
  bool full;
  int workers = 1;

  static BenchMode FromEnv();
};

// Aggregates one scalar across repetitions.
MeanCi Aggregate(const std::vector<RunResult>& runs,
                 const std::function<double(const RunResult&)>& extract);

// "123.4±5.6" with sensible precision.
std::string FormatCi(const MeanCi& ci);

// Prints a fixed-width table: header row then data rows.
void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

// Prints a letter-value summary (median, fourths, eighths, ... plus tail
// percentiles) for a sample set -- the textual equivalent of a boxen plot.
void PrintLetterValues(const std::string& label, std::vector<double> samples);

// Percentile helper on a sample set (q in [0,1]); 0 for empty input.
double Percentile(std::vector<double> samples, double q);

// Plot-ready CSV export: when LACHESIS_BENCH_CSV names a directory, writes
// "<table-title>.csv" with header + rows there (slashes/spaces sanitized).
// No-op when the variable is unset. Returns the file path written, if any.
std::string MaybeWriteCsv(const std::string& title,
                          const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows);

}  // namespace lachesis::exp

#endif  // LACHESIS_EXP_REPORT_H_
