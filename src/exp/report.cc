#include "exp/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace lachesis::exp {

BenchMode BenchMode::FromEnv() {
  const char* mode = std::getenv("LACHESIS_BENCH_MODE");
  const bool full = mode != nullptr && std::strcmp(mode, "full") == 0;
  int workers = 1;
  if (const char* w = std::getenv("LACHESIS_BENCH_WORKERS")) {
    workers = std::max(1, std::atoi(w));
  }
  if (full) {
    // Closer to the paper's 10-minute, 5-repetition runs (still simulated).
    return {5, Seconds(10), Seconds(60), true, workers};
  }
  return {2, Seconds(5), Seconds(15), false, workers};
}

MeanCi Aggregate(const std::vector<RunResult>& runs,
                 const std::function<double(const RunResult&)>& extract) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const RunResult& r : runs) values.push_back(extract(r));
  return ConfidenceInterval95(values);
}

std::string FormatCi(const MeanCi& ci) {
  char buffer[64];
  const double magnitude = std::abs(ci.mean);
  const char* format = magnitude >= 1000 ? "%.0f±%.0f"
                       : magnitude >= 10 ? "%.1f±%.1f"
                                         : "%.3f±%.3f";
  std::snprintf(buffer, sizeof(buffer), format, ci.mean, ci.half_width);
  return buffer;
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  MaybeWriteCsv(title, header, rows);
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows) print_row(row);
}

void PrintLetterValues(const std::string& label, std::vector<double> samples) {
  if (samples.empty()) {
    std::printf("%s: no samples\n", label.c_str());
    return;
  }
  std::sort(samples.begin(), samples.end());
  const auto lvs = LetterValues(samples);
  std::printf("%s  (n=%zu)\n", label.c_str(), samples.size());
  static const char* kNames[] = {"M",  "F", "E", "D", "C", "B",
                                 "A",  "Z", "Y", "X", "W"};
  for (std::size_t i = 0; i < lvs.size(); ++i) {
    const char* name = i < std::size(kNames) ? kNames[i] : "?";
    std::printf("  LV %-2s  [%12.3f , %12.3f]\n", name, lvs[i].lower,
                lvs[i].upper);
  }
  std::printf("  p99    %12.3f\n", QuantileSorted(samples, 0.99));
  std::printf("  p99.9  %12.3f\n", QuantileSorted(samples, 0.999));
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  return Quantile(std::move(samples), q);
}

std::string MaybeWriteCsv(const std::string& title,
                          const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows) {
  const char* dir = std::getenv("LACHESIS_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return {};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string file_name = title;
  for (char& c : file_name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_' || c == '.')) {
      c = '_';
    }
  }
  const std::filesystem::path path =
      std::filesystem::path(dir) / (file_name + ".csv");
  std::ofstream out(path);
  if (!out) return {};
  const auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      // +/- separated mean and CI become two columns downstream tools can
      // split on; quote cells containing commas just in case.
      out << row[c];
    }
    out << '\n';
  };
  write_row(header);
  for (const auto& row : rows) write_row(row);
  return path.string();
}

}  // namespace lachesis::exp
