#include "exp/scenario.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/stats.h"
#include "core/os_adapter.h"
#include "core/sim_driver.h"
#include "core/sim_executor.h"
#include "sim/simulator.h"
#include "spe/source.h"
#include "tsdb/scraper.h"

namespace lachesis::exp {

std::unique_ptr<core::SchedulingPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kQueueSize:
      return std::make_unique<core::QueueSizePolicy>();
    case PolicyKind::kHighestRate:
      return std::make_unique<core::HighestRatePolicy>();
    case PolicyKind::kFcfs:
      return std::make_unique<core::FcfsPolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<core::RandomPolicy>();
    case PolicyKind::kMinMemory:
      return std::make_unique<core::MinMemoryPolicy>();
    case PolicyKind::kPressureStall:
      return std::make_unique<core::PressureStallPolicy>();
  }
  throw std::invalid_argument("unknown policy kind");
}

std::unique_ptr<core::Translator> MakeTranslator(TranslatorKind kind) {
  switch (kind) {
    case TranslatorKind::kNice:
      return std::make_unique<core::NiceTranslator>();
    case TranslatorKind::kCpuShares:
      return std::make_unique<core::CpuSharesTranslator>();
    case TranslatorKind::kQuerySharesNice:
      return std::make_unique<core::QuerySharesPlusNiceTranslator>();
    case TranslatorKind::kQuota:
      return std::make_unique<core::QuotaTranslator>();
    case TranslatorKind::kRtNice:
      return std::make_unique<core::RtBoostTranslator>();
    case TranslatorKind::kDeadline:
      return std::make_unique<core::DeadlineTranslator>();
  }
  throw std::invalid_argument("unknown translator kind");
}

namespace {

// Honors the per-spec reservation shape (MakeTranslator keeps the
// default-constructed signature shared with the fleet harness).
std::unique_ptr<core::Translator> MakeTranslatorFor(const SchedulerSpec& s) {
  if (s.translator == TranslatorKind::kDeadline) {
    return std::make_unique<core::DeadlineTranslator>(s.dl_runtime, s.dl_period);
  }
  return MakeTranslator(s.translator);
}

// Wraps the policy so operators of the named queries come out tagged
// latency-critical (reservation targets for deadline/RT translators).
std::unique_ptr<core::SchedulingPolicy> MakePolicyFor(const SchedulerSpec& s) {
  auto policy = MakePolicy(s.policy);
  if (!s.critical_queries.empty()) {
    policy = std::make_unique<core::CriticalChainPolicy>(std::move(policy),
                                                         s.critical_queries);
  }
  return policy;
}

ulss::UlssPolicy ToUlssPolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kQueueSize:
      return ulss::UlssPolicy::kQueueSize;
    case PolicyKind::kFcfs:
      return ulss::UlssPolicy::kFcfs;
    case PolicyKind::kHighestRate:
      return ulss::UlssPolicy::kHighestRate;
    default:
      throw std::invalid_argument("UL-SS supports QS/FCFS/HR only");
  }
}

}  // namespace

RunResult RunScenario(const ScenarioSpec& spec) {
  sim::Simulator sim;
  // Typical steady-state pending-event count is small (one core event per
  // core, one emission per source, timers); 4096 hot slots cover every
  // scenario in the suite with one up-front allocation.
  sim.ReserveEvents(/*hot_events=*/4096, /*cold_events=*/256);
  const SimTime end = spec.warmup + spec.measure;

  // --- machines ----------------------------------------------------------------
  std::vector<std::unique_ptr<sim::Machine>> machine_storage;
  std::vector<sim::Machine*> machines;
  sim::CfsParams machine_params;
  machine_params.core_capacities = spec.core_capacities;
  machine_params.capacity_aware = spec.capacity_aware;
  for (int n = 0; n < spec.nodes; ++n) {
    machine_storage.push_back(std::make_unique<sim::Machine>(
        sim, spec.cores, machine_params, "node" + std::to_string(n)));
    machines.push_back(machine_storage.back().get());
  }

  // --- SPE instances (one per distinct flavor, Fig 18) ---------------------------
  std::vector<std::unique_ptr<spe::SpeInstance>> instance_storage;
  std::map<std::string, spe::SpeInstance*> instances;
  const auto instance_for = [&](const WorkloadSpec& w) {
    const spe::SpeFlavor& flavor =
        w.flavor_override ? *w.flavor_override : spec.flavor;
    auto it = instances.find(flavor.name);
    if (it == instances.end()) {
      instance_storage.push_back(
          std::make_unique<spe::SpeInstance>(flavor, machines, flavor.name));
      it = instances.emplace(flavor.name, instance_storage.back().get()).first;
    }
    return it->second;
  };

  // --- deploy workloads + data sources ------------------------------------------
  const bool ulss_mode = spec.scheduler.kind == SchedulerKind::kEdgeWise ||
                         spec.scheduler.kind == SchedulerKind::kHaren;
  if (ulss_mode && spec.nodes != 1) {
    throw std::invalid_argument("UL-SS baselines are single-node");
  }

  struct DeployedWorkload {
    spe::DeployedQuery* query;
    spe::SpeInstance* instance;
    spe::ExternalSource* external = nullptr;
    spe::OnDeviceSourceBody* on_device = nullptr;
    std::uint64_t ingested_base = 0;
  };
  std::vector<DeployedWorkload> deployed;
  std::vector<std::unique_ptr<spe::ExternalSource>> source_storage;

  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const WorkloadSpec& w = spec.workloads[i];
    spe::SpeInstance* instance = instance_for(w);
    spe::DeployOptions options;
    options.parallelism = w.parallelism;
    options.chaining = spec.chaining;
    options.create_threads = !ulss_mode;
    options.seed = spec.seed * 7919 + i * 131;
    spe::DeployedQuery& dq = instance->Deploy(w.workload.query, options);

    DeployedWorkload d;
    d.query = &dq;
    d.instance = instance;
    const std::uint64_t source_seed = spec.seed * 104729 + i * 17;
    if (w.workload.source_cost > 0) {
      // EdgeWise-style on-device generator thread (§6.1).
      auto body = std::make_unique<spe::OnDeviceSourceBody>(
          dq.source_channels(), w.workload.generator, w.rate_tps,
          w.workload.source_cost, end, source_seed);
      d.on_device = body.get();
      machines[0]->CreateThread(dq.name + ".source", std::move(body),
                                machines[0]->root_cgroup());
    } else {
      source_storage.push_back(std::make_unique<spe::ExternalSource>(
          sim, dq.source_channels(), w.workload.generator, source_seed));
      d.external = source_storage.back().get();
      d.external->Start(w.rate_tps, end);
    }
    deployed.push_back(d);
  }

  // --- metric reporting pipeline -------------------------------------------------
  tsdb::TimeSeriesStore store;
  tsdb::Scraper scraper(sim, store, spec.scrape_period);
  for (auto& [name, instance] : instances) scraper.AddInstance(*instance);
  scraper.Start(end);

  // --- scheduler -------------------------------------------------------------------
  core::SimOsAdapter os;
  core::SimControlExecutor executor(sim);
  std::unique_ptr<core::LachesisRunner> runner;
  std::vector<std::unique_ptr<core::SimSpeDriver>> drivers;
  std::unique_ptr<ulss::UlssScheduler> ulss_scheduler;

  switch (spec.scheduler.kind) {
    case SchedulerKind::kOsDefault:
      break;
    case SchedulerKind::kLachesis: {
      runner = std::make_unique<core::LachesisRunner>(executor, os, spec.seed + 3);
      std::vector<core::SpeDriver*> driver_ptrs;
      for (auto& [name, instance] : instances) {
        drivers.push_back(std::make_unique<core::SimSpeDriver>(
            *instance, store, spec.scheduler.period));
        driver_ptrs.push_back(drivers.back().get());
      }
      if (spec.nodes == 1) {
        core::PolicyBinding binding;
        binding.policy = MakePolicyFor(spec.scheduler);
        binding.translator = MakeTranslatorFor(spec.scheduler);
        binding.period = spec.scheduler.period;
        binding.drivers = driver_ptrs;
        runner->AddBinding(std::move(binding));
      } else {
        // Scale-out (§6.5): independent Lachesis instances per node, each
        // scheduling only the local operators (no global knowledge).
        for (int n = 0; n < spec.nodes; ++n) {
          core::PolicyBinding binding;
          binding.policy = MakePolicyFor(spec.scheduler);
          binding.translator = MakeTranslatorFor(spec.scheduler);
          binding.period = spec.scheduler.period;
          binding.drivers = driver_ptrs;
          sim::Machine* node = machines[static_cast<std::size_t>(n)];
          binding.filter = [node](const core::EntityInfo& e) {
            return e.thread.machine == node;
          };
          runner->AddBinding(std::move(binding));
        }
      }
      runner->Start(end);
      break;
    }
    case SchedulerKind::kEdgeWise:
    case SchedulerKind::kHaren: {
      ulss::UlssConfig config;
      config.flavor = spec.scheduler.kind == SchedulerKind::kEdgeWise
                          ? ulss::UlssFlavor::kEdgeWise
                          : ulss::UlssFlavor::kHaren;
      config.policy = ToUlssPolicy(spec.scheduler.policy);
      config.num_workers = spec.scheduler.ulss_workers > 0
                               ? spec.scheduler.ulss_workers
                               : spec.cores;
      config.refresh_period = spec.scheduler.period;
      ulss_scheduler =
          std::make_unique<ulss::UlssScheduler>(*machines[0], config);
      for (DeployedWorkload& d : deployed) ulss_scheduler->AddQuery(*d.query);
      ulss_scheduler->Start(end);
      break;
    }
  }

  // --- warmup ------------------------------------------------------------------------
  sim.RunUntil(spec.warmup);
  for (DeployedWorkload& d : deployed) {
    d.query->ResetMeasurements();
    d.ingested_base = d.query->TotalIngested();
  }
  std::vector<SimDuration> busy_base;
  busy_base.reserve(machines.size());
  for (sim::Machine* m : machines) busy_base.push_back(m->total_busy_time());
  std::vector<std::uint64_t> emitted_base;
  for (DeployedWorkload& d : deployed) {
    emitted_base.push_back(d.external ? d.external->emitted()
                                      : d.on_device->emitted());
  }
  // Per-node ingress counts at the warmup boundary (Fig 17 reports per-node
  // throughput alongside the aggregate).
  const auto node_ingested = [&] {
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(spec.nodes), 0);
    for (const DeployedWorkload& d : deployed) {
      for (const spe::DeployedOp& op : d.query->ops) {
        if (op.op->config().role != spe::OperatorRole::kIngress) continue;
        counts[static_cast<std::size_t>(op.machine_index)] +=
            op.op->tuples_in();
      }
    }
    return counts;
  };
  const std::vector<std::uint64_t> node_ingested_base = node_ingested();

  // --- goal sampling (1 Hz, §6.1 "values of the goal") --------------------------------
  RunningStat qs_goal;       // variance of queue sizes per sample instant
  RunningStat fcfs_goal_ms;  // max head-of-line age per sample instant
  std::vector<double> queue_samples;
  for (SimTime t = spec.warmup + Seconds(1); t <= end; t += Seconds(1)) {
    sim.ScheduleAt(t, [&deployed, &qs_goal, &fcfs_goal_ms, &queue_samples, &sim] {
      std::vector<double> sizes;
      double max_age_ms = 0;
      for (const DeployedWorkload& d : deployed) {
        for (const spe::DeployedOp& op : d.query->ops) {
          if (op.op->config().role == spe::OperatorRole::kIngress) continue;
          sizes.push_back(static_cast<double>(op.op->input().size()));
          max_age_ms = std::max(
              max_age_ms, ToMillis(op.op->input().HeadAge(sim.now())));
        }
      }
      if (!sizes.empty()) {
        qs_goal.Add(PopulationVariance(sizes));
        queue_samples.insert(queue_samples.end(), sizes.begin(), sizes.end());
      }
      fcfs_goal_ms.Add(max_age_ms);
    });
  }

  // --- measurement -------------------------------------------------------------------
  sim.RunUntil(end);

  RunResult result;
  const double measure_s = ToSeconds(spec.measure);
  RunningStat all_latency;
  RunningStat all_e2e;
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    DeployedWorkload& d = deployed[i];
    QueryResult qr;
    qr.throughput_tps =
        static_cast<double>(d.query->TotalIngested() - d.ingested_base) /
        measure_s;
    const std::uint64_t emitted =
        (d.external ? d.external->emitted() : d.on_device->emitted()) -
        emitted_base[i];
    qr.offered_tps = static_cast<double>(emitted) / measure_s;
    RunningStat latency;
    RunningStat e2e;
    for (spe::EgressMeasurements* egress : d.query->Egresses()) {
      latency.Merge(egress->latency);
      e2e.Merge(egress->e2e_latency);
      result.latency_histogram_ns.Merge(egress->latency_histogram);
      for (const double v : egress->latency_samples) {
        qr.latency_samples_ms.push_back(v / 1e6);
      }
      for (const double v : egress->e2e_latency_samples) {
        qr.e2e_latency_samples_ms.push_back(v / 1e6);
      }
    }
    qr.avg_latency_ms = latency.mean() / 1e6;
    qr.avg_e2e_latency_ms = e2e.mean() / 1e6;
    all_latency.Merge(latency);
    all_e2e.Merge(e2e);
    result.latency_samples_ms.insert(result.latency_samples_ms.end(),
                                     qr.latency_samples_ms.begin(),
                                     qr.latency_samples_ms.end());
    result.throughput_tps += qr.throughput_tps;
    result.per_query[d.query->name] = std::move(qr);
  }
  result.avg_latency_ms = all_latency.mean() / 1e6;
  result.avg_e2e_latency_ms = all_e2e.mean() / 1e6;
  {
    const std::vector<std::uint64_t> node_totals = node_ingested();
    result.per_node_throughput_tps.resize(node_totals.size());
    for (std::size_t n = 0; n < node_totals.size(); ++n) {
      result.per_node_throughput_tps[n] =
          static_cast<double>(node_totals[n] - node_ingested_base[n]) /
          measure_s;
    }
  }
  result.qs_goal = qs_goal.mean();
  result.fcfs_goal_ms = fcfs_goal_ms.mean();
  result.queue_size_samples = std::move(queue_samples);

  SimDuration busy = 0;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    busy += machines[m]->total_busy_time() - busy_base[m];
  }
  result.cpu_utilization =
      static_cast<double>(busy) /
      (static_cast<double>(spec.nodes) * spec.cores * static_cast<double>(spec.measure));
  if (runner) {
    result.lachesis_schedules = runner->schedules_applied();
    result.lachesis_ops_applied = runner->delta_totals().applied;
    result.lachesis_ops_skipped = runner->delta_totals().skipped;
    result.lachesis_ops_errors = runner->delta_totals().errors;
  }
  return result;
}

std::vector<RunResult> RunRepetitions(const ScenarioSpec& spec,
                                      int repetitions) {
  std::vector<RunResult> results;
  results.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    ScenarioSpec rep = spec;
    rep.seed = spec.seed + static_cast<std::uint64_t>(r) * 1000003;
    results.push_back(RunScenario(rep));
  }
  return results;
}

}  // namespace lachesis::exp
