// Experiment harness (paper §6.1, "Evaluation Setup").
//
// A scenario deploys workloads on simulated machines under one of the
// compared schedulers (default OS, Lachesis with a policy+translator, or a
// UL-SS baseline), runs warmup + measurement windows, and reports the
// paper's §3.2 metrics plus per-policy goal values. Repetitions with
// distinct seeds are aggregated with 95% confidence intervals by the bench
// binaries.
#ifndef LACHESIS_EXP_SCENARIO_H_
#define LACHESIS_EXP_SCENARIO_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hdr_histogram.h"
#include "common/sim_time.h"
#include "core/policies.h"
#include "core/runner.h"
#include "queries/workload.h"
#include "spe/flavor.h"
#include "ulss/ulss.h"

namespace lachesis::exp {

enum class SchedulerKind {
  kOsDefault,   // plain CFS, all nice 0, root cgroup
  kLachesis,    // the middleware
  kEdgeWise,    // UL-SS baseline (fixed QS)
  kHaren,       // UL-SS baseline (pluggable policies, fresh metrics)
};

enum class PolicyKind {
  kQueueSize,
  kHighestRate,
  kFcfs,
  kRandom,
  kMinMemory,
  kPressureStall,  // §8 future work: PSI-driven
};

enum class TranslatorKind {
  kNice,             // single-priority -> thread nice
  kCpuShares,        // one cgroup per operator
  kQuerySharesNice,  // cgroup per query + nice within (Fig 18)
  kQuota,            // §8: hard CFS-bandwidth budgets per operator group
  kRtNice,           // §8: RT-boost the top operator + nice for the rest
  kDeadline,         // SCHED_DEADLINE reservations for critical ops + nice
};

struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kOsDefault;
  PolicyKind policy = PolicyKind::kQueueSize;
  TranslatorKind translator = TranslatorKind::kNice;
  SimDuration period = Seconds(1);  // Lachesis scheduling / Haren refresh
  int ulss_workers = 0;             // 0 -> #cores
  // Queries whose operators are tagged latency-critical (the policy is
  // wrapped in core::CriticalChainPolicy). Feeds the deadline/RT
  // translators' reservation choice; priority-only translators ignore it.
  std::vector<std::string> critical_queries;
  // SCHED_DEADLINE reservation shape for TranslatorKind::kDeadline.
  SimDuration dl_runtime = Millis(4);
  SimDuration dl_period = Millis(10);
};

struct WorkloadSpec {
  queries::Workload workload;
  double rate_tps = 1000;  // offered load of this workload's Data Source
  int parallelism = 1;     // fission multiplier (Fig 17)
  // Runs this workload on its own engine flavor (multi-SPE scenario,
  // Fig 18); defaults to the scenario flavor.
  std::optional<spe::SpeFlavor> flavor_override;
};

struct ScenarioSpec {
  std::string label;
  int cores = 4;  // Odroid big cores; 8 for the server experiment
  int nodes = 1;  // scale-out (Fig 17)
  spe::SpeFlavor flavor = spe::StormFlavor();
  std::vector<WorkloadSpec> workloads;
  SchedulerSpec scheduler;
  SimDuration warmup = Seconds(5);
  SimDuration measure = Seconds(20);
  SimDuration scrape_period = Seconds(1);
  std::uint64_t seed = 1;
  // Flink chaining toggle (paper disables chaining; see Fig 11 footnote).
  bool chaining = false;
  // Per-core relative capacities for heterogeneous (big.LITTLE) nodes, in
  // (0, 1]; empty = symmetric full-capacity cores. Applied to every node.
  std::vector<double> core_capacities;
  // When false, the simulated kernel places work capacity-blind (the
  // control arm of the heterogeneity benches).
  bool capacity_aware = true;
};

struct QueryResult {
  double throughput_tps = 0;      // ingested tuples/s in the window
  double offered_tps = 0;         // source emission rate achieved
  double avg_latency_ms = 0;      // processing latency
  double avg_e2e_latency_ms = 0;  // end-to-end latency
  std::vector<double> latency_samples_ms;
  std::vector<double> e2e_latency_samples_ms;
};

struct RunResult {
  // Aggregate over all workloads (sum of ingress throughputs, latency
  // averages over all egresses -- §6.1 "Metrics").
  double throughput_tps = 0;
  double avg_latency_ms = 0;
  double avg_e2e_latency_ms = 0;
  // Policy goal values (§6.1 "we also present the values of the goal"):
  double qs_goal = 0;    // time-avg variance of operator input queue sizes
  double fcfs_goal_ms = 0;  // time-avg max head-of-line tuple age
  double cpu_utilization = 0;  // fraction of total core time busy
  std::vector<double> latency_samples_ms;       // pooled reservoir (Fig 13)
  HdrHistogram latency_histogram_ns;            // exact tails (p99/p99.9)
  std::vector<double> queue_size_samples;       // pooled over ops/time (Fig 6/8)
  std::map<std::string, QueryResult> per_query;  // Fig 14/18
  std::uint64_t lachesis_schedules = 0;
  // Delta-layer counters: OS operations the middleware issued vs. elided
  // because the schedule was unchanged since the last period.
  std::uint64_t lachesis_ops_applied = 0;
  std::uint64_t lachesis_ops_skipped = 0;
  std::uint64_t lachesis_ops_errors = 0;
  // Ingested tuples/s per node (index = node), summing the ingress replicas
  // placed there. The aggregate hides per-node regressions at higher
  // fission degrees; Fig 17 reports both.
  std::vector<double> per_node_throughput_tps;
};

// Scheduler component factories, shared with the fleet harness
// (exp/fleet.h); throw std::invalid_argument on unknown kinds.
std::unique_ptr<core::SchedulingPolicy> MakePolicy(PolicyKind kind);
std::unique_ptr<core::Translator> MakeTranslator(TranslatorKind kind);

// Runs one scenario once.
RunResult RunScenario(const ScenarioSpec& spec);

// Runs `repetitions` with derived seeds; returns all results.
std::vector<RunResult> RunRepetitions(const ScenarioSpec& spec, int repetitions);

}  // namespace lachesis::exp

#endif  // LACHESIS_EXP_SCENARIO_H_
