// Data sources (paper §2, §6.1).
//
// A Data Source is external to the query: it produces ingress tuples at a
// configured rate into unbounded Kafka-like channels read by the Ingress
// operators. Two modes mirror the paper's setups:
//  - ExternalSource: a Kafka producer on another device -- emission is pure
//    simulation events and consumes no CPU on the query machine (LR, VS,
//    SYN setups);
//  - OnDeviceSource: a generator thread on the query machine itself, as in
//    the EdgeWise evaluation replicated in §6.2 (ETL, STATS).
#ifndef LACHESIS_SPE_SOURCE_H_
#define LACHESIS_SPE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "spe/queue.h"
#include "spe/tuple.h"

namespace lachesis::spe {

// Produces the payload of the next tuple; `produced`/`ingested` timestamps
// are managed by the source and the ingress operator.
using TupleGenerator = std::function<Tuple(Rng& rng, std::uint64_t seq)>;

// Event-driven source: no CPU cost on any machine. Emission rides the event
// queue's hot lane (one small POD event per tuple, no closure allocation),
// which dominates event traffic in the external-source figure setups.
class ExternalSource final : public sim::EventSink {
 public:
  ExternalSource(sim::Simulator& sim, std::vector<TupleQueue*> channels,
                 TupleGenerator generator, std::uint64_t seed)
      : sim_(&sim),
        channels_(std::move(channels)),
        generator_(std::move(generator)),
        rng_(seed) {}

  // Emits uniformly spaced tuples at `rate_tps` until `until`.
  void Start(double rate_tps, SimTime until) {
    period_ = static_cast<SimDuration>(static_cast<double>(kSecond) / rate_tps);
    until_ = until;
    ScheduleNext(sim_->now() + period_);
  }

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  void HandleEvent(std::int32_t /*code*/, std::uint64_t a,
                   std::uint64_t /*b*/) override {
    const auto when = static_cast<SimTime>(a);
    Tuple t = generator_(rng_, emitted_);
    t.produced = when;
    channels_[emitted_ % channels_.size()]->Push(t);
    ++emitted_;
    ScheduleNext(when + period_);
  }

 private:
  void ScheduleNext(SimTime when) {
    if (when > until_) return;
    sim_->ScheduleAt(when, this, /*code=*/0, static_cast<std::uint64_t>(when),
                     0);
  }

  sim::Simulator* sim_;
  std::vector<TupleQueue*> channels_;
  TupleGenerator generator_;
  Rng rng_;
  SimDuration period_ = kSecond;
  SimTime until_ = 0;
  std::uint64_t emitted_ = 0;
};

// Generator thread running on the query machine (consumes CPU there).
class OnDeviceSourceBody final : public sim::ThreadBody {
 public:
  OnDeviceSourceBody(std::vector<TupleQueue*> channels, TupleGenerator generator,
                     double rate_tps, SimDuration per_tuple_cost, SimTime until,
                     std::uint64_t seed)
      : channels_(std::move(channels)),
        generator_(std::move(generator)),
        period_(static_cast<SimDuration>(static_cast<double>(kSecond) / rate_tps)),
        cost_(per_tuple_cost),
        until_(until),
        rng_(seed) {}

  sim::Action Next(sim::Machine& machine) override {
    switch (phase_) {
      case Phase::kGenerate: {
        if (machine.now() > until_) return sim::Action::Exit();
        phase_ = Phase::kPush;
        return sim::Action::Compute(cost_);
      }
      case Phase::kPush: {
        Tuple t = generator_(rng_, emitted_);
        t.produced = machine.now();
        channels_[emitted_ % channels_.size()]->Push(t);
        ++emitted_;
        next_emit_ += period_;
        phase_ = Phase::kGenerate;
        const SimDuration gap = next_emit_ - machine.now();
        if (gap > 0) return sim::Action::Sleep(gap);
        return sim::Action::Compute(0);  // behind schedule: emit immediately
      }
    }
    return sim::Action::Exit();
  }

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  enum class Phase { kGenerate, kPush };
  std::vector<TupleQueue*> channels_;
  TupleGenerator generator_;
  SimDuration period_;
  SimDuration cost_;
  SimTime until_;
  Rng rng_;
  Phase phase_ = Phase::kGenerate;
  SimTime next_emit_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace lachesis::spe

#endif  // LACHESIS_SPE_SOURCE_H_
