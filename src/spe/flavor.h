// SPE flavors: the behavioural profile of the engine executing a query.
//
// The paper evaluates Lachesis on Apache Storm, Apache Flink and Liebre.
// At the level its experiments exercise, the engines differ in
//  (1) queueing: Storm/Liebre keep unbounded in-memory queues, Flink uses
//      bounded exchanges that backpressure producers (Fig 12 discussion);
//  (2) operator chaining (fusion): supported by Flink, disabled in the
//      paper's runs to match Storm's physical DAG;
//  (3) per-tuple framework overhead: Flink's exchange stack costs more per
//      non-chained hop on small devices (the paper observes lower absolute
//      Flink performance on Odroids);
//  (4) which raw metrics their public metric APIs expose, which drives the
//      metric provider's dependency resolution (Fig 4, Algorithm 3).
#ifndef LACHESIS_SPE_FLAVOR_H_
#define LACHESIS_SPE_FLAVOR_H_

#include <cstdint>
#include <set>
#include <string>

#include "common/sim_time.h"

namespace lachesis::spe {

// Raw metrics an SPE may expose through its public API, per physical
// operator. Derived metrics (cost, selectivity, rates...) are computed by
// Lachesis' metric provider from whichever subset is available.
enum class RawMetric : std::uint8_t {
  kTuplesIn,         // cumulative input count
  kTuplesOut,        // cumulative output count
  kQueueSize,        // current input queue length
  kBufferUsage,      // queue fill fraction in [0,1] (Flink-style)
  kBufferCapacity,   // configured queue capacity
  kAvgExecLatencyUs, // rolling average per-tuple execution latency (Storm-style)
  kBusyTimeNs,       // cumulative processing time (Flink-style)
  kCost,             // per-tuple cost, directly measured (Liebre-style)
  kSelectivity,      // out/in ratio, directly measured (Liebre-style)
  kHeadTupleAgeNs,   // age of the head-of-line tuple (Liebre-style)
  kQueueHighWater,   // peak input-queue length since deployment; makes
                     // backpressure collapse on unbounded queues visible
                     // before OOM (bounded queues report ring peaks)
};

struct SpeFlavor {
  std::string name;
  // 0 = unbounded queues; >0 = bounded with producer backpressure.
  std::size_t queue_capacity = 0;
  bool supports_chaining = false;
  bool chaining_default = false;
  // Engine bookkeeping added to every tuple exchanged between physical
  // operators (serialization, ack tracking, exchange stack).
  SimDuration per_tuple_overhead = Micros(20);
  // Spout-side flow control (Storm's max.spout.pending, Liebre's in-memory
  // limits): ingress operators stop consuming from the source channel while
  // more than this many tuples sit in the query's internal queues. 0 = none
  // (Flink: the bounded exchanges already backpressure structurally).
  std::size_t max_pending = 0;
  // Raw metrics the engine's public API exposes.
  std::set<RawMetric> exposed_metrics;
};

// Storm-like: unbounded queues, no chaining, counts + rolling execute
// latency exposed (no direct cost/selectivity).
inline SpeFlavor StormFlavor() {
  SpeFlavor f;
  f.name = "storm";
  f.queue_capacity = 0;
  f.supports_chaining = false;
  f.per_tuple_overhead = Micros(25);  // ack tracking per tuple
  f.max_pending = 1024;
  f.exposed_metrics = {RawMetric::kTuplesIn, RawMetric::kTuplesOut,
                       RawMetric::kQueueSize, RawMetric::kAvgExecLatencyUs,
                       RawMetric::kQueueHighWater};
  return f;
}

// Flink-like: bounded exchanges (backpressure), chaining available, busy
// time + buffer usage exposed (queue size must be derived).
inline SpeFlavor FlinkFlavor() {
  SpeFlavor f;
  f.name = "flink";
  f.queue_capacity = 64;
  f.supports_chaining = true;
  f.chaining_default = false;  // paper disables chaining to match Storm DAGs
  f.per_tuple_overhead = Micros(40);  // network-stack exchange per hop
  f.exposed_metrics = {RawMetric::kTuplesIn, RawMetric::kTuplesOut,
                       RawMetric::kBufferUsage, RawMetric::kBufferCapacity,
                       RawMetric::kBusyTimeNs};
  return f;
}

// Liebre-like: lightweight research SPE; unbounded queues, rich direct
// metrics (cost, selectivity, head-of-line age).
inline SpeFlavor LiebreFlavor() {
  SpeFlavor f;
  f.name = "liebre";
  f.queue_capacity = 0;
  f.supports_chaining = false;
  f.per_tuple_overhead = Micros(10);
  f.max_pending = 1024;
  f.exposed_metrics = {RawMetric::kTuplesIn,  RawMetric::kTuplesOut,
                       RawMetric::kQueueSize, RawMetric::kCost,
                       RawMetric::kSelectivity, RawMetric::kHeadTupleAgeNs,
                       RawMetric::kQueueHighWater};
  return f;
}

}  // namespace lachesis::spe

#endif  // LACHESIS_SPE_FLAVOR_H_
