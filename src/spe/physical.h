// Physical operators: the execution units of the SPE (paper §2).
//
// A physical operator is a replica of one logical operator or of a fused
// chain of logical operators. It is passive: execution is driven either by a
// dedicated simulated kernel thread (the mainstream one-thread-per-operator
// model Lachesis schedules) or by a user-level scheduler's worker threads
// (the EdgeWise/Haren baselines in src/ulss/). The two-phase Begin/Finish
// protocol lets both executors charge the simulated CPU cost between popping
// a tuple and applying its effects.
#ifndef LACHESIS_SPE_PHYSICAL_H_
#define LACHESIS_SPE_PHYSICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hdr_histogram.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "spe/logical.h"
#include "spe/queue.h"
#include "spe/tuple.h"

namespace lachesis::spe {

class PhysicalOp;

// Routing from a physical operator to the replicas of one downstream
// operator. Remote destinations (scale-out deployments) are delivered via a
// simulated network hop instead of a direct push.
struct PhysicalEdge {
  std::vector<TupleQueue*> destinations;  // one per downstream replica
  std::vector<bool> remote;               // destination on another machine?
  Partitioning partitioning = Partitioning::kShuffle;
  std::uint64_t rr_counter = 0;

  [[nodiscard]] std::size_t PickReplica(const Tuple& t) {
    if (destinations.size() == 1) return 0;
    if (partitioning == Partitioning::kKeyBy) {
      std::uint64_t h = static_cast<std::uint64_t>(t.key);
      return SplitMix64(h) % destinations.size();
    }
    return rr_counter++ % destinations.size();
  }
};

// Samples recorded by Egress operators (paper §3.2 latency definitions).
// The reservoirs feed the letter-value analysis; the HDR histograms give
// exact tail quantiles (p99/p99.9) regardless of volume.
struct EgressMeasurements {
  RunningStat latency;       // processing latency, ns
  RunningStat e2e_latency;   // end-to-end latency, ns
  std::vector<double> latency_samples;      // capped reservoir, ns
  std::vector<double> e2e_latency_samples;  // capped reservoir, ns
  HdrHistogram latency_histogram;
  HdrHistogram e2e_latency_histogram;
  std::uint64_t tuples = 0;

  void Reset() { *this = {}; }
};

class PhysicalOp {
 public:
  struct Config {
    std::string name;          // "<query>.<chain-name>.<replica>"
    QueryId query;
    std::vector<int> logical_indices;  // fused chain, upstream-first
    int replica = 0;
    OperatorRole role = OperatorRole::kTransform;
    SimDuration cost = 0;      // summed chain cost
    double cost_jitter = 0.0;
    double block_probability = 0.0;
    SimDuration block_max = 0;
    SimDuration per_tuple_overhead = 0;  // engine framework overhead
    SimDuration network_delay = 0;       // latency for remote pushes
    std::uint64_t seed = 1;
  };

  PhysicalOp(Config config, TupleQueue* input,
             std::vector<std::unique_ptr<OperatorLogic>> logic_chain);

  // --- flow control ----------------------------------------------------------
  // Ingress-side flow control (Storm's max.spout.pending): when configured
  // and the query's internal queues hold more than `cap` tuples, the ingress
  // pauses consumption from the source channel.
  void set_flow_control(std::function<std::size_t()> pending_fn,
                        std::size_t cap) {
    pending_fn_ = std::move(pending_fn);
    pending_cap_ = cap;
  }
  [[nodiscard]] bool Throttled() const {
    return pending_fn_ && pending_fn_() > pending_cap_;
  }

  // --- two-phase execution -------------------------------------------------
  // Pops the next tuple and returns the CPU cost to charge; false if the
  // input queue is empty.
  [[nodiscard]] bool Begin(SimDuration& cost_out);
  // Applies the popped tuple after its cost was charged: runs the logic
  // chain, stages outputs, records egress samples. Returns a blocking-I/O
  // duration (0 for none).
  SimDuration Finish(SimTime now);
  // Pushes staged outputs; returns false if blocked on a full bounded queue
  // (remaining outputs stay staged). `blocked_queue()` names the culprit.
  [[nodiscard]] bool TryEmit();
  // Pushes staged outputs ignoring capacity (user-level schedulers, which
  // the paper only pairs with unbounded-queue engines).
  void EmitAllUnbounded();
  [[nodiscard]] TupleQueue* blocked_queue() const { return blocked_queue_; }

  // --- wiring ----------------------------------------------------------------
  void AddEdge(PhysicalEdge edge) { edges_.push_back(std::move(edge)); }
  // Extra per-input-tuple cost for cross-node serialization; set by the
  // deployment once edges are wired (scaled by the remote fan-out share).
  void AddSerializationOverhead(SimDuration extra) {
    config_.per_tuple_overhead += extra;
  }
  [[nodiscard]] TupleQueue& input() { return *input_; }
  [[nodiscard]] const TupleQueue& input() const { return *input_; }
  void set_remote_push(
      std::function<void(TupleQueue*, const Tuple&, SimDuration)> fn) {
    remote_push_ = std::move(fn);
  }

  // --- identity & metrics ------------------------------------------------------
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t tuples_in() const { return tuples_in_; }
  [[nodiscard]] std::uint64_t tuples_out() const { return tuples_out_; }
  [[nodiscard]] SimDuration busy_ns() const { return busy_ns_; }
  [[nodiscard]] EgressMeasurements& egress() { return egress_; }
  // Measured per-tuple cost (ns) and selectivity since the last reset;
  // 0 while no tuple was processed.
  [[nodiscard]] double MeasuredCostNs() const;
  [[nodiscard]] double MeasuredSelectivity() const;

  void ResetMeasurements();

 private:
  void RouteOutput(const Tuple& t);

  Config config_;
  TupleQueue* input_;
  std::vector<std::unique_ptr<OperatorLogic>> logic_chain_;
  std::vector<PhysicalEdge> edges_;
  std::function<void(TupleQueue*, const Tuple&, SimDuration)> remote_push_;
  std::function<std::size_t()> pending_fn_;
  std::size_t pending_cap_ = 0;
  Rng rng_;

  // In-flight tuple between Begin and Finish.
  Tuple current_{};
  bool in_flight_ = false;
  SimDuration current_cost_ = 0;

  // Staged outputs: (edge index, tuple) pairs, emitted in order.
  struct Staged {
    std::size_t edge;
    std::size_t replica;
    Tuple tuple;
  };
  std::vector<Staged> staged_;
  std::size_t staged_pos_ = 0;
  TupleQueue* blocked_queue_ = nullptr;

  std::vector<Tuple> scratch_in_;
  std::vector<Tuple> scratch_out_;

  std::uint64_t tuples_in_ = 0;
  std::uint64_t tuples_out_ = 0;
  SimDuration busy_ns_ = 0;
  EgressMeasurements egress_;
};

}  // namespace lachesis::spe

#endif  // LACHESIS_SPE_PHYSICAL_H_
