// Logical queries: the DAG a user defines (paper §2).
//
// A logical query is a DAG of logical operators connected by streams. The
// SPE turns it into a physical DAG at deployment (operator fusion/fission,
// spe/deployment.h). Operator behaviour is expressed as a per-tuple function
// plus a cost/selectivity profile, which is all the evaluation workloads
// need while still running real per-tuple logic (Bloom filters, toll
// accounting, interpolation, ...).
#ifndef LACHESIS_SPE_LOGICAL_H_
#define LACHESIS_SPE_LOGICAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "spe/tuple.h"

namespace lachesis::spe {

enum class OperatorRole : std::uint8_t {
  kIngress,    // consumes from the Data Source channel
  kTransform,  // map / filter / flatmap / aggregate
  kEgress,     // delivers results to the user (Sink)
};

// How tuples are routed to the replicas of the downstream operator.
enum class Partitioning : std::uint8_t {
  kShuffle,  // round-robin
  kKeyBy,    // hash of Tuple::key
};

// Workload-specific per-tuple state & logic. Implementations run inside the
// operator's physical replica: Process consumes one input and appends any
// outputs. Stateful logic keeps its state in the object (one instance per
// physical replica).
class OperatorLogic {
 public:
  virtual ~OperatorLogic() = default;
  virtual void Process(const Tuple& input, std::vector<Tuple>& outputs) = 0;
};

// A pass-through (used by ingress / pure-cost operators).
class IdentityLogic final : public OperatorLogic {
 public:
  void Process(const Tuple& input, std::vector<Tuple>& outputs) override {
    outputs.push_back(input);
  }
};

// Adapts a plain function to OperatorLogic.
class FnLogic final : public OperatorLogic {
 public:
  using Fn = std::function<void(const Tuple&, std::vector<Tuple>&)>;
  explicit FnLogic(Fn fn) : fn_(std::move(fn)) {}
  void Process(const Tuple& input, std::vector<Tuple>& outputs) override {
    fn_(input, outputs);
  }

 private:
  Fn fn_;
};

struct LogicalOperator {
  std::string name;
  OperatorRole role = OperatorRole::kTransform;
  // One logic instance is created per physical replica.
  std::function<std::unique_ptr<OperatorLogic>()> make_logic;
  // Average CPU cost per input tuple and its relative jitter (uniform in
  // [1-jitter, 1+jitter]).
  SimDuration cost = Micros(100);
  double cost_jitter = 0.1;
  // Requested fission degree (may be scaled at deployment).
  int parallelism = 1;
  // Blocking-I/O simulation (paper §6.4/Fig 16): probability per tuple to
  // block for Uniform(0, block_max).
  double block_probability = 0.0;
  SimDuration block_max = 0;
};

struct LogicalEdge {
  int from = 0;
  int to = 0;
  Partitioning partitioning = Partitioning::kShuffle;
};

// A logical query DAG. Built via the fluent helpers; validated at deployment.
struct LogicalQuery {
  std::string name;
  std::vector<LogicalOperator> operators;
  std::vector<LogicalEdge> edges;

  // Appends an operator; returns its index.
  int Add(LogicalOperator op) {
    operators.push_back(std::move(op));
    return static_cast<int>(operators.size()) - 1;
  }
  void Connect(int from, int to, Partitioning p = Partitioning::kShuffle) {
    edges.push_back({from, to, p});
  }

  [[nodiscard]] std::vector<int> Downstream(int op) const {
    std::vector<int> result;
    for (const auto& e : edges) {
      if (e.from == op) result.push_back(e.to);
    }
    return result;
  }
  [[nodiscard]] std::vector<int> Upstream(int op) const {
    std::vector<int> result;
    for (const auto& e : edges) {
      if (e.to == op) result.push_back(e.from);
    }
    return result;
  }
};

// Convenience builders -------------------------------------------------------

inline LogicalOperator MakeIngress(std::string name, SimDuration cost) {
  LogicalOperator op;
  op.name = std::move(name);
  op.role = OperatorRole::kIngress;
  op.make_logic = [] { return std::make_unique<IdentityLogic>(); };
  op.cost = cost;
  return op;
}

inline LogicalOperator MakeEgress(std::string name, SimDuration cost) {
  LogicalOperator op;
  op.name = std::move(name);
  op.role = OperatorRole::kEgress;
  op.make_logic = [] { return std::make_unique<IdentityLogic>(); };
  op.cost = cost;
  return op;
}

inline LogicalOperator MakeTransform(
    std::string name, SimDuration cost,
    std::function<std::unique_ptr<OperatorLogic>()> make_logic) {
  LogicalOperator op;
  op.name = std::move(name);
  op.role = OperatorRole::kTransform;
  op.make_logic = std::move(make_logic);
  op.cost = cost;
  return op;
}

}  // namespace lachesis::spe

#endif  // LACHESIS_SPE_LOGICAL_H_
