#include "spe/physical.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lachesis::spe {

namespace {
// Cap on retained latency samples per egress; beyond it, reservoir sampling
// keeps the distribution unbiased for the letter-value analysis (Fig 13).
constexpr std::size_t kMaxSamples = 100'000;

void ReservoirAdd(std::vector<double>& samples, double value,
                  std::uint64_t seen, Rng& rng) {
  if (samples.size() < kMaxSamples) {
    samples.push_back(value);
    return;
  }
  const std::uint64_t slot = rng.NextBounded(seen);
  if (slot < kMaxSamples) samples[slot] = value;
}
}  // namespace

PhysicalOp::PhysicalOp(Config config, TupleQueue* input,
                       std::vector<std::unique_ptr<OperatorLogic>> logic_chain)
    : config_(std::move(config)),
      input_(input),
      logic_chain_(std::move(logic_chain)),
      rng_(config_.seed) {
  assert(input_ != nullptr);
  assert(!logic_chain_.empty());
}

bool PhysicalOp::Begin(SimDuration& cost_out) {
  assert(!in_flight_);
  if (input_->empty()) return false;
  current_ = input_->Pop();
  in_flight_ = true;
  ++tuples_in_;
  const double jitter =
      config_.cost_jitter > 0
          ? rng_.Uniform(1.0 - config_.cost_jitter, 1.0 + config_.cost_jitter)
          : 1.0;
  current_cost_ =
      static_cast<SimDuration>(static_cast<double>(config_.cost) * jitter) +
      config_.per_tuple_overhead;
  cost_out = current_cost_;
  return true;
}

SimDuration PhysicalOp::Finish(SimTime now) {
  assert(in_flight_);
  in_flight_ = false;
  busy_ns_ += current_cost_;

  if (config_.role == OperatorRole::kIngress) current_.ingested = now;

  // Run the fused logic chain.
  scratch_in_.clear();
  scratch_in_.push_back(current_);
  for (const auto& logic : logic_chain_) {
    scratch_out_.clear();
    for (const Tuple& t : scratch_in_) logic->Process(t, scratch_out_);
    scratch_in_.swap(scratch_out_);
  }

  if (config_.role == OperatorRole::kEgress) {
    // Egress delivers to the user: record latency per produced result.
    for (const Tuple& t : scratch_in_) {
      const auto latency = static_cast<double>(now - t.ingested);
      const auto e2e = static_cast<double>(now - t.produced);
      egress_.latency.Add(latency);
      egress_.e2e_latency.Add(e2e);
      egress_.latency_histogram.Record(static_cast<std::uint64_t>(
          std::max<SimDuration>(now - t.ingested, 0)));
      egress_.e2e_latency_histogram.Record(static_cast<std::uint64_t>(
          std::max<SimDuration>(now - t.produced, 0)));
      ++egress_.tuples;
      ReservoirAdd(egress_.latency_samples, latency, egress_.tuples, rng_);
      ReservoirAdd(egress_.e2e_latency_samples, e2e, egress_.tuples, rng_);
    }
    tuples_out_ += scratch_in_.size();
    scratch_in_.clear();
  }

  // Stage outputs for emission: each result goes to every downstream edge
  // (streams are multicast to all consumers).
  for (const Tuple& t : scratch_in_) {
    ++tuples_out_;
    RouteOutput(t);
  }
  scratch_in_.clear();

  if (config_.block_probability > 0 && rng_.Chance(config_.block_probability)) {
    return static_cast<SimDuration>(
        rng_.Uniform(0.0, static_cast<double>(config_.block_max)));
  }
  return 0;
}

void PhysicalOp::RouteOutput(const Tuple& t) {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const std::size_t replica = edges_[e].PickReplica(t);
    staged_.push_back({e, replica, t});
  }
}

bool PhysicalOp::TryEmit() {
  blocked_queue_ = nullptr;
  while (staged_pos_ < staged_.size()) {
    const Staged& s = staged_[staged_pos_];
    PhysicalEdge& edge = edges_[s.edge];
    TupleQueue* dest = edge.destinations[s.replica];
    if (edge.remote[s.replica]) {
      // Remote hop: delivered after the network delay; Kafka-like transport
      // is unbounded, so no backpressure on the sender.
      assert(remote_push_);
      remote_push_(dest, s.tuple, config_.network_delay);
    } else {
      if (dest->full()) {
        blocked_queue_ = dest;
        return false;
      }
      dest->Push(s.tuple);
    }
    ++staged_pos_;
  }
  staged_.clear();
  staged_pos_ = 0;
  return true;
}

void PhysicalOp::EmitAllUnbounded() {
  while (staged_pos_ < staged_.size()) {
    const Staged& s = staged_[staged_pos_];
    PhysicalEdge& edge = edges_[s.edge];
    TupleQueue* dest = edge.destinations[s.replica];
    if (edge.remote[s.replica]) {
      assert(remote_push_);
      remote_push_(dest, s.tuple, config_.network_delay);
    } else {
      dest->Push(s.tuple);
    }
    ++staged_pos_;
  }
  staged_.clear();
  staged_pos_ = 0;
}

double PhysicalOp::MeasuredCostNs() const {
  if (tuples_in_ == 0) return 0.0;
  return static_cast<double>(busy_ns_) / static_cast<double>(tuples_in_);
}

double PhysicalOp::MeasuredSelectivity() const {
  if (tuples_in_ == 0) return 0.0;
  return static_cast<double>(tuples_out_) / static_cast<double>(tuples_in_);
}

void PhysicalOp::ResetMeasurements() {
  // Counters (tuples_in/out, busy_ns) stay cumulative: the metric scraper
  // and the harness both difference them over windows. Only the egress
  // latency reservoirs are cleared (warmup trim).
  egress_.Reset();
}

}  // namespace lachesis::spe
