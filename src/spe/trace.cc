#include "spe/trace.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/rng.h"

namespace lachesis::spe {

std::vector<TraceRecord> ParseTrace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  SimDuration running_max = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    TraceRecord record;
    if (!(fields >> record.offset >> record.key >> record.value >>
          record.kind)) {
      continue;  // malformed line
    }
    record.offset = std::max(record.offset, running_max);
    running_max = record.offset;
    records.push_back(record);
  }
  return records;
}

void WriteTrace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << "# offset_ns key value kind\n";
  for (const TraceRecord& r : records) {
    out << r.offset << ' ' << r.key << ' ' << r.value << ' ' << r.kind << '\n';
  }
}

std::vector<TraceRecord> RecordTrace(
    const std::function<Tuple(Rng&, std::uint64_t)>& generator, double rate,
    SimDuration duration, std::uint64_t seed) {
  std::vector<TraceRecord> records;
  Rng rng(seed);
  const auto period =
      static_cast<SimDuration>(static_cast<double>(kSecond) / rate);
  std::uint64_t seq = 0;
  for (SimDuration offset = 0; offset < duration; offset += period) {
    const Tuple t = generator(rng, seq++);
    records.push_back({offset, t.key, t.value, t.kind});
  }
  return records;
}

TraceReplaySource::TraceReplaySource(sim::Simulator& sim,
                                     std::vector<TupleQueue*> channels,
                                     std::vector<TraceRecord> trace)
    : sim_(&sim), channels_(std::move(channels)), trace_(std::move(trace)) {
  assert(!channels_.empty());
  if (!trace_.empty()) {
    // The gap after the last record when looping: reuse the mean spacing.
    const SimDuration last = trace_.back().offset;
    const auto mean_gap = static_cast<SimDuration>(
        trace_.size() > 1 ? last / static_cast<SimDuration>(trace_.size() - 1)
                          : kMillisecond);
    trace_span_ = last + std::max<SimDuration>(mean_gap, 1);
  }
}

SimTime TraceReplaySource::NextEmissionTime(SimTime current) const {
  if (fixed_period_ > 0) return current + fixed_period_;
  const TraceRecord& record = trace_[position_];
  return loop_base_ + static_cast<SimTime>(
                          static_cast<double>(record.offset) / speedup_);
}

void TraceReplaySource::StartPaced(double speedup, SimTime until) {
  if (trace_.empty()) return;
  assert(speedup > 0);
  speedup_ = speedup;
  fixed_period_ = 0;
  until_ = until;
  loop_base_ = sim_->now();
  position_ = 0;
  const SimTime first = NextEmissionTime(sim_->now());
  if (first <= until_) {
    sim_->ScheduleAt(std::max(first, sim_->now()), this, /*code=*/0,
                     static_cast<std::uint64_t>(first), 0);
  }
}

void TraceReplaySource::StartAtRate(double rate_tps, SimTime until) {
  if (trace_.empty()) return;
  assert(rate_tps > 0);
  fixed_period_ =
      static_cast<SimDuration>(static_cast<double>(kSecond) / rate_tps);
  until_ = until;
  position_ = 0;
  const SimTime first = sim_->now() + fixed_period_;
  if (first <= until_) {
    sim_->ScheduleAt(first, this, /*code=*/0,
                     static_cast<std::uint64_t>(first), 0);
  }
}

void TraceReplaySource::HandleEvent(std::int32_t /*code*/, std::uint64_t a,
                                    std::uint64_t /*b*/) {
  EmitAndScheduleNext(static_cast<SimTime>(a));
}

void TraceReplaySource::EmitAndScheduleNext(SimTime when) {
  const TraceRecord& record = trace_[position_];
  Tuple t;
  t.produced = when;
  t.key = record.key;
  t.value = record.value;
  t.kind = record.kind;
  channels_[emitted_ % channels_.size()]->Push(t);
  ++emitted_;

  if (++position_ >= trace_.size()) {  // loop
    position_ = 0;
    loop_base_ += static_cast<SimTime>(
        static_cast<double>(trace_span_) / (fixed_period_ > 0 ? 1.0 : speedup_));
  }
  const SimTime next = std::max(NextEmissionTime(when), when + 1);
  if (next <= until_) {
    sim_->ScheduleAt(next, this, /*code=*/0, static_cast<std::uint64_t>(next),
                     0);
  }
}

}  // namespace lachesis::spe
