// Stream tuples.
//
// Tuples carry the two timestamps the paper's §3.2 latency definitions need:
// `produced` (when the Data Source emitted the contributing input) and
// `ingested` (when the Ingress operator consumed it). Operators that combine
// several inputs propagate the *latest* contributor per the paper's "time
// when all the ingress tuples that contribute to t were ingested".
#ifndef LACHESIS_SPE_TUPLE_H_
#define LACHESIS_SPE_TUPLE_H_

#include <cstdint>

#include "common/sim_time.h"

namespace lachesis::spe {

struct Tuple {
  SimTime produced = 0;  // emission at the data source
  SimTime ingested = 0;  // consumption by the Ingress operator
  std::int64_t key = 0;  // partition / group-by key
  double value = 0.0;    // numeric payload
  std::uint32_t kind = 0;  // workload-specific discriminator

  // Combines contributor timestamps: a derived tuple is as old as its most
  // recently produced/ingested contributor.
  void MergeContributor(const Tuple& other) {
    if (other.produced > produced) produced = other.produced;
    if (other.ingested > ingested) ingested = other.ingested;
  }
};

}  // namespace lachesis::spe

#endif  // LACHESIS_SPE_TUPLE_H_
